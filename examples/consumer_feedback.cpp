// Consumer feedback report -- the consumer-oriented application the paper
// motivates (Sections 1 and 3.2): per household, interpret the 3-line
// model into actionable advice (inefficient AC, heavy heating, high
// always-on load) and quantify each against the population.
//
// Usage: consumer_feedback [--households=N] [--seed=N]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "core/three_line_task.h"
#include "datagen/seed_generator.h"
#include "stats/quantile.h"

using namespace smartmeter;  // Example code.

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  datagen::SeedGeneratorOptions options;
  options.num_households =
      static_cast<int>(flags.GetInt("households", 40));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  auto dataset = datagen::GenerateSeedDataset(options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // Fit the 3-line model for everyone.
  std::vector<core::ThreeLineResult> models;
  for (const ConsumerSeries& c : dataset->consumers()) {
    auto fit = core::ComputeThreeLine(c.consumption, dataset->temperature(),
                                      c.household_id);
    if (!fit.ok()) {
      std::fprintf(stderr, "household %lld skipped: %s\n",
                   static_cast<long long>(c.household_id),
                   fit.status().ToString().c_str());
      continue;
    }
    models.push_back(std::move(*fit));
  }

  // Population reference points for "high" = above the 75th percentile.
  std::vector<double> heating, cooling, base;
  for (const auto& m : models) {
    heating.push_back(m.heating_gradient);
    cooling.push_back(m.cooling_gradient);
    base.push_back(m.base_load);
  }
  const double heating_p75 = *stats::Quantile(heating, 0.75);
  const double cooling_p75 = *stats::Quantile(cooling, 0.75);
  const double base_p75 = *stats::Quantile(base, 0.75);

  std::printf("population reference (75th percentiles): heating %.3f "
              "kWh/degC, cooling %.3f kWh/degC, base %.3f kWh\n\n",
              heating_p75, cooling_p75, base_p75);

  int flagged = 0;
  for (const auto& m : models) {
    std::vector<std::string> advice;
    if (m.cooling_gradient > cooling_p75) {
      advice.push_back(
          "high cooling gradient: the air conditioner may be inefficient "
          "or its set point very low");
    }
    if (m.heating_gradient > heating_p75) {
      advice.push_back(
          "high heating gradient: insulation or heating system efficiency "
          "is worth checking");
    }
    if (m.base_load > base_p75) {
      advice.push_back(
          "high base load: something draws power around the clock "
          "(old fridge, dehumidifier, always-on electronics)");
    }
    if (advice.empty()) continue;
    ++flagged;
    std::printf("household %lld (heating %.3f, cooling %.3f, base %.3f):\n",
                static_cast<long long>(m.household_id), m.heating_gradient,
                m.cooling_gradient, m.base_load);
    for (const auto& line : advice) {
      std::printf("  - %s\n", line.c_str());
    }
  }
  std::printf("\n%d of %zu households received feedback\n", flagged,
              models.size());
  return 0;
}
