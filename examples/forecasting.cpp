// Short-term load forecasting -- the planning application the paper
// motivates (Section 1): fit the PAR model on the first part of the year
// and predict hold-out days one day ahead from the lagged consumption
// and the outdoor temperature, reporting per-household MAPE.
//
// Usage: forecasting [--households=N] [--train-days=N] [--seed=N]
#include <cmath>
#include <cstdio>
#include <span>

#include "common/flags.h"
#include "core/par_task.h"
#include "datagen/seed_generator.h"
#include "timeseries/calendar.h"

using namespace smartmeter;  // Example code.

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  datagen::SeedGeneratorOptions options;
  options.num_households =
      static_cast<int>(flags.GetInt("households", 12));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 5));
  const int train_days =
      static_cast<int>(flags.GetInt("train-days", 300));

  auto dataset = datagen::GenerateSeedDataset(options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const std::vector<double>& temperature = dataset->temperature();
  const int total_days = static_cast<int>(dataset->hours()) / kHoursPerDay;
  if (train_days + 10 > total_days) {
    std::fprintf(stderr, "not enough hold-out days\n");
    return 2;
  }

  core::ParOptions par_options;  // p = 3, the paper's choice.
  std::printf("training on days 0-%d, forecasting days %d-%d\n\n",
              train_days - 1, train_days, total_days - 1);
  std::printf("| household | MAPE %% | mean abs err (kWh) |\n|---|---|---|\n");

  double total_mape = 0.0;
  int scored = 0;
  for (const ConsumerSeries& consumer : dataset->consumers()) {
    // Fit on the training window only.
    const size_t train_hours =
        static_cast<size_t>(train_days) * kHoursPerDay;
    auto model = core::ComputeDailyProfile(
        std::span<const double>(consumer.consumption)
            .subspan(0, train_hours),
        std::span<const double>(temperature).subspan(0, train_hours),
        consumer.household_id, par_options);
    if (!model.ok()) continue;

    // One-day-ahead forecasts over the hold-out.
    double abs_err = 0.0, ape = 0.0;
    int points = 0;
    const int p = par_options.lags;
    for (int d = train_days; d < total_days; ++d) {
      for (int h = 0; h < kHoursPerDay; ++h) {
        const std::vector<double>& beta =
            model->coefficients[static_cast<size_t>(h)];
        const size_t t = static_cast<size_t>(d * kHoursPerDay + h);
        double pred = beta[0];
        for (int lag = 1; lag <= p; ++lag) {
          pred += beta[static_cast<size_t>(lag)] *
                  consumer.consumption[t - static_cast<size_t>(lag) *
                                               kHoursPerDay];
        }
        pred += beta[static_cast<size_t>(p) + 1] * temperature[t];
        const double actual = consumer.consumption[t];
        abs_err += std::abs(pred - actual);
        if (actual > 0.05) {  // MAPE undefined near zero.
          ape += std::abs(pred - actual) / actual;
          ++points;
        }
      }
    }
    if (points == 0) continue;
    const double mape = 100.0 * ape / points;
    const double mae =
        abs_err / ((total_days - train_days) * kHoursPerDay);
    std::printf("| %lld | %.1f | %.3f |\n",
                static_cast<long long>(consumer.household_id), mape, mae);
    total_mape += mape;
    ++scored;
  }
  if (scored > 0) {
    std::printf("\naverage MAPE over %d households: %.1f%%\n", scored,
                total_mape / scored);
  }
  return 0;
}
