// Quickstart: generate a small realistic data set and run all four
// benchmark algorithms through the public core API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/histogram_task.h"
#include "core/par_task.h"
#include "core/similarity_task.h"
#include "core/three_line_task.h"
#include "datagen/seed_generator.h"

using namespace smartmeter;  // Example code; a library user would qualify.

int main() {
  // 1. Synthesize 20 households with one year of hourly readings.
  datagen::SeedGeneratorOptions options;
  options.num_households = 20;
  options.seed = 42;
  Result<MeterDataset> dataset = datagen::GenerateSeedDataset(options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %zu households x %zu hourly readings\n\n",
              dataset->num_consumers(), dataset->hours());

  const ConsumerSeries& consumer = dataset->consumer(0);
  const std::vector<double>& temperature = dataset->temperature();

  // 2. Task 1 -- consumption histogram (Section 3.1).
  auto histogram = core::ComputeConsumptionHistogram(consumer.consumption);
  if (!histogram.ok()) return 1;
  std::printf("household %lld consumption histogram (10 equi-width "
              "buckets over [%.2f, %.2f] kWh):\n  ",
              static_cast<long long>(consumer.household_id), histogram->min,
              histogram->max);
  for (int64_t count : histogram->counts) {
    std::printf("%lld ", static_cast<long long>(count));
  }
  std::printf("hours\n\n");

  // 3. Task 2 -- thermal sensitivity via the 3-line model (Section 3.2).
  auto lines = core::ComputeThreeLine(consumer.consumption, temperature,
                                      consumer.household_id);
  if (!lines.ok()) return 1;
  std::printf("3-line model: heating gradient %.3f kWh/degC, cooling "
              "gradient %.3f kWh/degC, base load %.3f kWh\n\n",
              lines->heating_gradient, lines->cooling_gradient,
              lines->base_load);

  // 4. Task 3 -- daily activity profile via PAR (Section 3.3).
  auto profile = core::ComputeDailyProfile(consumer.consumption,
                                           temperature,
                                           consumer.household_id);
  if (!profile.ok()) return 1;
  std::printf("daily profile (temperature-independent kWh per hour):\n");
  for (int h = 0; h < 24; ++h) {
    std::printf("  %02d:00 %.3f %s\n", h,
                profile->profile[static_cast<size_t>(h)],
                std::string(static_cast<size_t>(
                                profile->profile[static_cast<size_t>(h)] *
                                40),
                            '#')
                    .c_str());
  }
  std::printf("\n");

  // 5. Task 4 -- top-k similar consumers by cosine similarity (3.4).
  std::vector<core::SeriesView> views;
  for (const ConsumerSeries& c : dataset->consumers()) {
    views.push_back({c.household_id, c.consumption});
  }
  core::SimilarityOptions sim_options;
  sim_options.k = 3;
  auto similar = core::ComputeSimilarityTopK(views, sim_options);
  if (!similar.ok()) return 1;
  std::printf("3 most similar households to household %lld:\n",
              static_cast<long long>(consumer.household_id));
  for (const auto& match : (*similar)[0].matches) {
    std::printf("  household %lld (cosine %.4f)\n",
                static_cast<long long>(match.household_id), match.cosine);
  }
  return 0;
}
