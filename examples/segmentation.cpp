// Customer segmentation -- the producer-oriented application the paper
// motivates (Sections 1 and 3.4): extract every household's daily
// activity profile with PAR, cluster the profiles with k-means, and
// describe each segment for targeted engagement programs.
//
// Usage: segmentation [--households=N] [--clusters=K] [--seed=N]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "core/par_task.h"
#include "datagen/seed_generator.h"
#include "stats/kmeans.h"

using namespace smartmeter;  // Example code.

namespace {

/// A few human labels from the profile shape. The always-on floor is
/// subtracted first so the label reflects activity, not base load.
std::string DescribeCentroid(const std::vector<double>& raw) {
  std::vector<double> profile = raw;
  const double floor = *std::min_element(profile.begin(), profile.end());
  for (double& v : profile) v -= floor;
  const auto peak = std::max_element(profile.begin(), profile.end());
  const int peak_hour = static_cast<int>(peak - profile.begin());
  double day = 0.0, evening = 0.0, night = 0.0;
  for (int h = 0; h < 24; ++h) {
    if (h >= 9 && h < 17) {
      day += profile[static_cast<size_t>(h)] / 8.0;
    } else if (h >= 17 && h < 23) {
      evening += profile[static_cast<size_t>(h)] / 6.0;
    } else if (h < 6) {
      night += profile[static_cast<size_t>(h)] / 6.0;
    }
  }
  std::string label;
  if (night > 0.5 * evening) {
    label = "night-heavy usage (shift-worker / night-owl pattern)";
  } else if (day > evening) {
    label = "daytime-heavy usage (home during work hours)";
  } else {
    label = "evening-peaked usage (out during work hours)";
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s, peak at %02d:00", label.c_str(),
                peak_hour);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  datagen::SeedGeneratorOptions options;
  options.num_households =
      static_cast<int>(flags.GetInt("households", 60));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 9));
  const int k = static_cast<int>(flags.GetInt("clusters", 4));

  auto dataset = datagen::GenerateSeedDataset(options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // Daily activity profile per household (temperature removed by PAR).
  std::vector<std::vector<double>> profiles;
  std::vector<int64_t> ids;
  for (const ConsumerSeries& c : dataset->consumers()) {
    auto profile = core::ComputeDailyProfile(
        c.consumption, dataset->temperature(), c.household_id);
    if (!profile.ok()) continue;
    profiles.push_back(std::move(profile->profile));
    ids.push_back(c.household_id);
  }
  std::printf("extracted %zu daily profiles\n", profiles.size());

  stats::KMeansOptions kmeans_options;
  kmeans_options.seed = 3;
  auto clusters = stats::KMeans(profiles, k, kmeans_options);
  if (!clusters.ok()) {
    std::fprintf(stderr, "%s\n", clusters.status().ToString().c_str());
    return 1;
  }
  std::printf("k-means converged=%d after %d iterations, inertia %.3f\n\n",
              clusters->converged, clusters->iterations,
              clusters->inertia);

  for (size_t c = 0; c < clusters->centroids.size(); ++c) {
    std::vector<int64_t> members;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (clusters->assignment[i] == static_cast<int>(c)) {
        members.push_back(ids[i]);
      }
    }
    std::printf("segment %zu: %zu households -- %s\n", c, members.size(),
                DescribeCentroid(clusters->centroids[c]).c_str());
    std::printf("  centroid profile: ");
    for (int h = 0; h < 24; h += 3) {
      std::printf("%02d:00=%.2f ", h,
                  clusters->centroids[c][static_cast<size_t>(h)]);
    }
    std::printf("\n  example households: ");
    for (size_t i = 0; i < std::min<size_t>(members.size(), 6); ++i) {
      std::printf("%lld ", static_cast<long long>(members[i]));
    }
    std::printf("\n\n");
  }
  return 0;
}
