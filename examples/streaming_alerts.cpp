// Real-time anomaly alerts -- the paper's Section 6 future-work
// application, built on this library's streaming substrate: batch PAR
// models from historical data drive per-household ProfileDetectors,
// complemented by model-free spike / flatline / envelope detectors. The
// example replays a "live" week with injected faults and prints the
// alert feed plus daily window summaries.
//
// Usage: streaming_alerts [--households=N] [--seed=N]
#include <cstdio>
#include <memory>

#include "common/flags.h"
#include "common/rng.h"
#include "core/par_task.h"
#include "datagen/seed_generator.h"
#include "streaming/detectors.h"
#include "streaming/stream_processor.h"
#include "timeseries/calendar.h"

using namespace smartmeter;  // Example code.

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  datagen::SeedGeneratorOptions options;
  options.num_households = static_cast<int>(flags.GetInt("households", 6));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 17));
  auto dataset = datagen::GenerateSeedDataset(options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // Train batch models on the first 51 weeks; replay the last week live.
  const int live_start = kHoursPerYear - 7 * kHoursPerDay;
  streaming::StreamProcessor processor;
  processor.AddDetectorPrototype(
      std::make_unique<streaming::SpikeDetector>());
  processor.AddDetectorPrototype(
      std::make_unique<streaming::FlatlineDetector>());
  for (const ConsumerSeries& c : dataset->consumers()) {
    auto model = core::ComputeDailyProfile(
        std::span<const double>(c.consumption)
            .subspan(0, static_cast<size_t>(live_start)),
        std::span<const double>(dataset->temperature())
            .subspan(0, static_cast<size_t>(live_start)),
        c.household_id);
    if (!model.ok()) continue;
    streaming::ProfileDetector::Options profile_options;
    profile_options.relative_tolerance = 3.0;
    profile_options.min_band = 1.5;
    processor.AddHouseholdDetector(
        c.household_id, std::make_unique<streaming::ProfileDetector>(
                            *model, profile_options));
  }

  int alert_count = 0;
  processor.SetAlertSink([&alert_count](const streaming::Alert& alert) {
    ++alert_count;
    std::printf("ALERT  %s\n", alert.ToString().c_str());
  });
  processor.SetWindowSink([](const streaming::WindowSummary& w) {
    std::printf("DAY    household %lld day-window @%lld: total %.1f kWh, "
                "peak %.2f kWh at %02d:00\n",
                static_cast<long long>(w.household_id),
                static_cast<long long>(w.window_start_hour / 24),
                w.total_kwh, w.peak_kwh, w.peak_hour);
  });

  // Replay the live week with three injected faults.
  Rng rng(3);
  const int64_t spike_household = dataset->consumer(0).household_id;
  const int64_t stuck_household = dataset->consumer(1).household_id;
  const int spike_hour = live_start + 3 * 24 + 19;  // Day 4, 7 pm.
  std::printf("replaying hours %d..%d for %zu households; injected: a 12 "
              "kWh spike (household %lld) and a stuck meter (household "
              "%lld, day 5 onward)\n\n",
              live_start, kHoursPerYear - 1, dataset->num_consumers(),
              static_cast<long long>(spike_household),
              static_cast<long long>(stuck_household));

  for (int h = live_start; h < kHoursPerYear; ++h) {
    for (const ConsumerSeries& c : dataset->consumers()) {
      double kwh = c.consumption[static_cast<size_t>(h)];
      if (c.household_id == spike_household && h == spike_hour) {
        kwh += 12.0;
      }
      if (c.household_id == stuck_household &&
          h >= live_start + 4 * 24) {
        kwh = 0.8341;  // Register stuck.
      }
      const Status st = processor.Process(
          {c.household_id, h, kwh,
           dataset->temperature()[static_cast<size_t>(h)]});
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
  }
  processor.FlushWindows();
  std::printf("\nprocessed %lld readings, raised %d alerts\n",
              static_cast<long long>(processor.readings_processed()),
              alert_count);
  return 0;
}
