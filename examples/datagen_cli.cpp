// Data generator CLI -- the released artifact of the paper is the
// benchmark plus this generator (Section 4). Trains on a seed data set
// (here: the archetype synthesizer standing in for the private Ontario
// data) and writes any number of synthetic households in any of the
// benchmark's file layouts.
//
// Usage:
//   datagen_cli --out=/tmp/data --households=1000
//       [--format=readings|lines|files|partitioned] [--files=N]
//       [--seed-households=100] [--clusters=8] [--sigma=0.1] [--seed=N]
#include <cstdio>
#include <filesystem>

#include "common/flags.h"
#include "common/string_util.h"
#include "datagen/generator.h"
#include "datagen/seed_generator.h"
#include "storage/csv.h"

using namespace smartmeter;  // Example code.

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr,
                 "usage: datagen_cli --out=DIR --households=N "
                 "[--format=readings|lines|files|partitioned] [--files=N]\n");
    return 2;
  }
  const int households = static_cast<int>(flags.GetInt("households", 1000));
  const std::string format = flags.GetString("format", "readings");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  // 1. Seed data set (stands in for the paper's 27,300 real consumers).
  datagen::SeedGeneratorOptions seed_options;
  seed_options.num_households =
      static_cast<int>(flags.GetInt("seed-households", 100));
  seed_options.seed = seed;
  auto seed_data = datagen::GenerateSeedDataset(seed_options);
  if (!seed_data.ok()) {
    std::fprintf(stderr, "seed: %s\n",
                 seed_data.status().ToString().c_str());
    return 1;
  }

  // 2. Train the Section 4 generator (PAR profiles + 3-line gradients +
  //    k-means clusters).
  datagen::DataGeneratorOptions gen_options;
  gen_options.num_clusters = static_cast<int>(flags.GetInt("clusters", 8));
  gen_options.noise_sigma = flags.GetDouble("sigma", 0.1);
  auto generator = datagen::DataGenerator::Train(*seed_data, gen_options);
  if (!generator.ok()) {
    std::fprintf(stderr, "train: %s\n",
                 generator.status().ToString().c_str());
    return 1;
  }
  std::printf("trained on %zu seed households; %zu profile clusters\n",
              generator->features().size(),
              generator->clusters().centroids.size());

  // 3. Generate.
  auto dataset =
      generator->Generate(households, seed_data->temperature(), seed + 1);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // 4. Write in the requested layout.
  std::error_code ec;
  std::filesystem::create_directories(out, ec);
  Status status;
  if (format == "readings") {
    status = storage::WriteReadingsCsv(*dataset, out + "/readings.csv");
  } else if (format == "lines") {
    status = storage::WriteHouseholdLinesCsv(*dataset,
                                             out + "/households.csv");
  } else if (format == "files") {
    const int files = static_cast<int>(flags.GetInt("files", 100));
    status = storage::WriteWholeHouseholdFiles(*dataset, out, files)
                 .status();
  } else if (format == "partitioned") {
    status = storage::WritePartitionedCsv(*dataset, out).status();
  } else {
    std::fprintf(stderr, "unknown --format=%s\n", format.c_str());
    return 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "write: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %d households x %zu hours (~%s as CSV) to %s\n",
              households, dataset->hours(),
              HumanBytes(dataset->ApproxCsvBytes()).c_str(), out.c_str());
  return 0;
}
