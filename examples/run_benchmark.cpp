// Benchmark CLI -- run any benchmark task on any platform engine over
// your own data files, the way the paper's released scripts drove their
// five systems. Prints load/warm/task timings and a result digest.
//
// Usage:
//   run_benchmark --engine=matlab|madlib|madlib-array|system-c|spark|hive
//       --task=histogram|3line|par|similarity
//       --data=<file-or-dir>
//       [--layout=single|partitioned|lines|files|column]
//       [--threads=N] [--warm] [--nodes=N] [--k=N] [--buckets=N]
//       [--report=bench_report.json]
//
// Example (generate data first with datagen_cli):
//   datagen_cli --out=/tmp/meter --households=200 --format=readings
//   run_benchmark --engine=system-c --task=3line
//       --data=/tmp/meter/readings.csv
#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/flags.h"
#include "common/string_util.h"
#include "engines/benchmark_runner.h"
#include "engines/engine_factory.h"
#include "obs/report.h"

using namespace smartmeter;  // Example code.

namespace {

Result<engines::EngineKind> ParseEngine(const std::string& name,
                                        bool* array_layout) {
  *array_layout = false;
  if (name == "matlab") return engines::EngineKind::kMatlab;
  if (name == "madlib") return engines::EngineKind::kMadlib;
  if (name == "madlib-array") {
    *array_layout = true;
    return engines::EngineKind::kMadlib;
  }
  if (name == "system-c") return engines::EngineKind::kSystemC;
  if (name == "spark") return engines::EngineKind::kSpark;
  if (name == "hive") return engines::EngineKind::kHive;
  return Status::InvalidArgument("unknown engine: " + name);
}

Result<core::TaskType> ParseTask(const std::string& name) {
  if (name == "histogram") return core::TaskType::kHistogram;
  if (name == "3line") return core::TaskType::kThreeLine;
  if (name == "par") return core::TaskType::kPar;
  if (name == "similarity") return core::TaskType::kSimilarity;
  return Status::InvalidArgument("unknown task: " + name);
}

Result<table::DataSource> BuildSource(const std::string& data,
                                        const std::string& layout) {
  namespace fs = std::filesystem;
  if (layout == "column" || fs::path(data).extension() == ".smcol") {
    return table::DataSource::ColumnFile(data);
  }
  if (layout == "single") return table::DataSource::SingleCsv(data);
  if (layout == "lines") return table::DataSource::HouseholdLines(data);
  if (layout == "partitioned" || layout == "files") {
    std::error_code ec;
    fs::directory_iterator it(data, ec);
    if (ec) return Status::IOError("cannot list directory " + data);
    std::vector<std::string> files;
    for (const auto& entry : it) {
      if (entry.path().extension() == ".csv") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      return Status::InvalidArgument("no .csv files under " + data);
    }
    return layout == "partitioned"
               ? table::DataSource::PartitionedDir(std::move(files))
               : table::DataSource::WholeFileDir(std::move(files));
  }
  return Status::InvalidArgument("unknown layout: " + layout);
}

void PrintDigest(const engines::TaskResultSet& results,
                 core::TaskType task) {
  switch (task) {
    case core::TaskType::kHistogram: {
      const auto& histograms = results.Get<core::HistogramResult>();
      std::printf("computed %zu histograms\n", histograms.size());
      if (!histograms.empty()) {
        std::printf("first: household %lld -> %s\n",
                    static_cast<long long>(histograms[0].household_id),
                    histograms[0].histogram.ToString().c_str());
      }
      break;
    }
    case core::TaskType::kThreeLine: {
      const auto& models = results.Get<core::ThreeLineResult>();
      std::printf("fitted %zu 3-line models\n", models.size());
      if (!models.empty()) {
        const auto& m = models[0];
        std::printf(
            "first: household %lld heating %.3f cooling %.3f base %.3f\n",
            static_cast<long long>(m.household_id), m.heating_gradient,
            m.cooling_gradient, m.base_load);
      }
      break;
    }
    case core::TaskType::kPar:
      std::printf("fitted %zu daily profiles\n",
                  results.Get<core::DailyProfileResult>().size());
      break;
    case core::TaskType::kSimilarity: {
      const auto& similarities = results.Get<core::SimilarityResult>();
      std::printf("searched %zu households\n", similarities.size());
      if (!similarities.empty() && !similarities[0].matches.empty()) {
        const auto& r = similarities[0];
        std::printf("first: household %lld best match %lld (%.4f)\n",
                    static_cast<long long>(r.household_id),
                    static_cast<long long>(r.matches[0].household_id),
                    r.matches[0].cosine);
      }
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::string engine_name = flags.GetString("engine", "");
  const std::string task_name = flags.GetString("task", "");
  const std::string data = flags.GetString("data", "");
  if (engine_name.empty() || task_name.empty() || data.empty()) {
    std::fprintf(stderr,
                 "usage: run_benchmark --engine=... --task=... --data=... "
                 "[--layout=single|partitioned|lines|files|column] [--threads=N] "
                 "[--warm]\n");
    return 2;
  }

  bool array_layout = false;
  auto engine_kind = ParseEngine(engine_name, &array_layout);
  auto task = ParseTask(task_name);
  auto source = BuildSource(data, flags.GetString("layout", "single"));
  if (!engine_kind.ok() || !task.ok() || !source.ok()) {
    const Status& st = !engine_kind.ok()
                           ? engine_kind.status()
                           : (!task.ok() ? task.status() : source.status());
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }

  engines::RunSpec spec;
  spec.kind = *engine_kind;
  spec.factory.madlib_array_layout = array_layout;
  spec.factory.spool_dir = "/tmp/smartmeter-cli-spool";
  spec.factory.cluster.num_nodes =
      static_cast<int>(flags.GetInt("nodes", 16));
  spec.source = *source;
  spec.options = engines::TaskOptions::Default(*task);
  if (spec.options.Holds<core::HistogramOptions>()) {
    spec.options.Get<core::HistogramOptions>().num_buckets =
        static_cast<int>(flags.GetInt("buckets", 10));
  }
  if (spec.options.Holds<engines::SimilarityTaskOptions>()) {
    spec.options.Get<engines::SimilarityTaskOptions>().search.k =
        static_cast<int>(flags.GetInt("k", 10));
  }
  spec.threads = static_cast<int>(flags.GetInt("threads", 1));
  spec.warm = flags.GetBool("warm", false);
  spec.keep_outputs = true;
  spec.sample_memory = true;

  const std::string report_path = flags.GetString("report", "");
  obs::BenchReport obs_report;
  if (!report_path.empty()) {
    obs_report.set_label("run_benchmark");
    spec.report = &obs_report;
  }

  auto report = engines::RunBenchmark(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("engine=%s task=%s threads=%d warm=%d\n",
              engine_name.c_str(), task_name.c_str(), spec.threads,
              spec.warm ? 1 : 0);
  std::printf("load   %s\n", HumanSeconds(report->attach_seconds).c_str());
  if (spec.warm) {
    std::printf("warmup %s\n",
                HumanSeconds(report->warmup_seconds).c_str());
  }
  std::printf("task   %s%s\n", HumanSeconds(report->task_seconds).c_str(),
              report->simulated ? " (simulated cluster time)" : "");
  if (report->memory_bytes > 0) {
    std::printf("memory %s\n", HumanBytes(report->memory_bytes).c_str());
  }
  PrintDigest(report->results, *task);

  if (!report_path.empty()) {
    obs_report.CaptureMetrics();
    obs_report.CaptureSpans();
    std::string error;
    if (!obs_report.WriteFile(report_path, &error)) {
      std::fprintf(stderr, "cannot write report %s: %s\n",
                   report_path.c_str(), error.c_str());
      return 1;
    }
    std::printf("report %s\n", report_path.c_str());
  }
  return 0;
}
