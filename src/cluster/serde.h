#ifndef SMARTMETER_CLUSTER_SERDE_H_
#define SMARTMETER_CLUSTER_SERDE_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace smartmeter::cluster {

/// Estimated serialized size of shuffled values, used to convert record
/// streams into modeled shuffle bytes. Trivially copyable types count
/// their in-memory size; containers add a small framing overhead, like a
/// length-prefixed wire format would.
template <typename T>
int64_t ApproxByteSize(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "provide an ApproxByteSize overload for this type");
  (void)value;
  return static_cast<int64_t>(sizeof(T));
}

inline int64_t ApproxByteSize(const std::string& value) {
  return 16 + static_cast<int64_t>(value.size());
}

template <typename T>
int64_t ApproxByteSize(const std::vector<T>& value);

template <typename A, typename B>
int64_t ApproxByteSize(const std::pair<A, B>& value) {
  return ApproxByteSize(value.first) + ApproxByteSize(value.second);
}

template <typename T>
int64_t ApproxByteSize(const std::vector<T>& value) {
  if constexpr (std::is_trivially_copyable_v<T>) {
    return 16 + static_cast<int64_t>(value.size() * sizeof(T));
  } else {
    int64_t total = 16;
    for (const T& item : value) total += ApproxByteSize(item);
    return total;
  }
}

}  // namespace smartmeter::cluster

#endif  // SMARTMETER_CLUSTER_SERDE_H_
