#include "cluster/scenario.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/seed_generator.h"
#include "engines/engine.h"
#include "engines/hive_engine.h"
#include "engines/madlib_engine.h"
#include "engines/matlab_engine.h"
#include "engines/spark_engine.h"
#include "engines/systemc_engine.h"
#include "engines/task_api.h"
#include "exec/serving_runner.h"
#include "storage/column_store.h"
#include "storage/csv.h"
#include "table/data_source.h"
#include "table/table_reader.h"

namespace smartmeter::scenario {

namespace {

namespace fs = std::filesystem;

using engines::TaskOptions;
using engines::TaskResultSet;

std::string FormatDouble(double value) {
  return StringPrintf("%.17g", value);
}

Result<core::TaskType> ParseTask(std::string_view name) {
  for (core::TaskType task : core::kAllTasks) {
    if (core::TaskName(task) == name) return task;
  }
  return Status::InvalidArgument("unknown scenario task: " +
                                 std::string(name));
}

Result<ScenarioSpec::ClusterLayout> ParseLayout(std::string_view name) {
  for (ScenarioSpec::ClusterLayout layout :
       {ScenarioSpec::ClusterLayout::kSingleCsv,
        ScenarioSpec::ClusterLayout::kHouseholdLines,
        ScenarioSpec::ClusterLayout::kWholeFileDir}) {
    if (ClusterLayoutName(layout) == name) return layout;
  }
  return Status::InvalidArgument("unknown scenario layout: " +
                                 std::string(name));
}

}  // namespace

std::string_view ClusterLayoutName(ScenarioSpec::ClusterLayout layout) {
  switch (layout) {
    case ScenarioSpec::ClusterLayout::kSingleCsv:
      return "single-csv";
    case ScenarioSpec::ClusterLayout::kHouseholdLines:
      return "household-lines";
    case ScenarioSpec::ClusterLayout::kWholeFileDir:
      return "whole-files";
  }
  return "unknown";
}

ScenarioSpec ScenarioSpec::Random(uint64_t seed) {
  Rng rng(seed ^ 0x5CEA2A105EEDULL);
  ScenarioSpec spec;
  spec.seed = seed;
  spec.households = 4 + static_cast<int>(rng.UniformInt(9));  // 4..12
  // 2..4 weeks; PAR needs at least 9 days of history per household.
  spec.hours = 24 * (14 + static_cast<int>(rng.UniformInt(15)));
  spec.task = core::kAllTasks[rng.UniformInt(4)];
  switch (rng.UniformInt(3)) {
    case 0:
      spec.cluster_layout = ClusterLayout::kSingleCsv;
      break;
    case 1:
      spec.cluster_layout = ClusterLayout::kHouseholdLines;
      break;
    default:
      spec.cluster_layout = ClusterLayout::kWholeFileDir;
      break;
  }
  // Spark rejects similarity over whole files by design (mirrors the
  // paper); don't generate the combination the engine refuses.
  if (spec.task == core::TaskType::kSimilarity &&
      spec.cluster_layout == ClusterLayout::kWholeFileDir) {
    spec.cluster_layout = ClusterLayout::kSingleCsv;
  }
  spec.wholefile_count = 2 + static_cast<int>(rng.UniformInt(3));
  spec.nodes = 2 + static_cast<int>(rng.UniformInt(15));  // 2..16
  spec.slots_per_node = 1 + static_cast<int>(rng.UniformInt(4));
  spec.block_bytes = int64_t{16} << (10 + rng.UniformInt(5));  // 16KB..256KB
  spec.num_racks = 1 + static_cast<int>(rng.UniformInt(4));
  if (spec.num_racks > 1) {
    spec.intra_rack_mb_per_s = rng.Uniform(50.0, 200.0);
    spec.cross_rack_mb_per_s = rng.Uniform(10.0, 50.0);
  }
  if (rng.NextDouble() < 0.5) {
    spec.failure_probability = rng.Uniform(0.05, 0.3);
    spec.max_task_attempts = 3 + static_cast<int>(rng.UniformInt(4));
    spec.retry_backoff_seconds = rng.Uniform(0.1, 1.0);
  }
  if (rng.NextDouble() < 0.5) {
    spec.straggler_probability = rng.Uniform(0.05, 0.4);
    spec.straggler_multiplier_min = rng.Uniform(1.5, 3.0);
    spec.straggler_multiplier_max =
        spec.straggler_multiplier_min + rng.Uniform(1.0, 7.0);
  }
  spec.speculation = rng.NextDouble() < 0.5;
  spec.speculation_slow_factor = rng.Uniform(1.2, 2.5);
  return spec;
}

cluster::ClusterConfig ScenarioSpec::ToClusterConfig() const {
  cluster::ClusterConfig config;
  config.num_nodes = nodes;
  config.slots_per_node = slots_per_node;
  // Deterministic simulated cost: modeled compute instead of measured
  // host CPU time, so same seed ⇒ same wall-clock to the last bit.
  config.cost.use_measured_compute = false;
  config.topology.num_racks = num_racks;
  config.topology.intra_rack_mb_per_s = intra_rack_mb_per_s;
  config.topology.cross_rack_mb_per_s = cross_rack_mb_per_s;
  config.faults.seed = seed;
  config.faults.task_failure_probability = failure_probability;
  config.faults.max_task_attempts = max_task_attempts;
  config.faults.retry_backoff_seconds = retry_backoff_seconds;
  config.faults.straggler_probability = straggler_probability;
  config.faults.straggler_multiplier_min = straggler_multiplier_min;
  config.faults.straggler_multiplier_max = straggler_multiplier_max;
  config.faults.speculative_execution = speculation;
  config.faults.speculation_slow_factor = speculation_slow_factor;
  return config;
}

std::string ScenarioSpec::ToSeedText() const {
  std::ostringstream out;
  out << "# smartmeter-scenario/v1\n";
  out << "seed=" << seed << "\n";
  out << "households=" << households << "\n";
  out << "hours=" << hours << "\n";
  out << "task=" << core::TaskName(task) << "\n";
  out << "layout=" << ClusterLayoutName(cluster_layout) << "\n";
  out << "wholefile_count=" << wholefile_count << "\n";
  out << "nodes=" << nodes << "\n";
  out << "slots=" << slots_per_node << "\n";
  out << "block_bytes=" << block_bytes << "\n";
  out << "racks=" << num_racks << "\n";
  out << "intra_rack_mb_per_s=" << FormatDouble(intra_rack_mb_per_s) << "\n";
  out << "cross_rack_mb_per_s=" << FormatDouble(cross_rack_mb_per_s) << "\n";
  out << "failure_probability=" << FormatDouble(failure_probability) << "\n";
  out << "max_task_attempts=" << max_task_attempts << "\n";
  out << "retry_backoff_seconds=" << FormatDouble(retry_backoff_seconds)
      << "\n";
  out << "straggler_probability=" << FormatDouble(straggler_probability)
      << "\n";
  out << "straggler_multiplier_min="
      << FormatDouble(straggler_multiplier_min) << "\n";
  out << "straggler_multiplier_max="
      << FormatDouble(straggler_multiplier_max) << "\n";
  out << "speculation=" << (speculation ? 1 : 0) << "\n";
  out << "speculation_slow_factor=" << FormatDouble(speculation_slow_factor)
      << "\n";
  return out.str();
}

Result<ScenarioSpec> ScenarioSpec::FromSeedText(const std::string& text) {
  ScenarioSpec spec;
  for (std::string_view line : SplitString(text, '\n')) {
    line = TrimWhitespace(line);
    if (line.empty() || line.front() == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("scenario line without '=': " +
                                     std::string(line));
    }
    const std::string_view key = TrimWhitespace(line.substr(0, eq));
    const std::string_view value = TrimWhitespace(line.substr(eq + 1));
    if (key == "seed") {
      SM_ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
      spec.seed = static_cast<uint64_t>(v);
    } else if (key == "households") {
      SM_ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
      spec.households = static_cast<int>(v);
    } else if (key == "hours") {
      SM_ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
      spec.hours = static_cast<int>(v);
    } else if (key == "task") {
      SM_ASSIGN_OR_RETURN(spec.task, ParseTask(value));
    } else if (key == "layout") {
      SM_ASSIGN_OR_RETURN(spec.cluster_layout, ParseLayout(value));
    } else if (key == "wholefile_count") {
      SM_ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
      spec.wholefile_count = static_cast<int>(v);
    } else if (key == "nodes") {
      SM_ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
      spec.nodes = static_cast<int>(v);
    } else if (key == "slots") {
      SM_ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
      spec.slots_per_node = static_cast<int>(v);
    } else if (key == "block_bytes") {
      SM_ASSIGN_OR_RETURN(spec.block_bytes, ParseInt64(value));
    } else if (key == "racks") {
      SM_ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
      spec.num_racks = static_cast<int>(v);
    } else if (key == "intra_rack_mb_per_s") {
      SM_ASSIGN_OR_RETURN(spec.intra_rack_mb_per_s, ParseDouble(value));
    } else if (key == "cross_rack_mb_per_s") {
      SM_ASSIGN_OR_RETURN(spec.cross_rack_mb_per_s, ParseDouble(value));
    } else if (key == "failure_probability") {
      SM_ASSIGN_OR_RETURN(spec.failure_probability, ParseDouble(value));
    } else if (key == "max_task_attempts") {
      SM_ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
      spec.max_task_attempts = static_cast<int>(v);
    } else if (key == "retry_backoff_seconds") {
      SM_ASSIGN_OR_RETURN(spec.retry_backoff_seconds, ParseDouble(value));
    } else if (key == "straggler_probability") {
      SM_ASSIGN_OR_RETURN(spec.straggler_probability, ParseDouble(value));
    } else if (key == "straggler_multiplier_min") {
      SM_ASSIGN_OR_RETURN(spec.straggler_multiplier_min, ParseDouble(value));
    } else if (key == "straggler_multiplier_max") {
      SM_ASSIGN_OR_RETURN(spec.straggler_multiplier_max, ParseDouble(value));
    } else if (key == "speculation") {
      SM_ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
      spec.speculation = v != 0;
    } else if (key == "speculation_slow_factor") {
      SM_ASSIGN_OR_RETURN(spec.speculation_slow_factor, ParseDouble(value));
    } else {
      return Status::InvalidArgument("unknown scenario key: " +
                                     std::string(key));
    }
  }
  return spec;
}

Status ScenarioSpec::WriteSeedFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot write scenario file: " + path);
  out << ToSeedText();
  out.close();
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<ScenarioSpec> ScenarioSpec::ReadSeedFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot read scenario file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return FromSeedText(text.str());
}

namespace {

/// Bit-exact result comparison across engines; returns "" on agreement,
/// otherwise a description of the first mismatch.
std::string CompareResults(const TaskResultSet& got,
                           const TaskResultSet& want, core::TaskType task) {
  switch (task) {
    case core::TaskType::kHistogram: {
      const auto& g = got.Get<core::HistogramResult>();
      const auto& w = want.Get<core::HistogramResult>();
      if (g.size() != w.size()) return "histogram result count differs";
      for (size_t i = 0; i < g.size(); ++i) {
        if (g[i].household_id != w[i].household_id ||
            g[i].histogram.counts != w[i].histogram.counts) {
          return "histogram row " + std::to_string(i) + " differs";
        }
      }
      return "";
    }
    case core::TaskType::kThreeLine: {
      const auto& g = got.Get<core::ThreeLineResult>();
      const auto& w = want.Get<core::ThreeLineResult>();
      if (g.size() != w.size()) return "3line result count differs";
      for (size_t i = 0; i < g.size(); ++i) {
        if (g[i].household_id != w[i].household_id ||
            g[i].heating_gradient != w[i].heating_gradient ||
            g[i].cooling_gradient != w[i].cooling_gradient ||
            g[i].base_load != w[i].base_load) {
          return "3line row " + std::to_string(i) + " differs";
        }
      }
      return "";
    }
    case core::TaskType::kPar: {
      const auto& g = got.Get<core::DailyProfileResult>();
      const auto& w = want.Get<core::DailyProfileResult>();
      if (g.size() != w.size()) return "par result count differs";
      for (size_t i = 0; i < g.size(); ++i) {
        if (g[i].household_id != w[i].household_id ||
            g[i].profile != w[i].profile) {
          return "par row " + std::to_string(i) + " differs";
        }
      }
      return "";
    }
    case core::TaskType::kSimilarity: {
      const auto& g = got.Get<core::SimilarityResult>();
      const auto& w = want.Get<core::SimilarityResult>();
      if (g.size() != w.size()) return "similarity result count differs";
      for (size_t i = 0; i < g.size(); ++i) {
        if (g[i].household_id != w[i].household_id ||
            g[i].matches.size() != w[i].matches.size()) {
          return "similarity row " + std::to_string(i) + " differs";
        }
        for (size_t m = 0; m < g[i].matches.size(); ++m) {
          if (g[i].matches[m].household_id != w[i].matches[m].household_id ||
              g[i].matches[m].cosine != w[i].matches[m].cosine) {
            return "similarity row " + std::to_string(i) + " match " +
                   std::to_string(m) + " differs";
          }
        }
      }
      return "";
    }
  }
  return "unknown task";
}

EngineRunSummary Summarize(
    std::string engine,
    const Result<engines::TaskRunMetrics>& metrics) {
  EngineRunSummary summary;
  summary.engine = std::move(engine);
  if (!metrics.ok()) {
    summary.status = metrics.status().ToString();
    return summary;
  }
  summary.simulated_seconds = metrics->seconds;
  summary.retries = metrics->faults.retries;
  summary.stragglers = metrics->faults.stragglers;
  summary.speculative_launched = metrics->faults.speculative_launched;
  summary.speculative_wins = metrics->faults.speculative_wins;
  summary.stage_rows.reserve(metrics->stages.size());
  for (const exec::StageTiming& stage : metrics->stages) {
    summary.stage_rows.push_back(StringPrintf(
        "%s p=%d t=%.17g r=%lld sg=%lld sl=%lld sw=%lld",
        stage.name.c_str(), stage.partitions, stage.seconds,
        static_cast<long long>(stage.retries),
        static_cast<long long>(stage.stragglers),
        static_cast<long long>(stage.speculative_launched),
        static_cast<long long>(stage.speculative_wins)));
  }
  return summary;
}

/// Plan invariants every successful simulated run must satisfy.
std::string CheckInvariants(const ScenarioSpec& spec,
                            const engines::TaskRunMetrics& metrics) {
  if (!metrics.simulated) return "cluster engine reported unsimulated time";
  if (metrics.stages.empty()) return "simulated run has no stage rows";
  double sum = 0.0;
  for (const exec::StageTiming& stage : metrics.stages) {
    sum += stage.seconds;
  }
  const double tolerance = 1e-9 * std::max(1.0, metrics.seconds);
  if (std::fabs(sum - metrics.seconds) > tolerance) {
    return StringPrintf("stage seconds %.17g do not sum to task %.17g", sum,
                        metrics.seconds);
  }
  const auto& faults = metrics.faults;
  if (spec.failure_probability == 0.0 && faults.retries != 0) {
    return "retries injected with failure_probability=0";
  }
  if (spec.straggler_probability == 0.0 && faults.stragglers != 0) {
    return "stragglers injected with straggler_probability=0";
  }
  if (!spec.speculation && (faults.speculative_launched != 0 ||
                            faults.speculative_wins != 0)) {
    return "speculation ran while disabled";
  }
  if (faults.speculative_wins > faults.speculative_launched) {
    return "more speculative wins than launches";
  }
  return "";
}

}  // namespace

std::string EngineRunSummary::DebugString() const {
  std::ostringstream out;
  out << engine << ": " << status
      << " seconds=" << FormatDouble(simulated_seconds)
      << " retries=" << retries << " stragglers=" << stragglers
      << " spec=" << speculative_launched << "/" << speculative_wins;
  for (const std::string& row : stage_rows) out << "\n    " << row;
  return out.str();
}

Result<ScenarioOutcome> RunScenario(const ScenarioSpec& spec,
                                    const std::string& workdir) {
  if (spec.households < 1 || spec.hours < 24 || spec.nodes < 1 ||
      spec.slots_per_node < 1 || spec.block_bytes < 1) {
    return Status::InvalidArgument("degenerate scenario spec");
  }
  std::error_code ec;
  fs::create_directories(workdir, ec);
  if (ec) return Status::IOError("cannot create workdir: " + workdir);

  datagen::SeedGeneratorOptions gen;
  gen.num_households = spec.households;
  gen.hours = spec.hours;
  gen.seed = spec.seed;
  SM_ASSIGN_OR_RETURN(MeterDataset dataset,
                      datagen::GenerateSeedDataset(gen));
  const std::string single_csv = workdir + "/data.csv";
  SM_RETURN_IF_ERROR(storage::WriteReadingsCsv(dataset, single_csv));
  SM_ASSIGN_OR_RETURN(table::DataSource base_source,
                      table::DataSource::SingleCsv(single_csv));

  table::DataSource cluster_source = base_source;
  switch (spec.cluster_layout) {
    case ScenarioSpec::ClusterLayout::kSingleCsv:
      break;
    case ScenarioSpec::ClusterLayout::kHouseholdLines: {
      const std::string lines = workdir + "/lines.csv";
      SM_RETURN_IF_ERROR(storage::WriteHouseholdLinesCsv(dataset, lines));
      SM_ASSIGN_OR_RETURN(cluster_source,
                          table::DataSource::HouseholdLines(lines));
      break;
    }
    case ScenarioSpec::ClusterLayout::kWholeFileDir: {
      SM_ASSIGN_OR_RETURN(
          std::vector<std::string> files,
          storage::WriteWholeHouseholdFiles(dataset, workdir + "/files",
                                            spec.wholefile_count));
      SM_ASSIGN_OR_RETURN(cluster_source,
                          table::DataSource::WholeFileDir(std::move(files)));
      break;
    }
  }

  const TaskOptions options = TaskOptions::Default(spec.task);
  ScenarioOutcome outcome;

  // System C is the parity baseline (same file bytes, same kernels).
  engines::SystemCEngine systemc(workdir + "/spool");
  SM_RETURN_IF_ERROR(systemc.Attach(base_source).status());
  TaskResultSet baseline;
  SM_RETURN_IF_ERROR(systemc.RunTask(options, &baseline).status());

  // Local engines: faults never touch them; parity must always hold.
  {
    engines::MadlibEngine madlib;
    engines::MatlabEngine matlab;
    std::pair<const char*, engines::AnalyticsEngine*> locals[] = {
        {"madlib", &madlib}, {"matlab", &matlab}};
    for (auto& [name, engine] : locals) {
      SM_RETURN_IF_ERROR(engine->Attach(base_source).status());
      TaskResultSet results;
      SM_RETURN_IF_ERROR(engine->RunTask(options, &results).status());
      const std::string diff = CompareResults(results, baseline, spec.task);
      if (!diff.empty()) {
        outcome.violation =
            std::string(name) + " parity vs system-c: " + diff;
        return outcome;
      }
    }
  }

  // Storage-format parity: the dataset the engines actually parse,
  // re-rendered as SMCOLV1 and as SMCOLV2, must reproduce the CSV
  // baseline bit for bit — compression may not change a single result
  // bit. The column files are written from the CSV parse (not the
  // pre-quantization dataset) so all three inputs hold identical values.
  {
    SM_ASSIGN_OR_RETURN(MeterDataset parsed,
                        table::ReadDatasetFromSource(base_source));
    int version = 1;
    for (const char* leaf : {"/cols.v1.smcol", "/cols.v2.smcol"}) {
      const std::string path = workdir + leaf;
      SM_RETURN_IF_ERROR(
          version == 1 ? storage::ColumnStore::WriteFile(parsed, path)
                       : storage::ColumnFileWriter::WriteFile(parsed, path));
      SM_ASSIGN_OR_RETURN(table::DataSource column_source,
                          table::DataSource::ColumnFile(path));
      engines::SystemCEngine engine(workdir + "/spool_colv" +
                                    std::to_string(version));
      SM_RETURN_IF_ERROR(engine.Attach(column_source).status());
      TaskResultSet results;
      SM_RETURN_IF_ERROR(engine.RunTask(options, &results).status());
      const std::string diff = CompareResults(results, baseline, spec.task);
      if (!diff.empty()) {
        outcome.violation = "smcolv" + std::to_string(version) +
                            " parity vs csv baseline: " + diff;
        return outcome;
      }
      ++version;
    }
  }

  // Sharded serving: a 4-shard scatter-gather over the same bytes must
  // reproduce the unsharded baseline bit for bit (the serving layer's
  // routing, scoped kernels, and gather merge are all on this path).
  {
    exec::ServingOptions serving_options;
    serving_options.num_shards = 4;
    serving_options.keep_results = true;
    exec::ServingRunner runner(serving_options);
    SM_RETURN_IF_ERROR(runner.OpenRouting(base_source, workdir + "/routing"));
    std::vector<std::unique_ptr<engines::SystemCEngine>> sessions;
    for (int s = 0; s < 4; ++s) {
      sessions.push_back(std::make_unique<engines::SystemCEngine>(
          workdir + "/spool_shard" + std::to_string(s)));
      SM_RETURN_IF_ERROR(sessions.back()->Attach(base_source).status());
      runner.AddSession(sessions.back().get());
    }
    SM_ASSIGN_OR_RETURN(exec::QueryRequest request,
                        exec::QueryRequest::Builder()
                            .Task(options)
                            .Tenant("scenario")
                            .Label("sharded-parity")
                            .Build());
    SM_ASSIGN_OR_RETURN(std::shared_ptr<exec::QueryTicket> ticket,
                        runner.Submit(request));
    const exec::QueryOutcome& serving_outcome = ticket->Wait();
    runner.Shutdown();
    if (!serving_outcome.status.ok()) {
      outcome.violation = "sharded serving failed: " +
                          serving_outcome.status.ToString();
      return outcome;
    }
    const std::string diff =
        CompareResults(serving_outcome.results, baseline, spec.task);
    if (!diff.empty()) {
      outcome.violation = "sharded serving parity vs system-c: " + diff;
      return outcome;
    }
  }

  // Cluster engines run the scenario layout under fault injection,
  // twice each: run 1 is the verdict, run 2 the determinism witness.
  const cluster::ClusterConfig config = spec.ToClusterConfig();
  for (const char* name : {"spark", "hive"}) {
    EngineRunSummary runs[2];
    TaskResultSet results[2];
    bool ok[2] = {false, false};
    // A rejected Attach (layout an engine refuses) or an aborted job is a
    // deterministic scenario outcome, recorded in the summary status; the
    // determinism assertion still applies to it.
    const auto run_once =
        [&](TaskResultSet* out) -> Result<engines::TaskRunMetrics> {
      if (std::string_view(name) == "spark") {
        engines::SparkEngine::Options engine_options;
        engine_options.cluster = config;
        engine_options.block_bytes = spec.block_bytes;
        engines::SparkEngine engine(engine_options);
        SM_RETURN_IF_ERROR(engine.Attach(cluster_source).status());
        return engine.RunTask(options, out);
      }
      engines::HiveEngine::Options engine_options;
      engine_options.cluster = config;
      engine_options.block_bytes = spec.block_bytes;
      engines::HiveEngine engine(engine_options);
      SM_RETURN_IF_ERROR(engine.Attach(cluster_source).status());
      return engine.RunTask(options, out);
    };
    for (int attempt = 0; attempt < 2; ++attempt) {
      Result<engines::TaskRunMetrics> metrics = run_once(&results[attempt]);
      ok[attempt] = metrics.ok();
      runs[attempt] = Summarize(name, metrics);
      if (metrics.ok()) {
        const std::string bad = CheckInvariants(spec, *metrics);
        if (!bad.empty()) {
          outcome.violation = std::string(name) + " invariant: " + bad;
          outcome.cluster_runs.push_back(runs[attempt]);
          return outcome;
        }
      }
    }
    if (!(runs[0] == runs[1])) {
      outcome.violation = std::string(name) +
                          " is not seed-deterministic:\n  run1 " +
                          runs[0].DebugString() + "\n  run2 " +
                          runs[1].DebugString();
      outcome.cluster_runs.push_back(runs[0]);
      return outcome;
    }
    if (ok[0]) {
      const std::string diff =
          CompareResults(results[0], baseline, spec.task);
      if (!diff.empty()) {
        outcome.violation =
            std::string(name) + " parity vs system-c: " + diff;
        outcome.cluster_runs.push_back(runs[0]);
        return outcome;
      }
    }
    outcome.cluster_runs.push_back(runs[0]);
  }
  return outcome;
}

}  // namespace smartmeter::scenario
