#include "cluster/block_store.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace smartmeter::cluster {

Result<std::vector<std::string>> ReadSplitLines(const InputSplit& split) {
  static obs::Counter* split_reads =
      obs::MetricsRegistry::Global().GetCounter("blockstore.split_reads");
  static obs::Counter* bytes_read =
      obs::MetricsRegistry::Global().GetCounter("blockstore.bytes_read");
  static obs::Counter* lines_read =
      obs::MetricsRegistry::Global().GetCounter("blockstore.lines_read");
  FILE* f = std::fopen(split.path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + split.path);
  }
  std::vector<std::string> lines;
  if (std::fseek(f, static_cast<long>(split.offset), SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IOError("cannot seek in " + split.path);
  }

  int64_t consumed = 0;  // Bytes consumed relative to split.offset.
  auto read_line = [&](std::string* out) -> bool {
    out->clear();
    int c;
    while ((c = std::fgetc(f)) != EOF) {
      ++consumed;
      if (c == '\n') return true;
      out->push_back(static_cast<char>(c));
    }
    return !out->empty();
  };

  std::string line;
  // A split that does not start the file discards its first (partial)
  // line; the previous split finished it.
  if (split.offset > 0) {
    if (!read_line(&line)) {
      std::fclose(f);
      split_reads->Increment();
      bytes_read->Add(consumed);
      return lines;
    }
  }
  // Read lines while they *start* at or before the split end; the last
  // one may run past the boundary. The "or before" (<=) matters: a line
  // beginning exactly at offset + length belongs to THIS split, because
  // the next split unconditionally discards its first line.
  while (consumed <= split.length) {
    if (!read_line(&line)) break;
    lines.push_back(line);
  }
  std::fclose(f);
  split_reads->Increment();
  bytes_read->Add(consumed);
  lines_read->Add(static_cast<int64_t>(lines.size()));
  return lines;
}

BlockStore::BlockStore(int num_nodes, int64_t block_bytes)
    : num_nodes_(num_nodes < 1 ? 1 : num_nodes),
      block_bytes_(block_bytes < 1 ? 1 : block_bytes) {}

Status BlockStore::AddFile(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("cannot stat " + path);
  }
  FileEntry entry;
  entry.path = path;
  entry.size = static_cast<int64_t>(st.st_size);
  entry.first_node = next_node_;
  // Advance placement round-robin by the number of blocks in this file.
  const int64_t blocks =
      entry.size == 0 ? 1 : (entry.size + block_bytes_ - 1) / block_bytes_;
  next_node_ = static_cast<int>((next_node_ + blocks) % num_nodes_);
  total_bytes_ += entry.size;
  files_.push_back(std::move(entry));
  return Status::OK();
}

Status BlockStore::AddFiles(const std::vector<std::string>& paths) {
  for (const std::string& path : paths) {
    SM_RETURN_IF_ERROR(AddFile(path));
  }
  return Status::OK();
}

std::vector<InputSplit> BlockStore::SplittableSplits() const {
  std::vector<InputSplit> splits;
  for (const FileEntry& file : files_) {
    int64_t offset = 0;
    int block = 0;
    while (offset < file.size || (file.size == 0 && block == 0)) {
      InputSplit split;
      split.path = file.path;
      split.offset = offset;
      split.length = std::min(block_bytes_, file.size - offset);
      split.home_node = (file.first_node + block) % num_nodes_;
      split.opens_file = (block == 0);
      splits.push_back(std::move(split));
      offset += block_bytes_;
      ++block;
    }
  }
  return splits;
}

Status BlockStore::AddColumnarFile(const std::string& path,
                                   std::vector<ColumnarBlock> blocks) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("cannot stat " + path);
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i].row_end < blocks[i].row_begin ||
        (i > 0 && blocks[i].row_begin != blocks[i - 1].row_end)) {
      return Status::InvalidArgument(
          "columnar blocks must cover disjoint, contiguous row ranges");
    }
  }
  ColumnarFileEntry entry;
  entry.path = path;
  entry.first_node = next_node_;
  entry.blocks = std::move(blocks);
  const int64_t placed =
      entry.blocks.empty() ? 1 : static_cast<int64_t>(entry.blocks.size());
  next_node_ = static_cast<int>((next_node_ + placed) % num_nodes_);
  total_bytes_ += static_cast<int64_t>(st.st_size);
  columnar_files_.push_back(std::move(entry));
  return Status::OK();
}

std::vector<ColumnarSplit> BlockStore::ColumnarSplits(
    const storage::ScanScope* scope) const {
  std::vector<ColumnarSplit> splits;
  const bool scoped = scope != nullptr && !scope->whole_rows();
  for (const ColumnarFileEntry& file : columnar_files_) {
    bool first_kept = true;
    for (size_t i = 0; i < file.blocks.size(); ++i) {
      const ColumnarBlock& block = file.blocks[i];
      size_t row_begin = block.row_begin;
      size_t row_end = block.row_end;
      if (scoped) {
        // Prune against the unclamped scope range: a block is kept only
        // when [row_begin, row_end) intersects the scoped rows (count 0
        // means "through the last row"), and a kept block's task decodes
        // only the intersection, so scoped cluster runs produce exactly
        // the rows a scoped single-node decode would.
        const size_t begin = scope->row_begin;
        if (row_end <= begin) continue;
        if (scope->row_count != 0 && row_begin >= begin + scope->row_count) {
          continue;
        }
        row_begin = std::max(row_begin, begin);
        if (scope->row_count != 0) {
          row_end = std::min(row_end, begin + scope->row_count);
        }
      }
      ColumnarSplit columnar;
      columnar.split.path = file.path;
      columnar.split.offset = static_cast<int64_t>(i);
      columnar.split.length = block.bytes;
      columnar.split.home_node =
          static_cast<int>((file.first_node + i) % num_nodes_);
      columnar.split.opens_file = first_kept;
      columnar.block_index = i;
      columnar.row_begin = row_begin;
      columnar.row_end = row_end;
      splits.push_back(std::move(columnar));
      first_kept = false;
    }
  }
  return splits;
}

size_t BlockStore::num_columnar_blocks() const {
  size_t total = 0;
  for (const ColumnarFileEntry& file : columnar_files_) {
    total += file.blocks.size();
  }
  return total;
}

std::vector<InputSplit> BlockStore::WholeFileSplits() const {
  std::vector<InputSplit> splits;
  splits.reserve(files_.size());
  for (const FileEntry& file : files_) {
    InputSplit split;
    split.path = file.path;
    split.offset = 0;
    split.length = file.size;
    split.home_node = file.first_node;
    split.opens_file = true;
    splits.push_back(std::move(split));
  }
  return splits;
}

}  // namespace smartmeter::cluster
