#ifndef SMARTMETER_CLUSTER_TASK_SCHEDULER_H_
#define SMARTMETER_CLUSTER_TASK_SCHEDULER_H_

#include <functional>
#include <vector>

#include "cluster/cost_model.h"
#include "common/result.h"
#include "common/status.h"

namespace smartmeter::cluster {

/// Cost ledger of one executed task. `compute_seconds` is *measured* (the
/// thread CPU time the task's real work took on the host); the byte
/// counters are converted to modeled I/O time by the scheduler.
struct TaskStats {
  double compute_seconds = 0.0;
  int64_t input_bytes = 0;     // Scanned from (simulated) disk.
  int64_t shuffle_bytes = 0;   // Written to / read from a shuffle.
  int files_opened = 0;
  double fixed_seconds = 0.0;  // Extra modeled time the task charges.
};

/// Returns the current thread's CPU time in seconds; the scheduler uses
/// it so host-side oversubscription (running 192 simulated slots on 2
/// cores) does not distort per-task compute measurements.
double ThreadCpuSeconds();

/// Executes a set of tasks with real work on the host and computes the
/// simulated makespan of running them on `config` (greedy list
/// scheduling: each task goes to the earliest-free slot, in input order —
/// the same policy as Hadoop/Spark FIFO within a stage).
///
/// Each task function performs its real work and fills TaskStats. Task
/// simulated duration =
///   startup + files_opened * open_cost + input_mb * scan_cost
///           + shuffle_mb * shuffle_cost + fixed + compute.
class TaskWaveRunner {
 public:
  using TaskFn = std::function<Status(TaskStats*)>;

  TaskWaveRunner(const ClusterConfig& config, double task_startup_seconds);

  /// Runs every task (in parallel on the host up to the hardware's
  /// concurrency) and returns the simulated makespan in seconds. Fails
  /// with the first task error.
  Result<double> Run(std::vector<TaskFn>* tasks);

  /// Simulated duration of a single task under this runner's model.
  double SimulatedSeconds(const TaskStats& stats) const;

  /// Makespan of durations list-scheduled onto the cluster's slots.
  double Makespan(const std::vector<double>& durations) const;

 private:
  ClusterConfig config_;
  double task_startup_seconds_;
};

}  // namespace smartmeter::cluster

#endif  // SMARTMETER_CLUSTER_TASK_SCHEDULER_H_
