#ifndef SMARTMETER_CLUSTER_TASK_SCHEDULER_H_
#define SMARTMETER_CLUSTER_TASK_SCHEDULER_H_

#include <functional>
#include <vector>

#include "cluster/cost_model.h"
#include "common/result.h"
#include "common/status.h"

namespace smartmeter::cluster {

/// Cost ledger of one executed task. `compute_seconds` is *measured* (the
/// thread CPU time the task's real work took on the host); the byte
/// counters are converted to modeled I/O time by the scheduler.
struct TaskStats {
  double compute_seconds = 0.0;
  int64_t input_bytes = 0;     // Scanned from (simulated) disk.
  int64_t shuffle_bytes = 0;   // Written to / read from a shuffle.
  int files_opened = 0;
  double fixed_seconds = 0.0;  // Extra modeled time the task charges.
};

/// Returns the current thread's CPU time in seconds; the scheduler uses
/// it so host-side oversubscription (running 192 simulated slots on 2
/// cores) does not distort per-task compute measurements.
double ThreadCpuSeconds();

/// What the fault injection did to one wave of tasks: counts surfaced as
/// obs counters, per-stage report fields, and scenario-fuzzer oracles.
struct WaveFaultStats {
  int64_t retries = 0;       // Failed attempts that were re-run.
  int64_t stragglers = 0;    // Attempts that drew a straggler multiplier.
  int64_t speculative_launched = 0;
  int64_t speculative_wins = 0;  // Backup copy beat the original.
  double backoff_seconds = 0.0;  // Total simulated retry backoff.
  double wasted_seconds = 0.0;   // Simulated time lost to failed attempts.

  void Accumulate(const WaveFaultStats& other) {
    retries += other.retries;
    stragglers += other.stragglers;
    speculative_launched += other.speculative_launched;
    speculative_wins += other.speculative_wins;
    backoff_seconds += other.backoff_seconds;
    wasted_seconds += other.wasted_seconds;
  }
  bool any() const {
    return retries != 0 || stragglers != 0 || speculative_launched != 0;
  }
};

/// A wave's simulated makespan plus its fault ledger.
struct WaveResult {
  double makespan_seconds = 0.0;
  WaveFaultStats faults;
};

/// Per-wave knobs that are not part of the cluster's static shape.
struct WaveOptions {
  /// Distinguishes the waves of one plan execution so each draws an
  /// independent (but seed-deterministic) fault stream.
  uint64_t wave_salt = 0;
  /// Polled between simulated retry attempts; returning non-OK aborts
  /// the wave promptly (a deadline expiring while a failed task sits in
  /// backoff must not keep simulating attempts).
  std::function<Status()> stop_check;
};

/// Executes a set of tasks with real work on the host and computes the
/// simulated makespan of running them on `config` (greedy list
/// scheduling: each task goes to the earliest-free slot, in input order —
/// the same policy as Hadoop/Spark FIFO within a stage).
///
/// Each task function performs its real work and fills TaskStats. Task
/// simulated duration =
///   startup + files_opened * open_cost + input_mb * scan_cost
///           + shuffle_mb * shuffle_cost + network + fixed + compute,
/// then `config.faults` perturbs it: straggler multipliers, failed
/// attempts with exponential backoff (the job aborts once a task burns
/// max_task_attempts), and speculative backup copies for slow tasks.
/// The host-side real work runs exactly once per task regardless of how
/// many simulated attempts its retries model.
class TaskWaveRunner {
 public:
  using TaskFn = std::function<Status(TaskStats*)>;

  TaskWaveRunner(const ClusterConfig& config, double task_startup_seconds);

  /// Runs every task (in parallel on the host up to the hardware's
  /// concurrency) and returns the simulated makespan plus fault counts.
  /// Fails with the first task error, with kAborted once a task exhausts
  /// its attempts, or with the stop_check's status when it trips.
  Result<WaveResult> RunWave(std::vector<TaskFn>* tasks,
                             const WaveOptions& options);

  /// Fault-blind wrapper kept for the mapreduce/dataflow shims: makespan
  /// only, default wave options.
  Result<double> Run(std::vector<TaskFn>* tasks);

  /// Simulated duration of a single task under this runner's flat model
  /// (no topology, no faults).
  double SimulatedSeconds(const TaskStats& stats) const;

  /// Extra network transfer time of `shuffle_bytes` for the task at
  /// `task_index` under the configured rack topology (zero when
  /// topology is disabled). Bytes arrive uniformly from all nodes, so
  /// the in-rack share rides the intra-rack link and the rest crosses
  /// the core switch.
  double TopologyNetworkSeconds(int64_t shuffle_bytes, size_t task_index)
      const;

  /// Makespan of durations list-scheduled onto the cluster's slots.
  double Makespan(const std::vector<double>& durations) const;

 private:
  ClusterConfig config_;
  double task_startup_seconds_;
};

}  // namespace smartmeter::cluster

#endif  // SMARTMETER_CLUSTER_TASK_SCHEDULER_H_
