#include "cluster/task_scheduler.h"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <queue>
#include <thread>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace smartmeter::cluster {

namespace {

/// splitmix64-style finalizer over the fault seed, the wave salt, and
/// the task index: every task gets an independent deterministic stream
/// no matter which host thread simulates it.
uint64_t MixSeed(uint64_t seed, uint64_t salt, uint64_t task) {
  uint64_t x = seed * 0x9E3779B97F4A7C15ULL +
               salt * 0xBF58476D1CE4E5B9ULL +
               (task + 1) * 0x94D049BB133111EBULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// One task's simulated fault outcome, accumulated into the wave ledger
/// in task order so reductions are deterministic.
struct TaskFaultOutcome {
  double duration = 0.0;       // Resolved duration after faults.
  double base_duration = 0.0;  // Un-straggled single-attempt duration.
  WaveFaultStats stats;
  bool exhausted = false;  // Burned every attempt; the wave aborts.
};

}  // namespace

double ThreadCpuSeconds() {
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

TaskWaveRunner::TaskWaveRunner(const ClusterConfig& config,
                               double task_startup_seconds)
    : config_(config), task_startup_seconds_(task_startup_seconds) {}

double TaskWaveRunner::SimulatedSeconds(const TaskStats& stats) const {
  const CostModel& cost = config_.cost;
  const double input_mb =
      static_cast<double>(stats.input_bytes) / (1024.0 * 1024.0);
  const double shuffle_mb =
      static_cast<double>(stats.shuffle_bytes) / (1024.0 * 1024.0);
  const double compute_seconds =
      cost.use_measured_compute
          ? stats.compute_seconds
          : input_mb * cost.modeled_compute_seconds_per_mb;
  return task_startup_seconds_ +
         stats.files_opened * cost.file_open_seconds +
         input_mb * cost.scan_seconds_per_mb +
         shuffle_mb * cost.shuffle_seconds_per_mb + stats.fixed_seconds +
         compute_seconds;
}

double TaskWaveRunner::TopologyNetworkSeconds(int64_t shuffle_bytes,
                                              size_t task_index) const {
  const Topology& topology = config_.topology;
  if (!topology.enabled() || shuffle_bytes <= 0) return 0.0;
  const int nodes = std::max(1, config_.num_nodes);
  // Tasks are placed round-robin; a task's rack determines how much of
  // its shuffle traffic stays on the cheap in-rack links.
  const int home_node = static_cast<int>(task_index) % nodes;
  const int per_rack = topology.nodes_per_rack(nodes);
  const int rack_lo = (home_node / per_rack) * per_rack;
  const int rack_nodes = std::min(per_rack, nodes - rack_lo);
  const double local_fraction =
      static_cast<double>(rack_nodes) / static_cast<double>(nodes);
  const double shuffle_mb =
      static_cast<double>(shuffle_bytes) / (1024.0 * 1024.0);
  double seconds = 0.0;
  if (topology.intra_rack_mb_per_s > 0.0) {
    seconds += shuffle_mb * local_fraction / topology.intra_rack_mb_per_s;
  }
  if (topology.cross_rack_mb_per_s > 0.0) {
    seconds +=
        shuffle_mb * (1.0 - local_fraction) / topology.cross_rack_mb_per_s;
  }
  return seconds;
}

double TaskWaveRunner::Makespan(const std::vector<double>& durations) const {
  const int slots = std::max(1, config_.total_slots());
  // Greedy FIFO: each task starts on the slot that frees up first.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int s = 0; s < slots; ++s) free_at.push(0.0);
  double makespan = 0.0;
  for (double d : durations) {
    const double start = free_at.top();
    free_at.pop();
    const double end = start + d;
    free_at.push(end);
    makespan = std::max(makespan, end);
  }
  return makespan;
}

namespace {

/// Simulates the retry timeline of one task whose real work already ran:
/// each attempt may straggle and may fail partway through; failed
/// attempts add wasted time plus exponential backoff. Purely arithmetic
/// (no waiting), but the stop check is polled between attempts so a
/// cancelled or expired query aborts instead of simulating a retry
/// storm to completion.
Status SimulateTaskFaults(const FaultModel& faults, uint64_t wave_salt,
                          size_t task_index,
                          const std::function<Status()>& stop_check,
                          TaskFaultOutcome* out) {
  out->duration = out->base_duration;
  if (!faults.enabled()) return Status::OK();
  Rng rng(MixSeed(faults.seed, wave_salt, task_index));
  const int max_attempts = std::max(1, faults.max_task_attempts);
  double total = 0.0;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1 && stop_check) {
      SM_RETURN_IF_ERROR(stop_check());
    }
    double attempt_seconds = out->base_duration;
    if (faults.straggler_probability > 0.0 &&
        rng.NextDouble() < faults.straggler_probability) {
      attempt_seconds *= rng.Uniform(faults.straggler_multiplier_min,
                                     faults.straggler_multiplier_max);
      ++out->stats.stragglers;
    }
    const bool fails = faults.task_failure_probability > 0.0 &&
                       rng.NextDouble() < faults.task_failure_probability;
    if (!fails) {
      total += attempt_seconds;
      out->duration = total;
      return Status::OK();
    }
    // The attempt dies a uniform fraction of the way in.
    const double wasted = attempt_seconds * rng.NextDouble();
    total += wasted;
    out->stats.wasted_seconds += wasted;
    if (attempt == max_attempts) {
      out->exhausted = true;
      out->duration = total;
      return Status::OK();
    }
    // Exponential backoff, capped so huge attempt budgets don't overflow
    // the shift (Hadoop caps the real thing at minutes anyway).
    const int exponent = std::min(attempt - 1, 30);
    const double backoff = faults.retry_backoff_seconds *
                           static_cast<double>(int64_t{1} << exponent);
    total += backoff;
    out->stats.backoff_seconds += backoff;
    ++out->stats.retries;
  }
  return Status::OK();
}

}  // namespace

Result<WaveResult> TaskWaveRunner::RunWave(std::vector<TaskFn>* tasks,
                                           const WaveOptions& options) {
  const size_t n = tasks->size();
  std::vector<TaskFaultOutcome> outcomes(n);
  std::mutex error_mu;
  Status first_error = Status::OK();

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  ThreadPool pool(static_cast<int>(hw));
  pool.ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      TaskStats stats;
      // Thread CPU time is immune to host oversubscription, but some
      // container kernels stub it out; fall back to wall time then (the
      // host pool is sized to the hardware, so contention stays mild).
      const double cpu_before = ThreadCpuSeconds();
      Stopwatch wall;
      const Status st = (*tasks)[i](&stats);
      const double wall_seconds = wall.ElapsedSeconds();
      const double cpu_seconds =
          std::max(0.0, ThreadCpuSeconds() - cpu_before);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = st;
        return;
      }
      if (stats.compute_seconds == 0.0) {
        stats.compute_seconds =
            cpu_seconds > 0.0 ? cpu_seconds : wall_seconds;
      }
      outcomes[i].base_duration =
          SimulatedSeconds(stats) +
          TopologyNetworkSeconds(stats.shuffle_bytes, i);
      const Status sim =
          SimulateTaskFaults(config_.faults, options.wave_salt, i,
                             options.stop_check, &outcomes[i]);
      if (!sim.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = sim;
        return;
      }
    }
  });
  if (!first_error.ok()) return first_error;

  WaveResult result;
  std::vector<double> durations(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (outcomes[i].exhausted) {
      return Status::Aborted(
          "simulated task " + std::to_string(i) + " failed after " +
          std::to_string(std::max(1, config_.faults.max_task_attempts)) +
          " attempts");
    }
    durations[i] = outcomes[i].duration;
    result.faults.Accumulate(outcomes[i].stats);
  }
  if (config_.faults.speculative_execution && n > 1) {
    // A backup copy launches at the wave's median mark for any task
    // running slower than slow_factor x median because of faults (not
    // merely because its partition is bigger); the faster copy wins.
    std::vector<double> sorted = durations;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[n / 2];
    const double threshold = config_.faults.speculation_slow_factor * median;
    for (size_t i = 0; i < n; ++i) {
      if (durations[i] <= threshold ||
          durations[i] <= outcomes[i].base_duration) {
        continue;
      }
      ++result.faults.speculative_launched;
      const double backup = median + outcomes[i].base_duration;
      if (backup < durations[i]) {
        durations[i] = backup;
        ++result.faults.speculative_wins;
      }
    }
  }
  result.makespan_seconds = Makespan(durations);
  return result;
}

Result<double> TaskWaveRunner::Run(std::vector<TaskFn>* tasks) {
  SM_ASSIGN_OR_RETURN(WaveResult result, RunWave(tasks, WaveOptions{}));
  return result.makespan_seconds;
}

}  // namespace smartmeter::cluster
