#include "cluster/task_scheduler.h"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <queue>
#include <thread>

#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace smartmeter::cluster {

double ThreadCpuSeconds() {
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

TaskWaveRunner::TaskWaveRunner(const ClusterConfig& config,
                               double task_startup_seconds)
    : config_(config), task_startup_seconds_(task_startup_seconds) {}

double TaskWaveRunner::SimulatedSeconds(const TaskStats& stats) const {
  const CostModel& cost = config_.cost;
  const double input_mb =
      static_cast<double>(stats.input_bytes) / (1024.0 * 1024.0);
  const double shuffle_mb =
      static_cast<double>(stats.shuffle_bytes) / (1024.0 * 1024.0);
  return task_startup_seconds_ +
         stats.files_opened * cost.file_open_seconds +
         input_mb * cost.scan_seconds_per_mb +
         shuffle_mb * cost.shuffle_seconds_per_mb + stats.fixed_seconds +
         stats.compute_seconds;
}

double TaskWaveRunner::Makespan(const std::vector<double>& durations) const {
  const int slots = std::max(1, config_.total_slots());
  // Greedy FIFO: each task starts on the slot that frees up first.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int s = 0; s < slots; ++s) free_at.push(0.0);
  double makespan = 0.0;
  for (double d : durations) {
    const double start = free_at.top();
    free_at.pop();
    const double end = start + d;
    free_at.push(end);
    makespan = std::max(makespan, end);
  }
  return makespan;
}

Result<double> TaskWaveRunner::Run(std::vector<TaskFn>* tasks) {
  const size_t n = tasks->size();
  std::vector<double> durations(n, 0.0);
  std::mutex error_mu;
  Status first_error = Status::OK();

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  ThreadPool pool(static_cast<int>(hw));
  pool.ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      TaskStats stats;
      // Thread CPU time is immune to host oversubscription, but some
      // container kernels stub it out; fall back to wall time then (the
      // host pool is sized to the hardware, so contention stays mild).
      const double cpu_before = ThreadCpuSeconds();
      Stopwatch wall;
      const Status st = (*tasks)[i](&stats);
      const double wall_seconds = wall.ElapsedSeconds();
      const double cpu_seconds =
          std::max(0.0, ThreadCpuSeconds() - cpu_before);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = st;
        return;
      }
      if (stats.compute_seconds == 0.0) {
        stats.compute_seconds =
            cpu_seconds > 0.0 ? cpu_seconds : wall_seconds;
      }
      durations[i] = SimulatedSeconds(stats);
    }
  });
  if (!first_error.ok()) return first_error;
  return Makespan(durations);
}

}  // namespace smartmeter::cluster
