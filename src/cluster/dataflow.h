#ifndef SMARTMETER_CLUSTER_DATAFLOW_H_
#define SMARTMETER_CLUSTER_DATAFLOW_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <utility>
#include <vector>

#include "cluster/block_store.h"
#include "cluster/cost_model.h"
#include "cluster/serde.h"
#include "cluster/task_scheduler.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smartmeter::cluster::dataflow {

/// An in-memory partitioned collection -- the simulation's RDD. Data
/// stays resident between stages (that is Spark's defining property and
/// why its modeled memory grows with input size, Figure 15).
template <typename T>
struct Partitioned {
  std::vector<std::vector<T>> partitions;
  int64_t approx_bytes = 0;

  size_t TotalSize() const {
    size_t n = 0;
    for (const auto& p : partitions) n += p.size();
    return n;
  }
};

/// Spark-like execution context. Narrow operations (ReadText,
/// MapPartitions) run one task wave with no shuffle; GroupBy is a wide
/// operation costing a full shuffle. Real work runs on the host; the
/// context accumulates the simulated cluster time across stages.
class Context {
 public:
  explicit Context(const ClusterConfig& config) : config_(config) {}

  double simulated_seconds() const { return simulated_seconds_; }
  /// Total bytes held in resident collections (cache + shuffle buffers).
  int64_t modeled_cached_bytes() const { return cached_bytes_; }
  const ClusterConfig& config() const { return config_; }

  /// Per-action driver overhead (job submission, DAG scheduling).
  void ChargeJobOverhead() {
    simulated_seconds_ += config_.cost.spark_job_overhead_seconds;
  }

  /// Explicit extra simulated time (e.g. driver-side post-processing).
  void ChargeSeconds(double seconds) { simulated_seconds_ += seconds; }

  /// Loads text splits into a partitioned collection; `parse` turns one
  /// line into zero or more records. `extra_seconds_per_mb` charges any
  /// additional modeled ingestion cost (e.g. the whole-file
  /// materialization penalty of format 3).
  template <typename T>
  Result<Partitioned<T>> ReadText(
      const std::vector<InputSplit>& splits,
      const std::function<Status(std::string_view, std::vector<T>*)>& parse,
      double extra_seconds_per_mb = 0.0) {
    SM_TRACE_SPAN("dataflow.read_text");
    Partitioned<T> out;
    out.partitions.resize(splits.size());
    std::vector<TaskWaveRunner::TaskFn> tasks;
    tasks.reserve(splits.size());
    std::mutex mu;
    for (size_t i = 0; i < splits.size(); ++i) {
      tasks.push_back([&, i](TaskStats* stats) -> Status {
        SM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                            ReadSplitLines(splits[i]));
        std::vector<T>& records = out.partitions[i];
        for (const std::string& line : lines) {
          SM_RETURN_IF_ERROR(parse(line, &records));
        }
        stats->input_bytes = splits[i].length;
        stats->files_opened = splits[i].opens_file ? 1 : 0;
        stats->fixed_seconds = extra_seconds_per_mb *
                               static_cast<double>(splits[i].length) /
                               (1024.0 * 1024.0);
        int64_t bytes = 0;
        for (const T& r : records) bytes += ApproxByteSize(r);
        std::lock_guard<std::mutex> lock(mu);
        out.approx_bytes += bytes;
        return Status::OK();
      });
    }
    SM_RETURN_IF_ERROR(RunWave(&tasks));
    cached_bytes_ += out.approx_bytes;
    return out;
  }

  /// Narrow transformation: one output partition per input partition, no
  /// shuffle, input already in memory.
  template <typename T, typename U>
  Result<Partitioned<U>> MapPartitions(
      const Partitioned<T>& input,
      const std::function<Status(const std::vector<T>&, std::vector<U>*)>&
          fn) {
    SM_TRACE_SPAN("dataflow.map_partitions");
    Partitioned<U> out;
    out.partitions.resize(input.partitions.size());
    std::vector<TaskWaveRunner::TaskFn> tasks;
    tasks.reserve(input.partitions.size());
    std::mutex mu;
    for (size_t i = 0; i < input.partitions.size(); ++i) {
      tasks.push_back([&, i](TaskStats* stats) -> Status {
        (void)stats;
        SM_RETURN_IF_ERROR(fn(input.partitions[i], &out.partitions[i]));
        int64_t bytes = 0;
        for (const U& r : out.partitions[i]) bytes += ApproxByteSize(r);
        std::lock_guard<std::mutex> lock(mu);
        out.approx_bytes += bytes;
        return Status::OK();
      });
    }
    SM_RETURN_IF_ERROR(RunWave(&tasks));
    cached_bytes_ += out.approx_bytes;
    return out;
  }

  /// Wide transformation: extracts a (key, value) from every record and
  /// regroups by key hash into `num_partitions` output partitions,
  /// paying shuffle cost on the full record volume.
  template <typename T, typename K, typename V>
  Result<Partitioned<std::pair<K, std::vector<V>>>> GroupBy(
      const Partitioned<T>& input,
      const std::function<std::pair<K, V>(const T&)>& kv_fn,
      int num_partitions = 0) {
    SM_TRACE_SPAN("shuffle.exchange");
    const int parts = num_partitions > 0 ? num_partitions
                                         : std::max(1, config_.total_slots());
    // Map side: extract and bucket (costed as shuffle write).
    std::vector<std::vector<std::map<K, std::vector<V>>>> buckets(
        input.partitions.size());
    std::vector<TaskWaveRunner::TaskFn> map_tasks;
    map_tasks.reserve(input.partitions.size());
    std::hash<K> hasher;
    for (size_t i = 0; i < input.partitions.size(); ++i) {
      map_tasks.push_back([&, i](TaskStats* stats) -> Status {
        buckets[i].resize(static_cast<size_t>(parts));
        int64_t bytes = 0;
        for (const T& record : input.partitions[i]) {
          std::pair<K, V> kv = kv_fn(record);
          bytes += ApproxByteSize(kv.first) + ApproxByteSize(kv.second);
          const size_t p = hasher(kv.first) % static_cast<size_t>(parts);
          buckets[i][p][std::move(kv.first)].push_back(
              std::move(kv.second));
        }
        stats->shuffle_bytes = bytes;
        return Status::OK();
      });
    }
    SM_RETURN_IF_ERROR(RunWave(&map_tasks));

    // Reduce side: merge buckets per partition (costed as shuffle read).
    Partitioned<std::pair<K, std::vector<V>>> out;
    out.partitions.resize(static_cast<size_t>(parts));
    std::vector<TaskWaveRunner::TaskFn> reduce_tasks;
    reduce_tasks.reserve(static_cast<size_t>(parts));
    std::mutex mu;
    for (int p = 0; p < parts; ++p) {
      reduce_tasks.push_back([&, p](TaskStats* stats) -> Status {
        std::map<K, std::vector<V>> merged;
        int64_t bytes = 0;
        for (auto& per_input : buckets) {
          if (static_cast<size_t>(p) >= per_input.size()) continue;
          for (auto& [key, values] : per_input[static_cast<size_t>(p)]) {
            bytes += ApproxByteSize(key) + ApproxByteSize(values);
            auto& dst = merged[key];
            dst.insert(dst.end(), std::make_move_iterator(values.begin()),
                       std::make_move_iterator(values.end()));
          }
        }
        stats->shuffle_bytes = bytes;
        auto& out_part = out.partitions[static_cast<size_t>(p)];
        out_part.reserve(merged.size());
        for (auto& [key, values] : merged) {
          out_part.emplace_back(key, std::move(values));
        }
        std::lock_guard<std::mutex> lock(mu);
        out.approx_bytes += bytes;
        return Status::OK();
      });
    }
    SM_RETURN_IF_ERROR(RunWave(&reduce_tasks));
    cached_bytes_ += out.approx_bytes;
    static obs::Counter* shuffle_partitions =
        obs::MetricsRegistry::Global().GetCounter("shuffle.partitions");
    static obs::Counter* shuffle_bytes =
        obs::MetricsRegistry::Global().GetCounter("shuffle.bytes_moved");
    shuffle_partitions->Add(parts);
    shuffle_bytes->Add(out.approx_bytes);
    return out;
  }

  /// Distributes driver-side records into a partitioned collection
  /// (sc.parallelize); used to fan a query list out across the cluster.
  template <typename T>
  Partitioned<T> Parallelize(std::vector<T> values, int num_partitions) {
    const int parts = std::max(1, num_partitions);
    Partitioned<T> out;
    out.partitions.resize(static_cast<size_t>(parts));
    for (size_t i = 0; i < values.size(); ++i) {
      out.approx_bytes += ApproxByteSize(values[i]);
      out.partitions[i % static_cast<size_t>(parts)].push_back(
          std::move(values[i]));
    }
    cached_bytes_ += out.approx_bytes;
    return out;
  }

  /// Gathers every record to the driver.
  template <typename T>
  std::vector<T> Collect(Partitioned<T>&& input) {
    std::vector<T> out;
    out.reserve(input.TotalSize());
    for (auto& p : input.partitions) {
      for (auto& r : p) out.push_back(std::move(r));
    }
    return out;
  }

  /// Ships `value` to every node (Spark broadcast variable); the paper's
  /// Spark similarity search relies on this to avoid a shuffle join.
  template <typename T>
  std::shared_ptr<const T> Broadcast(T value) {
    const double mb =
        static_cast<double>(ApproxByteSize(value)) / (1024.0 * 1024.0);
    simulated_seconds_ += mb *
                          config_.cost.broadcast_seconds_per_mb_per_node *
                          config_.num_nodes;
    return std::make_shared<const T>(std::move(value));
  }

 private:
  Status RunWave(std::vector<TaskWaveRunner::TaskFn>* tasks) {
    TaskWaveRunner runner(config_, config_.cost.spark_task_startup_seconds);
    SM_ASSIGN_OR_RETURN(double makespan, runner.Run(tasks));
    simulated_seconds_ += makespan;
    return Status::OK();
  }

  ClusterConfig config_;
  double simulated_seconds_ = 0.0;
  int64_t cached_bytes_ = 0;
};

}  // namespace smartmeter::cluster::dataflow

#endif  // SMARTMETER_CLUSTER_DATAFLOW_H_
