#ifndef SMARTMETER_CLUSTER_SCENARIO_H_
#define SMARTMETER_CLUSTER_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "common/result.h"
#include "core/task_types.h"

namespace smartmeter::scenario {

/// One randomized cluster + workload configuration of the scenario
/// fuzzer: everything RunScenario needs to rebuild the exact same run —
/// dataset seed and size, input layout, cluster shape, topology, and
/// fault injection — in one flat, text-serializable record. A failing
/// fuzz case writes this as a tiny seed file a developer replays (and
/// commits under tests/scenario_corpus/ as a regression case).
struct ScenarioSpec {
  /// Master seed: drives the synthetic dataset AND the fault streams.
  uint64_t seed = 0;

  // -- Workload -------------------------------------------------------------
  int households = 8;
  int hours = 336;
  core::TaskType task = core::TaskType::kHistogram;
  /// Input layout the cluster engines (Spark, Hive) scan. The parity
  /// baseline always reads the single-CSV rendering of the same dataset,
  /// so cross-layout agreement is part of what a scenario asserts.
  enum class ClusterLayout { kSingleCsv, kHouseholdLines, kWholeFileDir };
  ClusterLayout cluster_layout = ClusterLayout::kSingleCsv;
  /// File count for kWholeFileDir (data format 3).
  int wholefile_count = 4;

  // -- Cluster shape --------------------------------------------------------
  int nodes = 8;
  int slots_per_node = 4;
  int64_t block_bytes = 64 << 10;
  int num_racks = 1;
  double intra_rack_mb_per_s = 0.0;
  double cross_rack_mb_per_s = 0.0;

  // -- Fault injection ------------------------------------------------------
  double failure_probability = 0.0;
  int max_task_attempts = 4;
  double retry_backoff_seconds = 0.5;
  double straggler_probability = 0.0;
  double straggler_multiplier_min = 2.0;
  double straggler_multiplier_max = 8.0;
  bool speculation = false;
  double speculation_slow_factor = 1.5;

  /// Draws a bounded random scenario from `seed` (deterministic; the
  /// fuzzer's generator). Combinations the engines reject by design
  /// (Spark similarity over whole files) are never produced.
  static ScenarioSpec Random(uint64_t seed);

  /// The cluster configuration this scenario runs under. Measured host
  /// compute is replaced by the modeled bytes-proportional cost so the
  /// simulated wall-clock is a pure function of this spec.
  cluster::ClusterConfig ToClusterConfig() const;

  /// Tiny replayable text form ("# smartmeter-scenario/v1" + key=value
  /// lines). FromSeedText inverts it exactly, including float bits.
  std::string ToSeedText() const;
  static Result<ScenarioSpec> FromSeedText(const std::string& text);
  Status WriteSeedFile(const std::string& path) const;
  static Result<ScenarioSpec> ReadSeedFile(const std::string& path);
};

std::string_view ClusterLayoutName(ScenarioSpec::ClusterLayout layout);

/// What one engine's run of the scenario produced, reduced to the
/// deterministic quantities two replays of the same spec must agree on.
struct EngineRunSummary {
  std::string engine;
  /// "OK" or the status string of a deterministic failure (a task that
  /// exhausted its attempts aborts the job — a legitimate outcome of a
  /// hostile scenario, and it must reproduce bit-for-bit too).
  std::string status = "OK";
  double simulated_seconds = 0.0;
  int64_t retries = 0;
  int64_t stragglers = 0;
  int64_t speculative_launched = 0;
  int64_t speculative_wins = 0;
  /// "name:seconds" per stage, seconds formatted to full precision.
  std::vector<std::string> stage_rows;

  bool operator==(const EngineRunSummary& other) const = default;
  std::string DebugString() const;
};

/// The scenario's verdict.
struct ScenarioOutcome {
  /// Empty when every assertion held; otherwise the first violation,
  /// human-readable (what the fuzzer prints next to the replay path).
  std::string violation;
  /// Spark and Hive runs (first execution of the two determinism runs).
  std::vector<EngineRunSummary> cluster_runs;

  bool ok() const { return violation.empty(); }
};

/// Executes one scenario end to end in `workdir`: synthesizes the
/// dataset, writes the layouts, and asserts
///   1. five-engine result parity — matlab/madlib/spark/hive all
///      bit-identical to the system-c baseline over the same dataset;
///   2. plan invariants — stage rows present, stage seconds summing to
///      the simulated cost, fault counters zero when their injector is
///      disabled;
///   3. determinism — running each cluster engine twice yields
///      bit-identical simulated cost, fault counts, stage rows, and
///      status.
/// Returns the outcome (violations inside), or an error Status only for
/// infrastructure failures (I/O, bad spec) that are not scenario
/// verdicts.
Result<ScenarioOutcome> RunScenario(const ScenarioSpec& spec,
                                    const std::string& workdir);

}  // namespace smartmeter::scenario

#endif  // SMARTMETER_CLUSTER_SCENARIO_H_
