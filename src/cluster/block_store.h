#ifndef SMARTMETER_CLUSTER_BLOCK_STORE_H_
#define SMARTMETER_CLUSTER_BLOCK_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/scan_scope.h"

namespace smartmeter::cluster {

/// One unit of map-task input: a line-aligned byte range of a file.
struct InputSplit {
  std::string path;
  int64_t offset = 0;  // First byte this split may consider.
  int64_t length = 0;  // Bytes from offset this split owns.
  /// Node that stores the primary replica (for locality accounting).
  int home_node = 0;
  /// True when this split opens the file (charged the open penalty).
  bool opens_file = true;
};

/// Reads the records of a split with standard TextInputFormat semantics:
/// a split skips the (partial) first line unless it starts at offset 0,
/// and reads its last line to completion even past offset + length. This
/// guarantees every line is processed by exactly one split.
Result<std::vector<std::string>> ReadSplitLines(const InputSplit& split);

/// One registered block of a columnar (SMCOLV1/SMCOLV2) file: a
/// row-disjoint household range plus its modeled on-disk bytes. The
/// registrar (who has the file open) derives these from the format's
/// block index; the block store only places and prunes them.
struct ColumnarBlock {
  int64_t bytes = 0;     // Modeled encoded bytes this block occupies.
  size_t row_begin = 0;  // First household row the block covers.
  size_t row_end = 0;    // One past the last covered household row.
};

/// One unit of columnar map-task input: the placed InputSplit (its
/// `offset` is the block ordinal within the file, not a byte offset)
/// plus the household row range the task must decode.
struct ColumnarSplit {
  InputSplit split;
  size_t block_index = 0;
  size_t row_begin = 0;
  size_t row_end = 0;
};

/// An HDFS-like view over local files: files are registered, divided into
/// fixed-size blocks, and blocks are placed on nodes round-robin. The
/// execution frameworks ask it for input splits.
class BlockStore {
 public:
  /// `block_bytes` models the HDFS block size (the paper's cluster would
  /// use 64-128 MB; benches use smaller blocks so scaled-down data still
  /// produces multi-task jobs).
  BlockStore(int num_nodes, int64_t block_bytes);

  /// Registers a file; it is logically divided into ceil(size/block)
  /// blocks placed round-robin starting at a hash of the name.
  Status AddFile(const std::string& path);

  Status AddFiles(const std::vector<std::string>& paths);

  /// Splits for a splittable text file format (cluster data formats 1
  /// and 2): one split per block, line-aligned at read time.
  std::vector<InputSplit> SplittableSplits() const;

  /// Splits for the non-splittable format (format 3, the paper's
  /// isSplitable() == false input format): one split per whole file.
  std::vector<InputSplit> WholeFileSplits() const;

  /// Registers a columnar file whose block layout the caller derived
  /// from the format's own index (so HDFS "blocks" align with the
  /// format's compression blocks, not an arbitrary byte grid). Blocks
  /// are placed round-robin like AddFile's.
  Status AddColumnarFile(const std::string& path,
                         std::vector<ColumnarBlock> blocks);

  /// Splits over the registered columnar blocks, one per block. When
  /// `scope` is non-null, blocks whose household range misses the
  /// scope's rows are pruned before any task is created — the cluster
  /// twin of the single-node reader's block-index pruning.
  std::vector<ColumnarSplit> ColumnarSplits(
      const storage::ScanScope* scope) const;

  /// Registered columnar blocks across all columnar files.
  size_t num_columnar_blocks() const;

  int64_t total_bytes() const { return total_bytes_; }
  size_t num_files() const { return files_.size() + columnar_files_.size(); }
  int num_nodes() const { return num_nodes_; }

 private:
  struct FileEntry {
    std::string path;
    int64_t size = 0;
    int first_node = 0;
  };
  struct ColumnarFileEntry {
    std::string path;
    int first_node = 0;
    std::vector<ColumnarBlock> blocks;
  };

  int num_nodes_;
  int64_t block_bytes_;
  int64_t total_bytes_ = 0;
  int next_node_ = 0;
  std::vector<FileEntry> files_;
  std::vector<ColumnarFileEntry> columnar_files_;
};

}  // namespace smartmeter::cluster

#endif  // SMARTMETER_CLUSTER_BLOCK_STORE_H_
