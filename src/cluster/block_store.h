#ifndef SMARTMETER_CLUSTER_BLOCK_STORE_H_
#define SMARTMETER_CLUSTER_BLOCK_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace smartmeter::cluster {

/// One unit of map-task input: a line-aligned byte range of a file.
struct InputSplit {
  std::string path;
  int64_t offset = 0;  // First byte this split may consider.
  int64_t length = 0;  // Bytes from offset this split owns.
  /// Node that stores the primary replica (for locality accounting).
  int home_node = 0;
  /// True when this split opens the file (charged the open penalty).
  bool opens_file = true;
};

/// Reads the records of a split with standard TextInputFormat semantics:
/// a split skips the (partial) first line unless it starts at offset 0,
/// and reads its last line to completion even past offset + length. This
/// guarantees every line is processed by exactly one split.
Result<std::vector<std::string>> ReadSplitLines(const InputSplit& split);

/// An HDFS-like view over local files: files are registered, divided into
/// fixed-size blocks, and blocks are placed on nodes round-robin. The
/// execution frameworks ask it for input splits.
class BlockStore {
 public:
  /// `block_bytes` models the HDFS block size (the paper's cluster would
  /// use 64-128 MB; benches use smaller blocks so scaled-down data still
  /// produces multi-task jobs).
  BlockStore(int num_nodes, int64_t block_bytes);

  /// Registers a file; it is logically divided into ceil(size/block)
  /// blocks placed round-robin starting at a hash of the name.
  Status AddFile(const std::string& path);

  Status AddFiles(const std::vector<std::string>& paths);

  /// Splits for a splittable text file format (cluster data formats 1
  /// and 2): one split per block, line-aligned at read time.
  std::vector<InputSplit> SplittableSplits() const;

  /// Splits for the non-splittable format (format 3, the paper's
  /// isSplitable() == false input format): one split per whole file.
  std::vector<InputSplit> WholeFileSplits() const;

  int64_t total_bytes() const { return total_bytes_; }
  size_t num_files() const { return files_.size(); }
  int num_nodes() const { return num_nodes_; }

 private:
  struct FileEntry {
    std::string path;
    int64_t size = 0;
    int first_node = 0;
  };

  int num_nodes_;
  int64_t block_bytes_;
  int64_t total_bytes_ = 0;
  int next_node_ = 0;
  std::vector<FileEntry> files_;
};

}  // namespace smartmeter::cluster

#endif  // SMARTMETER_CLUSTER_BLOCK_STORE_H_
