#ifndef SMARTMETER_CLUSTER_COST_MODEL_H_
#define SMARTMETER_CLUSTER_COST_MODEL_H_

#include <algorithm>
#include <cstdint>

namespace smartmeter::cluster {

/// Calibrated constants of the cluster simulation. Work that the host
/// machine can genuinely perform (parsing, math kernels) is *measured*;
/// effects a single machine cannot reproduce (16 nodes of disk, network
/// shuffle, JVM/task start) are *modeled* with the constants below and
/// composed with the measurements into a simulated wall-clock.
///
/// The values approximate a 2014-vintage commodity cluster (the paper's:
/// gigabit Ethernet, 7200 RPM disks, Hadoop 2.x task startup), scaled so
/// that modeled and measured components are of comparable magnitude at
/// bench scale. They live here, in one place, so every figure that
/// depends on them can cite them.
struct CostModel {
  /// Fixed cost of launching one map or reduce task (containers, JVM
  /// reuse amortized). Hadoop's is ~1-3 s; Spark's executors are warm.
  double hive_task_startup_seconds = 0.08;
  double spark_task_startup_seconds = 0.01;

  /// Per-job fixed overhead: query planning, job submission, staging.
  double hive_job_overhead_seconds = 1.2;
  double spark_job_overhead_seconds = 0.3;

  /// Sequential HDFS scan cost, seconds per megabyte per task.
  double scan_seconds_per_mb = 0.008;

  /// Shuffle cost (map-side spill + network + reduce-side merge),
  /// seconds per megabyte moved. Dominates jobs with a reduce phase.
  double shuffle_seconds_per_mb = 0.035;

  /// Broadcast cost per megabyte per receiving node.
  double broadcast_seconds_per_mb_per_node = 0.002;

  /// Penalty for opening one input file (NameNode round trip + open).
  /// This is what makes 100,000 tiny files pathological (Figure 18).
  double file_open_seconds = 0.004;

  /// Spark driver work per scheduled partition. It is serial at the
  /// driver, so jobs with very many tiny partitions (one per file in
  /// data format 3) degrade on Spark while Hive shrugs (Figure 18).
  double spark_per_partition_driver_seconds = 0.0005;

  /// Extra per-MB cost of Spark's whole-file ingestion (format 3):
  /// wholeTextFiles materializes every file as one in-memory object,
  /// paying string copies and GC that the streaming record readers of
  /// the splittable formats avoid.
  double spark_wholefile_read_seconds_per_mb = 0.06;

  /// Number of input files at which Spark's executor runs out of file
  /// descriptors ("too many open files", Section 5.4.2).
  int spark_max_open_files = 100000;

  /// When false, the measured host CPU time of a task is replaced by a
  /// modeled bytes-proportional compute cost, making the simulated
  /// wall-clock a pure function of the inputs (and the fault seed) —
  /// what the scenario fuzzer's same-seed ⇒ same-cost assertion needs.
  bool use_measured_compute = true;
  double modeled_compute_seconds_per_mb = 0.02;
};

/// Rack topology of the simulated cluster: nodes are assigned to racks
/// in contiguous groups, and shuffle bytes pay a per-link transfer time
/// that depends on whether they stay inside the rack. The defaults (one
/// rack, zero link rates) add no time, so the flat model of the paper's
/// figures is unchanged unless a scenario turns topology on.
struct Topology {
  int num_racks = 1;
  /// Link bandwidth in MB/s for transfers that stay inside a rack and
  /// for transfers that cross the core switch. Zero disables the term.
  double intra_rack_mb_per_s = 0.0;
  double cross_rack_mb_per_s = 0.0;

  bool enabled() const {
    return num_racks > 1 &&
           (intra_rack_mb_per_s > 0.0 || cross_rack_mb_per_s > 0.0);
  }
  int nodes_per_rack(int num_nodes) const {
    const int racks = std::max(1, num_racks);
    return std::max(1, (num_nodes + racks - 1) / racks);
  }
};

/// Injected failure behaviour of the simulated cluster. Everything is
/// drawn from a deterministic per-task RNG seeded by (seed, wave, task
/// index), so the same seed reproduces the same stragglers, failures,
/// and speculation decisions regardless of host thread scheduling. The
/// host-side real work always runs exactly once; failures re-execute the
/// *simulated* task (wasted attempt time + backoff + re-run), matching
/// how a deterministic Hadoop/Spark retry recomputes the same result.
struct FaultModel {
  uint64_t seed = 0;

  /// Per-attempt probability that a task attempt fails partway through.
  /// A failed attempt wastes a uniform fraction of its duration, then
  /// waits an exponential backoff before the next attempt.
  double task_failure_probability = 0.0;
  /// Attempts per task before the whole job aborts (Hadoop's
  /// mapreduce.map.maxattempts defaults to 4).
  int max_task_attempts = 4;
  /// Backoff before retry k is retry_backoff_seconds * 2^(k-1).
  double retry_backoff_seconds = 1.0;

  /// Probability a task attempt runs on a degraded slot; its duration is
  /// multiplied by a uniform draw from [min, max) (skew, bad disk, noisy
  /// neighbour).
  double straggler_probability = 0.0;
  double straggler_multiplier_min = 2.0;
  double straggler_multiplier_max = 8.0;

  /// Hadoop/Spark speculative execution: once a task runs slower than
  /// speculation_slow_factor x the wave's median, a backup attempt
  /// launches at the median mark and whichever copy finishes first wins.
  bool speculative_execution = false;
  double speculation_slow_factor = 1.5;

  bool enabled() const {
    return task_failure_probability > 0.0 || straggler_probability > 0.0 ||
           speculative_execution;
  }
};

/// Shape of the simulated cluster (the paper: 16 workers, dual-socket
/// 6-core Xeons = 12 physical cores per node).
struct ClusterConfig {
  int num_nodes = 16;
  int slots_per_node = 12;
  CostModel cost;
  Topology topology;
  FaultModel faults;

  int total_slots() const { return num_nodes * slots_per_node; }
};

}  // namespace smartmeter::cluster

#endif  // SMARTMETER_CLUSTER_COST_MODEL_H_
