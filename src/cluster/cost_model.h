#ifndef SMARTMETER_CLUSTER_COST_MODEL_H_
#define SMARTMETER_CLUSTER_COST_MODEL_H_

namespace smartmeter::cluster {

/// Calibrated constants of the cluster simulation. Work that the host
/// machine can genuinely perform (parsing, math kernels) is *measured*;
/// effects a single machine cannot reproduce (16 nodes of disk, network
/// shuffle, JVM/task start) are *modeled* with the constants below and
/// composed with the measurements into a simulated wall-clock.
///
/// The values approximate a 2014-vintage commodity cluster (the paper's:
/// gigabit Ethernet, 7200 RPM disks, Hadoop 2.x task startup), scaled so
/// that modeled and measured components are of comparable magnitude at
/// bench scale. They live here, in one place, so every figure that
/// depends on them can cite them.
struct CostModel {
  /// Fixed cost of launching one map or reduce task (containers, JVM
  /// reuse amortized). Hadoop's is ~1-3 s; Spark's executors are warm.
  double hive_task_startup_seconds = 0.08;
  double spark_task_startup_seconds = 0.01;

  /// Per-job fixed overhead: query planning, job submission, staging.
  double hive_job_overhead_seconds = 1.2;
  double spark_job_overhead_seconds = 0.3;

  /// Sequential HDFS scan cost, seconds per megabyte per task.
  double scan_seconds_per_mb = 0.008;

  /// Shuffle cost (map-side spill + network + reduce-side merge),
  /// seconds per megabyte moved. Dominates jobs with a reduce phase.
  double shuffle_seconds_per_mb = 0.035;

  /// Broadcast cost per megabyte per receiving node.
  double broadcast_seconds_per_mb_per_node = 0.002;

  /// Penalty for opening one input file (NameNode round trip + open).
  /// This is what makes 100,000 tiny files pathological (Figure 18).
  double file_open_seconds = 0.004;

  /// Spark driver work per scheduled partition. It is serial at the
  /// driver, so jobs with very many tiny partitions (one per file in
  /// data format 3) degrade on Spark while Hive shrugs (Figure 18).
  double spark_per_partition_driver_seconds = 0.0005;

  /// Extra per-MB cost of Spark's whole-file ingestion (format 3):
  /// wholeTextFiles materializes every file as one in-memory object,
  /// paying string copies and GC that the streaming record readers of
  /// the splittable formats avoid.
  double spark_wholefile_read_seconds_per_mb = 0.06;

  /// Number of input files at which Spark's executor runs out of file
  /// descriptors ("too many open files", Section 5.4.2).
  int spark_max_open_files = 100000;
};

/// Shape of the simulated cluster (the paper: 16 workers, dual-socket
/// 6-core Xeons = 12 physical cores per node).
struct ClusterConfig {
  int num_nodes = 16;
  int slots_per_node = 12;
  CostModel cost;

  int total_slots() const { return num_nodes * slots_per_node; }
};

}  // namespace smartmeter::cluster

#endif  // SMARTMETER_CLUSTER_COST_MODEL_H_
