#ifndef SMARTMETER_CLUSTER_MAPREDUCE_H_
#define SMARTMETER_CLUSTER_MAPREDUCE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "cluster/block_store.h"
#include "cluster/cost_model.h"
#include "cluster/serde.h"
#include "cluster/task_scheduler.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smartmeter::cluster::mapreduce {

/// Knobs of a single MapReduce job. The two engine flavours differ only
/// in overhead constants: Hive pays Hadoop job/task costs, Spark pays its
/// lighter ones (the paper's Section 5.4 comparisons hinge on exactly
/// this, plus plan shape).
struct JobOptions {
  double job_overhead_seconds = 1.2;
  double task_startup_seconds = 0.08;
  /// Number of reduce tasks; 0 means one per cluster slot.
  int num_reducers = 0;
};

/// Collects (key, value) pairs emitted by one map task and tracks their
/// modeled serialized size.
template <typename K, typename V>
class Emitter {
 public:
  void Emit(K key, V value) {
    bytes_ += ApproxByteSize(key) + ApproxByteSize(value);
    pairs_.emplace_back(std::move(key), std::move(value));
  }

  std::vector<std::pair<K, V>>& pairs() { return pairs_; }
  int64_t bytes() const { return bytes_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
  int64_t bytes_ = 0;
};

template <typename R>
struct JobResult {
  std::vector<R> outputs;
  double simulated_seconds = 0.0;
  int64_t input_bytes = 0;
  int64_t shuffle_bytes = 0;
  /// Modeled peak memory of the busiest task (map buffer or reduce
  /// group buffer) -- the quantity behind the paper's Figure 15.
  int64_t peak_task_bytes = 0;
};

template <typename K, typename V>
using MapFn = std::function<Status(const InputSplit&, Emitter<K, V>*)>;

template <typename K, typename V, typename R>
using ReduceFn =
    std::function<Status(const K&, std::vector<V>&&, std::vector<R>*)>;

/// Runs map over every split, hash-partitions the emitted pairs, groups
/// by key within each partition (keys processed in sorted order, like
/// Hadoop's sort-shuffle), and reduces. Real work executes on the host;
/// the returned time is the simulated cluster wall-clock:
///   job overhead + map-wave makespan + reduce-wave makespan.
template <typename K, typename V, typename R>
Result<JobResult<R>> RunMapReduce(const std::vector<InputSplit>& splits,
                                  const ClusterConfig& config,
                                  const JobOptions& options,
                                  const MapFn<K, V>& map_fn,
                                  const ReduceFn<K, V, R>& reduce_fn) {
  JobResult<R> result;
  const int num_reducers =
      options.num_reducers > 0 ? options.num_reducers
                               : std::max(1, config.total_slots());

  // ---- Map wave ----------------------------------------------------------
  std::vector<std::vector<std::pair<K, V>>> map_outputs(splits.size());
  std::vector<TaskWaveRunner::TaskFn> map_tasks;
  map_tasks.reserve(splits.size());
  std::mutex agg_mu;
  for (size_t i = 0; i < splits.size(); ++i) {
    map_tasks.push_back([&, i](TaskStats* stats) -> Status {
      Emitter<K, V> emitter;
      SM_RETURN_IF_ERROR(map_fn(splits[i], &emitter));
      stats->input_bytes = splits[i].length;
      stats->files_opened = splits[i].opens_file ? 1 : 0;
      stats->shuffle_bytes = emitter.bytes();  // Map-side spill + send.
      {
        std::lock_guard<std::mutex> lock(agg_mu);
        result.input_bytes += splits[i].length;
        result.shuffle_bytes += emitter.bytes();
        result.peak_task_bytes = std::max(
            result.peak_task_bytes, splits[i].length + emitter.bytes());
      }
      map_outputs[i] = std::move(emitter.pairs());
      return Status::OK();
    });
  }
  TaskWaveRunner map_runner(config, options.task_startup_seconds);
  double map_makespan = 0.0;
  {
    SM_TRACE_SPAN("mapreduce.map_wave");
    SM_ASSIGN_OR_RETURN(map_makespan, map_runner.Run(&map_tasks));
  }

  // ---- Shuffle: hash partition + group -----------------------------------
  std::vector<std::map<K, std::vector<V>>> partitions(
      static_cast<size_t>(num_reducers));
  std::vector<int64_t> partition_bytes(static_cast<size_t>(num_reducers), 0);
  std::hash<K> hasher;
  {
    SM_TRACE_SPAN("shuffle.exchange");
    for (auto& pairs : map_outputs) {
      for (auto& [key, value] : pairs) {
        const size_t p = hasher(key) % static_cast<size_t>(num_reducers);
        partition_bytes[p] += ApproxByteSize(key) + ApproxByteSize(value);
        partitions[p][key].push_back(std::move(value));
      }
      pairs.clear();
      pairs.shrink_to_fit();
    }
  }
  {
    static obs::Counter* shuffle_partitions =
        obs::MetricsRegistry::Global().GetCounter("shuffle.partitions");
    static obs::Counter* shuffle_bytes =
        obs::MetricsRegistry::Global().GetCounter("shuffle.bytes_moved");
    shuffle_partitions->Add(num_reducers);
    shuffle_bytes->Add(result.shuffle_bytes);
  }

  // ---- Reduce wave ---------------------------------------------------------
  std::vector<std::vector<R>> reduce_outputs(
      static_cast<size_t>(num_reducers));
  std::vector<TaskWaveRunner::TaskFn> reduce_tasks;
  reduce_tasks.reserve(static_cast<size_t>(num_reducers));
  for (int p = 0; p < num_reducers; ++p) {
    reduce_tasks.push_back([&, p](TaskStats* stats) -> Status {
      auto& groups = partitions[static_cast<size_t>(p)];
      for (auto& [key, values] : groups) {
        SM_RETURN_IF_ERROR(reduce_fn(
            key, std::move(values),
            &reduce_outputs[static_cast<size_t>(p)]));
      }
      stats->shuffle_bytes = partition_bytes[static_cast<size_t>(p)];
      {
        std::lock_guard<std::mutex> lock(agg_mu);
        result.peak_task_bytes =
            std::max(result.peak_task_bytes,
                     partition_bytes[static_cast<size_t>(p)]);
      }
      return Status::OK();
    });
  }
  TaskWaveRunner reduce_runner(config, options.task_startup_seconds);
  double reduce_makespan = 0.0;
  {
    SM_TRACE_SPAN("mapreduce.reduce_wave");
    SM_ASSIGN_OR_RETURN(reduce_makespan, reduce_runner.Run(&reduce_tasks));
  }

  for (auto& outputs : reduce_outputs) {
    for (auto& r : outputs) result.outputs.push_back(std::move(r));
  }
  result.simulated_seconds =
      options.job_overhead_seconds + map_makespan + reduce_makespan;
  return result;
}

/// Map-only job (the paper's map-only plans for data formats 2 and 3):
/// no shuffle, outputs are the emitted pairs themselves.
template <typename K, typename V>
Result<JobResult<std::pair<K, V>>> RunMapOnly(
    const std::vector<InputSplit>& splits, const ClusterConfig& config,
    const JobOptions& options, const MapFn<K, V>& map_fn) {
  JobResult<std::pair<K, V>> result;
  std::vector<std::vector<std::pair<K, V>>> map_outputs(splits.size());
  std::vector<TaskWaveRunner::TaskFn> map_tasks;
  map_tasks.reserve(splits.size());
  std::mutex agg_mu;
  for (size_t i = 0; i < splits.size(); ++i) {
    map_tasks.push_back([&, i](TaskStats* stats) -> Status {
      Emitter<K, V> emitter;
      SM_RETURN_IF_ERROR(map_fn(splits[i], &emitter));
      stats->input_bytes = splits[i].length;
      stats->files_opened = splits[i].opens_file ? 1 : 0;
      {
        std::lock_guard<std::mutex> lock(agg_mu);
        result.input_bytes += splits[i].length;
        result.peak_task_bytes =
            std::max(result.peak_task_bytes, splits[i].length);
      }
      map_outputs[i] = std::move(emitter.pairs());
      return Status::OK();
    });
  }
  TaskWaveRunner runner(config, options.task_startup_seconds);
  SM_ASSIGN_OR_RETURN(double makespan, runner.Run(&map_tasks));
  for (auto& pairs : map_outputs) {
    for (auto& kv : pairs) result.outputs.push_back(std::move(kv));
  }
  result.simulated_seconds = options.job_overhead_seconds + makespan;
  return result;
}

}  // namespace smartmeter::cluster::mapreduce

#endif  // SMARTMETER_CLUSTER_MAPREDUCE_H_
