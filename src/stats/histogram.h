#ifndef SMARTMETER_STATS_HISTOGRAM_H_
#define SMARTMETER_STATS_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace smartmeter::stats {

/// An equi-width histogram over [min, max] with a fixed bucket count.
/// This is the exact shape the benchmark's first task requires (Section
/// 3.1: ten equi-width buckets over each consumer's hourly consumption).
struct EquiWidthHistogram {
  double min = 0.0;
  double max = 0.0;
  std::vector<int64_t> counts;

  double BucketWidth() const {
    return counts.empty()
               ? 0.0
               : (max - min) / static_cast<double>(counts.size());
  }
  /// Inclusive lower edge of bucket b.
  double BucketLow(size_t b) const {
    return min + BucketWidth() * static_cast<double>(b);
  }
  int64_t TotalCount() const;
  std::string ToString() const;
};

/// Builds an equi-width histogram with `num_buckets` buckets spanning
/// [min(values), max(values)]. The maximum value lands in the last bucket.
/// A constant series yields all mass in bucket 0. Fails on empty input or
/// num_buckets < 1.
Result<EquiWidthHistogram> BuildEquiWidthHistogram(
    std::span<const double> values, int num_buckets);

/// Builds an equi-width histogram over a caller-fixed range; values outside
/// [min, max] are clamped into the edge buckets. Used by the cluster
/// engines, which must fix bucket edges before the data is partitioned.
Result<EquiWidthHistogram> BuildFixedRangeHistogram(
    std::span<const double> values, int num_buckets, double min, double max);

/// An equi-depth (equal-frequency) histogram: bucket edges are quantiles.
/// Not used by the benchmark tasks (the paper specifies equi-width) but
/// provided for the generator's diagnostics.
struct EquiDepthHistogram {
  std::vector<double> edges;  // num_buckets + 1 edges.
  std::vector<int64_t> counts;
};

Result<EquiDepthHistogram> BuildEquiDepthHistogram(
    std::span<const double> values, int num_buckets);

}  // namespace smartmeter::stats

#endif  // SMARTMETER_STATS_HISTOGRAM_H_
