#ifndef SMARTMETER_STATS_OLS_H_
#define SMARTMETER_STATS_OLS_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "stats/matrix.h"

namespace smartmeter::stats {

/// y = intercept + slope * x fitted by ordinary least squares.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1]; 1 for a perfect fit, 0 when
  /// the model explains nothing (or the data is degenerate).
  double r_squared = 0.0;
  size_t n = 0;

  double Predict(double x) const { return intercept + slope * x; }
};

/// Fits a simple least-squares line through (x[i], y[i]). For constant x
/// the slope is 0 and the intercept is mean(y) (degenerate but well
/// defined, which the 3-line algorithm relies on for narrow temperature
/// bands). Fails on empty or mismatched input.
Result<LinearFit> FitLine(std::span<const double> x,
                          std::span<const double> y);

/// Weighted variant: each point i contributes weight w[i] >= 0.
Result<LinearFit> FitLineWeighted(std::span<const double> x,
                                  std::span<const double> y,
                                  std::span<const double> w);

/// Multiple linear regression y = X beta (caller includes an intercept
/// column if desired). Returns the coefficient vector.
Result<std::vector<double>> FitMultiple(const Matrix& x,
                                        const std::vector<double>& y);

}  // namespace smartmeter::stats

#endif  // SMARTMETER_STATS_OLS_H_
