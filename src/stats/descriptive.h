#ifndef SMARTMETER_STATS_DESCRIPTIVE_H_
#define SMARTMETER_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <span>

namespace smartmeter::stats {

/// Sum of `values`; 0 for an empty span.
double Sum(std::span<const double> values);

/// Arithmetic mean; 0 for an empty span.
double Mean(std::span<const double> values);

/// Population variance (divides by n); 0 for fewer than 1 value.
double PopulationVariance(std::span<const double> values);

/// Sample variance (divides by n-1); 0 for fewer than 2 values.
double SampleVariance(std::span<const double> values);

/// sqrt(SampleVariance).
double SampleStddev(std::span<const double> values);

double Min(std::span<const double> values);
double Max(std::span<const double> values);

/// Sample covariance of two equal-length spans (divides by n-1).
double SampleCovariance(std::span<const double> x, std::span<const double> y);

/// Pearson correlation coefficient; 0 when either side has zero variance.
double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y);

/// Accumulates count/mean/M2 online (Welford). Mergeable, so the cluster
/// engines can combine per-partition moments without a second pass.
class RunningMoments {
 public:
  void Add(double value);
  void Merge(const RunningMoments& other);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1); 0 for fewer than 2 values.
  double sample_variance() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace smartmeter::stats

#endif  // SMARTMETER_STATS_DESCRIPTIVE_H_
