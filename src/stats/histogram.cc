#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "simd/simd.h"
#include "stats/quantile.h"

namespace smartmeter::stats {

int64_t EquiWidthHistogram::TotalCount() const {
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  return total;
}

std::string EquiWidthHistogram::ToString() const {
  std::string out = StringPrintf("hist[%.3f,%.3f]{", min, max);
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) out += ",";
    out += StringPrintf("%lld", static_cast<long long>(counts[i]));
  }
  out += "}";
  return out;
}

Result<EquiWidthHistogram> BuildEquiWidthHistogram(
    std::span<const double> values, int num_buckets) {
  if (values.empty()) {
    return Status::InvalidArgument("histogram of empty data");
  }
  // NaN-ignoring vector min/max; an all-NaN input yields {+inf, -inf},
  // which the fixed-range validation below rejects.
  double min = 0.0;
  double max = 0.0;
  simd::MinMax(values, &min, &max);
  return BuildFixedRangeHistogram(values, num_buckets, min, max);
}

Result<EquiWidthHistogram> BuildFixedRangeHistogram(
    std::span<const double> values, int num_buckets, double min, double max) {
  if (values.empty()) {
    return Status::InvalidArgument("histogram of empty data");
  }
  if (num_buckets < 1) {
    return Status::InvalidArgument("histogram needs at least one bucket");
  }
  if (!(min <= max) || std::isnan(min) || std::isnan(max)) {
    return Status::InvalidArgument("histogram range must satisfy min <= max");
  }
  EquiWidthHistogram hist;
  hist.min = min;
  hist.max = max;
  hist.counts.assign(static_cast<size_t>(num_buckets), 0);
  const double width = (max - min) / static_cast<double>(num_buckets);
  if (width > 0.0) {
    simd::HistogramBin(values, min, width, hist.counts);
  } else {
    // Degenerate range (min == max): everything lands in bucket 0.
    hist.counts[0] = static_cast<int64_t>(values.size());
  }
  return hist;
}

Result<EquiDepthHistogram> BuildEquiDepthHistogram(
    std::span<const double> values, int num_buckets) {
  if (values.empty()) {
    return Status::InvalidArgument("histogram of empty data");
  }
  if (num_buckets < 1) {
    return Status::InvalidArgument("histogram needs at least one bucket");
  }
  std::vector<double> probs;
  probs.reserve(static_cast<size_t>(num_buckets) + 1);
  for (int i = 0; i <= num_buckets; ++i) {
    probs.push_back(static_cast<double>(i) / num_buckets);
  }
  SM_ASSIGN_OR_RETURN(std::vector<double> edges, Quantiles(values, probs));
  EquiDepthHistogram hist;
  hist.edges = std::move(edges);
  hist.counts.assign(static_cast<size_t>(num_buckets), 0);
  for (double v : values) {
    // Upper-bound search over edges; last bucket is closed on the right.
    auto it = std::upper_bound(hist.edges.begin() + 1, hist.edges.end() - 1,
                               v);
    const size_t bucket =
        static_cast<size_t>(it - (hist.edges.begin() + 1));
    ++hist.counts[std::min(bucket, hist.counts.size() - 1)];
  }
  return hist;
}

}  // namespace smartmeter::stats
