#include "stats/sax.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace smartmeter::stats {

namespace {

// Inverse standard-normal CDF (Acklam's rational approximation); ample
// precision for breakpoint tables.
double InverseNormalCdf(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
          1.0);
}

}  // namespace

Result<std::vector<double>> SaxBreakpoints(int alphabet) {
  if (alphabet < 2 || alphabet > 16) {
    return Status::InvalidArgument("SAX alphabet must be in [2, 16]");
  }
  std::vector<double> breakpoints;
  breakpoints.reserve(static_cast<size_t>(alphabet) - 1);
  for (int i = 1; i < alphabet; ++i) {
    breakpoints.push_back(
        InverseNormalCdf(static_cast<double>(i) / alphabet));
  }
  return breakpoints;
}

Result<std::vector<double>> Paa(std::span<const double> series,
                                int segments) {
  if (series.empty()) {
    return Status::InvalidArgument("PAA of empty series");
  }
  if (segments < 1 || static_cast<size_t>(segments) > series.size()) {
    return Status::InvalidArgument("PAA segment count out of range");
  }
  std::vector<double> out;
  out.reserve(static_cast<size_t>(segments));
  const size_t n = series.size();
  for (int s = 0; s < segments; ++s) {
    const size_t begin = n * static_cast<size_t>(s) /
                         static_cast<size_t>(segments);
    const size_t end = n * (static_cast<size_t>(s) + 1) /
                       static_cast<size_t>(segments);
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i) sum += series[i];
    out.push_back(sum / static_cast<double>(end - begin));
  }
  return out;
}

std::vector<double> ZNormalize(std::span<const double> series) {
  std::vector<double> out(series.begin(), series.end());
  const double mean = Mean(series);
  const double stddev = std::sqrt(PopulationVariance(series));
  if (stddev <= 1e-12) {
    std::fill(out.begin(), out.end(), 0.0);
    return out;
  }
  for (double& v : out) v = (v - mean) / stddev;
  return out;
}

Result<SaxWord> ComputeSaxWord(std::span<const double> series, int segments,
                               int alphabet) {
  SM_ASSIGN_OR_RETURN(std::vector<double> breakpoints,
                      SaxBreakpoints(alphabet));
  const std::vector<double> normalized = ZNormalize(series);
  SM_ASSIGN_OR_RETURN(std::vector<double> paa, Paa(normalized, segments));
  SaxWord word;
  word.alphabet = alphabet;
  word.symbols.reserve(paa.size());
  for (double v : paa) {
    const auto it =
        std::upper_bound(breakpoints.begin(), breakpoints.end(), v);
    word.symbols.push_back(
        static_cast<uint8_t>(it - breakpoints.begin()));
  }
  return word;
}

Result<double> SaxMinDist(const SaxWord& a, const SaxWord& b,
                          size_t series_length) {
  if (a.alphabet != b.alphabet || a.symbols.size() != b.symbols.size()) {
    return Status::InvalidArgument("SAX words have different shapes");
  }
  if (a.symbols.empty() || series_length == 0) {
    return Status::InvalidArgument("empty SAX word");
  }
  SM_ASSIGN_OR_RETURN(std::vector<double> breakpoints,
                      SaxBreakpoints(a.alphabet));
  double acc = 0.0;
  for (size_t i = 0; i < a.symbols.size(); ++i) {
    const int sa = a.symbols[i];
    const int sb = b.symbols[i];
    if (std::abs(sa - sb) <= 1) continue;  // Adjacent cells: distance 0.
    const int hi = std::max(sa, sb);
    const int lo = std::min(sa, sb);
    const double cell = breakpoints[static_cast<size_t>(hi) - 1] -
                        breakpoints[static_cast<size_t>(lo)];
    acc += cell * cell;
  }
  const double w = static_cast<double>(a.symbols.size());
  return std::sqrt(static_cast<double>(series_length) / w) *
         std::sqrt(acc);
}

}  // namespace smartmeter::stats
