#include "stats/distance.h"

#include <cmath>

#include "common/logging.h"

namespace smartmeter::stats {

double Dot(std::span<const double> x, std::span<const double> y) {
  SM_CHECK(x.size() == y.size()) << "Dot: size mismatch";
  // Four accumulators let the compiler vectorize without changing the
  // rounding behaviour much; this is the hot loop of similarity search.
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t i = 0;
  const size_t n4 = x.size() & ~size_t{3};
  for (; i < n4; i += 4) {
    a0 += x[i] * y[i];
    a1 += x[i + 1] * y[i + 1];
    a2 += x[i + 2] * y[i + 2];
    a3 += x[i + 3] * y[i + 3];
  }
  for (; i < x.size(); ++i) a0 += x[i] * y[i];
  return (a0 + a1) + (a2 + a3);
}

double Norm(std::span<const double> x) { return std::sqrt(Dot(x, x)); }

double CosineSimilarity(std::span<const double> x,
                        std::span<const double> y) {
  return CosineSimilarityPrenormed(x, Norm(x), y, Norm(y));
}

double CosineSimilarityPrenormed(std::span<const double> x, double norm_x,
                                 std::span<const double> y, double norm_y) {
  if (norm_x == 0.0 || norm_y == 0.0) return 0.0;
  return Dot(x, y) / (norm_x * norm_y);
}

double SquaredEuclidean(std::span<const double> x,
                        std::span<const double> y) {
  SM_CHECK(x.size() == y.size()) << "SquaredEuclidean: size mismatch";
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace smartmeter::stats
