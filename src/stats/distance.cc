#include "stats/distance.h"

#include <cmath>

#include "common/logging.h"
#include "simd/simd.h"

namespace smartmeter::stats {

double Dot(std::span<const double> x, std::span<const double> y) {
  SM_CHECK(x.size() == y.size()) << "Dot: size mismatch";
  // The SIMD layer keeps the historical 4-lane striped accumulation
  // order, so the vector path is bit-identical to what this function
  // computed before; this is the hot loop of similarity search.
  return simd::Dot(x, y);
}

double Norm(std::span<const double> x) { return std::sqrt(Dot(x, x)); }

double CosineSimilarity(std::span<const double> x,
                        std::span<const double> y) {
  return CosineSimilarityPrenormed(x, Norm(x), y, Norm(y));
}

double CosineSimilarityPrenormed(std::span<const double> x, double norm_x,
                                 std::span<const double> y, double norm_y) {
  if (norm_x == 0.0 || norm_y == 0.0) return 0.0;
  return Dot(x, y) / (norm_x * norm_y);
}

double SquaredEuclidean(std::span<const double> x,
                        std::span<const double> y) {
  SM_CHECK(x.size() == y.size()) << "SquaredEuclidean: size mismatch";
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace smartmeter::stats
