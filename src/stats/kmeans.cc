#include "stats/kmeans.h"

#include <cmath>
#include <limits>

#include "stats/distance.h"

namespace smartmeter::stats {

namespace {

// k-means++ seeding: first centroid uniform, then proportional to squared
// distance from the nearest chosen centroid.
std::vector<std::vector<double>> SeedPlusPlus(
    const std::vector<std::vector<double>>& points, int k, Rng* rng) {
  const size_t n = points.size();
  std::vector<std::vector<double>> centroids;
  centroids.reserve(static_cast<size_t>(k));
  centroids.push_back(points[rng->UniformInt(n)]);

  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  while (centroids.size() < static_cast<size_t>(k)) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = SquaredEuclidean(points[i], centroids.back());
      if (d < d2[i]) d2[i] = d;
      total += d2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; duplicate one.
      centroids.push_back(points[rng->UniformInt(n)]);
      continue;
    }
    double target = rng->NextDouble() * total;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      target -= d2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            int k, const KMeansOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("KMeans: no points");
  }
  if (k < 1) {
    return Status::InvalidArgument("KMeans: k must be >= 1");
  }
  const size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("KMeans: inconsistent dimensions");
    }
  }
  const size_t n = points.size();
  const int effective_k = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(k), n));

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = SeedPlusPlus(points, effective_k, &rng);
  result.assignment.assign(n, 0);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (int c = 0; c < effective_k; ++c) {
        const double d = SquaredEuclidean(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (result.assignment[i] != best_c) {
        result.assignment[i] = best_c;
        changed = true;
      }
      inertia += best;
    }
    result.inertia = inertia;

    // Update step.
    std::vector<std::vector<double>> sums(
        static_cast<size_t>(effective_k), std::vector<double>(dim, 0.0));
    std::vector<int> counts(static_cast<size_t>(effective_k), 0);
    for (size_t i = 0; i < n; ++i) {
      const int c = result.assignment[i];
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (int c = 0; c < effective_k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point to keep k clusters.
        result.centroids[c] = points[rng.UniformInt(n)];
        continue;
      }
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = sums[c][d] / counts[c];
      }
    }

    const bool inertia_stable =
        prev_inertia < std::numeric_limits<double>::infinity() &&
        std::abs(prev_inertia - inertia) <=
            options.tolerance * std::max(prev_inertia, 1e-12);
    if (!changed || inertia_stable) {
      result.converged = true;
      break;
    }
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace smartmeter::stats
