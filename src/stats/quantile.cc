#include "stats/quantile.h"

#include <algorithm>
#include <cmath>

namespace smartmeter::stats {

namespace {

// Quantile of an already-sorted vector, type-7 interpolation.
double SortedQuantile(const std::vector<double>& sorted, double p) {
  const size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double pos = p * static_cast<double>(n - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

Result<double> Quantile(std::span<const double> values, double p) {
  std::vector<double> copy(values.begin(), values.end());
  return QuantileInPlace(&copy, p);
}

Result<double> QuantileInPlace(std::vector<double>* values, double p) {
  if (values->empty()) {
    return Status::InvalidArgument("quantile of empty data");
  }
  if (p < 0.0 || p > 1.0 || std::isnan(p)) {
    return Status::InvalidArgument("quantile probability must be in [0,1]");
  }
  std::vector<double>& v = *values;
  const size_t n = v.size();
  if (n == 1) return v[0];
  const double pos = p * static_cast<double>(n - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  // Two nth_element selections instead of a full sort: O(n) expected.
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(lo), v.end());
  const double lo_val = v[lo];
  if (frac == 0.0 || lo + 1 >= n) return lo_val;
  // The element after position lo is the minimum of the upper partition.
  const double hi_val =
      *std::min_element(v.begin() + static_cast<ptrdiff_t>(lo) + 1, v.end());
  return lo_val + frac * (hi_val - lo_val);
}

Result<std::vector<double>> Quantiles(std::span<const double> values,
                                      std::span<const double> probabilities) {
  if (values.empty()) {
    return Status::InvalidArgument("quantile of empty data");
  }
  for (double p : probabilities) {
    if (p < 0.0 || p > 1.0 || std::isnan(p)) {
      return Status::InvalidArgument("quantile probability must be in [0,1]");
    }
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(probabilities.size());
  for (double p : probabilities) out.push_back(SortedQuantile(sorted, p));
  return out;
}

}  // namespace smartmeter::stats
