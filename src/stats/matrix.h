#ifndef SMARTMETER_STATS_MATRIX_H_
#define SMARTMETER_STATS_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace smartmeter::stats {

/// Small dense row-major matrix of doubles. Sized for regression design
/// matrices (thousands of rows, < 10 columns); not a general BLAS.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  const std::vector<double>& data() const { return data_; }

  /// Returns this^T * this, the (cols x cols) Gram matrix, computed in a
  /// single pass. This is the hot step of normal-equation OLS.
  Matrix Gram() const;

  /// Returns this^T * v for a vector with rows() entries.
  std::vector<double> TransposeTimes(const std::vector<double>& v) const;

  Matrix Multiply(const Matrix& other) const;
  Matrix Transposed() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves the symmetric positive-definite system A x = b via Cholesky
/// factorization. Fails with InvalidArgument on shape mismatch and with
/// Internal if A is not (numerically) positive definite.
Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b);

/// Least-squares solve of X beta = y via ridge-stabilized normal equations:
/// (X^T X + ridge I) beta = X^T y. `ridge` defaults to 0 and is raised
/// automatically (up to a small epsilon scaled by the Gram diagonal) when
/// the unregularized system is singular -- collinear regressors are common
/// in real meter data (e.g. a consumer with constant consumption).
Result<std::vector<double>> LeastSquares(const Matrix& x,
                                         const std::vector<double>& y,
                                         double ridge = 0.0);

/// The back half of LeastSquares, for callers that maintain the normal
/// equations themselves (incremental kernels accumulating rank-one
/// updates): solves (gram + ridge I) beta = xty with the same
/// trace-scaled ridge escalation. LeastSquares delegates here, so a
/// caller whose `gram` / `xty` match X^T X / X^T y bit-for-bit gets a
/// bit-identical solution.
Result<std::vector<double>> SolveNormalEquations(const Matrix& gram,
                                                 const std::vector<double>& xty,
                                                 double ridge = 0.0);

}  // namespace smartmeter::stats

#endif  // SMARTMETER_STATS_MATRIX_H_
