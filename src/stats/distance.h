#ifndef SMARTMETER_STATS_DISTANCE_H_
#define SMARTMETER_STATS_DISTANCE_H_

#include <span>

namespace smartmeter::stats {

/// Dot product of two equal-length spans.
double Dot(std::span<const double> x, std::span<const double> y);

/// Euclidean (L2) norm.
double Norm(std::span<const double> x);

/// Cosine similarity X.Y / (||X|| * ||Y||), the similarity metric of the
/// benchmark's fourth task (Section 3.4). Returns 0 when either vector has
/// zero norm.
double CosineSimilarity(std::span<const double> x, std::span<const double> y);

/// Cosine similarity when the norms are already known (the similarity
/// engines precompute norms once per series to cut the quadratic pass to a
/// dot product per pair).
double CosineSimilarityPrenormed(std::span<const double> x, double norm_x,
                                 std::span<const double> y, double norm_y);

/// Squared Euclidean distance (used by k-means).
double SquaredEuclidean(std::span<const double> x, std::span<const double> y);

}  // namespace smartmeter::stats

#endif  // SMARTMETER_STATS_DISTANCE_H_
