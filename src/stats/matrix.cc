#include "stats/matrix.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace smartmeter::stats {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (size_t i = 0; i < cols_; ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      double* out = &g.data_[i * cols_];
      for (size_t j = i; j < cols_; ++j) {
        out[j] += ri * row[j];
      }
    }
  }
  // Mirror the upper triangle.
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = 0; j < i; ++j) {
      g.At(i, j) = g.At(j, i);
    }
  }
  return g;
}

std::vector<double> Matrix::TransposeTimes(const std::vector<double>& v) const {
  SM_CHECK(v.size() == rows_) << "TransposeTimes: vector size mismatch";
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    const double vr = v[r];
    for (size_t c = 0; c < cols_; ++c) {
      out[c] += row[c] * vr;
    }
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  SM_CHECK(cols_ == other.rows_) << "Multiply: inner dimensions must match";
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = At(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out.At(i, j) += aik * other.At(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out.At(j, i) = At(i, j);
    }
  }
  return out;
}

Result<std::vector<double>> CholeskySolve(const Matrix& a,
                                          const std::vector<double>& b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("CholeskySolve: shape mismatch");
  }
  // Factor A = L L^T in place of a copy.
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      for (size_t k = 0; k < j; ++k) {
        sum -= l.At(i, k) * l.At(j, k);
      }
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::Internal(StringPrintf(
              "CholeskySolve: matrix not positive definite (pivot %zu = %g)",
              i, sum));
        }
        l.At(i, i) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  // Forward solve L z = b.
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l.At(i, k) * z[k];
    z[i] = sum / l.At(i, i);
  }
  // Back solve L^T x = z.
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = z[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l.At(k, i) * x[k];
    x[i] = sum / l.At(i, i);
  }
  return x;
}

Result<std::vector<double>> LeastSquares(const Matrix& x,
                                         const std::vector<double>& y,
                                         double ridge) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("LeastSquares: row count mismatch");
  }
  if (x.rows() < x.cols()) {
    return Status::InvalidArgument(
        "LeastSquares: fewer observations than coefficients");
  }
  return SolveNormalEquations(x.Gram(), x.TransposeTimes(y), ridge);
}

Result<std::vector<double>> SolveNormalEquations(const Matrix& gram,
                                                 const std::vector<double>& xty,
                                                 double ridge) {
  const size_t p = gram.cols();
  if (gram.rows() != p || xty.size() != p) {
    return Status::InvalidArgument("SolveNormalEquations: shape mismatch");
  }

  double trace = 0.0;
  for (size_t i = 0; i < p; ++i) trace += gram.At(i, i);
  const double scale = trace > 0.0 ? trace / static_cast<double>(p) : 1.0;

  double lambda = ridge;
  for (int attempt = 0; attempt < 4; ++attempt) {
    Matrix regularized = gram;
    for (size_t i = 0; i < p; ++i) regularized.At(i, i) += lambda;
    Result<std::vector<double>> solved = CholeskySolve(regularized, xty);
    if (solved.ok()) return solved;
    // Singular Gram matrix: escalate the ridge and retry.
    lambda = (lambda == 0.0) ? 1e-10 * scale : lambda * 1e3;
  }
  return Status::Internal("LeastSquares: system singular even with ridge");
}

}  // namespace smartmeter::stats
