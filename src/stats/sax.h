#ifndef SMARTMETER_STATS_SAX_H_
#define SMARTMETER_STATS_SAX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"

namespace smartmeter::stats {

/// Piecewise Aggregate Approximation: mean of each of `segments` equal
/// chunks of the series (trailing remainder folded into the last chunk).
/// The standard dimensionality reduction under SAX.
Result<std::vector<double>> Paa(std::span<const double> series,
                                int segments);

/// Z-normalizes a series to zero mean / unit variance. A constant series
/// maps to all zeros.
std::vector<double> ZNormalize(std::span<const double> series);

/// Symbolic Aggregate approXimation of a time series (Lin et al.; the
/// smart-meter application is the paper's reference [27]): z-normalize,
/// PAA, then quantize each segment with N(0,1) breakpoints into an
/// alphabet of `alphabet` symbols (2..16).
struct SaxWord {
  std::vector<uint8_t> symbols;
  int alphabet = 0;
};

Result<SaxWord> ComputeSaxWord(std::span<const double> series, int segments,
                               int alphabet);

/// MINDIST between two SAX words of the same shape: a lower bound of the
/// Euclidean distance between the two z-normalized series (Lin et al.
/// 2003). `series_length` is the original series length n.
Result<double> SaxMinDist(const SaxWord& a, const SaxWord& b,
                          size_t series_length);

/// N(0,1) breakpoints dividing the real line into `alphabet` equiprobable
/// regions; size alphabet - 1, strictly increasing.
Result<std::vector<double>> SaxBreakpoints(int alphabet);

}  // namespace smartmeter::stats

#endif  // SMARTMETER_STATS_SAX_H_
