#ifndef SMARTMETER_STATS_QUANTILE_H_
#define SMARTMETER_STATS_QUANTILE_H_

#include <span>
#include <vector>

#include "common/result.h"

namespace smartmeter::stats {

/// Exact quantile of `values` at probability `p` in [0, 1], using the
/// linear-interpolation definition (type 7, the R/NumPy default: position
/// p * (n - 1) between order statistics). Copies and partially sorts the
/// input. Fails on empty input or p outside [0, 1].
Result<double> Quantile(std::span<const double> values, double p);

/// Quantile over data the caller allows to be reordered (no copy).
Result<double> QuantileInPlace(std::vector<double>* values, double p);

/// Several quantiles in one sort: cheaper than repeated Quantile calls
/// when more than ~2 probabilities are needed. Probabilities need not be
/// ordered; results align with `probabilities`.
Result<std::vector<double>> Quantiles(std::span<const double> values,
                                      std::span<const double> probabilities);

}  // namespace smartmeter::stats

#endif  // SMARTMETER_STATS_QUANTILE_H_
