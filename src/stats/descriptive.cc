#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace smartmeter::stats {

double Sum(std::span<const double> values) {
  // Kahan summation: the benchmark sums up to millions of readings and the
  // engines must agree bit-for-bit closely enough for cross-checks.
  double sum = 0.0;
  double compensation = 0.0;
  for (double v : values) {
    const double y = v - compensation;
    const double t = sum + y;
    compensation = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return Sum(values) / static_cast<double>(values.size());
}

double PopulationVariance(std::span<const double> values) {
  if (values.empty()) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) {
    const double d = v - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(values.size());
}

double SampleVariance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) {
    const double d = v - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(values.size() - 1);
}

double SampleStddev(std::span<const double> values) {
  return std::sqrt(SampleVariance(values));
}

double Min(std::span<const double> values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(values.begin(), values.end());
}

double SampleCovariance(std::span<const double> x,
                        std::span<const double> y) {
  const size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  const double mx = Mean(x.subspan(0, n));
  const double my = Mean(y.subspan(0, n));
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += (x[i] - mx) * (y[i] - my);
  }
  return acc / static_cast<double>(n - 1);
}

double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y) {
  const size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  const double sx = SampleStddev(x.subspan(0, n));
  const double sy = SampleStddev(y.subspan(0, n));
  if (sx == 0.0 || sy == 0.0) return 0.0;
  return SampleCovariance(x, y) / (sx * sy);
}

void RunningMoments::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningMoments::Merge(const RunningMoments& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double total = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
}

double RunningMoments::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

}  // namespace smartmeter::stats
