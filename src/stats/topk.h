#ifndef SMARTMETER_STATS_TOPK_H_
#define SMARTMETER_STATS_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace smartmeter::stats {

/// Keeps the k items with the largest scores seen so far, with
/// deterministic tie-breaking on the id (smaller id wins). Used by the
/// similarity task to track each consumer's top-10 matches.
template <typename Id>
class TopK {
 public:
  struct Entry {
    double score;
    Id id;
  };

  explicit TopK(size_t k) : k_(k) {
    // The heap never outgrows k, so one up-front reservation removes
    // every later reallocation; the cap keeps an absurd k from
    // allocating gigabytes before a single Offer.
    heap_.reserve(std::min(k_, size_t{4096}));
  }

  /// Offers a candidate. O(log k) amortized via a min-heap on score.
  void Offer(double score, Id id) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back({score, id});
      std::push_heap(heap_.begin(), heap_.end(), MinHeapLess);
      return;
    }
    const Entry& worst = heap_.front();
    if (score > worst.score ||
        (score == worst.score && id < worst.id)) {
      std::pop_heap(heap_.begin(), heap_.end(), MinHeapLess);
      heap_.back() = {score, id};
      std::push_heap(heap_.begin(), heap_.end(), MinHeapLess);
    }
  }

  /// Merges another tracker into this one (cluster reduce step).
  void Merge(const TopK& other) {
    for (const Entry& e : other.heap_) Offer(e.score, e.id);
  }

  /// Entries sorted best-first.
  std::vector<Entry> Sorted() const {
    std::vector<Entry> out = heap_;
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.id < b.id;
    });
    return out;
  }

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return k_; }

 private:
  // Min-heap on (score, then reversed id) so front() is the entry to evict.
  static bool MinHeapLess(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  }

  size_t k_;
  std::vector<Entry> heap_;
};

}  // namespace smartmeter::stats

#endif  // SMARTMETER_STATS_TOPK_H_
