#include "stats/ols.h"

#include <cmath>

namespace smartmeter::stats {

Result<LinearFit> FitLine(std::span<const double> x,
                          std::span<const double> y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("FitLine: x and y sizes differ");
  }
  if (x.empty()) {
    return Status::InvalidArgument("FitLine: empty input");
  }
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double var_x = sxx - sx * sx / n;
  const double cov_xy = sxy - sx * sy / n;
  const double var_y = syy - sy * sy / n;

  LinearFit fit;
  fit.n = x.size();
  if (var_x <= 0.0) {
    // Degenerate: vertical stack of points. Flat line through mean(y).
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = cov_xy / var_x;
  fit.intercept = (sy - fit.slope * sx) / n;
  if (var_y <= 0.0) {
    fit.r_squared = 1.0;  // y constant and reproduced exactly.
  } else {
    fit.r_squared = (cov_xy * cov_xy) / (var_x * var_y);
  }
  return fit;
}

Result<LinearFit> FitLineWeighted(std::span<const double> x,
                                  std::span<const double> y,
                                  std::span<const double> w) {
  if (x.size() != y.size() || x.size() != w.size()) {
    return Status::InvalidArgument("FitLineWeighted: size mismatch");
  }
  if (x.empty()) {
    return Status::InvalidArgument("FitLineWeighted: empty input");
  }
  double sw = 0.0, sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (w[i] < 0.0) {
      return Status::InvalidArgument("FitLineWeighted: negative weight");
    }
    sw += w[i];
    sx += w[i] * x[i];
    sy += w[i] * y[i];
    sxx += w[i] * x[i] * x[i];
    sxy += w[i] * x[i] * y[i];
  }
  if (sw <= 0.0) {
    return Status::InvalidArgument("FitLineWeighted: zero total weight");
  }
  const double var_x = sxx - sx * sx / sw;
  const double cov_xy = sxy - sx * sy / sw;
  LinearFit fit;
  fit.n = x.size();
  if (var_x <= 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / sw;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = cov_xy / var_x;
  fit.intercept = (sy - fit.slope * sx) / sw;
  // r^2 for the weighted case: 1 - weighted SSE / weighted SST.
  double sse = 0.0, sst = 0.0;
  const double mean_y = sy / sw;
  for (size_t i = 0; i < x.size(); ++i) {
    const double resid = y[i] - fit.Predict(x[i]);
    const double dev = y[i] - mean_y;
    sse += w[i] * resid * resid;
    sst += w[i] * dev * dev;
  }
  fit.r_squared = sst > 0.0 ? std::max(0.0, 1.0 - sse / sst) : 1.0;
  return fit;
}

Result<std::vector<double>> FitMultiple(const Matrix& x,
                                        const std::vector<double>& y) {
  return LeastSquares(x, y);
}

}  // namespace smartmeter::stats
