#ifndef SMARTMETER_STATS_KMEANS_H_
#define SMARTMETER_STATS_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace smartmeter::stats {

/// Result of Lloyd's algorithm on a set of equal-length vectors.
struct KMeansResult {
  /// k centroids, each with the input dimensionality.
  std::vector<std::vector<double>> centroids;
  /// assignment[i] = centroid index of point i.
  std::vector<int> assignment;
  /// Sum of squared distances of points to their centroids.
  double inertia = 0.0;
  int iterations = 0;
  bool converged = false;
};

struct KMeansOptions {
  int max_iterations = 100;
  /// Stop when no assignment changes or inertia improves by less than this
  /// relative amount.
  double tolerance = 1e-6;
  uint64_t seed = 42;
};

/// k-means with k-means++ seeding, used by the data generator to cluster
/// daily activity profiles (Section 4 / Figure 3 of the paper). Fails when
/// points is empty, dimensions are inconsistent, or k < 1. If k exceeds the
/// number of distinct points, the surplus clusters come back empty-safe
/// (centroids duplicate existing points).
Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            int k, const KMeansOptions& options = {});

}  // namespace smartmeter::stats

#endif  // SMARTMETER_STATS_KMEANS_H_
