#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace smartmeter {

namespace {

// splitmix64: expands a single seed into well-distributed generator state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (uint64_t& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::UniformInt(uint64_t n) {
  SM_CHECK(n > 0) << "UniformInt requires a positive bound";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform; u1 must be strictly positive for the log.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace smartmeter
