#ifndef SMARTMETER_COMMON_OVERLOAD_H_
#define SMARTMETER_COMMON_OVERLOAD_H_

namespace smartmeter {

/// Aggregates lambdas into one overload set, the idiomatic visitor for
/// std::visit over the task-API variants:
///
///   std::visit(Overloaded{
///       [](const core::HistogramOptions& o) { ... },
///       [](const core::ThreeLineOptions& o) { ... },
///   }, options.variant());
template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

}  // namespace smartmeter

#endif  // SMARTMETER_COMMON_OVERLOAD_H_
