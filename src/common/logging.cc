#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace smartmeter {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Serializes whole lines so concurrent workers do not interleave output.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

CheckFailure::CheckFailure(const char* file, int line, const char* expr) {
  stream_ << "[FATAL " << file << ":" << line << "] check failed: " << expr
          << " ";
}

CheckFailure::~CheckFailure() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace smartmeter
