#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smartmeter {

namespace {

obs::Counter* TasksSubmittedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("threadpool.tasks_submitted");
  return counter;
}

obs::Counter* TasksCompletedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("threadpool.tasks_completed");
  return counter;
}

obs::Counter* InlineChunksCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("threadpool.inline_chunks");
  return counter;
}

obs::Gauge* QueueDepthPeakGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("threadpool.queue_depth_peak");
  return gauge;
}

obs::LatencyHistogram* TaskLatencyHistogram() {
  static obs::LatencyHistogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("threadpool.task_seconds");
  return histogram;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  SM_CHECK(num_threads >= 1) << "thread pool needs at least one worker";
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  TasksSubmittedCounter()->Increment();
  QueueDepthPeakGauge()->UpdateMax(static_cast<int64_t>(depth));
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return;
  const size_t threads = static_cast<size_t>(num_threads());
  if (threads == 1 || count == 1) {
    InlineChunksCounter()->Increment();
    body(0, count);
    return;
  }
  const size_t chunks = std::min(count, threads);
  const size_t base = count / chunks;
  const size_t extra = count % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t len = base + (c < extra ? 1 : 0);
    const size_t end = begin + len;
    Submit([&body, begin, end] { body(begin, end); });
    begin = end;
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    const int64_t begin_ns = obs::TraceNowNanos();
    task();
    TaskLatencyHistogram()->Record(
        static_cast<double>(obs::TraceNowNanos() - begin_ns) * 1e-9);
    TasksCompletedCounter()->Increment();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace smartmeter
