#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smartmeter {

namespace {

obs::Counter* TasksSubmittedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("threadpool.tasks_submitted");
  return counter;
}

obs::Counter* TasksCompletedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("threadpool.tasks_completed");
  return counter;
}

obs::Counter* TasksStolenCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("threadpool.tasks_stolen");
  return counter;
}

obs::Counter* InlineChunksCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("threadpool.inline_chunks");
  return counter;
}

obs::Counter* MorselsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "threadpool.parallel_for_morsels");
  return counter;
}

obs::Gauge* QueueDepthPeakGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("threadpool.queue_depth_peak");
  return gauge;
}

obs::LatencyHistogram* TaskLatencyHistogram() {
  static obs::LatencyHistogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("threadpool.task_seconds");
  return histogram;
}

/// Which pool (and worker slot) the current thread belongs to, so
/// Submit-from-worker lands in the local deque and Wait-from-worker
/// helps instead of blocking.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker = 0;
/// Tasks currently executing on this thread's call stack (inline helping
/// nests them). Wait-from-worker cannot wait for pending_ to reach zero:
/// the caller's own task is still counted there until it returns.
thread_local size_t tls_running = 0;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  SM_CHECK(num_threads >= 1) << "thread pool needs at least one worker";
  queues_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this,
                          static_cast<size_t>(i));
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  size_t depth;
  if (tls_pool == this) {
    WorkerQueue& own = *queues_[tls_worker];
    std::lock_guard<std::mutex> lock(own.mu);
    own.tasks.push_back(std::move(task));
    depth = own.tasks.size();
  } else {
    std::lock_guard<std::mutex> lock(injector_.mu);
    injector_.tasks.push_back(std::move(task));
    depth = injector_.tasks.size();
  }
  TasksSubmittedCounter()->Increment();
  QueueDepthPeakGauge()->UpdateMax(static_cast<int64_t>(depth));
  SignalWork();
}

void ThreadPool::SignalWork() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++epoch_;
  }
  work_available_.notify_one();
}

bool ThreadPool::PopTask(size_t self, std::function<void()>* task) {
  // 1. Own deque, LIFO: the task most recently spawned here is hottest.
  if (self != kExternal) {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // 2. Injector, FIFO: external submissions in arrival order.
  {
    std::lock_guard<std::mutex> lock(injector_.mu);
    if (!injector_.tasks.empty()) {
      *task = std::move(injector_.tasks.front());
      injector_.tasks.pop_front();
      return true;
    }
  }
  // 3. Steal FIFO from a victim, probing from a rotating start so load
  // spreads over victims.
  const size_t n = queues_.size();
  const size_t start = steal_seed_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    const size_t victim = (start + i) % n;
    if (victim == self) continue;
    WorkerQueue& q = *queues_[victim];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      *task = std::move(q.tasks.front());
      q.tasks.pop_front();
      TasksStolenCounter()->Increment();
      return true;
    }
  }
  return false;
}

bool ThreadPool::TryRunOneTask(size_t self) {
  std::function<void()> task;
  if (!PopTask(self, &task)) return false;
  const int64_t begin_ns = obs::TraceNowNanos();
  ++tls_running;
  task();
  --tls_running;
  TaskLatencyHistogram()->Record(
      static_cast<double>(obs::TraceNowNanos() - begin_ns) * 1e-9);
  TasksCompletedCounter()->Increment();
  FinishTask();
  return true;
}

void ThreadPool::FinishTask() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Acquire the waiter mutex before notifying so a Wait() that just
    // checked pending_ != 0 is already parked and cannot miss the wake.
    std::lock_guard<std::mutex> lock(done_mu_);
    all_done_.notify_all();
  }
}

void ThreadPool::Wait() {
  if (tls_pool == this) {
    // Called from inside a worker: run queued tasks instead of blocking,
    // so a task that Submits more work can Wait for it without taking a
    // pool thread out of circulation. Quiescent means everything except
    // the tasks on this thread's own call stack has finished.
    const auto self_running = static_cast<int64_t>(tls_running);
    while (pending_.load(std::memory_order_acquire) > self_running) {
      if (!TryRunOneTask(tls_worker)) std::this_thread::yield();
    }
    return;
  }
  std::unique_lock<std::mutex> lock(done_mu_);
  all_done_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t, size_t)>&
                                 body) {
  if (count == 0) return;  // Nothing to do; enqueue no work.
  const size_t threads = static_cast<size_t>(num_threads());
  if (threads == 1 || count == 1) {
    InlineChunksCounter()->Increment();
    body(0, count);
    return;
  }

  // Shared guided-scheduling state for this loop only. Completion is
  // tracked per loop (not via pool quiescence) so concurrent
  // ParallelFor calls and unrelated Submitted tasks do not serialize
  // behind each other.
  struct LoopState {
    std::atomic<size_t> next{0};
    std::atomic<int64_t> outstanding{0};
    std::mutex mu;
    std::condition_variable done;
  };
  auto state = std::make_shared<LoopState>();
  const size_t loop_workers = std::min(threads, count);
  state->outstanding.store(static_cast<int64_t>(loop_workers),
                           std::memory_order_relaxed);

  auto run_morsels = [state, count, loop_workers, &body] {
    size_t begin = state->next.load(std::memory_order_relaxed);
    while (begin < count) {
      // Guided chunking: hand out 1/(4 * workers) of what remains, so
      // early chunks are large (low scheduling overhead) and the tail
      // splits fine (stragglers rebalance).
      const size_t chunk =
          std::max<size_t>(1, (count - begin) / (loop_workers * 4));
      if (!state->next.compare_exchange_weak(begin, begin + chunk,
                                             std::memory_order_relaxed)) {
        continue;  // begin reloaded by compare_exchange.
      }
      body(begin, std::min(begin + chunk, count));
      MorselsCounter()->Increment();
      begin = state->next.load(std::memory_order_relaxed);
    }
    if (state->outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->done.notify_all();
    }
  };
  for (size_t i = 0; i < loop_workers; ++i) Submit(run_morsels);

  if (tls_pool == this) {
    // Nested ParallelFor from a worker thread: help run tasks until this
    // loop's morsels are all done.
    while (state->outstanding.load(std::memory_order_acquire) != 0) {
      if (!TryRunOneTask(tls_worker)) std::this_thread::yield();
    }
    return;
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&state] {
    return state->outstanding.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_pool = this;
  tls_worker = self;
  for (;;) {
    uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(mu_);
      seen = epoch_;
    }
    if (TryRunOneTask(self)) continue;
    std::unique_lock<std::mutex> lock(mu_);
    if (shutting_down_) break;
    work_available_.wait(
        lock, [this, seen] { return shutting_down_ || epoch_ != seen; });
    if (shutting_down_) break;
  }
  // Shutdown: drain whatever is still queued (the pre-steal pool ran
  // every submitted task before joining; keep that guarantee).
  while (TryRunOneTask(self)) {
  }
  tls_pool = nullptr;
}

}  // namespace smartmeter
