#ifndef SMARTMETER_COMMON_THREAD_POOL_H_
#define SMARTMETER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace smartmeter {

/// Work-stealing worker pool. Each worker owns a deque it pushes and
/// pops LIFO (hot caches for task trees spawned via Submit-from-worker);
/// external submissions land in a shared FIFO injector; idle workers
/// steal FIFO from the injector first and then from other workers'
/// deques, so one long per-worker backlog is drained by the whole pool.
///
/// The API is source-compatible with the original FIFO pool: used by the
/// engines for multi-threaded task execution, by the simulated cluster
/// to run per-node work, and by the serving layer for concurrent query
/// dispatch.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Called from inside a
  /// worker of this pool, the task goes to that worker's own deque (and
  /// is stealable by the others).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing. Called
  /// from inside a worker of this pool, it helps execute queued tasks
  /// instead of blocking, so a task that Submits more work can Wait for
  /// it without deadlocking the pool.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Morsel-driven parallel loop over [0, count): workers pull
  /// dynamically sized chunks off a shared cursor (guided scheduling —
  /// chunks shrink as the range drains) so uneven per-item cost
  /// rebalances without oversubmitting tiny tasks. Blocks until the
  /// whole range has run; count == 0 enqueues nothing. When the pool
  /// has one thread (or count is tiny) the body runs inline.
  void ParallelFor(size_t count,
                   const std::function<void(size_t, size_t)>& body);

 private:
  /// One worker's stealable deque. A mutex per deque keeps the pool
  /// TSan-clean; at morsel granularity the locks are uncontended.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  static constexpr size_t kExternal = static_cast<size_t>(-1);

  void WorkerLoop(size_t self);
  /// Pops one task (own deque, injector, then steal) and runs it.
  bool TryRunOneTask(size_t self);
  bool PopTask(size_t self, std::function<void()>* task);
  /// Marks one task done and wakes Wait()ers at quiescence.
  void FinishTask();
  /// Bumps the work epoch and wakes sleeping workers.
  void SignalWork();

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  WorkerQueue injector_;

  /// Sleep/wake state: epoch increments under mu_ on every submission,
  /// so a worker that scanned empty and then waits cannot miss work
  /// submitted in between.
  std::mutex mu_;
  std::condition_variable work_available_;
  uint64_t epoch_ = 0;
  bool shutting_down_ = false;

  /// Tasks submitted but not yet finished; Wait() blocks on zero.
  std::atomic<int64_t> pending_{0};
  std::mutex done_mu_;
  std::condition_variable all_done_;

  /// Rotating steal start so victims are probed evenly.
  std::atomic<size_t> steal_seed_{0};
};

}  // namespace smartmeter

#endif  // SMARTMETER_COMMON_THREAD_POOL_H_
