#ifndef SMARTMETER_COMMON_THREAD_POOL_H_
#define SMARTMETER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace smartmeter {

/// Fixed-size worker pool with a FIFO queue. Used by the engines for
/// multi-threaded task execution and by the simulated cluster to run
/// per-node work.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Splits [0, count) into roughly equal contiguous chunks, runs
  /// `body(begin, end)` for each chunk in parallel, and waits. When the
  /// pool has one thread (or count is tiny) the body runs inline.
  void ParallelFor(size_t count,
                   const std::function<void(size_t, size_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int active_ = 0;
  bool shutting_down_ = false;
};

}  // namespace smartmeter

#endif  // SMARTMETER_COMMON_THREAD_POOL_H_
