#ifndef SMARTMETER_COMMON_STRING_UTIL_H_
#define SMARTMETER_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace smartmeter {

/// Splits `input` on `delimiter`, keeping empty fields. "a,,b" -> {a,"",b}.
std::vector<std::string_view> SplitString(std::string_view input,
                                          char delimiter);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view input);

/// Parses a double; fails on trailing garbage or empty input.
Result<double> ParseDouble(std::string_view input);

/// Parses a non-negative 64-bit integer; fails on sign, garbage or overflow.
Result<int64_t> ParseInt64(std::string_view input);

/// Formats with snprintf-style semantics into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// "1.2 GB", "34.5 MB", ... chosen by magnitude.
std::string HumanBytes(int64_t bytes);

/// "1.23 s" / "45.6 ms" chosen by magnitude.
std::string HumanSeconds(double seconds);

}  // namespace smartmeter

#endif  // SMARTMETER_COMMON_STRING_UTIL_H_
