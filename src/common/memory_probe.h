#ifndef SMARTMETER_COMMON_MEMORY_PROBE_H_
#define SMARTMETER_COMMON_MEMORY_PROBE_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace smartmeter {

/// Reads the current resident set size of this process in bytes
/// (from /proc/self/statm). Returns 0 if unavailable.
int64_t CurrentRssBytes();

/// Peak resident set size in bytes (VmHWM from /proc/self/status).
int64_t PeakRssBytes();

/// Samples process RSS on a background thread, mirroring the paper's
/// methodology of running `free -m` every few seconds and averaging
/// (Section 5.3.3). Start() begins sampling; Stop() ends it and the
/// average / maximum over the window can then be read.
class MemorySampler {
 public:
  /// `interval_ms` is the sampling period; the paper used 5000 ms, tests
  /// and benches use much shorter windows.
  explicit MemorySampler(int interval_ms = 50);
  ~MemorySampler();

  MemorySampler(const MemorySampler&) = delete;
  MemorySampler& operator=(const MemorySampler&) = delete;

  void Start();
  void Stop();

  /// Average RSS in bytes over the sampled window (0 if no samples).
  int64_t AverageRssBytes() const;
  /// Maximum RSS in bytes seen during the window.
  int64_t MaxRssBytes() const;
  int64_t sample_count() const { return count_.load(); }

 private:
  void Loop();

  const int interval_ms_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
  std::atomic<int64_t> count_{0};
  std::thread thread_;
};

}  // namespace smartmeter

#endif  // SMARTMETER_COMMON_MEMORY_PROBE_H_
