#ifndef SMARTMETER_COMMON_STOPWATCH_H_
#define SMARTMETER_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace smartmeter {

/// Monotonic wall-clock stopwatch used by the benchmark runner. Starts
/// running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace smartmeter

#endif  // SMARTMETER_COMMON_STOPWATCH_H_
