#ifndef SMARTMETER_COMMON_RNG_H_
#define SMARTMETER_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace smartmeter {

/// Deterministic pseudo-random number generator (xoshiro256++), seeded
/// explicitly so every stochastic component of the library is reproducible.
/// Not cryptographically secure; intended for data synthesis and sampling.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Returns a new generator whose stream is independent of this one;
  /// used to give each worker / consumer its own deterministic stream.
  Rng Split();

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace smartmeter

#endif  // SMARTMETER_COMMON_RNG_H_
