#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace smartmeter {

std::vector<std::string_view> SplitString(std::string_view input,
                                          char delimiter) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delimiter) {
      parts.push_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view TrimWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

Result<double> ParseDouble(std::string_view input) {
  input = TrimWhitespace(input);
  if (input.empty()) {
    return Status::InvalidArgument("empty string is not a double");
  }
  double value = 0.0;
  const char* begin = input.data();
  const char* end = begin + input.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("not a double: '" + std::string(input) +
                                   "'");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view input) {
  input = TrimWhitespace(input);
  if (input.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  int64_t value = 0;
  const char* begin = input.data();
  const char* end = begin + input.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("not an integer: '" + std::string(input) +
                                   "'");
  }
  return value;
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(int64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= (int64_t{1} << 30)) {
    return StringPrintf("%.2f GB", b / static_cast<double>(int64_t{1} << 30));
  }
  if (bytes >= (int64_t{1} << 20)) {
    return StringPrintf("%.2f MB", b / static_cast<double>(int64_t{1} << 20));
  }
  if (bytes >= 1024) {
    return StringPrintf("%.2f KB", b / 1024.0);
  }
  return StringPrintf("%lld B", static_cast<long long>(bytes));
}

std::string HumanSeconds(double seconds) {
  if (seconds >= 60.0) {
    return StringPrintf("%.2f min", seconds / 60.0);
  }
  if (seconds >= 1.0) {
    return StringPrintf("%.3f s", seconds);
  }
  return StringPrintf("%.2f ms", seconds * 1000.0);
}

}  // namespace smartmeter
