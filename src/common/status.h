#ifndef SMARTMETER_COMMON_STATUS_H_
#define SMARTMETER_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace smartmeter {

/// Error codes used across the library. The set mirrors the failure
/// categories of the storage, analytics and cluster subsystems.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kOutOfRange,
  kNotSupported,
  kInternal,
  kAborted,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A RocksDB/Arrow-style status object: cheap to copy when OK, carries a
/// code and a message otherwise. Public APIs in this library return Status
/// (or Result<T>) instead of throwing exceptions.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define SM_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::smartmeter::Status _st = (expr);        \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace smartmeter

#endif  // SMARTMETER_COMMON_STATUS_H_
