#include "common/flags.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"

namespace smartmeter {

FlagParser::FlagParser(int argc, char** argv) {
  program_name_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      flags_[body] = "true";
    }
  }
}

bool FlagParser::HasFlag(const std::string& name) const {
  return flags_.count(name) > 0;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  Result<int64_t> parsed = ParseInt64(it->second);
  SM_CHECK(parsed.ok()) << "flag --" << name << " expects an integer, got '"
                        << it->second << "'";
  return *parsed;
}

double FlagParser::GetDouble(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  Result<double> parsed = ParseDouble(it->second);
  SM_CHECK(parsed.ok()) << "flag --" << name << " expects a number, got '"
                        << it->second << "'";
  return *parsed;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  SM_CHECK(false) << "flag --" << name << " expects a boolean, got '" << v
                  << "'";
  return fallback;
}

}  // namespace smartmeter
