#include "common/memory_probe.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

namespace smartmeter {

int64_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long size = 0, resident = 0;
  const int n = std::fscanf(f, "%lld %lld", &size, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<int64_t>(resident) * sysconf(_SC_PAGESIZE);
}

int64_t PeakRssBytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  int64_t peak_kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      long long kb = 0;
      if (std::sscanf(line + 6, "%lld", &kb) == 1) peak_kb = kb;
      break;
    }
  }
  std::fclose(f);
  return peak_kb * 1024;
}

MemorySampler::MemorySampler(int interval_ms) : interval_ms_(interval_ms) {}

MemorySampler::~MemorySampler() { Stop(); }

void MemorySampler::Start() {
  if (running_.exchange(true)) return;
  sum_.store(0);
  max_.store(0);
  count_.store(0);
  thread_ = std::thread(&MemorySampler::Loop, this);
}

void MemorySampler::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

int64_t MemorySampler::AverageRssBytes() const {
  const int64_t n = count_.load();
  return n == 0 ? 0 : sum_.load() / n;
}

int64_t MemorySampler::MaxRssBytes() const { return max_.load(); }

void MemorySampler::Loop() {
  while (running_.load()) {
    const int64_t rss = CurrentRssBytes();
    sum_.fetch_add(rss);
    count_.fetch_add(1);
    int64_t prev = max_.load();
    while (rss > prev && !max_.compare_exchange_weak(prev, rss)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms_));
  }
}

}  // namespace smartmeter
