#ifndef SMARTMETER_COMMON_RESULT_H_
#define SMARTMETER_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace smartmeter {

/// Holds either a value of type T or a non-OK Status, in the style of
/// arrow::Result. Accessing the value of an errored Result aborts in debug
/// builds; callers must check ok() first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (the common error path).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result must not be built from an OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates the error of a Result-returning expression, otherwise binds
/// its value to `lhs`. Usable in functions returning Status or Result.
#define SM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#define SM_ASSIGN_OR_RETURN(lhs, expr) \
  SM_ASSIGN_OR_RETURN_IMPL(SM_CONCAT_(_sm_result_, __LINE__), lhs, expr)

#define SM_CONCAT_INNER_(a, b) a##b
#define SM_CONCAT_(a, b) SM_CONCAT_INNER_(a, b)

}  // namespace smartmeter

#endif  // SMARTMETER_COMMON_RESULT_H_
