#ifndef SMARTMETER_COMMON_FLAGS_H_
#define SMARTMETER_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace smartmeter {

/// Minimal command-line flag parser for the bench and example binaries.
/// Accepts "--name=value"; bare "--name" is treated as a boolean true.
/// Arguments without a leading "--" are collected as positionals.
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  bool HasFlag(const std::string& name) const;

  /// Typed getters returning `fallback` when the flag is absent. A flag
  /// that is present but malformed aborts with a usage message.
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace smartmeter

#endif  // SMARTMETER_COMMON_FLAGS_H_
