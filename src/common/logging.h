#ifndef SMARTMETER_COMMON_LOGGING_H_
#define SMARTMETER_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace smartmeter {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that will be emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; writes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement below the active level without evaluating
/// the streamed expressions' formatting.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define SM_LOG(level)                                              \
  if (::smartmeter::LogLevel::k##level < ::smartmeter::GetLogLevel()) \
    ;                                                              \
  else                                                             \
    ::smartmeter::internal::LogMessage(::smartmeter::LogLevel::k##level, \
                                       __FILE__, __LINE__)         \
        .stream()

/// Fatal check: aborts with a message when `cond` is false. Used for
/// programming errors (not data errors, which return Status).
#define SM_CHECK(cond)                                                   \
  if (cond)                                                              \
    ;                                                                    \
  else                                                                   \
    ::smartmeter::internal::CheckFailure(__FILE__, __LINE__, #cond).stream()

namespace internal {

/// Aborts the process after streaming the failure message.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr);
  ~CheckFailure();  // Aborts the process.
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace smartmeter

#endif  // SMARTMETER_COMMON_LOGGING_H_
