#ifndef SMARTMETER_TIMESERIES_RESAMPLE_H_
#define SMARTMETER_TIMESERIES_RESAMPLE_H_

#include <span>
#include <vector>

#include "common/result.h"

namespace smartmeter {

/// Sums consecutive groups of `factor` readings: the standard reduction
/// of sub-hourly interval data (the paper's meters report every 15
/// minutes or hourly; the benchmark is defined on hourly kWh, so
/// quarter-hourly feeds are aggregated with factor = 4). The length must
/// be divisible by `factor`.
Result<std::vector<double>> AggregateEnergy(std::span<const double> readings,
                                            int factor);

/// Averages consecutive groups of `factor` readings: the reduction for
/// instantaneous quantities like temperature.
Result<std::vector<double>> AggregateMean(std::span<const double> readings,
                                          int factor);

/// Daily totals of an hourly series (length divisible by 24).
Result<std::vector<double>> DailyTotals(std::span<const double> hourly);

}  // namespace smartmeter

#endif  // SMARTMETER_TIMESERIES_RESAMPLE_H_
