#include "timeseries/resample.h"

#include "common/string_util.h"
#include "timeseries/calendar.h"

namespace smartmeter {

namespace {

Result<std::vector<double>> AggregateGroups(std::span<const double> readings,
                                            int factor, bool mean) {
  if (factor < 1) {
    return Status::InvalidArgument("aggregation factor must be >= 1");
  }
  if (readings.empty() ||
      readings.size() % static_cast<size_t>(factor) != 0) {
    return Status::InvalidArgument(StringPrintf(
        "series length %zu not divisible by factor %d", readings.size(),
        factor));
  }
  std::vector<double> out;
  out.reserve(readings.size() / static_cast<size_t>(factor));
  for (size_t begin = 0; begin < readings.size();
       begin += static_cast<size_t>(factor)) {
    double sum = 0.0;
    for (int i = 0; i < factor; ++i) {
      sum += readings[begin + static_cast<size_t>(i)];
    }
    out.push_back(mean ? sum / factor : sum);
  }
  return out;
}

}  // namespace

Result<std::vector<double>> AggregateEnergy(std::span<const double> readings,
                                            int factor) {
  return AggregateGroups(readings, factor, /*mean=*/false);
}

Result<std::vector<double>> AggregateMean(std::span<const double> readings,
                                          int factor) {
  return AggregateGroups(readings, factor, /*mean=*/true);
}

Result<std::vector<double>> DailyTotals(std::span<const double> hourly) {
  return AggregateEnergy(hourly, kHoursPerDay);
}

}  // namespace smartmeter
