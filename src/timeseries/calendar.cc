#include "timeseries/calendar.h"

namespace smartmeter {

namespace {

// Cumulative day at the start of each month for a non-leap year.
constexpr int kMonthStartDay[kMonthsPerYear + 1] = {
    0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334, 365};

}  // namespace

int HourlyCalendar::Month(int hour_index) {
  const int day = DayOfYear(hour_index);
  // Linear scan over 12 entries beats binary search at this size.
  for (int m = 0; m < kMonthsPerYear; ++m) {
    if (day < kMonthStartDay[m + 1]) return m;
  }
  return kMonthsPerYear - 1;
}

}  // namespace smartmeter
