#ifndef SMARTMETER_TIMESERIES_CALENDAR_H_
#define SMARTMETER_TIMESERIES_CALENDAR_H_

#include <cstdint>

namespace smartmeter {

/// Calendar constants for the benchmark's canonical year of hourly data
/// (365 days x 24 hours = 8760 points, as specified in Section 3 of the
/// paper).
inline constexpr int kHoursPerDay = 24;
inline constexpr int kDaysPerYear = 365;
inline constexpr int kHoursPerYear = kHoursPerDay * kDaysPerYear;
inline constexpr int kMonthsPerYear = 12;

/// Maps a flat hour index in [0, kHoursPerYear) to calendar components.
/// Hour 0 is midnight January 1st; the year is non-leap and starts on a
/// Tuesday (like 2013, the vintage of the paper's Ontario data set).
class HourlyCalendar {
 public:
  /// Day-of-week of January 1st; 0 = Monday ... 6 = Sunday.
  static constexpr int kFirstDayOfWeek = 1;  // Tuesday.

  /// Hour of the day in [0, 24).
  static int HourOfDay(int hour_index) { return hour_index % kHoursPerDay; }

  /// Day of the year in [0, 365).
  static int DayOfYear(int hour_index) { return hour_index / kHoursPerDay; }

  /// Day of week in [0, 7), 0 = Monday.
  static int DayOfWeek(int hour_index) {
    return (DayOfYear(hour_index) + kFirstDayOfWeek) % 7;
  }

  static bool IsWeekend(int hour_index) { return DayOfWeek(hour_index) >= 5; }

  /// Month in [0, 12).
  static int Month(int hour_index);

  /// First hour index of `day` in [0, 365).
  static int DayStartHour(int day) { return day * kHoursPerDay; }
};

}  // namespace smartmeter

#endif  // SMARTMETER_TIMESERIES_CALENDAR_H_
