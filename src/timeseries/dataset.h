#ifndef SMARTMETER_TIMESERIES_DATASET_H_
#define SMARTMETER_TIMESERIES_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "timeseries/calendar.h"

namespace smartmeter {

/// One consumer's hourly consumption for the benchmark year, in kWh.
struct ConsumerSeries {
  int64_t household_id = 0;
  std::vector<double> consumption;
};

/// In-memory benchmark input (Section 3 of the paper): n consumption time
/// series plus an aligned outdoor-temperature series with the same hourly
/// resolution. All series have the same length, `hours()`.
///
/// The paper's experiments use a single city-wide temperature series (the
/// southern-Ontario city the data came from); we follow that: temperature
/// is shared across consumers but is stored per row in the on-disk formats,
/// exactly as a utility's export would repeat it.
class MeterDataset {
 public:
  MeterDataset() = default;
  MeterDataset(std::vector<double> temperature,
               std::vector<ConsumerSeries> consumers);

  /// Validates shape invariants: non-empty temperature, every consumer
  /// series aligned to it, unique household ids.
  Status Validate() const;

  size_t hours() const { return temperature_.size(); }
  size_t num_consumers() const { return consumers_.size(); }

  const std::vector<double>& temperature() const { return temperature_; }
  const std::vector<ConsumerSeries>& consumers() const { return consumers_; }
  std::vector<ConsumerSeries>* mutable_consumers() { return &consumers_; }

  const ConsumerSeries& consumer(size_t i) const { return consumers_[i]; }

  /// Looks up a consumer by household id (linear scan; the engines keep
  /// their own indexes).
  Result<const ConsumerSeries*> FindHousehold(int64_t household_id) const;

  void AddConsumer(ConsumerSeries series);
  void SetTemperature(std::vector<double> temperature);

  /// Total number of (household, hour) readings.
  int64_t TotalReadings() const;

  /// Size of the dataset in the paper's accounting: bytes of the CSV
  /// row-per-reading representation (used to report "paper-equivalent GB").
  int64_t ApproxCsvBytes() const;

  /// Restricts the dataset to the first `n` consumers (no-op if n is
  /// already >= num_consumers()). Used by benches for size sweeps.
  void TruncateConsumers(size_t n);

 private:
  std::vector<double> temperature_;
  std::vector<ConsumerSeries> consumers_;
};

/// Fills NaN gaps in `series` by linear interpolation between the nearest
/// valid neighbours (constant extrapolation at the edges). Returns the
/// number of points filled; fails if the series has no valid points.
Result<int> FillGaps(std::vector<double>* series);

}  // namespace smartmeter

#endif  // SMARTMETER_TIMESERIES_DATASET_H_
