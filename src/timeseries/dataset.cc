#include "timeseries/dataset.h"

#include <cmath>
#include <unordered_set>

#include "common/string_util.h"

namespace smartmeter {

MeterDataset::MeterDataset(std::vector<double> temperature,
                           std::vector<ConsumerSeries> consumers)
    : temperature_(std::move(temperature)), consumers_(std::move(consumers)) {}

Status MeterDataset::Validate() const {
  if (temperature_.empty()) {
    return Status::InvalidArgument("dataset has no temperature series");
  }
  std::unordered_set<int64_t> ids;
  ids.reserve(consumers_.size());
  for (const ConsumerSeries& c : consumers_) {
    if (c.consumption.size() != temperature_.size()) {
      return Status::InvalidArgument(StringPrintf(
          "household %lld has %zu readings, expected %zu",
          static_cast<long long>(c.household_id), c.consumption.size(),
          temperature_.size()));
    }
    if (!ids.insert(c.household_id).second) {
      return Status::InvalidArgument(
          StringPrintf("duplicate household id %lld",
                       static_cast<long long>(c.household_id)));
    }
  }
  return Status::OK();
}

Result<const ConsumerSeries*> MeterDataset::FindHousehold(
    int64_t household_id) const {
  for (const ConsumerSeries& c : consumers_) {
    if (c.household_id == household_id) return &c;
  }
  return Status::NotFound(StringPrintf(
      "household %lld not in dataset", static_cast<long long>(household_id)));
}

void MeterDataset::AddConsumer(ConsumerSeries series) {
  consumers_.push_back(std::move(series));
}

void MeterDataset::SetTemperature(std::vector<double> temperature) {
  temperature_ = std::move(temperature);
}

int64_t MeterDataset::TotalReadings() const {
  return static_cast<int64_t>(consumers_.size()) *
         static_cast<int64_t>(temperature_.size());
}

int64_t MeterDataset::ApproxCsvBytes() const {
  // One reading per row: "household_id,hour,consumption,temperature\n".
  // Matches the paper's sizing: 27,300 households x 8760 hours ~= 10 GB,
  // i.e. ~42 bytes per row.
  constexpr int64_t kBytesPerRow = 42;
  return TotalReadings() * kBytesPerRow;
}

void MeterDataset::TruncateConsumers(size_t n) {
  if (n < consumers_.size()) consumers_.resize(n);
}

Result<int> FillGaps(std::vector<double>* series) {
  std::vector<double>& v = *series;
  const size_t n = v.size();
  size_t first_valid = n;
  for (size_t i = 0; i < n; ++i) {
    if (!std::isnan(v[i])) {
      first_valid = i;
      break;
    }
  }
  if (first_valid == n) {
    return Status::InvalidArgument("series contains no valid points");
  }
  int filled = 0;
  // Constant extrapolation before the first valid point.
  for (size_t i = 0; i < first_valid; ++i) {
    v[i] = v[first_valid];
    ++filled;
  }
  size_t prev_valid = first_valid;
  for (size_t i = first_valid + 1; i < n; ++i) {
    if (!std::isnan(v[i])) {
      // Interpolate over the gap (prev_valid, i), if any.
      const size_t gap = i - prev_valid - 1;
      if (gap > 0) {
        const double step = (v[i] - v[prev_valid]) / static_cast<double>(i -
                                                                prev_valid);
        for (size_t j = prev_valid + 1; j < i; ++j) {
          v[j] = v[prev_valid] + step * static_cast<double>(j - prev_valid);
          ++filled;
        }
      }
      prev_valid = i;
    }
  }
  // Constant extrapolation after the last valid point.
  for (size_t i = prev_valid + 1; i < n; ++i) {
    v[i] = v[prev_valid];
    ++filled;
  }
  return filled;
}

}  // namespace smartmeter
