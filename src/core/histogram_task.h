#ifndef SMARTMETER_CORE_HISTOGRAM_TASK_H_
#define SMARTMETER_CORE_HISTOGRAM_TASK_H_

#include <span>

#include "common/result.h"
#include "core/task_types.h"
#include "exec/query_context.h"
#include "table/columnar_batch.h"

namespace smartmeter::core {

/// Options for the consumption-histogram task. The paper fixes ten
/// equi-width buckets (Section 3.1); the default matches.
struct HistogramOptions {
  int num_buckets = 10;
};

/// Builds the hourly-consumption distribution of one consumer: an
/// equi-width histogram whose x-axis spans [min, max] of the series and
/// whose counts are hours of the year (Section 3.1). Returns kCancelled /
/// kDeadlineExceeded without computing when `ctx` has stopped.
Result<stats::EquiWidthHistogram> ComputeConsumptionHistogram(
    std::span<const double> consumption, const HistogramOptions& options = {},
    const exec::QueryContext* ctx = nullptr);

/// Histograms households [begin, end) of a columnar batch, writing
/// out[i] for each i in the range (`out` must span at least `end`
/// results). This is the unit of work one thread runs: the inner loop
/// reads contiguous column slices straight out of the batch, so no
/// per-household indirection sits between the scheduler and the math.
Status ComputeHistogramRange(const table::ColumnarBatch& batch, size_t begin,
                             size_t end, const HistogramOptions& options,
                             const exec::QueryContext* ctx,
                             std::span<HistogramResult> out);

}  // namespace smartmeter::core

#endif  // SMARTMETER_CORE_HISTOGRAM_TASK_H_
