#include "core/par_task.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "simd/simd.h"
#include "stats/matrix.h"
#include "timeseries/calendar.h"

namespace smartmeter::core {

Result<DailyProfileResult> ComputeDailyProfile(
    std::span<const double> consumption, std::span<const double> temperature,
    int64_t household_id, const ParOptions& options,
    const exec::QueryContext* ctx) {
  if (consumption.size() != temperature.size()) {
    return Status::InvalidArgument("PAR: series length mismatch");
  }
  if (options.lags < 1) {
    return Status::InvalidArgument("PAR: need at least one lag");
  }
  const int p = options.lags;
  const int days = static_cast<int>(consumption.size()) / kHoursPerDay;
  const int usable_days = days - p;  // Days with a full lag window.
  // intercept + p lags + temperature:
  const int num_coeffs = p + 2;
  if (usable_days < num_coeffs + 1) {
    return Status::InvalidArgument(StringPrintf(
        "PAR: household %lld has %d days, need at least %d",
        static_cast<long long>(household_id), days, p + num_coeffs + 1));
  }

  DailyProfileResult result;
  result.household_id = household_id;
  result.profile.assign(kHoursPerDay, 0.0);
  result.coefficients.resize(kHoursPerDay);
  result.temperature_beta.assign(kHoursPerDay, 0.0);

  // Phase A — one regression per hour of day: the "periodic" in PAR.
  stats::Matrix x(static_cast<size_t>(usable_days),
                  static_cast<size_t>(num_coeffs));
  std::vector<double> y(static_cast<size_t>(usable_days));
  for (int hour = 0; hour < kHoursPerDay; ++hour) {
    if (ctx != nullptr && ctx->ShouldStop()) return ctx->CheckNotStopped();
    for (int d = p; d < days; ++d) {
      const size_t row = static_cast<size_t>(d - p);
      const size_t t = static_cast<size_t>(d * kHoursPerDay + hour);
      x.At(row, 0) = 1.0;  // Intercept.
      for (int lag = 1; lag <= p; ++lag) {
        x.At(row, static_cast<size_t>(lag)) =
            consumption[t - static_cast<size_t>(lag) * kHoursPerDay];
      }
      x.At(row, static_cast<size_t>(p) + 1) = temperature[t];
      y[row] = consumption[t];
    }
    SM_ASSIGN_OR_RETURN(std::vector<double> beta,
                        stats::LeastSquares(x, y));
    result.temperature_beta[static_cast<size_t>(hour)] =
        beta[static_cast<size_t>(p) + 1];
    result.coefficients[static_cast<size_t>(hour)] = std::move(beta);
  }

  // Phase B — temperature-independent consumption per hour: strip the
  // temperature contribution from every reading and average over days.
  // Each day is a contiguous 24-element slab, so the residual update
  // vectorizes without gathers, and each hour slot still accumulates in
  // ascending-day order — bit-identical to the old per-hour loop.
  std::vector<double> acc(kHoursPerDay, 0.0);
  for (int d = p; d < days; ++d) {
    const size_t t0 = static_cast<size_t>(d) * kHoursPerDay;
    simd::AddResidual(acc, consumption.subspan(t0, kHoursPerDay),
                      temperature.subspan(t0, kHoursPerDay),
                      result.temperature_beta);
  }
  for (int hour = 0; hour < kHoursPerDay; ++hour) {
    double value =
        acc[static_cast<size_t>(hour)] / static_cast<double>(usable_days);
    if (options.clamp_nonnegative) value = std::max(0.0, value);
    result.profile[static_cast<size_t>(hour)] = value;
  }
  return result;
}

Status ComputeDailyProfileRange(const table::ColumnarBatch& batch,
                                size_t begin, size_t end,
                                const ParOptions& options,
                                const exec::QueryContext* ctx,
                                std::span<DailyProfileResult> out) {
  if (end > out.size() || end > batch.count()) {
    return Status::InvalidArgument("PAR range exceeds batch/output");
  }
  const std::span<const double> temperature = batch.temperature();
  for (size_t i = begin; i < end; ++i) {
    SM_ASSIGN_OR_RETURN(
        out[i], ComputeDailyProfile(batch.consumption(i), temperature,
                                    batch.household_id(i), options, ctx));
  }
  return Status::OK();
}

}  // namespace smartmeter::core
