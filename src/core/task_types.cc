#include "core/task_types.h"

#include <algorithm>

namespace smartmeter::core {

std::string_view TaskName(TaskType task) {
  switch (task) {
    case TaskType::kHistogram:
      return "histogram";
    case TaskType::kThreeLine:
      return "3line";
    case TaskType::kPar:
      return "par";
    case TaskType::kSimilarity:
      return "similarity";
  }
  return "unknown";
}

double PiecewiseLines::ValueAt(double t) const {
  if (t < left.t_high) return left.ValueAt(t);
  if (t <= mid.t_high) return mid.ValueAt(t);
  return right.ValueAt(t);
}

double PiecewiseLines::MinValue() const {
  // Each segment is linear, so extrema sit at segment endpoints.
  const double candidates[] = {
      left.ValueAt(left.t_low),   left.ValueAt(left.t_high),
      mid.ValueAt(mid.t_low),     mid.ValueAt(mid.t_high),
      right.ValueAt(right.t_low), right.ValueAt(right.t_high)};
  return *std::min_element(std::begin(candidates), std::end(candidates));
}

}  // namespace smartmeter::core
