#include "core/histogram_task.h"

namespace smartmeter::core {

Result<stats::EquiWidthHistogram> ComputeConsumptionHistogram(
    std::span<const double> consumption, const HistogramOptions& options,
    const exec::QueryContext* ctx) {
  if (ctx != nullptr && ctx->ShouldStop()) return ctx->CheckNotStopped();
  return stats::BuildEquiWidthHistogram(consumption, options.num_buckets);
}

}  // namespace smartmeter::core
