#include "core/histogram_task.h"

namespace smartmeter::core {

Result<stats::EquiWidthHistogram> ComputeConsumptionHistogram(
    std::span<const double> consumption, const HistogramOptions& options) {
  return stats::BuildEquiWidthHistogram(consumption, options.num_buckets);
}

}  // namespace smartmeter::core
