#include "core/histogram_task.h"

namespace smartmeter::core {

Result<stats::EquiWidthHistogram> ComputeConsumptionHistogram(
    std::span<const double> consumption, const HistogramOptions& options,
    const exec::QueryContext* ctx) {
  if (ctx != nullptr && ctx->ShouldStop()) return ctx->CheckNotStopped();
  return stats::BuildEquiWidthHistogram(consumption, options.num_buckets);
}

Status ComputeHistogramRange(const table::ColumnarBatch& batch, size_t begin,
                             size_t end, const HistogramOptions& options,
                             const exec::QueryContext* ctx,
                             std::span<HistogramResult> out) {
  if (end > out.size() || end > batch.count()) {
    return Status::InvalidArgument("histogram range exceeds batch/output");
  }
  for (size_t i = begin; i < end; ++i) {
    SM_ASSIGN_OR_RETURN(
        stats::EquiWidthHistogram hist,
        ComputeConsumptionHistogram(batch.consumption(i), options, ctx));
    out[i] = {batch.household_id(i), std::move(hist)};
  }
  return Status::OK();
}

}  // namespace smartmeter::core
