#ifndef SMARTMETER_CORE_PAR_TASK_H_
#define SMARTMETER_CORE_PAR_TASK_H_

#include <span>

#include "common/result.h"
#include "core/task_types.h"
#include "exec/query_context.h"
#include "table/columnar_batch.h"

namespace smartmeter::core {

/// Options for the periodic-autoregression daily-profile algorithm
/// (Section 3.3, after Espinoza et al. / Ardakanian et al.).
struct ParOptions {
  /// Number of autoregressive lags in days; the paper uses p = 3.
  int lags = 3;
  /// Whether to clamp profile values at zero (negative expected
  /// consumption is physically meaningless).
  bool clamp_nonnegative = true;
};

/// Fits, for one consumer and each hour of the day, the model
///   c[d][h] = a0 + sum_i a_i * c[d-i][h] + b * T[d][h]
/// over the days of the year, then reports the average
/// temperature-independent consumption per hour — the 24-value daily
/// profile of Figure 2. Requires at least (lags + 3) full days so each
/// per-hour regression is overdetermined. `ctx` is polled once per hourly
/// regression so a cancelled or expired query stops mid-fit.
Result<DailyProfileResult> ComputeDailyProfile(
    std::span<const double> consumption, std::span<const double> temperature,
    int64_t household_id, const ParOptions& options = {},
    const exec::QueryContext* ctx = nullptr);

/// Fits households [begin, end) of a columnar batch against the batch's
/// shared temperature column, writing out[i] for each i in the range
/// (`out` must span at least `end` results).
Status ComputeDailyProfileRange(const table::ColumnarBatch& batch,
                                size_t begin, size_t end,
                                const ParOptions& options,
                                const exec::QueryContext* ctx,
                                std::span<DailyProfileResult> out);

}  // namespace smartmeter::core

#endif  // SMARTMETER_CORE_PAR_TASK_H_
