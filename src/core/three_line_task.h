#ifndef SMARTMETER_CORE_THREE_LINE_TASK_H_
#define SMARTMETER_CORE_THREE_LINE_TASK_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/task_types.h"
#include "exec/query_context.h"
#include "table/columnar_batch.h"

namespace smartmeter::core {

/// Options for the 3-line thermal-sensitivity algorithm (Section 3.2,
/// after Birt et al.).
struct ThreeLineOptions {
  /// Readings are grouped into temperature bins of this width (degrees C)
  /// before the per-temperature percentiles are taken.
  double temperature_bin_width = 1.0;
  /// The two percentile bands of Figure 1.
  double low_percentile = 0.10;
  double high_percentile = 0.90;
  /// Bins with fewer raw readings than this are discarded as noise.
  int min_points_per_bin = 5;
  /// Each of the three segments must cover at least this many bins.
  int min_bins_per_segment = 2;
};

/// Wall-clock breakdown matching Figure 6's stacked bars:
///   T1 = per-temperature 10th/90th percentiles,
///   T2 = piecewise regression-line fitting,
///   T3 = continuity adjustment.
struct ThreeLinePhases {
  double quantile_seconds = 0.0;
  double regression_seconds = 0.0;
  double adjust_seconds = 0.0;
  /// Band readings selected in T2 across all households.
  size_t band_points = 0;
  /// Times a band vector outgrew its reserved capacity. The counting
  /// pass sizes the reserves exactly, so this stays 0; tests assert it.
  size_t band_reallocs = 0;

  void Accumulate(const ThreeLinePhases& other) {
    quantile_seconds += other.quantile_seconds;
    regression_seconds += other.regression_seconds;
    adjust_seconds += other.adjust_seconds;
    band_points += other.band_points;
    band_reallocs += other.band_reallocs;
  }
};

/// Runs the 3-line algorithm for one consumer: computes the 10th/90th
/// percentile of consumption for each temperature bin, fits three
/// contiguous regression lines to each percentile band (optimal
/// breakpoints by total squared error), and adjusts the outer lines so the
/// piecewise model is continuous. Fails if fewer than three populated
/// temperature bins exist. `phases`, when non-null, receives the timing
/// breakdown used by Figure 6. `ctx` is polled at the phase boundaries so
/// a cancelled or expired query abandons the fit early.
Result<ThreeLineResult> ComputeThreeLine(std::span<const double> consumption,
                                         std::span<const double> temperature,
                                         int64_t household_id,
                                         const ThreeLineOptions& options = {},
                                         ThreeLinePhases* phases = nullptr,
                                         const exec::QueryContext* ctx =
                                             nullptr);

/// Fits households [begin, end) of a columnar batch against the batch's
/// shared temperature column, writing out[i] for each i in the range
/// (`out` must span at least `end` results). `phases`, when non-null,
/// accumulates the timing breakdown for the whole range — callers hand
/// in one per-thread instance and merge afterwards.
Status ComputeThreeLineRange(const table::ColumnarBatch& batch, size_t begin,
                             size_t end, const ThreeLineOptions& options,
                             ThreeLinePhases* phases,
                             const exec::QueryContext* ctx,
                             std::span<ThreeLineResult> out);

namespace internal {

/// The fit stages of ComputeThreeLine after the binning pass: T1
/// thresholds from the prepared per-bin value lists, T2 band selection
/// over `bin_idx`, T3 continuity. Shared between the batch entry point
/// (which bins the series first) and IncrementalThreeLine (which
/// maintains `bin_idx` / `bins` online and only pays the fit at query
/// time); both run the identical code, so their results are
/// bit-identical by construction. `bins` maps each temperature bin to
/// its consumption values in reading order and is consumed by the
/// quantile pass; `bin_seconds` is upstream binning time folded into
/// the T1 phase split.
Result<ThreeLineResult> ComputeThreeLineBinned(
    std::span<const double> consumption, std::span<const double> temperature,
    std::span<const int32_t> bin_idx,
    std::map<int32_t, std::vector<double>> bins, double bin_seconds,
    int64_t household_id, const ThreeLineOptions& options,
    ThreeLinePhases* phases, const exec::QueryContext* ctx);

}  // namespace internal

}  // namespace smartmeter::core

#endif  // SMARTMETER_CORE_THREE_LINE_TASK_H_
