#ifndef SMARTMETER_CORE_INCREMENTAL_H_
#define SMARTMETER_CORE_INCREMENTAL_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/histogram_task.h"
#include "core/par_task.h"
#include "core/task_types.h"
#include "core/three_line_task.h"
#include "stats/histogram.h"
#include "stats/matrix.h"

namespace smartmeter::core {

/// Incremental forms of the batch kernels, for the live ingest path:
/// each class absorbs one reading at a time in O(1)-ish work and can
/// produce, at any moment, the exact result a full batch recompute over
/// every reading seen so far would produce — bit-identical, pinned by
/// incremental_test against all five engines. The trick is never to
/// invent new math: the hot accumulation replicates the batch kernel's
/// own summation order, and the query-time finish reuses the batch
/// code, so parity holds by construction rather than by tolerance.

/// Online equi-width histogram (Section 3.1). Appends inside the
/// current [min, max] range are a single bucket increment using the
/// same binning kernel as the batch path (integer counts commute, so
/// arrival order cannot matter); a range-extending append marks the
/// histogram dirty and the next Snapshot() rebins the retained values
/// through BuildEquiWidthHistogram itself — the "exactly-recomputable"
/// escape hatch for the case where every bucket boundary moved.
class IncrementalHistogram {
 public:
  explicit IncrementalHistogram(HistogramOptions options = {});

  void Append(double value);

  /// The histogram over every value appended so far; identical to
  /// BuildEquiWidthHistogram over the same values. Fails like the batch
  /// build does (no values yet, all-NaN range).
  Result<stats::EquiWidthHistogram> Snapshot();

  size_t size() const { return values_.size(); }
  /// Full rebins performed (range extensions), for amortization tests.
  int64_t rebuilds() const { return rebuilds_; }

 private:
  HistogramOptions options_;
  std::vector<double> values_;
  std::vector<int64_t> counts_;
  double min_ = 0.0;
  double max_ = 0.0;
  double width_ = 0.0;
  bool dirty_ = true;
  int64_t rebuilds_ = 0;
};

/// Online periodic-autoregression daily profile (Section 3.3). Readings
/// arrive in hour order; the moment a day completes, its 24 regression
/// rows enter the per-hour normal equations as rank-one updates that
/// replicate Matrix::Gram's row-major accumulation order (including its
/// skip of exact-zero entries), so the Gram matrices are bit-identical
/// to the batch assembly at every day boundary. Fit() then solves the
/// same ridge-escalated systems via stats::SolveNormalEquations and
/// replays the Phase B residual pass over the retained series — total
/// query-time cost O(24 k^2 + hours) instead of the batch's
/// O(days * 24 * k^2) design-matrix rebuild.
class IncrementalDailyProfile {
 public:
  explicit IncrementalDailyProfile(int64_t household_id,
                                   ParOptions options = {});

  /// Feeds the next hour's reading (consumption plus the shared
  /// temperature for that hour).
  void Append(double consumption, double temperature);

  Result<DailyProfileResult> Fit() const;

  int64_t hours() const { return static_cast<int64_t>(consumption_.size()); }
  int days() const;

 private:
  void AccumulateDay(int day);

  int64_t household_id_;
  ParOptions options_;
  std::vector<double> consumption_;
  std::vector<double> temperature_;
  // Per hour of day: upper-triangular X^T X and X^T y, accumulated in
  // ascending-day order exactly as the batch Gram does.
  std::vector<stats::Matrix> gram_;
  std::vector<std::vector<double>> xty_;
};

/// Online three-line thermal model (Section 3.2). The per-reading work
/// is the T1 bookkeeping the batch pass spends its first scan on: the
/// temperature-bin index (same vectorized kernel, one element at a
/// time) and the per-bin consumption lists in arrival order. Fit()
/// hands those to the shared ComputeThreeLineBinned stages, so only
/// the quantile + band fit is paid at query time and the result is
/// the batch function's own output. bins() doubles as the windowed
/// per-temperature-band occupancy statistic for live dashboards.
class IncrementalThreeLine {
 public:
  explicit IncrementalThreeLine(int64_t household_id,
                                ThreeLineOptions options = {});

  void Append(double consumption, double temperature);

  Result<ThreeLineResult> Fit(ThreeLinePhases* phases = nullptr) const;

  size_t size() const { return consumption_.size(); }
  /// Per-temperature-bin consumption values in arrival order (the
  /// sentinel INT32_MIN bin collects junk temperatures).
  const std::map<int32_t, std::vector<double>>& bins() const { return bins_; }

 private:
  int64_t household_id_;
  ThreeLineOptions options_;
  std::vector<double> consumption_;
  std::vector<double> temperature_;
  std::vector<int32_t> bin_idx_;
  std::map<int32_t, std::vector<double>> bins_;
};

}  // namespace smartmeter::core

#endif  // SMARTMETER_CORE_INCREMENTAL_H_
