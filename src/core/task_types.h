#ifndef SMARTMETER_CORE_TASK_TYPES_H_
#define SMARTMETER_CORE_TASK_TYPES_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "stats/histogram.h"
#include "stats/ols.h"

namespace smartmeter::core {

/// The four analysis tasks of the benchmark (Section 3).
enum class TaskType {
  kHistogram,   // 3.1 Consumption histograms
  kThreeLine,   // 3.2 Thermal sensitivity (3-line piecewise regression)
  kPar,         // 3.3 Daily profiles (periodic autoregression)
  kSimilarity,  // 3.4 Top-k cosine similarity search
};

std::string_view TaskName(TaskType task);

/// All four tasks in benchmark order.
inline constexpr TaskType kAllTasks[] = {
    TaskType::kHistogram, TaskType::kThreeLine, TaskType::kPar,
    TaskType::kSimilarity};

// ---------------------------------------------------------------------------
// Per-task result records. Every engine produces these same structures so
// results can be cross-checked between platforms.
// ---------------------------------------------------------------------------

/// Section 3.1: one equi-width histogram per consumer.
struct HistogramResult {
  int64_t household_id = 0;
  stats::EquiWidthHistogram histogram;
};

/// One fitted line segment of the 3-line model over [t_low, t_high].
struct LineSegment {
  double t_low = 0.0;
  double t_high = 0.0;
  stats::LinearFit fit;

  double ValueAt(double t) const { return fit.Predict(t); }
};

/// A 3-piece regression (heating / base / cooling) for one percentile
/// band. Segments are contiguous: left.t_high == mid.t_low etc.
struct PiecewiseLines {
  LineSegment left;
  LineSegment mid;
  LineSegment right;

  /// Piecewise evaluation at temperature t.
  double ValueAt(double t) const;
  /// Smallest value attained over the fitted temperature range.
  double MinValue() const;
};

/// Section 3.2: the 3-line model of one consumer (Figure 1 of the paper).
struct ThreeLineResult {
  int64_t household_id = 0;
  PiecewiseLines p90;  // Fitted to the 90th-percentile points.
  PiecewiseLines p10;  // Fitted to the 10th-percentile points.

  /// kWh per degree C of extra consumption as it gets colder; slope of the
  /// left 90th-percentile line, negated so "more heating" is positive.
  double heating_gradient = 0.0;
  /// kWh per degree C of extra consumption as it gets hotter; slope of the
  /// right 90th-percentile line.
  double cooling_gradient = 0.0;
  /// Height of the lowest point of the 10th-percentile lines: always-on
  /// load (fridge, security system, ...).
  double base_load = 0.0;
};

/// Section 3.3: one consumer's typical day (24 hourly values of
/// temperature-independent load) plus the fitted PAR coefficients.
struct DailyProfileResult {
  int64_t household_id = 0;
  /// Expected temperature-independent consumption for hours 0..23.
  std::vector<double> profile;
  /// Per-hour AR coefficients: [intercept, lag1..lagp, temperature].
  std::vector<std::vector<double>> coefficients;
  /// Temperature coefficient per hour (redundant with `coefficients`,
  /// kept for the generator which consumes it directly).
  std::vector<double> temperature_beta;
};

/// Section 3.4: one consumer's k most similar consumers, best first.
struct SimilarityResult {
  int64_t household_id = 0;
  struct Match {
    int64_t household_id;
    double cosine;
  };
  std::vector<Match> matches;
};

}  // namespace smartmeter::core

#endif  // SMARTMETER_CORE_TASK_TYPES_H_
