#include "core/incremental.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/string_util.h"
#include "simd/simd.h"
#include "timeseries/calendar.h"

namespace smartmeter::core {

// ---------------------------------------------------------------------------
// IncrementalHistogram
// ---------------------------------------------------------------------------

IncrementalHistogram::IncrementalHistogram(HistogramOptions options)
    : options_(options) {}

void IncrementalHistogram::Append(double value) {
  values_.push_back(value);
  if (dirty_) return;
  // NaNs compare false on both sides and fall through to the binning
  // kernel, exactly as they do inside the batch scan.
  if (value < min_ || value > max_) {
    dirty_ = true;  // Range grew: every bucket boundary moves.
    return;
  }
  if (width_ > 0.0) {
    simd::HistogramBin(std::span<const double>(&value, 1), min_, width_,
                       counts_);
  } else {
    // Degenerate range (min == max): everything lands in bucket 0,
    // mirroring BuildFixedRangeHistogram.
    ++counts_[0];
  }
}

Result<stats::EquiWidthHistogram> IncrementalHistogram::Snapshot() {
  if (dirty_) {
    SM_ASSIGN_OR_RETURN(
        stats::EquiWidthHistogram rebuilt,
        stats::BuildEquiWidthHistogram(values_, options_.num_buckets));
    min_ = rebuilt.min;
    max_ = rebuilt.max;
    width_ = (max_ - min_) / static_cast<double>(options_.num_buckets);
    counts_ = std::move(rebuilt.counts);
    dirty_ = false;
    ++rebuilds_;
  }
  stats::EquiWidthHistogram histogram;
  histogram.min = min_;
  histogram.max = max_;
  histogram.counts = counts_;
  return histogram;
}

// ---------------------------------------------------------------------------
// IncrementalDailyProfile
// ---------------------------------------------------------------------------

IncrementalDailyProfile::IncrementalDailyProfile(int64_t household_id,
                                                 ParOptions options)
    : household_id_(household_id), options_(options) {
  const int p = options_.lags;
  const size_t num_coeffs = static_cast<size_t>(p > 0 ? p + 2 : 2);
  gram_.reserve(kHoursPerDay);
  xty_.reserve(kHoursPerDay);
  for (int hour = 0; hour < kHoursPerDay; ++hour) {
    gram_.emplace_back(num_coeffs, num_coeffs);
    xty_.emplace_back(num_coeffs, 0.0);
  }
}

int IncrementalDailyProfile::days() const {
  return static_cast<int>(consumption_.size()) / kHoursPerDay;
}

void IncrementalDailyProfile::Append(double consumption, double temperature) {
  consumption_.push_back(consumption);
  temperature_.push_back(temperature);
  if (options_.lags < 1) return;  // Fit() reports the error.
  if (consumption_.size() % kHoursPerDay != 0) return;
  const int completed = days() - 1;
  if (completed >= options_.lags) AccumulateDay(completed);
}

void IncrementalDailyProfile::AccumulateDay(int day) {
  const int p = options_.lags;
  const size_t k = static_cast<size_t>(p) + 2;
  std::vector<double> row(k);
  for (int hour = 0; hour < kHoursPerDay; ++hour) {
    const size_t t = static_cast<size_t>(day * kHoursPerDay + hour);
    row[0] = 1.0;
    for (int lag = 1; lag <= p; ++lag) {
      row[static_cast<size_t>(lag)] =
          consumption_[t - static_cast<size_t>(lag) * kHoursPerDay];
    }
    row[static_cast<size_t>(p) + 1] = temperature_[t];
    const double y = consumption_[t];

    // Rank-one update in Matrix::Gram's exact accumulation order: days
    // arrive ascending, so each upper-triangle cell sums the same terms
    // in the same sequence as the batch assembly — bit-identical.
    stats::Matrix& gram = gram_[static_cast<size_t>(hour)];
    for (size_t i = 0; i < k; ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      for (size_t j = i; j < k; ++j) {
        gram.At(i, j) += ri * row[j];
      }
    }
    std::vector<double>& xty = xty_[static_cast<size_t>(hour)];
    for (size_t c = 0; c < k; ++c) {
      xty[c] += row[c] * y;
    }
  }
}

Result<DailyProfileResult> IncrementalDailyProfile::Fit() const {
  if (options_.lags < 1) {
    return Status::InvalidArgument("PAR: need at least one lag");
  }
  const int p = options_.lags;
  const int num_days = days();
  const int usable_days = num_days - p;
  const int num_coeffs = p + 2;
  if (usable_days < num_coeffs + 1) {
    return Status::InvalidArgument(StringPrintf(
        "PAR: household %lld has %d days, need at least %d",
        static_cast<long long>(household_id_), num_days, p + num_coeffs + 1));
  }

  DailyProfileResult result;
  result.household_id = household_id_;
  result.profile.assign(kHoursPerDay, 0.0);
  result.coefficients.resize(kHoursPerDay);
  result.temperature_beta.assign(kHoursPerDay, 0.0);

  const size_t k = static_cast<size_t>(num_coeffs);
  for (int hour = 0; hour < kHoursPerDay; ++hour) {
    // Mirror the accumulated upper triangle the way Gram() does before
    // handing the normal equations to the shared ridge solve.
    stats::Matrix gram = gram_[static_cast<size_t>(hour)];
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < i; ++j) {
        gram.At(i, j) = gram.At(j, i);
      }
    }
    SM_ASSIGN_OR_RETURN(
        std::vector<double> beta,
        stats::SolveNormalEquations(gram, xty_[static_cast<size_t>(hour)]));
    result.temperature_beta[static_cast<size_t>(hour)] =
        beta[static_cast<size_t>(p) + 1];
    result.coefficients[static_cast<size_t>(hour)] = std::move(beta);
  }

  // Phase B replay over the retained series: identical per-day residual
  // accumulation to the batch kernel, now with the final betas.
  std::vector<double> acc(kHoursPerDay, 0.0);
  const std::span<const double> consumption(consumption_);
  const std::span<const double> temperature(temperature_);
  for (int d = p; d < num_days; ++d) {
    const size_t t0 = static_cast<size_t>(d) * kHoursPerDay;
    simd::AddResidual(acc, consumption.subspan(t0, kHoursPerDay),
                      temperature.subspan(t0, kHoursPerDay),
                      result.temperature_beta);
  }
  for (int hour = 0; hour < kHoursPerDay; ++hour) {
    double value =
        acc[static_cast<size_t>(hour)] / static_cast<double>(usable_days);
    if (options_.clamp_nonnegative) value = std::max(0.0, value);
    result.profile[static_cast<size_t>(hour)] = value;
  }
  return result;
}

// ---------------------------------------------------------------------------
// IncrementalThreeLine
// ---------------------------------------------------------------------------

IncrementalThreeLine::IncrementalThreeLine(int64_t household_id,
                                           ThreeLineOptions options)
    : household_id_(household_id), options_(options) {}

void IncrementalThreeLine::Append(double consumption, double temperature) {
  consumption_.push_back(consumption);
  temperature_.push_back(temperature);
  if (options_.temperature_bin_width <= 0.0) return;  // Fit() rejects.
  int32_t bin = 0;
  simd::BinIndicesInt32(std::span<const double>(&temperature, 1),
                        options_.temperature_bin_width, std::span(&bin, 1));
  bin_idx_.push_back(bin);
  bins_[bin].push_back(consumption);
}

Result<ThreeLineResult> IncrementalThreeLine::Fit(
    ThreeLinePhases* phases) const {
  if (consumption_.empty()) {
    return Status::InvalidArgument("3-line: empty series");
  }
  if (options_.temperature_bin_width <= 0.0) {
    return Status::InvalidArgument("3-line: bin width must be positive");
  }
  // The quantile pass consumes the bin lists, so hand it a copy and
  // keep the online state intact for the next reading.
  return internal::ComputeThreeLineBinned(consumption_, temperature_, bin_idx_,
                                          bins_, 0.0, household_id_, options_,
                                          phases, /*ctx=*/nullptr);
}

}  // namespace smartmeter::core
