#ifndef SMARTMETER_CORE_SIMILARITY_TASK_H_
#define SMARTMETER_CORE_SIMILARITY_TASK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/task_types.h"
#include "exec/query_context.h"
#include "table/columnar_batch.h"

namespace smartmeter::core {

/// Options for similarity search; the paper fixes k = 10 (Section 3.4).
struct SimilarityOptions {
  int k = 10;
};

/// A borrowed view of one consumer's series for the similarity kernel.
struct SeriesView {
  int64_t household_id;
  std::span<const double> values;
};

/// For every input series, finds the k most similar other series by
/// cosine similarity (Section 3.4). Exact all-pairs computation with
/// precomputed norms: O(n^2 * length) time, O(n * k) output. Result order
/// follows the input; matches are sorted best-first with ties broken by
/// household id. Fails if fewer than two series are given or lengths
/// mismatch. This quadratic scan is the benchmark's longest: `ctx` is
/// polled once per query row so cancellation lands within one row's work.
Result<std::vector<SimilarityResult>> ComputeSimilarityTopK(
    std::span<const SeriesView> series, const SimilarityOptions& options = {},
    const exec::QueryContext* ctx = nullptr);

/// The same kernel restricted to queries [query_begin, query_end) against
/// the full series set — the unit of work each thread / cluster task runs
/// when the quadratic loop is parallelized (Section 5.3.4). Norms for all
/// series are supplied by the caller so they are computed once.
Result<std::vector<SimilarityResult>> ComputeSimilarityTopKRange(
    std::span<const SeriesView> series, std::span<const double> norms,
    size_t query_begin, size_t query_end, const SimilarityOptions& options,
    const exec::QueryContext* ctx = nullptr);

/// Precomputes the L2 norm of every series.
std::vector<double> ComputeNorms(std::span<const SeriesView> series);

/// Views the first `limit` households of a columnar batch as similarity
/// inputs (0 = all). The views borrow the batch's memory; one shared
/// helper so every engine builds the self-join input the same way.
std::vector<SeriesView> BuildSeriesViews(const table::ColumnarBatch& batch,
                                         size_t limit = 0);

/// Options for SAX-accelerated approximate similarity search (an
/// extension following the paper's reference [27]: symbolic
/// representation of smart meter series).
struct ApproxSimilarityOptions {
  SimilarityOptions base;
  /// PAA/SAX word length; more segments = tighter filter, slower.
  int sax_segments = 32;
  /// SAX alphabet size (2..16).
  int sax_alphabet = 8;
  /// Exact cosine is evaluated on the `candidate_factor * k` candidates
  /// with the smallest SAX lower-bound distance.
  int candidate_factor = 8;
};

/// Approximate top-k similarity search: ranks candidate pairs by the SAX
/// MINDIST lower bound over z-normalized series (O(word) per pair rather
/// than O(length)), then evaluates exact cosine similarity only on the
/// best candidates. Trades a little recall for a large constant-factor
/// speedup of the quadratic task; `bench_ablation_sax` quantifies the
/// trade. Result layout matches ComputeSimilarityTopK.
Result<std::vector<SimilarityResult>> ComputeSimilarityTopKApprox(
    std::span<const SeriesView> series,
    const ApproxSimilarityOptions& options = {},
    const exec::QueryContext* ctx = nullptr);

}  // namespace smartmeter::core

#endif  // SMARTMETER_CORE_SIMILARITY_TASK_H_
