#include "core/similarity_task.h"

#include <algorithm>
#include <numeric>

#include "stats/distance.h"
#include "stats/sax.h"
#include "stats/topk.h"

namespace smartmeter::core {

std::vector<double> ComputeNorms(std::span<const SeriesView> series) {
  std::vector<double> norms;
  norms.reserve(series.size());
  for (const SeriesView& s : series) norms.push_back(stats::Norm(s.values));
  return norms;
}

Result<std::vector<SimilarityResult>> ComputeSimilarityTopKRange(
    std::span<const SeriesView> series, std::span<const double> norms,
    size_t query_begin, size_t query_end, const SimilarityOptions& options,
    const exec::QueryContext* ctx) {
  if (series.size() < 2) {
    return Status::InvalidArgument("similarity: need at least two series");
  }
  if (norms.size() != series.size()) {
    return Status::InvalidArgument("similarity: norms size mismatch");
  }
  if (query_end > series.size() || query_begin > query_end) {
    return Status::InvalidArgument("similarity: bad query range");
  }
  if (options.k < 1) {
    return Status::InvalidArgument("similarity: k must be >= 1");
  }
  const size_t length = series[0].values.size();
  for (const SeriesView& s : series) {
    if (s.values.size() != length) {
      return Status::InvalidArgument("similarity: series length mismatch");
    }
  }

  std::vector<SimilarityResult> results;
  results.reserve(query_end - query_begin);
  for (size_t q = query_begin; q < query_end; ++q) {
    if (ctx != nullptr && ctx->ShouldStop()) return ctx->CheckNotStopped();
    stats::TopK<int64_t> top(static_cast<size_t>(options.k));
    for (size_t o = 0; o < series.size(); ++o) {
      if (o == q) continue;
      const double cosine = stats::CosineSimilarityPrenormed(
          series[q].values, norms[q], series[o].values, norms[o]);
      top.Offer(cosine, series[o].household_id);
    }
    SimilarityResult result;
    result.household_id = series[q].household_id;
    const auto sorted = top.Sorted();
    result.matches.reserve(sorted.size());
    for (const auto& entry : sorted) {
      result.matches.push_back({entry.id, entry.score});
    }
    results.push_back(std::move(result));
  }
  return results;
}

Result<std::vector<SimilarityResult>> ComputeSimilarityTopK(
    std::span<const SeriesView> series, const SimilarityOptions& options,
    const exec::QueryContext* ctx) {
  const std::vector<double> norms = ComputeNorms(series);
  return ComputeSimilarityTopKRange(series, norms, 0, series.size(), options,
                                    ctx);
}

Result<std::vector<SimilarityResult>> ComputeSimilarityTopKApprox(
    std::span<const SeriesView> series,
    const ApproxSimilarityOptions& options,
    const exec::QueryContext* ctx) {
  const size_t n = series.size();
  if (n < 2) {
    return Status::InvalidArgument("similarity: need at least two series");
  }
  if (options.base.k < 1 || options.candidate_factor < 1) {
    return Status::InvalidArgument("similarity: bad k or candidate factor");
  }
  const size_t length = series[0].values.size();
  for (const SeriesView& s : series) {
    if (s.values.size() != length) {
      return Status::InvalidArgument("similarity: series length mismatch");
    }
  }

  // Precompute SAX words and exact norms once.
  std::vector<stats::SaxWord> words;
  words.reserve(n);
  for (const SeriesView& s : series) {
    SM_ASSIGN_OR_RETURN(
        stats::SaxWord word,
        stats::ComputeSaxWord(s.values, options.sax_segments,
                              options.sax_alphabet));
    words.push_back(std::move(word));
  }
  const std::vector<double> norms = ComputeNorms(series);

  const size_t candidates = std::min(
      n - 1, static_cast<size_t>(options.base.k) *
                 static_cast<size_t>(options.candidate_factor));
  std::vector<SimilarityResult> results;
  results.reserve(n);
  std::vector<std::pair<double, size_t>> ranked(n - 1);
  for (size_t q = 0; q < n; ++q) {
    if (ctx != nullptr && ctx->ShouldStop()) return ctx->CheckNotStopped();
    // Filter: rank all others by the cheap SAX lower bound.
    size_t slot = 0;
    for (size_t o = 0; o < n; ++o) {
      if (o == q) continue;
      SM_ASSIGN_OR_RETURN(double mindist,
                          stats::SaxMinDist(words[q], words[o], length));
      ranked[slot++] = {mindist, o};
    }
    std::nth_element(ranked.begin(),
                     ranked.begin() + static_cast<ptrdiff_t>(candidates - 1),
                     ranked.end());
    // Refine: exact cosine on the shortlisted candidates only.
    stats::TopK<int64_t> top(static_cast<size_t>(options.base.k));
    for (size_t c = 0; c < candidates; ++c) {
      const size_t o = ranked[c].second;
      const double cosine = stats::CosineSimilarityPrenormed(
          series[q].values, norms[q], series[o].values, norms[o]);
      top.Offer(cosine, series[o].household_id);
    }
    SimilarityResult result;
    result.household_id = series[q].household_id;
    const auto sorted = top.Sorted();
    result.matches.reserve(sorted.size());
    for (const auto& entry : sorted) {
      result.matches.push_back({entry.id, entry.score});
    }
    results.push_back(std::move(result));
  }
  return results;
}

std::vector<SeriesView> BuildSeriesViews(const table::ColumnarBatch& batch,
                                         size_t limit) {
  size_t n = batch.count();
  if (limit > 0) n = std::min(n, limit);
  std::vector<SeriesView> views;
  views.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    views.push_back({batch.household_id(i), batch.consumption(i)});
  }
  return views;
}

}  // namespace smartmeter::core
