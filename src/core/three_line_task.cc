#include "core/three_line_task.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "simd/simd.h"
#include "stats/quantile.h"

namespace smartmeter::core {

namespace {

/// A (temperature, consumption) reading belonging to a percentile band.
struct BandPoint {
  double temperature;
  double value;

  bool operator<(const BandPoint& other) const {
    if (temperature != other.temperature) {
      return temperature < other.temperature;
    }
    return value < other.value;
  }
};

/// Prefix sums over sorted band points permitting O(1) least-squares fits
/// of any contiguous range; this keeps the optimal-breakpoint search at
/// O(P^2) instead of O(P^3).
class SegmentFitter {
 public:
  explicit SegmentFitter(const std::vector<BandPoint>& points) {
    const size_t n = points.size();
    sx_.assign(n + 1, 0.0);
    sy_.assign(n + 1, 0.0);
    sxx_.assign(n + 1, 0.0);
    sxy_.assign(n + 1, 0.0);
    syy_.assign(n + 1, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double x = points[i].temperature;
      const double y = points[i].value;
      sx_[i + 1] = sx_[i] + x;
      sy_[i + 1] = sy_[i] + y;
      sxx_[i + 1] = sxx_[i] + x * x;
      sxy_[i + 1] = sxy_[i] + x * y;
      syy_[i + 1] = syy_[i] + y * y;
    }
  }

  /// Least-squares line over points [begin, end); also returns the SSE.
  stats::LinearFit Fit(size_t begin, size_t end, double* sse) const {
    const double n = static_cast<double>(end - begin);
    const double sx = sx_[end] - sx_[begin];
    const double sy = sy_[end] - sy_[begin];
    const double sxx = sxx_[end] - sxx_[begin];
    const double sxy = sxy_[end] - sxy_[begin];
    const double syy = syy_[end] - syy_[begin];
    const double var_x = sxx - sx * sx / n;
    const double cov = sxy - sx * sy / n;
    const double var_y = syy - sy * sy / n;
    stats::LinearFit fit;
    fit.n = end - begin;
    if (var_x <= 1e-12) {
      fit.slope = 0.0;
      fit.intercept = sy / n;
      *sse = std::max(0.0, var_y);
      return fit;
    }
    fit.slope = cov / var_x;
    fit.intercept = (sy - fit.slope * sx) / n;
    *sse = std::max(0.0, var_y - fit.slope * cov);
    fit.r_squared = var_y > 0.0 ? 1.0 - *sse / var_y : 1.0;
    return fit;
  }

 private:
  std::vector<double> sx_, sy_, sxx_, sxy_, syy_;
};

/// Fits the optimal 3-piece contiguous model to `points` (sorted by
/// temperature). Returns segments [0,i), [i,j), [j,n).
PiecewiseLines FitThreeSegments(const std::vector<BandPoint>& points,
                                int min_bins) {
  const size_t n = points.size();
  const SegmentFitter fitter(points);
  // Each segment must hold a minimum share of the points so the outer
  // lines describe regimes, not outliers.
  const size_t min_len = std::max<size_t>(
      static_cast<size_t>(min_bins), n / 20);

  PiecewiseLines out;
  if (n < 3 * min_len || n < 6) {
    // Too few points for three segments: one line replicated across the
    // range keeps every downstream consumer well defined.
    double sse = 0.0;
    const stats::LinearFit fit = fitter.Fit(0, n, &sse);
    const double lo = points.front().temperature;
    const double hi = points.back().temperature;
    const double third = (hi - lo) / 3.0;
    out.left = {lo, lo + third, fit};
    out.mid = {lo + third, lo + 2 * third, fit};
    out.right = {lo + 2 * third, hi, fit};
    return out;
  }

  double best_sse = std::numeric_limits<double>::infinity();
  size_t best_i = min_len;
  size_t best_j = 2 * min_len;
  for (size_t i = min_len; i + 2 * min_len <= n; ++i) {
    double sse_left = 0.0;
    fitter.Fit(0, i, &sse_left);
    if (sse_left >= best_sse) break;  // SSE(0, i) only grows with i.
    for (size_t j = i + min_len; j + min_len <= n; ++j) {
      double sse_mid = 0.0, sse_right = 0.0;
      fitter.Fit(i, j, &sse_mid);
      if (sse_left + sse_mid >= best_sse) continue;
      fitter.Fit(j, n, &sse_right);
      const double total = sse_left + sse_mid + sse_right;
      if (total < best_sse) {
        best_sse = total;
        best_i = i;
        best_j = j;
      }
    }
  }

  double unused = 0.0;
  const stats::LinearFit left = fitter.Fit(0, best_i, &unused);
  const stats::LinearFit mid = fitter.Fit(best_i, best_j, &unused);
  const stats::LinearFit right = fitter.Fit(best_j, n, &unused);
  // Breakpoints sit halfway between the adjoining point temperatures.
  const double t1 = 0.5 * (points[best_i - 1].temperature +
                           points[best_i].temperature);
  const double t2 = 0.5 * (points[best_j - 1].temperature +
                           points[best_j].temperature);
  out.left = {points.front().temperature, t1, left};
  out.mid = {t1, t2, mid};
  out.right = {t2, points.back().temperature, right};
  return out;
}

/// Continuity adjustment (the paper's final step): the outer lines are
/// shifted vertically so each meets the middle line at the shared
/// breakpoint. Slopes (the gradients reported to the user) are preserved.
void MakeContinuous(PiecewiseLines* lines) {
  const double t1 = lines->left.t_high;
  const double gap_left = lines->mid.ValueAt(t1) - lines->left.ValueAt(t1);
  lines->left.fit.intercept += gap_left;
  const double t2 = lines->mid.t_high;
  const double gap_right = lines->mid.ValueAt(t2) - lines->right.ValueAt(t2);
  lines->right.fit.intercept += gap_right;
}

}  // namespace

Result<ThreeLineResult> ComputeThreeLine(std::span<const double> consumption,
                                         std::span<const double> temperature,
                                         int64_t household_id,
                                         const ThreeLineOptions& options,
                                         ThreeLinePhases* phases,
                                         const exec::QueryContext* ctx) {
  if (ctx != nullptr && ctx->ShouldStop()) return ctx->CheckNotStopped();
  if (consumption.size() != temperature.size()) {
    return Status::InvalidArgument("3-line: series length mismatch");
  }
  if (consumption.empty()) {
    return Status::InvalidArgument("3-line: empty series");
  }
  if (options.temperature_bin_width <= 0.0) {
    return Status::InvalidArgument("3-line: bin width must be positive");
  }

  // ---- Binning: every reading's temperature bin, one vectorized pass --
  Stopwatch bin_clock;
  // Non-finite or out-of-range temperatures saturate to the INT32_MIN
  // sentinel bin (the old per-reading float->int64 cast was undefined
  // for them); the sentinel bin never defines thresholds, so junk
  // readings fall out of the band selection below.
  std::vector<int32_t> bin_idx(consumption.size());
  simd::BinIndicesInt32(temperature, options.temperature_bin_width, bin_idx);
  std::map<int32_t, std::vector<double>> bins;
  for (size_t i = 0; i < consumption.size(); ++i) {
    bins[bin_idx[i]].push_back(consumption[i]);
  }
  return internal::ComputeThreeLineBinned(
      consumption, temperature, bin_idx, std::move(bins),
      bin_clock.ElapsedSeconds(), household_id, options, phases, ctx);
}

namespace internal {

Result<ThreeLineResult> ComputeThreeLineBinned(
    std::span<const double> consumption, std::span<const double> temperature,
    std::span<const int32_t> bin_idx,
    std::map<int32_t, std::vector<double>> bins, double bin_seconds,
    int64_t household_id, const ThreeLineOptions& options,
    ThreeLinePhases* phases, const exec::QueryContext* ctx) {
  // ---- T1: 10th/90th consumption percentile per temperature bin --------
  Stopwatch t1_clock;
  constexpr int32_t kJunkBin = std::numeric_limits<int32_t>::min();
  // Per retained bin: the p10/p90 thresholds that define the two bands.
  std::map<int32_t, std::pair<double, double>> thresholds;
  for (auto& [bin, values] : bins) {
    if (bin == kJunkBin) continue;
    if (static_cast<int>(values.size()) < options.min_points_per_bin) {
      continue;
    }
    SM_ASSIGN_OR_RETURN(
        double lo, stats::QuantileInPlace(&values, options.low_percentile));
    SM_ASSIGN_OR_RETURN(
        double hi, stats::QuantileInPlace(&values, options.high_percentile));
    thresholds[bin] = {lo, hi};
  }
  if (thresholds.size() < 3) {
    return Status::InvalidArgument(StringPrintf(
        "3-line: household %lld has only %zu populated temperature bins",
        static_cast<long long>(household_id), thresholds.size()));
  }
  const double t1_seconds = bin_seconds + t1_clock.ElapsedSeconds();
  if (ctx != nullptr && ctx->ShouldStop()) return ctx->CheckNotStopped();

  // ---- T2: regression over the band readings ---------------------------
  // Following Birt et al., the lines are fitted to the readings in the
  // extreme deciles of each bin (at or above the 90th percentile / at or
  // below the 10th), not to a single summary point per bin.
  Stopwatch t2_clock;
  std::vector<BandPoint> high_points, low_points;
  size_t high_reserved = 0;
  size_t low_reserved = 0;
  const int32_t base = thresholds.begin()->first;
  const int64_t span =
      static_cast<int64_t>(thresholds.rbegin()->first) - base + 1;
  // Dense NaN-filled threshold tables let the selection kernel gather by
  // bin; bins dropped in T1 stay NaN and their compares select nothing.
  // Cap the table size so an adversarially tiny bin width over a wide
  // temperature range cannot blow up memory.
  constexpr int64_t kMaxDenseSpan = int64_t{1} << 16;
  if (span <= kMaxDenseSpan) {
    constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
    std::vector<double> lo_table(static_cast<size_t>(span), kNaN);
    std::vector<double> hi_table(static_cast<size_t>(span), kNaN);
    for (const auto& [bin, lo_hi] : thresholds) {
      lo_table[static_cast<size_t>(bin - base)] = lo_hi.first;
      hi_table[static_cast<size_t>(bin - base)] = lo_hi.second;
    }
    // Count first, then reserve exactly: the old size()/8 heuristic
    // reallocated repeatedly on skewed inputs where most readings land
    // in a band (e.g. a near-constant series).
    size_t lo_count = 0;
    size_t hi_count = 0;
    simd::CountBands(consumption, bin_idx, base, lo_table, hi_table,
                     &lo_count, &hi_count);
    std::vector<int32_t> lo_indices;
    std::vector<int32_t> hi_indices;
    lo_indices.reserve(lo_count);
    hi_indices.reserve(hi_count);
    simd::SelectBands(consumption, bin_idx, base, lo_table, hi_table,
                      &lo_indices, &hi_indices);
    high_points.reserve(hi_count);
    low_points.reserve(lo_count);
    high_reserved = high_points.capacity();
    low_reserved = low_points.capacity();
    for (const int32_t i : hi_indices) {
      high_points.push_back({temperature[i], consumption[i]});
    }
    for (const int32_t i : lo_indices) {
      low_points.push_back({temperature[i], consumption[i]});
    }
  } else {
    // Degenerate spread: fall back to map lookups, still counting before
    // the reserve so the band vectors never reallocate.
    size_t lo_count = 0;
    size_t hi_count = 0;
    for (size_t i = 0; i < consumption.size(); ++i) {
      auto it = thresholds.find(bin_idx[i]);
      if (it == thresholds.end()) continue;  // Sparse bin, dropped in T1.
      if (consumption[i] >= it->second.second) ++hi_count;
      if (consumption[i] <= it->second.first) ++lo_count;
    }
    high_points.reserve(hi_count);
    low_points.reserve(lo_count);
    high_reserved = high_points.capacity();
    low_reserved = low_points.capacity();
    for (size_t i = 0; i < consumption.size(); ++i) {
      auto it = thresholds.find(bin_idx[i]);
      if (it == thresholds.end()) continue;
      const auto& [lo, hi] = it->second;
      if (consumption[i] >= hi) {
        high_points.push_back({temperature[i], consumption[i]});
      }
      if (consumption[i] <= lo) {
        low_points.push_back({temperature[i], consumption[i]});
      }
    }
  }
  const size_t band_reallocs =
      (high_points.capacity() != high_reserved ? 1 : 0) +
      (low_points.capacity() != low_reserved ? 1 : 0);
  const size_t band_points = high_points.size() + low_points.size();
  std::sort(high_points.begin(), high_points.end());
  std::sort(low_points.begin(), low_points.end());

  ThreeLineResult result;
  result.household_id = household_id;
  result.p90 = FitThreeSegments(high_points, options.min_bins_per_segment);
  result.p10 = FitThreeSegments(low_points, options.min_bins_per_segment);
  const double t2_seconds = t2_clock.ElapsedSeconds();
  if (ctx != nullptr && ctx->ShouldStop()) return ctx->CheckNotStopped();

  // ---- T3: continuity adjustment ----------------------------------------
  Stopwatch t3_clock;
  MakeContinuous(&result.p90);
  MakeContinuous(&result.p10);
  result.heating_gradient = -result.p90.left.fit.slope;
  result.cooling_gradient = result.p90.right.fit.slope;
  result.base_load = std::max(0.0, result.p10.MinValue());
  const double t3_seconds = t3_clock.ElapsedSeconds();

  if (phases != nullptr) {
    phases->quantile_seconds += t1_seconds;
    phases->regression_seconds += t2_seconds;
    phases->adjust_seconds += t3_seconds;
    phases->band_points += band_points;
    phases->band_reallocs += band_reallocs;
  }
  return result;
}

}  // namespace internal

Status ComputeThreeLineRange(const table::ColumnarBatch& batch, size_t begin,
                             size_t end, const ThreeLineOptions& options,
                             ThreeLinePhases* phases,
                             const exec::QueryContext* ctx,
                             std::span<ThreeLineResult> out) {
  if (end > out.size() || end > batch.count()) {
    return Status::InvalidArgument("three-line range exceeds batch/output");
  }
  const std::span<const double> temperature = batch.temperature();
  for (size_t i = begin; i < end; ++i) {
    SM_ASSIGN_OR_RETURN(
        out[i], ComputeThreeLine(batch.consumption(i), temperature,
                                 batch.household_id(i), options, phases, ctx));
  }
  return Status::OK();
}

}  // namespace smartmeter::core
