#include "obs/report.h"

#include <cstring>

namespace smartmeter::obs {

namespace {

JsonValue RunToJson(const RunRecord& run) {
  JsonValue j = JsonValue::Object();
  j.Set("engine", JsonValue(run.engine));
  j.Set("task", JsonValue(run.task));
  j.Set("layout", JsonValue(run.layout));
  j.Set("threads", JsonValue(run.threads));
  j.Set("warm", JsonValue(run.warm));
  j.Set("simulated", JsonValue(run.simulated));
  j.Set("attach_seconds", JsonValue(run.attach_seconds));
  j.Set("warmup_seconds", JsonValue(run.warmup_seconds));
  j.Set("task_seconds", JsonValue(run.task_seconds));
  j.Set("memory_bytes", JsonValue(run.memory_bytes));
  JsonValue phases = JsonValue::Object();
  phases.Set("quantile_seconds", JsonValue(run.quantile_seconds));
  phases.Set("regression_seconds", JsonValue(run.regression_seconds));
  phases.Set("adjust_seconds", JsonValue(run.adjust_seconds));
  j.Set("phases", std::move(phases));
  if (!run.stages.empty()) {
    JsonValue stages = JsonValue::Array();
    for (const StageRow& stage : run.stages) {
      JsonValue row = JsonValue::Object();
      row.Set("name", JsonValue(stage.name));
      row.Set("seconds", JsonValue(stage.seconds));
      row.Set("partitions", JsonValue(stage.partitions));
      // Fault fields appear only when the simulated cluster injected
      // something, so healthy-run reports are byte-stable.
      if (stage.retries != 0) row.Set("retries", JsonValue(stage.retries));
      if (stage.stragglers != 0) {
        row.Set("stragglers", JsonValue(stage.stragglers));
      }
      if (stage.speculative_launched != 0) {
        row.Set("speculative_launched",
                JsonValue(stage.speculative_launched));
      }
      if (stage.speculative_wins != 0) {
        row.Set("speculative_wins", JsonValue(stage.speculative_wins));
      }
      stages.Append(std::move(row));
    }
    j.Set("stages", std::move(stages));
  }
  // The scan block appears only when a block-indexed source reported
  // something, so text-source reports are byte-stable.
  if (run.bytes_scanned != 0 || run.blocks_decoded != 0 ||
      run.blocks_pruned != 0 || run.compression_ratio != 0.0) {
    JsonValue scan = JsonValue::Object();
    scan.Set("bytes_scanned", JsonValue(run.bytes_scanned));
    scan.Set("blocks_decoded", JsonValue(run.blocks_decoded));
    scan.Set("blocks_pruned", JsonValue(run.blocks_pruned));
    scan.Set("compression_ratio", JsonValue(run.compression_ratio));
    j.Set("scan", std::move(scan));
  }
  if (!run.outcome.empty()) {
    JsonValue serving = JsonValue::Object();
    serving.Set("outcome", JsonValue(run.outcome));
    serving.Set("clients", JsonValue(run.clients));
    serving.Set("queries_ok", JsonValue(run.queries_ok));
    serving.Set("queries_shed", JsonValue(run.queries_shed));
    serving.Set("p50_seconds", JsonValue(run.p50_seconds));
    serving.Set("p99_seconds", JsonValue(run.p99_seconds));
    serving.Set("queries_per_second", JsonValue(run.queries_per_second));
    // Sharding fields appear only for sharded multi-tenant runs, so
    // earlier serving reports stay byte-stable.
    if (run.shards != 0) serving.Set("shards", JsonValue(run.shards));
    if (!run.tenants.empty()) {
      JsonValue tenants = JsonValue::Array();
      for (const TenantRow& tenant : run.tenants) {
        JsonValue row = JsonValue::Object();
        row.Set("tenant", JsonValue(tenant.tenant));
        row.Set("submitted", JsonValue(tenant.submitted));
        row.Set("queries_ok", JsonValue(tenant.queries_ok));
        row.Set("queries_shed", JsonValue(tenant.queries_shed));
        row.Set("shed_rate", JsonValue(tenant.shed_rate));
        row.Set("p99_seconds", JsonValue(tenant.p99_seconds));
        tenants.Append(std::move(row));
      }
      serving.Set("tenants", std::move(tenants));
    }
    j.Set("serving", std::move(serving));
  }
  // The ingest block appears only for lambda-path runs, so batch-only
  // reports are byte-stable.
  if (run.ingest_rate != 0.0 || run.freshness_p50_seconds != 0.0 ||
      run.freshness_p99_seconds != 0.0) {
    JsonValue ingest = JsonValue::Object();
    ingest.Set("rate", JsonValue(run.ingest_rate));
    ingest.Set("freshness_p50", JsonValue(run.freshness_p50_seconds));
    ingest.Set("freshness_p99", JsonValue(run.freshness_p99_seconds));
    j.Set("ingest", std::move(ingest));
  }
  return j;
}

RunRecord RunFromJson(const JsonValue& j) {
  RunRecord run;
  run.engine = j.Get("engine").AsString();
  run.task = j.Get("task").AsString();
  run.layout = j.Get("layout").AsString();
  run.threads = static_cast<int>(j.Get("threads").AsInt(1));
  run.warm = j.Get("warm").AsBool();
  run.simulated = j.Get("simulated").AsBool();
  run.attach_seconds = j.Get("attach_seconds").AsDouble();
  run.warmup_seconds = j.Get("warmup_seconds").AsDouble();
  run.task_seconds = j.Get("task_seconds").AsDouble();
  run.memory_bytes = j.Get("memory_bytes").AsInt();
  const JsonValue& phases = j.Get("phases");
  run.quantile_seconds = phases.Get("quantile_seconds").AsDouble();
  run.regression_seconds = phases.Get("regression_seconds").AsDouble();
  run.adjust_seconds = phases.Get("adjust_seconds").AsDouble();
  // Stage rows are optional: reports written before the plan IR simply
  // lack them.
  if (j.Has("stages")) {
    for (const JsonValue& row : j.Get("stages").items()) {
      StageRow stage;
      stage.name = row.Get("name").AsString();
      stage.seconds = row.Get("seconds").AsDouble();
      stage.partitions = static_cast<int>(row.Get("partitions").AsInt(1));
      if (row.Has("retries")) stage.retries = row.Get("retries").AsInt();
      if (row.Has("stragglers")) {
        stage.stragglers = row.Get("stragglers").AsInt();
      }
      if (row.Has("speculative_launched")) {
        stage.speculative_launched =
            row.Get("speculative_launched").AsInt();
      }
      if (row.Has("speculative_wins")) {
        stage.speculative_wins = row.Get("speculative_wins").AsInt();
      }
      run.stages.push_back(std::move(stage));
    }
  }
  // Scan block is optional: reports written before the block-indexed
  // column format (or from text sources) simply lack it.
  if (j.Has("scan")) {
    const JsonValue& scan = j.Get("scan");
    run.bytes_scanned = scan.Get("bytes_scanned").AsInt();
    run.blocks_decoded = scan.Get("blocks_decoded").AsInt();
    run.blocks_pruned = scan.Get("blocks_pruned").AsInt();
    run.compression_ratio = scan.Get("compression_ratio").AsDouble();
  }
  // Serving block is optional: reports written before the serving layer
  // (or batch-only reports) simply lack it.
  if (j.Has("serving")) {
    const JsonValue& serving = j.Get("serving");
    run.outcome = serving.Get("outcome").AsString();
    run.clients = static_cast<int>(serving.Get("clients").AsInt());
    run.queries_ok = serving.Get("queries_ok").AsInt();
    run.queries_shed = serving.Get("queries_shed").AsInt();
    run.p50_seconds = serving.Get("p50_seconds").AsDouble();
    run.p99_seconds = serving.Get("p99_seconds").AsDouble();
    run.queries_per_second = serving.Get("queries_per_second").AsDouble();
    if (serving.Has("shards")) {
      run.shards = static_cast<int>(serving.Get("shards").AsInt());
    }
    if (serving.Has("tenants")) {
      for (const JsonValue& row : serving.Get("tenants").items()) {
        TenantRow tenant;
        tenant.tenant = row.Get("tenant").AsString();
        tenant.submitted = row.Get("submitted").AsInt();
        tenant.queries_ok = row.Get("queries_ok").AsInt();
        tenant.queries_shed = row.Get("queries_shed").AsInt();
        tenant.shed_rate = row.Get("shed_rate").AsDouble();
        tenant.p99_seconds = row.Get("p99_seconds").AsDouble();
        run.tenants.push_back(std::move(tenant));
      }
    }
  }
  // Ingest block is optional: reports written before the real-time path
  // (or batch-only reports) simply lack it.
  if (j.Has("ingest")) {
    const JsonValue& ingest = j.Get("ingest");
    run.ingest_rate = ingest.Get("rate").AsDouble();
    run.freshness_p50_seconds = ingest.Get("freshness_p50").AsDouble();
    run.freshness_p99_seconds = ingest.Get("freshness_p99").AsDouble();
  }
  return run;
}

JsonValue MetricsToJson(const MetricsSnapshot& metrics) {
  JsonValue j = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& sample : metrics.counters) {
    counters.Set(sample.name, JsonValue(sample.value));
  }
  j.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& sample : metrics.gauges) {
    gauges.Set(sample.name, JsonValue(sample.value));
  }
  j.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::Object();
  for (const auto& sample : metrics.histograms) {
    JsonValue h = JsonValue::Object();
    h.Set("count", JsonValue(sample.count));
    h.Set("total_seconds", JsonValue(sample.total_seconds));
    JsonValue buckets = JsonValue::Array();
    for (int64_t count : sample.bucket_counts) {
      buckets.Append(JsonValue(count));
    }
    h.Set("bucket_counts", std::move(buckets));
    histograms.Set(sample.name, std::move(h));
  }
  j.Set("histograms", std::move(histograms));
  return j;
}

MetricsSnapshot MetricsFromJson(const JsonValue& j) {
  MetricsSnapshot metrics;
  for (const auto& [name, value] : j.Get("counters").members()) {
    metrics.counters.push_back({name, value.AsInt()});
  }
  for (const auto& [name, value] : j.Get("gauges").members()) {
    metrics.gauges.push_back({name, value.AsInt()});
  }
  for (const auto& [name, value] : j.Get("histograms").members()) {
    MetricsSnapshot::HistogramSample sample;
    sample.name = name;
    sample.count = value.Get("count").AsInt();
    sample.total_seconds = value.Get("total_seconds").AsDouble();
    for (const JsonValue& count : value.Get("bucket_counts").items()) {
      sample.bucket_counts.push_back(count.AsInt());
    }
    metrics.histograms.push_back(std::move(sample));
  }
  return metrics;
}

JsonValue SpanToJson(const TraceEvent& span) {
  JsonValue j = JsonValue::Object();
  j.Set("name", JsonValue(std::string(span.name)));
  j.Set("begin_ns", JsonValue(span.begin_ns));
  j.Set("end_ns", JsonValue(span.end_ns));
  j.Set("thread", JsonValue(static_cast<int64_t>(span.thread_id)));
  j.Set("depth", JsonValue(static_cast<int64_t>(span.depth)));
  return j;
}

TraceEvent SpanFromJson(const JsonValue& j) {
  TraceEvent span;
  std::strncpy(span.name, j.Get("name").AsString().c_str(),
               TraceEvent::kMaxName);
  span.begin_ns = j.Get("begin_ns").AsInt();
  span.end_ns = j.Get("end_ns").AsInt();
  span.thread_id = static_cast<uint32_t>(j.Get("thread").AsInt());
  span.depth = static_cast<uint16_t>(j.Get("depth").AsInt());
  return span;
}

}  // namespace

JsonValue BenchReport::ToJson() const {
  JsonValue j = JsonValue::Object();
  j.Set("schema", JsonValue("smartmeter-bench-report/v1"));
  j.Set("label", JsonValue(label_));
  JsonValue runs = JsonValue::Array();
  for (const RunRecord& run : runs_) {
    runs.Append(RunToJson(run));
  }
  j.Set("runs", std::move(runs));
  j.Set("metrics", MetricsToJson(metrics_));
  JsonValue spans = JsonValue::Array();
  for (const TraceEvent& span : spans_) {
    spans.Append(SpanToJson(span));
  }
  j.Set("spans", std::move(spans));
  j.Set("dropped_spans", JsonValue(dropped_spans_));
  return j;
}

bool BenchReport::FromJson(const JsonValue& json, BenchReport* out,
                           std::string* error) {
  if (!json.is_object()) {
    if (error != nullptr) *error = "report is not a JSON object";
    return false;
  }
  if (json.Get("schema").AsString() != "smartmeter-bench-report/v1") {
    if (error != nullptr) {
      *error = "unknown report schema '" + json.Get("schema").AsString() + "'";
    }
    return false;
  }
  *out = BenchReport();
  out->label_ = json.Get("label").AsString();
  for (const JsonValue& run : json.Get("runs").items()) {
    out->runs_.push_back(RunFromJson(run));
  }
  out->metrics_ = MetricsFromJson(json.Get("metrics"));
  for (const JsonValue& span : json.Get("spans").items()) {
    out->spans_.push_back(SpanFromJson(span));
  }
  out->dropped_spans_ = json.Get("dropped_spans").AsInt();
  return true;
}

bool BenchReport::ReadFile(const std::string& path, BenchReport* out,
                           std::string* error) {
  JsonValue json;
  if (!ReadJsonFile(path, &json, error)) return false;
  return FromJson(json, out, error);
}

}  // namespace smartmeter::obs
