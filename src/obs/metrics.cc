#include "obs/metrics.h"

#include <cmath>
#include <limits>

namespace smartmeter::obs {

size_t ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

int64_t Counter::Value() const {
  int64_t sum = 0;
  for (const Cell& cell : cells_) {
    sum += cell.value.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::Reset() {
  for (Cell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::UpdateMax(int64_t value) {
  int64_t current = value_.load(std::memory_order_relaxed);
  while (value > current &&
         !value_.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::BucketUpperSeconds(size_t i) {
  if (i + 1 >= kBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(int64_t{1} << i) * 1e-6;
}

void LatencyHistogram::Record(double seconds) {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN / negative clock skew.
  const double micros = seconds * 1e6;
  size_t bucket = 0;
  while (bucket + 1 < kBuckets &&
         micros >= static_cast<double>(int64_t{1} << bucket)) {
    ++bucket;
  }
  Shard& shard = shards_[ThreadShardIndex() % kMetricShards];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum_nanos.fetch_add(static_cast<int64_t>(seconds * 1e9),
                            std::memory_order_relaxed);
}

int64_t LatencyHistogram::TotalCount() const {
  int64_t sum = 0;
  for (const Shard& shard : shards_) {
    sum += shard.count.load(std::memory_order_relaxed);
  }
  return sum;
}

double LatencyHistogram::TotalSeconds() const {
  int64_t nanos = 0;
  for (const Shard& shard : shards_) {
    nanos += shard.sum_nanos.load(std::memory_order_relaxed);
  }
  return static_cast<double>(nanos) * 1e-9;
}

std::vector<int64_t> LatencyHistogram::BucketCounts() const {
  std::vector<int64_t> counts(kBuckets, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < kBuckets; ++i) {
      counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

void LatencyHistogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum_nanos.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<LatencyHistogram>(
                                             new LatencyHistogram(
                                                 std::string(name))))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back({name, histogram->TotalCount(),
                                   histogram->TotalSeconds(),
                                   histogram->BucketCounts()});
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace smartmeter::obs
