#ifndef SMARTMETER_OBS_REPORT_H_
#define SMARTMETER_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smartmeter::obs {

/// One benchmark execution, flattened for export: the RunReport fields
/// plus the identifying spec dimensions, all engine-agnostic strings so
/// obs stays below the engines library in the build.
/// One physical-plan stage's contribution to a run (mirrors
/// exec::StageTiming without depending on the exec library). The fault
/// fields count injected cluster events (retries, stragglers,
/// speculation) and serialize only when nonzero, so healthy-cluster and
/// pre-fault-model reports round-trip unchanged.
struct StageRow {
  std::string name;
  double seconds = 0.0;
  int partitions = 1;
  int64_t retries = 0;
  int64_t stragglers = 0;
  int64_t speculative_launched = 0;
  int64_t speculative_wins = 0;
};

/// One tenant's slice of a serving run (multi-tenant benchmarks).
struct TenantRow {
  std::string tenant;
  int64_t submitted = 0;
  int64_t queries_ok = 0;
  int64_t queries_shed = 0;
  /// shed / submitted (0 when nothing was submitted).
  double shed_rate = 0.0;
  double p99_seconds = 0.0;
};

struct RunRecord {
  std::string engine;
  std::string task;
  std::string layout;
  int threads = 1;
  bool warm = false;
  bool simulated = false;
  double attach_seconds = 0.0;
  double warmup_seconds = 0.0;
  double task_seconds = 0.0;
  int64_t memory_bytes = 0;
  /// Figure 6 three-line phase split (zero for other tasks).
  double quantile_seconds = 0.0;
  double regression_seconds = 0.0;
  double adjust_seconds = 0.0;
  /// Per-stage timings of the executed plan, in stage order; their
  /// seconds sum to task_seconds. Empty rows suppress the JSON key so
  /// pre-plan-IR reports round-trip unchanged.
  std::vector<StageRow> stages;
  /// Block-index scan accounting (columnar sources only; all-zero rows
  /// suppress the JSON key so text-source and pre-SMCOLV2 reports
  /// round-trip unchanged). `bytes_scanned` counts decoded values' bytes;
  /// `compression_ratio` is decoded bytes / the scanned file's on-disk
  /// bytes — < 1 when pruning plus compression materialize less than the
  /// file's footprint. bench_fig20_storage's synthetic "storage" rows
  /// record the SMCOLV2-to-SMCOLV1 file-size ratio here instead.
  int64_t bytes_scanned = 0;
  int64_t blocks_decoded = 0;
  int64_t blocks_pruned = 0;
  double compression_ratio = 0.0;
  /// Serving-mode fields (concurrent query benchmarks). `outcome` is
  /// empty for plain batch runs, which also suppresses these keys in
  /// the JSON so existing reports round-trip unchanged; serving rows
  /// use "ok" / "shed" / "error".
  std::string outcome;
  int clients = 0;
  int64_t queries_ok = 0;
  int64_t queries_shed = 0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double queries_per_second = 0.0;
  /// Sharded-serving fields: shard count and per-tenant breakdowns.
  /// Zero / empty suppresses the JSON keys, so single-shard and
  /// pre-sharding serving reports round-trip unchanged.
  int shards = 0;
  std::vector<TenantRow> tenants;
  /// Real-time ingest fields (lambda-path benchmarks). `ingest_rate` is
  /// accepted readings per second; freshness is the reading-to-queryable
  /// lag (append to first snapshot that published the hour). All-zero
  /// suppresses the JSON block so batch-only reports round-trip
  /// unchanged.
  double ingest_rate = 0.0;
  double freshness_p50_seconds = 0.0;
  double freshness_p99_seconds = 0.0;
};

/// Accumulates one process's benchmark observations — run records, a
/// metrics snapshot, and the trace ring — and serializes them as the
/// bench_report.json schema documented in EXPERIMENTS.md.
class BenchReport {
 public:
  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  void AddRun(RunRecord run) { runs_.push_back(std::move(run)); }
  const std::vector<RunRecord>& runs() const { return runs_; }

  /// Copies the current state of the global metrics registry into the
  /// report (call after the timed work).
  void CaptureMetrics() {
    metrics_ = MetricsRegistry::Global().Snapshot();
  }
  void set_metrics(MetricsSnapshot metrics) { metrics_ = std::move(metrics); }
  const MetricsSnapshot& metrics() const { return metrics_; }

  /// Copies the retained spans of the global trace buffer.
  void CaptureSpans() {
    spans_ = TraceBuffer::Global().Snapshot();
    dropped_spans_ = TraceBuffer::Global().dropped();
  }
  void set_spans(std::vector<TraceEvent> spans) { spans_ = std::move(spans); }
  const std::vector<TraceEvent>& spans() const { return spans_; }
  int64_t dropped_spans() const { return dropped_spans_; }

  JsonValue ToJson() const;
  std::string ToJsonString() const { return ToJson().Dump(); }

  /// Inverse of ToJson (numbers round-trip exactly, span names up to the
  /// ring's truncation limit). False + `error` on schema mismatch.
  static bool FromJson(const JsonValue& json, BenchReport* out,
                       std::string* error);

  bool WriteFile(const std::string& path, std::string* error) const {
    return WriteJsonFile(ToJson(), path, error);
  }
  static bool ReadFile(const std::string& path, BenchReport* out,
                       std::string* error);

 private:
  std::string label_;
  std::vector<RunRecord> runs_;
  MetricsSnapshot metrics_;
  std::vector<TraceEvent> spans_;
  int64_t dropped_spans_ = 0;
};

}  // namespace smartmeter::obs

#endif  // SMARTMETER_OBS_REPORT_H_
