#ifndef SMARTMETER_OBS_TRACE_H_
#define SMARTMETER_OBS_TRACE_H_

#include <cstdint>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace smartmeter::obs {

/// One completed span. Timestamps are nanoseconds since the process
/// trace epoch (first use of the trace clock), so values are small and
/// diffable across a run. Names are truncated copies: span lifetimes
/// outlive any caller-owned string.
struct TraceEvent {
  static constexpr size_t kMaxName = 47;

  char name[kMaxName + 1] = {0};
  int64_t begin_ns = 0;
  int64_t end_ns = 0;
  /// Dense per-process thread id (obs::ThreadShardIndex of the thread
  /// that ran the span).
  uint32_t thread_id = 0;
  /// Nesting depth within its thread at the time the span opened (0 for
  /// top-level spans).
  uint16_t depth = 0;
};

/// Nanoseconds since the process trace epoch.
int64_t TraceNowNanos();

/// Bounded ring of completed spans. Recording is mutex-guarded: spans
/// close at phase granularity (thousands per run, not millions), so the
/// lock is never hot; the bound keeps a long sweep from growing without
/// limit — when full, the oldest events are overwritten and counted in
/// dropped().
class TraceBuffer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 14;

  /// The process-wide buffer SM_TRACE_SPAN records into.
  static TraceBuffer& Global();

  explicit TraceBuffer(size_t capacity = kDefaultCapacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void Record(const char* name, int64_t begin_ns, int64_t end_ns,
              uint32_t thread_id, uint16_t depth);

  /// Copies the retained events oldest-first.
  std::vector<TraceEvent> Snapshot() const;

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Events overwritten because the ring was full.
  int64_t dropped() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;        // Slot the next event lands in.
  bool wrapped_ = false;   // True once the ring has filled.
  int64_t dropped_ = 0;
};

/// RAII span: opens on construction, records into the buffer on scope
/// exit. Use through SM_TRACE_SPAN so call sites read as annotations:
///
///   SM_TRACE_SPAN("shuffle.exchange");
class SpanScope {
 public:
  explicit SpanScope(const char* name, TraceBuffer* buffer = nullptr);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;
  TraceBuffer* buffer_;
  int64_t begin_ns_;
  uint16_t depth_;
};

}  // namespace smartmeter::obs

#define SM_OBS_CONCAT_INNER(a, b) a##b
#define SM_OBS_CONCAT(a, b) SM_OBS_CONCAT_INNER(a, b)

/// Records the enclosing scope as a named trace span.
#define SM_TRACE_SPAN(name) \
  ::smartmeter::obs::SpanScope SM_OBS_CONCAT(sm_trace_span_, __LINE__)(name)

#endif  // SMARTMETER_OBS_TRACE_H_
