#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace smartmeter::obs {

namespace {

const JsonValue& NullValue() {
  static const JsonValue* null = new JsonValue();
  return *null;
}

void AppendEscaped(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double value, std::string* out) {
  if (!std::isfinite(value)) {
    out->append("0");
    return;
  }
  // Integers print without a fraction so counters diff cleanly.
  if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    out->append(buf);
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out->append(buf);
}

void AppendIndent(int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
}

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseDocument(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const char* message) {
    if (error_ != nullptr) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "json parse error at offset %zu: %s",
                    pos_, message);
      *error_ = buf;
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::strlen(literal);
    if (text_.substr(pos_, len) != literal) return false;
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) return false;
      *out = JsonValue(std::move(s));
      return true;
    }
    if (ConsumeLiteral("true")) {
      *out = JsonValue(true);
      return true;
    }
    if (ConsumeLiteral("false")) {
      *out = JsonValue(false);
      return true;
    }
    if (ConsumeLiteral("null")) {
      *out = JsonValue();
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            // Keep \uXXXX escapes verbatim; report strings are ASCII.
            if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
            out->append("\\u");
            out->append(text_.substr(pos_, 4));
            pos_ += 4;
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    std::string_view token = text_.substr(start, pos_ - start);
    // from_chars, unlike the strtod this used, always parses with the
    // "C" locale — a host locale with a ',' decimal separator cannot
    // truncate "3.14" to 3. It also rejects a leading '+', which JSON
    // forbids anyway.
    if (!token.empty() && token.front() == '+') {
      return Fail("malformed number");
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || end != token.data() + token.size()) {
      return Fail("malformed number");
    }
    *out = JsonValue(value);
    return true;
  }

  bool ParseArray(JsonValue* out) {
    Consume('[');
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return true;
    for (;;) {
      JsonValue element;
      SkipWhitespace();
      if (!ParseValue(&element)) return false;
      out->Append(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out) {
    Consume('{');
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return true;
    for (;;) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue& JsonValue::Get(std::string_view key) const {
  for (const auto& [name, value] : object_) {
    if (name == key) return value;
  }
  return NullValue();
}

void JsonValue::Set(std::string_view key, JsonValue value) {
  for (auto& [name, existing] : object_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
}

void JsonValue::DumpTo(std::string* out, int indent) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      AppendNumber(number_, out);
      break;
    case Type::kString:
      AppendEscaped(string_, out);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out->append("[]");
        break;
      }
      out->append("[\n");
      for (size_t i = 0; i < array_.size(); ++i) {
        AppendIndent(indent + 1, out);
        array_[i].DumpTo(out, indent + 1);
        if (i + 1 < array_.size()) out->push_back(',');
        out->push_back('\n');
      }
      AppendIndent(indent, out);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out->append("{}");
        break;
      }
      out->append("{\n");
      for (size_t i = 0; i < object_.size(); ++i) {
        AppendIndent(indent + 1, out);
        AppendEscaped(object_[i].first, out);
        out->append(": ");
        object_[i].second.DumpTo(out, indent + 1);
        if (i + 1 < object_.size()) out->push_back(',');
        out->push_back('\n');
      }
      AppendIndent(indent, out);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out.push_back('\n');
  return out;
}

bool JsonValue::Parse(std::string_view text, JsonValue* out,
                      std::string* error) {
  Parser parser(text, error);
  return parser.ParseDocument(out);
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

bool WriteJsonFile(const JsonValue& value, const std::string& path,
                   std::string* error) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open for writing: " + path;
    return false;
  }
  const std::string text = value.Dump();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok && error != nullptr) *error = "short write: " + path;
  return ok;
}

bool ReadJsonFile(const std::string& path, JsonValue* out,
                  std::string* error) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open: " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return JsonValue::Parse(text, out, error);
}

}  // namespace smartmeter::obs
