#ifndef SMARTMETER_OBS_JSON_H_
#define SMARTMETER_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smartmeter::obs {

/// Minimal owning JSON document: enough to serialize a benchmark report
/// and read it back (round trips, baselines). Objects preserve insertion
/// order so reports diff cleanly; duplicate keys keep the last value on
/// parse. Kept dependency-free on purpose — obs sits below every other
/// library in the build.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  explicit JsonValue(bool value) : type_(Type::kBool), bool_(value) {}
  explicit JsonValue(double value) : type_(Type::kNumber), number_(value) {}
  explicit JsonValue(int64_t value)
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  explicit JsonValue(int value)
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  explicit JsonValue(std::string value)
      : type_(Type::kString), string_(std::move(value)) {}
  explicit JsonValue(std::string_view value)
      : type_(Type::kString), string_(value) {}
  explicit JsonValue(const char* value)
      : type_(Type::kString), string_(value) {}

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    return is_number() ? static_cast<int64_t>(number_) : fallback;
  }
  const std::string& AsString() const { return string_; }

  // --- Array access -------------------------------------------------------
  size_t size() const {
    return is_array() ? array_.size() : (is_object() ? object_.size() : 0);
  }
  const std::vector<JsonValue>& items() const { return array_; }
  void Append(JsonValue value) { array_.push_back(std::move(value)); }

  // --- Object access ------------------------------------------------------
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }
  /// Returns the member or a shared null value when absent.
  const JsonValue& Get(std::string_view key) const;
  bool Has(std::string_view key) const { return !Get(key).is_null(); }
  void Set(std::string_view key, JsonValue value);

  /// Serializes with 2-space indentation and a trailing newline at the
  /// top level, the layout committed baselines are diffed in.
  std::string Dump() const;

  /// Strict-enough recursive-descent parse of the subset Dump emits
  /// (full JSON minus exotic escapes: \uXXXX is preserved verbatim).
  /// On failure returns false and sets `error` when non-null.
  static bool Parse(std::string_view text, JsonValue* out,
                    std::string* error);

  bool operator==(const JsonValue& other) const;

 private:
  void DumpTo(std::string* out, int indent) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Writes `value.Dump()` to `path`; false + `error` on I/O failure.
bool WriteJsonFile(const JsonValue& value, const std::string& path,
                   std::string* error);

/// Reads and parses a JSON file.
bool ReadJsonFile(const std::string& path, JsonValue* out,
                  std::string* error);

}  // namespace smartmeter::obs

#endif  // SMARTMETER_OBS_JSON_H_
