#ifndef SMARTMETER_OBS_METRICS_H_
#define SMARTMETER_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace smartmeter::obs {

/// Small dense id for the calling thread, used to pick a metric shard.
/// Ids are assigned on first use and never reused, so two long-lived
/// threads map to different shards until the shard count wraps.
size_t ThreadShardIndex();

/// Number of cache-line-padded shards per counter / histogram. Hot-path
/// increments from distinct threads land on distinct cache lines, so a
/// per-row counter bump costs one uncontended relaxed fetch_add.
inline constexpr size_t kMetricShards = 32;

/// Monotonically increasing sum, sharded across threads. Created and
/// owned by a MetricsRegistry; callers cache the pointer:
///
///   static Counter* rows =
///       MetricsRegistry::Global().GetCounter("csv.rows_scanned");
///   rows->Add(1);
class Counter {
 public:
  void Add(int64_t delta) {
    cells_[ThreadShardIndex() % kMetricShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all shards. Racy reads during concurrent writes see a
  /// valid partial sum (each shard read is atomic).
  int64_t Value() const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void Reset();

  struct alignas(64) Cell {
    std::atomic<int64_t> value{0};
  };

  std::string name_;
  std::array<Cell, kMetricShards> cells_;
};

/// Last-write-wins instantaneous value plus a monotone high-water mark
/// (UpdateMax). Gauges are single atomics: they record state, not
/// hot-path event streams.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }

  /// Raises the gauge to `value` if it is higher (queue-depth peaks).
  void UpdateMax(int64_t value);

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Latency histogram with fixed exponential buckets: bucket i counts
/// observations below 2^i microseconds (the last bucket is unbounded).
/// Buckets are sharded like counters so concurrent Record calls from the
/// worker pool do not contend.
class LatencyHistogram {
 public:
  /// Bucket count: 2^0 us .. 2^26 us (~67 s) plus one overflow bucket.
  static constexpr size_t kBuckets = 28;

  /// Upper bound of bucket i in seconds (+inf for the last bucket).
  static double BucketUpperSeconds(size_t i);

  void Record(double seconds);

  int64_t TotalCount() const;
  double TotalSeconds() const;
  /// Per-bucket counts summed over shards.
  std::vector<int64_t> BucketCounts() const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit LatencyHistogram(std::string name) : name_(std::move(name)) {}
  void Reset();

  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, kBuckets> buckets{};
    std::atomic<int64_t> count{0};
    /// Sum in nanoseconds so it can stay a lock-free integer.
    std::atomic<int64_t> sum_nanos{0};
  };

  std::string name_;
  std::array<Shard, kMetricShards> shards_;
};

/// Point-in-time copy of every registered metric, in registration-name
/// order; what the JSON exporter serializes.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    int64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramSample {
    std::string name;
    int64_t count = 0;
    double total_seconds = 0.0;
    std::vector<int64_t> bucket_counts;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Owner of all metric objects. Get* registers on first use and returns
/// a stable pointer thereafter (metrics are never deregistered), so the
/// registry mutex is only touched once per call site.
class MetricsRegistry {
 public:
  /// The process-wide registry every instrumented subsystem reports to.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  LatencyHistogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric's value but keeps the objects registered, so
  /// pointers cached in static locals stay valid across benchmark runs.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
};

}  // namespace smartmeter::obs

#endif  // SMARTMETER_OBS_METRICS_H_
