#include "obs/trace.h"

#include <chrono>
#include <cstring>

#include "obs/metrics.h"

namespace smartmeter::obs {

namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// Per-thread open-span nesting depth.
thread_local uint16_t t_span_depth = 0;

}  // namespace

int64_t TraceNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

TraceBuffer::TraceBuffer(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void TraceBuffer::Record(const char* name, int64_t begin_ns, int64_t end_ns,
                         uint32_t thread_id, uint16_t depth) {
  TraceEvent event;
  std::strncpy(event.name, name == nullptr ? "" : name, TraceEvent::kMaxName);
  event.begin_ns = begin_ns;
  event.end_ns = end_ns;
  event.thread_id = thread_id;
  event.depth = depth;

  std::lock_guard<std::mutex> lock(mu_);
  if (wrapped_) ++dropped_;
  ring_[next_] = event;
  ++next_;
  if (next_ == capacity_) {
    next_ = 0;
    wrapped_ = true;
  }
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events;
  if (wrapped_) {
    events.reserve(capacity_);
    events.insert(events.end(), ring_.begin() + static_cast<long>(next_),
                  ring_.end());
  }
  events.insert(events.end(), ring_.begin(),
                ring_.begin() + static_cast<long>(next_));
  return events;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wrapped_ ? capacity_ : next_;
}

int64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

SpanScope::SpanScope(const char* name, TraceBuffer* buffer)
    : name_(name),
      buffer_(buffer != nullptr ? buffer : &TraceBuffer::Global()),
      begin_ns_(TraceNowNanos()),
      depth_(t_span_depth) {
  ++t_span_depth;
}

SpanScope::~SpanScope() {
  --t_span_depth;
  buffer_->Record(name_, begin_ns_, TraceNowNanos(),
                  static_cast<uint32_t>(ThreadShardIndex()), depth_);
}

}  // namespace smartmeter::obs
