#ifndef SMARTMETER_SIMD_SIMD_ARCH_H_
#define SMARTMETER_SIMD_SIMD_ARCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

// Build-level gates for the architecture backends. SM_DISABLE_SIMD (a
// CMake option) strips the vector translation units entirely; the
// dispatch switches in simd.cc then only see the scalar kernels.

#if !defined(SM_DISABLE_SIMD) && (defined(__x86_64__) || defined(__i386__))
#define SM_SIMD_X86 1
#else
#define SM_SIMD_X86 0
#endif

#if !defined(SM_DISABLE_SIMD) && defined(__aarch64__)
#define SM_SIMD_NEON 1
#else
#define SM_SIMD_NEON 0
#endif

namespace smartmeter::simd::arch {

#if SM_SIMD_X86
double DotAvx2(const double* x, const double* y, size_t n);
void MinMaxAvx2(const double* values, size_t n, double* min, double* max);
void HistogramBinAvx2(const double* values, size_t n, double min,
                      double width, int64_t* counts, size_t num_buckets);
void BinIndicesInt32Avx2(const double* values, size_t n, double divisor,
                         int32_t* out);
void CountBandsAvx2(const double* values, const int32_t* bins, size_t n,
                    int32_t base, const double* lo_table,
                    const double* hi_table, size_t table_size,
                    size_t* lo_count, size_t* hi_count);
void SelectBandsAvx2(const double* values, const int32_t* bins, size_t n,
                     int32_t base, const double* lo_table,
                     const double* hi_table, size_t table_size,
                     std::vector<int32_t>* lo_indices,
                     std::vector<int32_t>* hi_indices);
void AddResidualAvx2(double* acc, const double* c, const double* t,
                     const double* beta, size_t n);
size_t FindByteAvx2(const char* data, size_t size, size_t pos, char needle);
size_t FindEitherByteAvx2(const char* data, size_t size, size_t pos, char a,
                          char b);
size_t CountByteAvx2(const char* data, size_t size, char needle);
#endif  // SM_SIMD_X86

#if SM_SIMD_NEON
double DotNeon(const double* x, const double* y, size_t n);
void MinMaxNeon(const double* values, size_t n, double* min, double* max);
void HistogramBinNeon(const double* values, size_t n, double min,
                      double width, int64_t* counts, size_t num_buckets);
void AddResidualNeon(double* acc, const double* c, const double* t,
                     const double* beta, size_t n);
size_t FindByteNeon(const char* data, size_t size, size_t pos, char needle);
size_t FindEitherByteNeon(const char* data, size_t size, size_t pos, char a,
                          char b);
size_t CountByteNeon(const char* data, size_t size, char needle);
#endif  // SM_SIMD_NEON

}  // namespace smartmeter::simd::arch

#endif  // SMARTMETER_SIMD_SIMD_ARCH_H_
