// AVX2 backend. Compiled into every x86-64 build (the functions carry
// target attributes, so no file-wide -mavx2 is needed and no AVX code
// leaks into other translation units); only dispatched to when cpuid
// reports AVX2. FMA is deliberately NOT enabled: vmulpd + vaddpd round
// exactly like the scalar lanes, which is what makes the vector paths
// bit-identical to the *Scalar kernels.
#include "simd/simd_arch.h"

#if SM_SIMD_X86

#include <immintrin.h>

#include <limits>

#include "simd/simd.h"
#include "simd/simd_internal.h"

#define SM_AVX2 __attribute__((target("avx2,popcnt")))

namespace smartmeter::simd::arch {

SM_AVX2 double DotAvx2(const double* x, const double* y, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  for (; i < n4; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) lanes[0] += x[i] * y[i];
  return internal::ReduceLanes(lanes);
}

SM_AVX2 void MinMaxAvx2(const double* values, size_t n, double* min,
                        double* max) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  __m256d min_acc = _mm256_set1_pd(kInf);
  __m256d max_acc = _mm256_set1_pd(-kInf);
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  for (; i < n4; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    // min_pd(v, acc) = v < acc ? v : acc, with NaN v keeping acc —
    // exactly the scalar lane update.
    min_acc = _mm256_min_pd(v, min_acc);
    max_acc = _mm256_max_pd(v, max_acc);
  }
  alignas(32) double mins[4];
  alignas(32) double maxs[4];
  _mm256_store_pd(mins, min_acc);
  _mm256_store_pd(maxs, max_acc);
  for (; i < n; ++i) {
    const double v = values[i];
    mins[0] = v < mins[0] ? v : mins[0];
    maxs[0] = v > maxs[0] ? v : maxs[0];
  }
  const double min01 = mins[1] < mins[0] ? mins[1] : mins[0];
  const double min23 = mins[3] < mins[2] ? mins[3] : mins[2];
  *min = min23 < min01 ? min23 : min01;
  const double max01 = maxs[1] > maxs[0] ? maxs[1] : maxs[0];
  const double max23 = maxs[3] > maxs[2] ? maxs[3] : maxs[2];
  *max = max23 > max01 ? max23 : max01;
}

SM_AVX2 void HistogramBinAvx2(const double* values, size_t n, double min,
                              double width, int64_t* counts,
                              size_t num_buckets) {
  // The per-element division dominates; vdivpd retires four offsets for
  // the price of one divsd. The bucket clamp is vectorized too, mirroring
  // BucketOf lane-for-lane: `offset > 0` is false for NaN (so the and
  // zeroes NaN and non-positive lanes into bucket 0), the min caps every
  // remaining offset — including +inf — at the last bucket, and cvttpd's
  // truncation is floor for the non-negative survivors.
  const __m256d min_v = _mm256_set1_pd(min);
  const __m256d width_v = _mm256_set1_pd(width);
  const __m256d zero_v = _mm256_setzero_pd();
  const __m256d cap_v = _mm256_set1_pd(static_cast<double>(num_buckets - 1));
  size_t i = 0;
  const size_t n8 = n & ~size_t{7};
  alignas(16) int32_t lanes[8];
  for (; i < n8; i += 8) {
    __m256d a = _mm256_div_pd(
        _mm256_sub_pd(_mm256_loadu_pd(values + i), min_v), width_v);
    __m256d b = _mm256_div_pd(
        _mm256_sub_pd(_mm256_loadu_pd(values + i + 4), min_v), width_v);
    a = _mm256_min_pd(_mm256_and_pd(a, _mm256_cmp_pd(a, zero_v, _CMP_GT_OQ)),
                      cap_v);
    b = _mm256_min_pd(_mm256_and_pd(b, _mm256_cmp_pd(b, zero_v, _CMP_GT_OQ)),
                      cap_v);
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes),
                    _mm256_cvttpd_epi32(a));
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes + 4),
                    _mm256_cvttpd_epi32(b));
    for (size_t j = 0; j < 8; ++j) {
      ++counts[static_cast<size_t>(lanes[j])];
    }
  }
  for (; i < n; ++i) {
    ++counts[internal::BucketOf((values[i] - min) / width, num_buckets)];
  }
}

SM_AVX2 void BinIndicesInt32Avx2(const double* values, size_t n,
                                 double divisor, int32_t* out) {
  const __m256d div_v = _mm256_set1_pd(divisor);
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  for (; i < n4; i += 4) {
    const __m256d floored = _mm256_floor_pd(
        _mm256_div_pd(_mm256_loadu_pd(values + i), div_v));
    // cvttpd saturates NaN / out-of-range lanes to INT32_MIN — the same
    // sentinel FloorDivInt32 produces.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm256_cvttpd_epi32(floored));
  }
  for (; i < n; ++i) out[i] = internal::FloorDivInt32(values[i], divisor);
}

namespace {

/// Shared core of Count/SelectBands: per 4-lane group, returns the
/// low-band and high-band membership masks (bit j = lane j matches).
struct BandMasks {
  uint32_t lo;
  uint32_t hi;
};

SM_AVX2 inline BandMasks BandGroupMasks(const double* values,
                                        const int32_t* bins, size_t i,
                                        __m128i base_minus_1, __m128i end,
                                        const double* lo_table,
                                        const double* hi_table) {
  const __m128i b =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(bins + i));
  const __m128i ge = _mm_cmpgt_epi32(b, base_minus_1);
  const __m128i lt = _mm_cmpgt_epi32(end, b);
  const __m128i valid = _mm_and_si128(ge, lt);
  // Invalid lanes gather index 0 (always in range); their compares are
  // masked off below.
  const __m128i rel = _mm_sub_epi32(b, _mm_add_epi32(base_minus_1,
                                                     _mm_set1_epi32(1)));
  const __m128i idx = _mm_and_si128(rel, valid);
  // Masked gather with an explicit zero source: GCC's unmasked form
  // reads an "undefined" register, which -Wmaybe-uninitialized rejects.
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  const __m256d lo_thr = _mm256_mask_i32gather_pd(_mm256_setzero_pd(),
                                                  lo_table, idx, all, 8);
  const __m256d hi_thr = _mm256_mask_i32gather_pd(_mm256_setzero_pd(),
                                                  hi_table, idx, all, 8);
  const __m256d v = _mm256_loadu_pd(values + i);
  const __m256d valid_pd = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(valid));
  // Ordered compares: NaN values and NaN thresholds select nothing.
  const __m256d hi_keep =
      _mm256_and_pd(_mm256_cmp_pd(v, hi_thr, _CMP_GE_OQ), valid_pd);
  const __m256d lo_keep =
      _mm256_and_pd(_mm256_cmp_pd(v, lo_thr, _CMP_LE_OQ), valid_pd);
  return {static_cast<uint32_t>(_mm256_movemask_pd(lo_keep)),
          static_cast<uint32_t>(_mm256_movemask_pd(hi_keep))};
}

/// True when the vector kernel's int32 arithmetic is safe for this
/// (base, table_size) window; absurd windows take the scalar path.
inline bool BandWindowFits(int32_t base, size_t table_size) {
  return table_size > 0 &&
         static_cast<int64_t>(base) > std::numeric_limits<int32_t>::min() &&
         static_cast<int64_t>(base) + static_cast<int64_t>(table_size) <=
             std::numeric_limits<int32_t>::max();
}

}  // namespace

SM_AVX2 void CountBandsAvx2(const double* values, const int32_t* bins,
                            size_t n, int32_t base, const double* lo_table,
                            const double* hi_table, size_t table_size,
                            size_t* lo_count, size_t* hi_count) {
  if (!BandWindowFits(base, table_size)) {
    CountBandsScalar({values, n}, {bins, n}, base, {lo_table, table_size},
                     {hi_table, table_size}, lo_count, hi_count);
    return;
  }
  const __m128i base_minus_1 = _mm_set1_epi32(base - 1);
  const __m128i end =
      _mm_set1_epi32(base + static_cast<int32_t>(table_size));
  size_t lo = 0;
  size_t hi = 0;
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  for (; i < n4; i += 4) {
    const BandMasks masks = BandGroupMasks(values, bins, i, base_minus_1,
                                           end, lo_table, hi_table);
    lo += static_cast<size_t>(__builtin_popcount(masks.lo));
    hi += static_cast<size_t>(__builtin_popcount(masks.hi));
  }
  size_t tail_lo = 0;
  size_t tail_hi = 0;
  CountBandsScalar({values + i, n - i}, {bins + i, n - i}, base,
                   {lo_table, table_size}, {hi_table, table_size}, &tail_lo,
                   &tail_hi);
  *lo_count = lo + tail_lo;
  *hi_count = hi + tail_hi;
}

SM_AVX2 void SelectBandsAvx2(const double* values, const int32_t* bins,
                             size_t n, int32_t base, const double* lo_table,
                             const double* hi_table, size_t table_size,
                             std::vector<int32_t>* lo_indices,
                             std::vector<int32_t>* hi_indices) {
  if (!BandWindowFits(base, table_size)) {
    SelectBandsScalar({values, n}, {bins, n}, base, {lo_table, table_size},
                      {hi_table, table_size}, lo_indices, hi_indices);
    return;
  }
  const __m128i base_minus_1 = _mm_set1_epi32(base - 1);
  const __m128i end =
      _mm_set1_epi32(base + static_cast<int32_t>(table_size));
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  for (; i < n4; i += 4) {
    BandMasks masks = BandGroupMasks(values, bins, i, base_minus_1, end,
                                     lo_table, hi_table);
    while (masks.hi != 0) {
      const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(masks.hi));
      hi_indices->push_back(static_cast<int32_t>(i + lane));
      masks.hi &= masks.hi - 1;
    }
    while (masks.lo != 0) {
      const uint32_t lane = static_cast<uint32_t>(__builtin_ctz(masks.lo));
      lo_indices->push_back(static_cast<int32_t>(i + lane));
      masks.lo &= masks.lo - 1;
    }
  }
  // Tail through the scalar kernel; indices are relative to the tail
  // start, so rebase them.
  std::vector<int32_t> tail_lo;
  std::vector<int32_t> tail_hi;
  SelectBandsScalar({values + i, n - i}, {bins + i, n - i}, base,
                    {lo_table, table_size}, {hi_table, table_size}, &tail_lo,
                    &tail_hi);
  for (const int32_t rel : tail_lo) {
    lo_indices->push_back(static_cast<int32_t>(i) + rel);
  }
  for (const int32_t rel : tail_hi) {
    hi_indices->push_back(static_cast<int32_t>(i) + rel);
  }
}

SM_AVX2 void AddResidualAvx2(double* acc, const double* c, const double* t,
                             const double* beta, size_t n) {
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  for (; i < n4; i += 4) {
    const __m256d residual = _mm256_sub_pd(
        _mm256_loadu_pd(c + i),
        _mm256_mul_pd(_mm256_loadu_pd(beta + i), _mm256_loadu_pd(t + i)));
    _mm256_storeu_pd(acc + i,
                     _mm256_add_pd(_mm256_loadu_pd(acc + i), residual));
  }
  for (; i < n; ++i) acc[i] += c[i] - beta[i] * t[i];
}

SM_AVX2 size_t FindByteAvx2(const char* data, size_t size, size_t pos,
                            char needle) {
  const __m256i needle_v = _mm256_set1_epi8(needle);
  size_t i = pos;
  for (; i + 32 <= size; i += 32) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const uint32_t mask = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(chunk, needle_v)));
    if (mask != 0) return i + static_cast<size_t>(__builtin_ctz(mask));
  }
  for (; i < size; ++i) {
    if (data[i] == needle) return i;
  }
  return static_cast<size_t>(-1);
}

SM_AVX2 size_t FindEitherByteAvx2(const char* data, size_t size, size_t pos,
                                  char a, char b) {
  const __m256i a_v = _mm256_set1_epi8(a);
  const __m256i b_v = _mm256_set1_epi8(b);
  size_t i = pos;
  for (; i + 32 <= size; i += 32) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i eq = _mm256_or_si256(_mm256_cmpeq_epi8(chunk, a_v),
                                       _mm256_cmpeq_epi8(chunk, b_v));
    const uint32_t mask =
        static_cast<uint32_t>(_mm256_movemask_epi8(eq));
    if (mask != 0) return i + static_cast<size_t>(__builtin_ctz(mask));
  }
  for (; i < size; ++i) {
    if (data[i] == a || data[i] == b) return i;
  }
  return static_cast<size_t>(-1);
}

SM_AVX2 size_t CountByteAvx2(const char* data, size_t size, char needle) {
  const __m256i needle_v = _mm256_set1_epi8(needle);
  size_t count = 0;
  size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const uint32_t mask = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(chunk, needle_v)));
    count += static_cast<size_t>(__builtin_popcount(mask));
  }
  for (; i < size; ++i) count += data[i] == needle ? 1 : 0;
  return count;
}

}  // namespace smartmeter::simd::arch

#endif  // SM_SIMD_X86
