// NEON backend for aarch64. float64x2 is two lanes wide, so each kernel
// runs two registers side by side to honour the shared 4-lane striping
// contract. Min/max go through explicit compare + select (vbsl) instead
// of FMIN/FMINNM so the NaN and signed-zero behaviour is the scalar
// `v < m ? v : m` by construction, and the whole library is compiled
// with -ffp-contract=off so no fused multiply sneaks into either side.
#include "simd/simd_arch.h"

#if SM_SIMD_NEON

#include <arm_neon.h>

#include <limits>

#include "simd/simd.h"
#include "simd/simd_internal.h"

namespace smartmeter::simd::arch {

double DotNeon(const double* x, const double* y, size_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  for (; i < n4; i += 4) {
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(x + i), vld1q_f64(y + i)));
    acc23 = vaddq_f64(
        acc23, vmulq_f64(vld1q_f64(x + i + 2), vld1q_f64(y + i + 2)));
  }
  double lanes[4];
  vst1q_f64(lanes, acc01);
  vst1q_f64(lanes + 2, acc23);
  for (; i < n; ++i) lanes[0] += x[i] * y[i];
  return internal::ReduceLanes(lanes);
}

void MinMaxNeon(const double* values, size_t n, double* min, double* max) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  float64x2_t min01 = vdupq_n_f64(kInf);
  float64x2_t min23 = vdupq_n_f64(kInf);
  float64x2_t max01 = vdupq_n_f64(-kInf);
  float64x2_t max23 = vdupq_n_f64(-kInf);
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  for (; i < n4; i += 4) {
    const float64x2_t a = vld1q_f64(values + i);
    const float64x2_t b = vld1q_f64(values + i + 2);
    // v < m ? v : m — NaN lanes keep the accumulator.
    min01 = vbslq_f64(vcltq_f64(a, min01), a, min01);
    min23 = vbslq_f64(vcltq_f64(b, min23), b, min23);
    max01 = vbslq_f64(vcgtq_f64(a, max01), a, max01);
    max23 = vbslq_f64(vcgtq_f64(b, max23), b, max23);
  }
  double mins[4];
  double maxs[4];
  vst1q_f64(mins, min01);
  vst1q_f64(mins + 2, min23);
  vst1q_f64(maxs, max01);
  vst1q_f64(maxs + 2, max23);
  for (; i < n; ++i) {
    const double v = values[i];
    mins[0] = v < mins[0] ? v : mins[0];
    maxs[0] = v > maxs[0] ? v : maxs[0];
  }
  const double min_a = mins[1] < mins[0] ? mins[1] : mins[0];
  const double min_b = mins[3] < mins[2] ? mins[3] : mins[2];
  *min = min_b < min_a ? min_b : min_a;
  const double max_a = maxs[1] > maxs[0] ? maxs[1] : maxs[0];
  const double max_b = maxs[3] > maxs[2] ? maxs[3] : maxs[2];
  *max = max_b > max_a ? max_b : max_a;
}

void HistogramBinNeon(const double* values, size_t n, double min,
                      double width, int64_t* counts, size_t num_buckets) {
  const float64x2_t min_v = vdupq_n_f64(min);
  const float64x2_t width_v = vdupq_n_f64(width);
  size_t i = 0;
  const size_t n4 = n & ~size_t{3};
  double offsets[4];
  for (; i < n4; i += 4) {
    const float64x2_t a =
        vdivq_f64(vsubq_f64(vld1q_f64(values + i), min_v), width_v);
    const float64x2_t b =
        vdivq_f64(vsubq_f64(vld1q_f64(values + i + 2), min_v), width_v);
    vst1q_f64(offsets, a);
    vst1q_f64(offsets + 2, b);
    for (size_t j = 0; j < 4; ++j) {
      ++counts[internal::BucketOf(offsets[j], num_buckets)];
    }
  }
  for (; i < n; ++i) {
    ++counts[internal::BucketOf((values[i] - min) / width, num_buckets)];
  }
}

void AddResidualNeon(double* acc, const double* c, const double* t,
                     const double* beta, size_t n) {
  size_t i = 0;
  const size_t n2 = n & ~size_t{1};
  for (; i < n2; i += 2) {
    const float64x2_t residual = vsubq_f64(
        vld1q_f64(c + i), vmulq_f64(vld1q_f64(beta + i), vld1q_f64(t + i)));
    vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), residual));
  }
  for (; i < n; ++i) acc[i] += c[i] - beta[i] * t[i];
}

size_t FindByteNeon(const char* data, size_t size, size_t pos, char needle) {
  const uint8x16_t needle_v = vdupq_n_u8(static_cast<uint8_t>(needle));
  size_t i = pos;
  for (; i + 16 <= size; i += 16) {
    const uint8x16_t chunk =
        vld1q_u8(reinterpret_cast<const uint8_t*>(data + i));
    if (vmaxvq_u8(vceqq_u8(chunk, needle_v)) != 0) {
      for (size_t j = i; j < i + 16; ++j) {
        if (data[j] == needle) return j;
      }
    }
  }
  for (; i < size; ++i) {
    if (data[i] == needle) return i;
  }
  return static_cast<size_t>(-1);
}

size_t FindEitherByteNeon(const char* data, size_t size, size_t pos, char a,
                          char b) {
  const uint8x16_t a_v = vdupq_n_u8(static_cast<uint8_t>(a));
  const uint8x16_t b_v = vdupq_n_u8(static_cast<uint8_t>(b));
  size_t i = pos;
  for (; i + 16 <= size; i += 16) {
    const uint8x16_t chunk =
        vld1q_u8(reinterpret_cast<const uint8_t*>(data + i));
    const uint8x16_t eq =
        vorrq_u8(vceqq_u8(chunk, a_v), vceqq_u8(chunk, b_v));
    if (vmaxvq_u8(eq) != 0) {
      for (size_t j = i; j < i + 16; ++j) {
        if (data[j] == a || data[j] == b) return j;
      }
    }
  }
  for (; i < size; ++i) {
    if (data[i] == a || data[i] == b) return i;
  }
  return static_cast<size_t>(-1);
}

size_t CountByteNeon(const char* data, size_t size, char needle) {
  const uint8x16_t needle_v = vdupq_n_u8(static_cast<uint8_t>(needle));
  const uint8x16_t one_v = vdupq_n_u8(1);
  size_t count = 0;
  size_t i = 0;
  for (; i + 16 <= size; i += 16) {
    const uint8x16_t chunk =
        vld1q_u8(reinterpret_cast<const uint8_t*>(data + i));
    const uint8x16_t matches = vandq_u8(vceqq_u8(chunk, needle_v), one_v);
    count += vaddvq_u8(matches);
  }
  for (; i < size; ++i) count += data[i] == needle ? 1 : 0;
  return count;
}

}  // namespace smartmeter::simd::arch

#endif  // SM_SIMD_NEON
