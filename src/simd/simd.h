#ifndef SMARTMETER_SIMD_SIMD_H_
#define SMARTMETER_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace smartmeter::simd {

/// Portable SIMD layer for the kernel and ingestion hot paths.
///
/// Contract: every vector kernel is BIT-IDENTICAL to its *Scalar
/// counterpart, because both sides commit to the same fixed accumulation
/// order — four "lanes" striped over the input (lane j sums elements
/// 4k + j), a tail folded into lane 0, and the final reduction
/// (l0 + l1) + (l2 + l3). No FMA contraction is used on either side
/// (the library is built with -ffp-contract=off), so the rounding of
/// every intermediate matches and parity tests compare bit patterns,
/// not a tolerance. Element-wise kernels (binning, byte scans, residual
/// accumulation) are exact by construction.
///
/// The one documented exception: when a result IS NaN (junk readings
/// colliding, inf - inf), which inputs make it NaN is deterministic but
/// the NaN's payload/sign bits are not — x86 add/mul NaN propagation
/// picks "the first source operand", and which value sits in that
/// register is a codegen choice that differs even between two scalar
/// builds. Parity therefore means: bit-identical whenever the result is
/// not NaN; both-NaN otherwise.
///
/// Dispatch: the widest implementation supported by the build AND the
/// host CPU is picked once at startup (AVX2 via cpuid on x86-64, NEON on
/// aarch64, scalar otherwise). `SM_SIMD=scalar|avx2|neon` in the
/// environment clamps the level down (never up past what the CPU
/// supports), and building with -DSM_DISABLE_SIMD=ON removes the vector
/// code entirely — the dispatch table then only contains the scalar
/// kernels. Kernels without a NEON form (the gather-based band
/// selection and binning) silently fall back to scalar at that level.

enum class Level : int {
  kScalar = 0,
  kNEON = 1,
  kAVX2 = 2,
};

std::string_view LevelName(Level level);

/// Widest level the build + host CPU supports, after the SM_SIMD
/// environment clamp. Computed once, then cached.
Level DetectedLevel();

/// The level kernels currently dispatch to. Starts at DetectedLevel().
Level ActiveLevel();

/// Forces dispatch to `level` (clamped to DetectedLevel()); returns the
/// level actually installed. Benches and parity tests use this to run
/// the scalar path in a vector-capable binary.
Level SetActiveLevel(Level level);

/// RAII level override for tests and vector-vs-scalar bench panels.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level) : previous_(SetActiveLevel(level)) {}
  ~ScopedLevel() { SetActiveLevel(previous_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  Level previous_;
};

// ---------------------------------------------------------------------------
// Numeric kernels
// ---------------------------------------------------------------------------

/// Dot product with the fixed 4-lane striped accumulation order
/// (identical to the pre-SIMD smartmeter::stats::Dot). x and y must be
/// the same length; the hot loop of similarity search.
double Dot(std::span<const double> x, std::span<const double> y);
double DotScalar(std::span<const double> x, std::span<const double> y);

/// NaN-ignoring min/max: lanes update with `v < m ? v : m`, so a NaN
/// element never replaces the accumulator. Empty input yields
/// {+inf, -inf}. (This differs from std::minmax_element, which lets a
/// leading NaN poison the result — callers that must reject NaN ranges
/// still check std::isnan on the outputs.)
void MinMax(std::span<const double> values, double* min, double* max);
void MinMaxScalar(std::span<const double> values, double* min, double* max);

/// Equi-width binning over a fixed [min, min + width * counts.size())
/// range: each value's bucket is floor((v - min) / width) clamped into
/// [0, counts.size()). Values with a non-positive or NaN offset land in
/// bucket 0, offsets past the end in the last bucket. Requires
/// width > 0 and a non-empty counts span.
void HistogramBin(std::span<const double> values, double min, double width,
                  std::span<int64_t> counts);
void HistogramBinScalar(std::span<const double> values, double min,
                        double width, std::span<int64_t> counts);

/// out[i] = floor(values[i] / divisor) as int32. Results outside the
/// int32 range — including NaN and infinities — saturate to INT32_MIN,
/// which callers treat as a "junk reading" sentinel bin. Requires
/// divisor > 0 and out.size() == values.size().
void BinIndicesInt32(std::span<const double> values, double divisor,
                     std::span<int32_t> out);
void BinIndicesInt32Scalar(std::span<const double> values, double divisor,
                           std::span<int32_t> out);

/// Band selection for the 3-line task. For each i with
/// base <= bins[i] < base + table size, the thresholds at
/// rel = bins[i] - base decide membership:
///   high band: values[i] >= hi_table[rel]
///   low band:  values[i] <= lo_table[rel]
/// NaN table entries (dropped sparse bins) and NaN values select
/// nothing, exactly like the scalar comparisons. CountBands returns the
/// band sizes so callers can reserve exactly; SelectBands appends the
/// matching indices in ascending order.
void CountBands(std::span<const double> values,
                std::span<const int32_t> bins, int32_t base,
                std::span<const double> lo_table,
                std::span<const double> hi_table, size_t* lo_count,
                size_t* hi_count);
void CountBandsScalar(std::span<const double> values,
                      std::span<const int32_t> bins, int32_t base,
                      std::span<const double> lo_table,
                      std::span<const double> hi_table, size_t* lo_count,
                      size_t* hi_count);
void SelectBands(std::span<const double> values,
                 std::span<const int32_t> bins, int32_t base,
                 std::span<const double> lo_table,
                 std::span<const double> hi_table,
                 std::vector<int32_t>* lo_indices,
                 std::vector<int32_t>* hi_indices);
void SelectBandsScalar(std::span<const double> values,
                       std::span<const int32_t> bins, int32_t base,
                       std::span<const double> lo_table,
                       std::span<const double> hi_table,
                       std::vector<int32_t>* lo_indices,
                       std::vector<int32_t>* hi_indices);

/// PAR residual accumulation: acc[i] += c[i] - beta[i] * t[i] for every
/// i. Element-wise (each acc[i] sees one add per call), so repeated
/// calls accumulate per-slot in call order — bit-identical to the
/// scalar loop regardless of vector width. All spans must share
/// acc.size().
void AddResidual(std::span<double> acc, std::span<const double> c,
                 std::span<const double> t, std::span<const double> beta);
void AddResidualScalar(std::span<double> acc, std::span<const double> c,
                       std::span<const double> t,
                       std::span<const double> beta);

// ---------------------------------------------------------------------------
// Byte scanning (CSV ingestion)
// ---------------------------------------------------------------------------

/// Index of the first `needle` at or after `pos`, or npos. The SIMD form
/// of string_view::find for the delimiter/newline scans of ingestion.
size_t FindByte(std::string_view haystack, size_t pos, char needle);
size_t FindByteScalar(std::string_view haystack, size_t pos, char needle);

/// First position at or after `pos` holding either byte, or npos.
size_t FindEitherByte(std::string_view haystack, size_t pos, char a, char b);
size_t FindEitherByteScalar(std::string_view haystack, size_t pos, char a,
                            char b);

/// Number of occurrences of `needle` (exact field-count pre-pass before
/// reserve + from_chars conversion).
size_t CountByte(std::string_view haystack, char needle);
size_t CountByteScalar(std::string_view haystack, char needle);

}  // namespace smartmeter::simd

#endif  // SMARTMETER_SIMD_SIMD_H_
