#ifndef SMARTMETER_SIMD_SIMD_INTERNAL_H_
#define SMARTMETER_SIMD_SIMD_INTERNAL_H_

#include <cstddef>
#include <cstdint>
#include <limits>

// Shared per-element semantics. Every backend — scalar, AVX2, NEON —
// funnels its lane decisions through these helpers (or provably
// equivalent vector instructions) so the paths cannot drift apart.

namespace smartmeter::simd::internal {

/// Bucket of one histogram offset (already divided by the bucket
/// width): non-positive and NaN offsets land in bucket 0, offsets past
/// the end clamp into the last bucket. `num_buckets` >= 1.
inline size_t BucketOf(double offset, size_t num_buckets) {
  if (!(offset > 0.0)) return 0;  // Also catches NaN.
  if (offset >= static_cast<double>(num_buckets)) return num_buckets - 1;
  const size_t bucket = static_cast<size_t>(offset);
  // Guard against the max value rounding into a one-past bucket.
  return bucket < num_buckets ? bucket : num_buckets - 1;
}

/// floor(value / divisor) as int32; out-of-range / NaN saturates to
/// INT32_MIN (the same sentinel _mm256_cvttpd_epi32 produces), never UB.
inline int32_t FloorDivInt32(double value, double divisor) {
  const double floored = __builtin_floor(value / divisor);
  if (floored >= -2147483648.0 && floored < 2147483648.0) {
    return static_cast<int32_t>(floored);
  }
  return std::numeric_limits<int32_t>::min();
}

/// Final reduction of the 4 striped accumulator lanes; fixed order so
/// scalar and vector agree bit for bit.
inline double ReduceLanes(const double lanes[4]) {
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

}  // namespace smartmeter::simd::internal

#endif  // SMARTMETER_SIMD_SIMD_INTERNAL_H_
