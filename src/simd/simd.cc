#include "simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <limits>

#include "simd/simd_arch.h"
#include "simd/simd_internal.h"

namespace smartmeter::simd {

namespace {

Level DetectBuildHost() {
#if SM_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Level::kAVX2;
#elif SM_SIMD_NEON
  return Level::kNEON;
#endif
  return Level::kScalar;
}

/// SM_SIMD in the environment clamps the dispatch level down: "scalar"
/// always wins, the detected level's own name is a no-op, anything else
/// (including names of levels this host cannot run) is ignored.
Level ApplyEnvClamp(Level detected) {
  const char* env = std::getenv("SM_SIMD");
  if (env == nullptr || *env == '\0') return detected;
  const std::string_view requested(env);
  if (requested == LevelName(Level::kScalar)) return Level::kScalar;
  return detected;
}

std::atomic<int> g_active_level{-1};

}  // namespace

std::string_view LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kNEON:
      return "neon";
    case Level::kAVX2:
      return "avx2";
  }
  return "unknown";
}

Level DetectedLevel() {
  static const Level detected = ApplyEnvClamp(DetectBuildHost());
  return detected;
}

Level ActiveLevel() {
  int level = g_active_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(DetectedLevel());
    int expected = -1;
    g_active_level.compare_exchange_strong(expected, level,
                                           std::memory_order_relaxed);
    level = g_active_level.load(std::memory_order_relaxed);
  }
  return static_cast<Level>(level);
}

Level SetActiveLevel(Level level) {
  const Level previous = ActiveLevel();
  const Level clamped =
      static_cast<int>(level) > static_cast<int>(DetectedLevel())
          ? DetectedLevel()
          : level;
  g_active_level.store(static_cast<int>(clamped), std::memory_order_relaxed);
  return previous;
}

// ---------------------------------------------------------------------------
// Scalar kernels — the portable reference every vector path must match
// bit for bit.
// ---------------------------------------------------------------------------

double DotScalar(std::span<const double> x, std::span<const double> y) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  const size_t n4 = x.size() & ~size_t{3};
  for (; i < n4; i += 4) {
    lanes[0] += x[i] * y[i];
    lanes[1] += x[i + 1] * y[i + 1];
    lanes[2] += x[i + 2] * y[i + 2];
    lanes[3] += x[i + 3] * y[i + 3];
  }
  for (; i < x.size(); ++i) lanes[0] += x[i] * y[i];
  return internal::ReduceLanes(lanes);
}

void MinMaxScalar(std::span<const double> values, double* min, double* max) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double mins[4] = {kInf, kInf, kInf, kInf};
  double maxs[4] = {-kInf, -kInf, -kInf, -kInf};
  size_t i = 0;
  const size_t n4 = values.size() & ~size_t{3};
  for (; i < n4; i += 4) {
    for (size_t j = 0; j < 4; ++j) {
      const double v = values[i + j];
      mins[j] = v < mins[j] ? v : mins[j];  // NaN v keeps the lane.
      maxs[j] = v > maxs[j] ? v : maxs[j];
    }
  }
  for (; i < values.size(); ++i) {
    const double v = values[i];
    mins[0] = v < mins[0] ? v : mins[0];
    maxs[0] = v > maxs[0] ? v : maxs[0];
  }
  const double min01 = mins[1] < mins[0] ? mins[1] : mins[0];
  const double min23 = mins[3] < mins[2] ? mins[3] : mins[2];
  *min = min23 < min01 ? min23 : min01;
  const double max01 = maxs[1] > maxs[0] ? maxs[1] : maxs[0];
  const double max23 = maxs[3] > maxs[2] ? maxs[3] : maxs[2];
  *max = max23 > max01 ? max23 : max01;
}

void HistogramBinScalar(std::span<const double> values, double min,
                        double width, std::span<int64_t> counts) {
  const size_t num_buckets = counts.size();
  for (const double v : values) {
    ++counts[internal::BucketOf((v - min) / width, num_buckets)];
  }
}

void BinIndicesInt32Scalar(std::span<const double> values, double divisor,
                           std::span<int32_t> out) {
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = internal::FloorDivInt32(values[i], divisor);
  }
}

void CountBandsScalar(std::span<const double> values,
                      std::span<const int32_t> bins, int32_t base,
                      std::span<const double> lo_table,
                      std::span<const double> hi_table, size_t* lo_count,
                      size_t* hi_count) {
  const int64_t size = static_cast<int64_t>(lo_table.size());
  size_t lo = 0;
  size_t hi = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    const int64_t rel = static_cast<int64_t>(bins[i]) - base;
    if (rel < 0 || rel >= size) continue;
    const double v = values[i];
    // NaN thresholds (dropped bins) and NaN values compare false.
    if (v >= hi_table[static_cast<size_t>(rel)]) ++hi;
    if (v <= lo_table[static_cast<size_t>(rel)]) ++lo;
  }
  *lo_count = lo;
  *hi_count = hi;
}

void SelectBandsScalar(std::span<const double> values,
                       std::span<const int32_t> bins, int32_t base,
                       std::span<const double> lo_table,
                       std::span<const double> hi_table,
                       std::vector<int32_t>* lo_indices,
                       std::vector<int32_t>* hi_indices) {
  const int64_t size = static_cast<int64_t>(lo_table.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const int64_t rel = static_cast<int64_t>(bins[i]) - base;
    if (rel < 0 || rel >= size) continue;
    const double v = values[i];
    if (v >= hi_table[static_cast<size_t>(rel)]) {
      hi_indices->push_back(static_cast<int32_t>(i));
    }
    if (v <= lo_table[static_cast<size_t>(rel)]) {
      lo_indices->push_back(static_cast<int32_t>(i));
    }
  }
}

void AddResidualScalar(std::span<double> acc, std::span<const double> c,
                       std::span<const double> t,
                       std::span<const double> beta) {
  for (size_t i = 0; i < acc.size(); ++i) {
    acc[i] += c[i] - beta[i] * t[i];
  }
}

size_t FindByteScalar(std::string_view haystack, size_t pos, char needle) {
  for (size_t i = pos; i < haystack.size(); ++i) {
    if (haystack[i] == needle) return i;
  }
  return std::string_view::npos;
}

size_t FindEitherByteScalar(std::string_view haystack, size_t pos, char a,
                            char b) {
  for (size_t i = pos; i < haystack.size(); ++i) {
    if (haystack[i] == a || haystack[i] == b) return i;
  }
  return std::string_view::npos;
}

size_t CountByteScalar(std::string_view haystack, char needle) {
  size_t count = 0;
  for (const char c : haystack) count += c == needle ? 1 : 0;
  return count;
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

double Dot(std::span<const double> x, std::span<const double> y) {
  switch (ActiveLevel()) {
#if SM_SIMD_X86
    case Level::kAVX2:
      return arch::DotAvx2(x.data(), y.data(), x.size());
#endif
#if SM_SIMD_NEON
    case Level::kNEON:
      return arch::DotNeon(x.data(), y.data(), x.size());
#endif
    default:
      return DotScalar(x, y);
  }
}

void MinMax(std::span<const double> values, double* min, double* max) {
  switch (ActiveLevel()) {
#if SM_SIMD_X86
    case Level::kAVX2:
      arch::MinMaxAvx2(values.data(), values.size(), min, max);
      return;
#endif
#if SM_SIMD_NEON
    case Level::kNEON:
      arch::MinMaxNeon(values.data(), values.size(), min, max);
      return;
#endif
    default:
      MinMaxScalar(values, min, max);
  }
}

void HistogramBin(std::span<const double> values, double min, double width,
                  std::span<int64_t> counts) {
  switch (ActiveLevel()) {
#if SM_SIMD_X86
    case Level::kAVX2:
      arch::HistogramBinAvx2(values.data(), values.size(), min, width,
                             counts.data(), counts.size());
      return;
#endif
#if SM_SIMD_NEON
    case Level::kNEON:
      arch::HistogramBinNeon(values.data(), values.size(), min, width,
                             counts.data(), counts.size());
      return;
#endif
    default:
      HistogramBinScalar(values, min, width, counts);
  }
}

void BinIndicesInt32(std::span<const double> values, double divisor,
                     std::span<int32_t> out) {
  switch (ActiveLevel()) {
#if SM_SIMD_X86
    case Level::kAVX2:
      arch::BinIndicesInt32Avx2(values.data(), values.size(), divisor,
                                out.data());
      return;
#endif
    default:
      // No NEON form: aarch64 falls back to scalar here.
      BinIndicesInt32Scalar(values, divisor, out);
  }
}

void CountBands(std::span<const double> values,
                std::span<const int32_t> bins, int32_t base,
                std::span<const double> lo_table,
                std::span<const double> hi_table, size_t* lo_count,
                size_t* hi_count) {
  switch (ActiveLevel()) {
#if SM_SIMD_X86
    case Level::kAVX2:
      arch::CountBandsAvx2(values.data(), bins.data(), values.size(), base,
                           lo_table.data(), hi_table.data(), lo_table.size(),
                           lo_count, hi_count);
      return;
#endif
    default:
      // Gather-based kernel: no NEON form, scalar fallback.
      CountBandsScalar(values, bins, base, lo_table, hi_table, lo_count,
                       hi_count);
  }
}

void SelectBands(std::span<const double> values,
                 std::span<const int32_t> bins, int32_t base,
                 std::span<const double> lo_table,
                 std::span<const double> hi_table,
                 std::vector<int32_t>* lo_indices,
                 std::vector<int32_t>* hi_indices) {
  switch (ActiveLevel()) {
#if SM_SIMD_X86
    case Level::kAVX2:
      arch::SelectBandsAvx2(values.data(), bins.data(), values.size(), base,
                            lo_table.data(), hi_table.data(), lo_table.size(),
                            lo_indices, hi_indices);
      return;
#endif
    default:
      SelectBandsScalar(values, bins, base, lo_table, hi_table, lo_indices,
                        hi_indices);
  }
}

void AddResidual(std::span<double> acc, std::span<const double> c,
                 std::span<const double> t, std::span<const double> beta) {
  switch (ActiveLevel()) {
#if SM_SIMD_X86
    case Level::kAVX2:
      arch::AddResidualAvx2(acc.data(), c.data(), t.data(), beta.data(),
                            acc.size());
      return;
#endif
#if SM_SIMD_NEON
    case Level::kNEON:
      arch::AddResidualNeon(acc.data(), c.data(), t.data(), beta.data(),
                            acc.size());
      return;
#endif
    default:
      AddResidualScalar(acc, c, t, beta);
  }
}

size_t FindByte(std::string_view haystack, size_t pos, char needle) {
  switch (ActiveLevel()) {
#if SM_SIMD_X86
    case Level::kAVX2:
      return arch::FindByteAvx2(haystack.data(), haystack.size(), pos,
                                needle);
#endif
#if SM_SIMD_NEON
    case Level::kNEON:
      return arch::FindByteNeon(haystack.data(), haystack.size(), pos,
                                needle);
#endif
    default:
      return FindByteScalar(haystack, pos, needle);
  }
}

size_t FindEitherByte(std::string_view haystack, size_t pos, char a,
                      char b) {
  switch (ActiveLevel()) {
#if SM_SIMD_X86
    case Level::kAVX2:
      return arch::FindEitherByteAvx2(haystack.data(), haystack.size(), pos,
                                      a, b);
#endif
#if SM_SIMD_NEON
    case Level::kNEON:
      return arch::FindEitherByteNeon(haystack.data(), haystack.size(), pos,
                                      a, b);
#endif
    default:
      return FindEitherByteScalar(haystack, pos, a, b);
  }
}

size_t CountByte(std::string_view haystack, char needle) {
  switch (ActiveLevel()) {
#if SM_SIMD_X86
    case Level::kAVX2:
      return arch::CountByteAvx2(haystack.data(), haystack.size(), needle);
#endif
#if SM_SIMD_NEON
    case Level::kNEON:
      return arch::CountByteNeon(haystack.data(), haystack.size(), needle);
#endif
    default:
      return CountByteScalar(haystack, needle);
  }
}

}  // namespace smartmeter::simd
