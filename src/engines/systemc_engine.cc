#include "engines/systemc_engine.h"

#include <string>
#include <utility>

#include "common/stopwatch.h"
#include "core/task_types.h"
#include "engines/engine_util.h"
#include "engines/plan_builders.h"
#include "obs/trace.h"

namespace smartmeter::engines {

SystemCEngine::SystemCEngine(std::string spool_dir)
    : cache_(std::move(spool_dir)) {}

Result<double> SystemCEngine::Attach(const table::DataSource& source) {
  SM_TRACE_SPAN("systemc.attach");
  SM_RETURN_IF_ERROR(RequireLayout(source,
                                   {table::DataSource::Layout::kSingleCsv,
                                    table::DataSource::Layout::kPartitionedDir,
                                    table::DataSource::Layout::kColumnFile},
                                   name()));
  Stopwatch clock;
  prefaulted_ = false;
  batch_ = table::ColumnarBatch();
  if (source.layout == table::DataSource::Layout::kColumnFile) {
    // Already in the native format (either generation): open it
    // directly, no spooling.
    auto reader =
        std::make_unique<table::ColumnFileReader>(source.files.front());
    SM_RETURN_IF_ERROR(reader->Open());
    reader_ = std::move(reader);
  } else {
    // Ingest through the columnar cache: a first attach parses the CSVs
    // once and spools the binary columnar image; any later attach of the
    // unchanged source is an mmap. Either way the map itself is
    // near-free, which is System C's Figure 4 advantage.
    SM_ASSIGN_OR_RETURN(reader_, cache_.OpenOrBuild(source));
  }
  SM_ASSIGN_OR_RETURN(batch_, reader_->NewBatch());
  return clock.ElapsedSeconds();
}

Result<double> SystemCEngine::WarmUp() {
  SM_TRACE_SPAN("systemc.warmup");
  if (batch_.empty()) {
    return Status::InvalidArgument("system-c: no data attached");
  }
  Stopwatch clock;
  // Touch every page of the mapping so a warm run never faults.
  double sink = 0.0;
  for (double v : batch_.consumption_column()) sink += v;
  for (double v : batch_.temperature()) sink += v;
  // Defeat dead-code elimination of the touch loop.
  asm volatile("" : : "g"(sink) : "memory");
  prefaulted_ = true;
  return clock.ElapsedSeconds();
}

void SystemCEngine::DropWarmData() { prefaulted_ = false; }

Result<exec::Plan> SystemCEngine::BuildPlan(const TaskOptions& options) const {
  if (batch_.empty()) {
    return Status::InvalidArgument("system-c: no data attached");
  }
  exec::Plan plan;
  plan.label =
      "system-c/" + std::string(core::TaskName(options.task())) + "/resident";
  // Reader-backed scan: same resident batch for whole-table plans, but
  // scoped requests go back through the reader so a block-indexed store
  // decodes only the blocks the scope touches.
  plan.stages.push_back(
      {"scan",
       planning::ReaderBatchScan(reader_.get(), &batch_, "columnar-mmap")});
  exec::KernelOp kernel;
  kernel.options = options;
  plan.stages.push_back({"kernel", std::move(kernel)});
  plan.stages.push_back({"materialize", exec::MaterializeOp{}});
  return plan;
}

Result<TaskRunMetrics> SystemCEngine::RunTask(const exec::QueryContext& ctx,
                                              const TaskOptions& options,
                                              TaskResultSet* results) {
  SM_TRACE_SPAN("systemc.task");
  SM_ASSIGN_OR_RETURN(exec::Plan plan, BuildPlan(options));
  SM_ASSIGN_OR_RETURN(
      exec::PlanRunMetrics run,
      exec::PlanExecutor().Run(ctx, plan, LocalPoolPolicy(threads_), results));
  return ToTaskMetrics(std::move(run));
}

}  // namespace smartmeter::engines
