#include "engines/systemc_engine.h"

#include <filesystem>

#include "common/stopwatch.h"
#include "engines/engine_util.h"
#include "obs/trace.h"
#include "storage/csv.h"

namespace smartmeter::engines {

SystemCEngine::SystemCEngine(std::string spool_dir)
    : spool_dir_(std::move(spool_dir)) {}

Result<double> SystemCEngine::Attach(const DataSource& source) {
  SM_TRACE_SPAN("systemc.attach");
  SM_RETURN_IF_ERROR(RequireLayout(source,
                                   {DataSource::Layout::kSingleCsv,
                                    DataSource::Layout::kPartitionedDir},
                                   name()));
  Stopwatch clock;
  prefaulted_ = false;
  // Ingest: parse the CSVs once, write the binary columnar image, then
  // memory-map it. The one-time conversion is the whole load cost; the
  // map itself is near-free, which is System C's Figure 4 advantage.
  MeterDataset staged;
  if (source.layout == DataSource::Layout::kSingleCsv) {
    SM_ASSIGN_OR_RETURN(staged,
                        storage::ReadReadingsCsv(source.files.front()));
  } else {
    std::error_code ec;
    std::filesystem::path dir =
        std::filesystem::path(source.files.front()).parent_path();
    SM_ASSIGN_OR_RETURN(staged, storage::ReadPartitionedCsv(dir.string()));
  }
  std::error_code ec;
  std::filesystem::create_directories(spool_dir_, ec);
  if (ec) return Status::IOError("cannot create spool dir " + spool_dir_);
  const std::string image = spool_dir_ + "/table.smcol";
  SM_RETURN_IF_ERROR(storage::ColumnStore::WriteFile(staged, image));
  SM_RETURN_IF_ERROR(store_.OpenMapped(image));
  return clock.ElapsedSeconds();
}

Result<double> SystemCEngine::WarmUp() {
  SM_TRACE_SPAN("systemc.warmup");
  if (!store_.is_open()) {
    return Status::InvalidArgument("system-c: no data attached");
  }
  Stopwatch clock;
  // Touch every page of the mapping so a warm run never faults.
  double sink = 0.0;
  for (double v : store_.consumption_column()) sink += v;
  for (double v : store_.temperature()) sink += v;
  // Defeat dead-code elimination of the touch loop.
  asm volatile("" : : "g"(sink) : "memory");
  prefaulted_ = true;
  return clock.ElapsedSeconds();
}

void SystemCEngine::DropWarmData() { prefaulted_ = false; }

Result<TaskRunMetrics> SystemCEngine::RunTask(const exec::QueryContext& ctx,
                                              const TaskOptions& options,
                                              TaskResultSet* results) {
  SM_TRACE_SPAN("systemc.task");
  if (!store_.is_open()) {
    return Status::InvalidArgument("system-c: no data attached");
  }
  SeriesAccess access;
  access.count = store_.num_households();
  const storage::ColumnStore& store = store_;
  access.household_id = [&store](size_t i) { return store.household_id(i); };
  access.consumption = [&store](size_t i) { return store.consumption(i); };
  access.temperature = store.temperature();
  return RunTaskOverSeries(ctx, access, options, threads_, results);
}

}  // namespace smartmeter::engines
