#include "engines/engine_util.h"

#include <algorithm>
#include <mutex>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace smartmeter::engines {

namespace {

/// Static span label for a task type (span names are not owned).
const char* TaskSpanName(core::TaskType task) {
  switch (task) {
    case core::TaskType::kHistogram:
      return "task.histogram";
    case core::TaskType::kThreeLine:
      return "task.three_line";
    case core::TaskType::kPar:
      return "task.par";
    case core::TaskType::kSimilarity:
      return "task.similarity";
  }
  return "task.unknown";
}

/// Collects the first error seen across parallel workers.
class ErrorCollector {
 public:
  void Record(const Status& status) {
    if (status.ok()) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (first_.ok()) first_ = status;
  }
  const Status& first() const { return first_; }

 private:
  std::mutex mu_;
  Status first_ = Status::OK();
};

}  // namespace

Status RequireLayout(const DataSource& source,
                     std::initializer_list<DataSource::Layout> allowed,
                     std::string_view engine_name) {
  SM_RETURN_IF_ERROR(source.Validate());
  for (DataSource::Layout layout : allowed) {
    if (source.layout == layout) return Status::OK();
  }
  return Status::NotSupported(StringPrintf(
      "%.*s does not read the %.*s layout",
      static_cast<int>(engine_name.size()), engine_name.data(),
      static_cast<int>(DataSourceLayoutName(source.layout).size()),
      DataSourceLayoutName(source.layout).data()));
}

Result<TaskRunMetrics> RunTaskOverBatch(const exec::QueryContext& ctx,
                                        const table::ColumnarBatch& batch,
                                        const TaskOptions& options,
                                        int num_threads,
                                        TaskResultSet* results) {
  obs::SpanScope task_span(TaskSpanName(options.task()));
  SM_RETURN_IF_ERROR(batch.Validate());
  TaskRunMetrics metrics;
  Stopwatch clock;
  ThreadPool pool(num_threads < 1 ? 1 : num_threads);
  ErrorCollector errors;
  const size_t count = batch.count();

  switch (options.task()) {
    case core::TaskType::kHistogram: {
      const auto& histogram = options.Get<core::HistogramOptions>();
      std::vector<core::HistogramResult> out(count);
      pool.ParallelFor(count, [&](size_t begin, size_t end) {
        errors.Record(core::ComputeHistogramRange(batch, begin, end,
                                                  histogram, &ctx, out));
      });
      SM_RETURN_IF_ERROR(errors.first());
      if (results != nullptr) {
        results->Mutable<core::HistogramResult>() = std::move(out);
      }
      break;
    }
    case core::TaskType::kThreeLine: {
      const auto& three_line = options.Get<core::ThreeLineOptions>();
      std::vector<core::ThreeLineResult> out(count);
      std::mutex phase_mu;
      pool.ParallelFor(count, [&](size_t begin, size_t end) {
        core::ThreeLinePhases local_phases;
        errors.Record(core::ComputeThreeLineRange(
            batch, begin, end, three_line, &local_phases, &ctx, out));
        std::lock_guard<std::mutex> lock(phase_mu);
        metrics.phases.Accumulate(local_phases);
      });
      SM_RETURN_IF_ERROR(errors.first());
      if (results != nullptr) {
        results->Mutable<core::ThreeLineResult>() = std::move(out);
      }
      break;
    }
    case core::TaskType::kPar: {
      const auto& par = options.Get<core::ParOptions>();
      std::vector<core::DailyProfileResult> out(count);
      pool.ParallelFor(count, [&](size_t begin, size_t end) {
        errors.Record(
            core::ComputeDailyProfileRange(batch, begin, end, par, &ctx, out));
      });
      SM_RETURN_IF_ERROR(errors.first());
      if (results != nullptr) {
        results->Mutable<core::DailyProfileResult>() = std::move(out);
      }
      break;
    }
    case core::TaskType::kSimilarity: {
      const auto& similarity = options.Get<SimilarityTaskOptions>();
      const std::vector<core::SeriesView> views = core::BuildSeriesViews(
          batch, similarity.households > 0
                     ? static_cast<size_t>(similarity.households)
                     : 0);
      const size_t n = views.size();
      const std::vector<double> norms = core::ComputeNorms(views);
      std::vector<core::SimilarityResult> out(n);
      pool.ParallelFor(n, [&](size_t begin, size_t end) {
        Result<std::vector<core::SimilarityResult>> chunk =
            core::ComputeSimilarityTopKRange(views, norms, begin, end,
                                             similarity.search, &ctx);
        if (!chunk.ok()) {
          errors.Record(chunk.status());
          return;
        }
        for (size_t i = begin; i < end; ++i) {
          out[i] = std::move((*chunk)[i - begin]);
        }
      });
      SM_RETURN_IF_ERROR(errors.first());
      if (results != nullptr) {
        results->Mutable<core::SimilarityResult>() = std::move(out);
      }
      break;
    }
  }
  metrics.seconds = clock.ElapsedSeconds();
  return metrics;
}

Result<TaskRunMetrics> RunTaskOverDataset(const exec::QueryContext& ctx,
                                          const MeterDataset& dataset,
                                          const TaskOptions& options,
                                          int num_threads,
                                          TaskResultSet* results) {
  SM_ASSIGN_OR_RETURN(table::ColumnarBatch batch,
                      table::ColumnarBatch::FromDataset(dataset));
  return RunTaskOverBatch(ctx, batch, options, num_threads, results);
}

}  // namespace smartmeter::engines
