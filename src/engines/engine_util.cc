#include "engines/engine_util.h"

#include <string>
#include <utility>

#include "common/string_util.h"
#include "core/task_types.h"
#include "engines/plan_builders.h"

namespace smartmeter::engines {

TaskRunMetrics ToTaskMetrics(exec::PlanRunMetrics&& run) {
  TaskRunMetrics metrics;
  metrics.seconds = run.seconds;
  metrics.simulated = run.simulated;
  metrics.phases = run.phases;
  metrics.modeled_memory_bytes = run.modeled_memory_bytes;
  metrics.stages = std::move(run.stages);
  metrics.faults = run.faults;
  metrics.scan = run.scan;
  return metrics;
}

exec::ExecutionPolicy LocalPoolPolicy(int num_threads) {
  exec::ExecutionPolicy policy;
  policy.dispatch = exec::ExecutionPolicy::Dispatch::kLocalPool;
  policy.threads = num_threads < 1 ? 1 : num_threads;
  return policy;
}

Status RequireLayout(const table::DataSource& source,
                     std::initializer_list<table::DataSource::Layout> allowed,
                     std::string_view engine_name) {
  SM_RETURN_IF_ERROR(source.Validate());
  for (table::DataSource::Layout layout : allowed) {
    if (source.layout == layout) return Status::OK();
  }
  return Status::NotSupported(StringPrintf(
      "%.*s does not read the %.*s layout",
      static_cast<int>(engine_name.size()), engine_name.data(),
      static_cast<int>(table::DataSourceLayoutName(source.layout).size()),
      table::DataSourceLayoutName(source.layout).data()));
}

Result<TaskRunMetrics> RunTaskOverBatch(const exec::QueryContext& ctx,
                                        const table::ColumnarBatch& batch,
                                        const TaskOptions& options,
                                        int num_threads,
                                        TaskResultSet* results) {
  exec::Plan plan;
  plan.label = "adhoc/" + std::string(core::TaskName(options.task())) +
               "/batch";
  plan.stages.push_back(
      {"scan", planning::ResidentBatchScan(&batch, "borrowed-batch")});
  exec::KernelOp kernel;
  kernel.options = options;
  plan.stages.push_back({"kernel", std::move(kernel)});
  plan.stages.push_back({"materialize", exec::MaterializeOp{}});
  SM_ASSIGN_OR_RETURN(exec::PlanRunMetrics run,
                      exec::PlanExecutor().Run(
                          ctx, plan, LocalPoolPolicy(num_threads), results));
  return ToTaskMetrics(std::move(run));
}

Result<TaskRunMetrics> RunTaskOverDataset(const exec::QueryContext& ctx,
                                          const MeterDataset& dataset,
                                          const TaskOptions& options,
                                          int num_threads,
                                          TaskResultSet* results) {
  exec::Plan plan;
  plan.label = "adhoc/" + std::string(core::TaskName(options.task())) +
               "/dataset";
  plan.stages.push_back(
      {"scan", planning::DatasetBatchScan(&dataset, "in-memory-dataset")});
  exec::KernelOp kernel;
  kernel.options = options;
  plan.stages.push_back({"kernel", std::move(kernel)});
  plan.stages.push_back({"materialize", exec::MaterializeOp{}});
  SM_ASSIGN_OR_RETURN(exec::PlanRunMetrics run,
                      exec::PlanExecutor().Run(
                          ctx, plan, LocalPoolPolicy(num_threads), results));
  return ToTaskMetrics(std::move(run));
}

}  // namespace smartmeter::engines
