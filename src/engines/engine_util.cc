#include "engines/engine_util.h"

#include <mutex>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace smartmeter::engines {

namespace {

/// Static span label for a task type (span names are not owned).
const char* TaskSpanName(core::TaskType task) {
  switch (task) {
    case core::TaskType::kHistogram:
      return "task.histogram";
    case core::TaskType::kThreeLine:
      return "task.three_line";
    case core::TaskType::kPar:
      return "task.par";
    case core::TaskType::kSimilarity:
      return "task.similarity";
  }
  return "task.unknown";
}

/// Collects the first error seen across parallel workers.
class ErrorCollector {
 public:
  void Record(const Status& status) {
    if (status.ok()) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (first_.ok()) first_ = status;
  }
  const Status& first() const { return first_; }

 private:
  std::mutex mu_;
  Status first_ = Status::OK();
};

}  // namespace

std::string_view DataSourceLayoutName(DataSource::Layout layout) {
  switch (layout) {
    case DataSource::Layout::kSingleCsv:
      return "single-csv";
    case DataSource::Layout::kPartitionedDir:
      return "partitioned-dir";
    case DataSource::Layout::kHouseholdLines:
      return "household-lines";
    case DataSource::Layout::kWholeFileDir:
      return "whole-file-dir";
  }
  return "unknown";
}

Result<TaskRunMetrics> RunTaskOverSeries(const SeriesAccess& access,
                                         const TaskRequest& request,
                                         int num_threads,
                                         TaskOutputs* outputs) {
  obs::SpanScope task_span(TaskSpanName(request.task));
  TaskRunMetrics metrics;
  Stopwatch clock;
  ThreadPool pool(num_threads < 1 ? 1 : num_threads);
  ErrorCollector errors;
  const size_t count = access.count;

  switch (request.task) {
    case core::TaskType::kHistogram: {
      std::vector<core::HistogramResult> results(count);
      pool.ParallelFor(count, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          Result<stats::EquiWidthHistogram> hist =
              core::ComputeConsumptionHistogram(access.consumption(i),
                                                request.histogram);
          if (!hist.ok()) {
            errors.Record(hist.status());
            return;
          }
          results[i] = {access.household_id(i), std::move(*hist)};
        }
      });
      SM_RETURN_IF_ERROR(errors.first());
      if (outputs != nullptr) outputs->histograms = std::move(results);
      break;
    }
    case core::TaskType::kThreeLine: {
      std::vector<core::ThreeLineResult> results(count);
      std::mutex phase_mu;
      pool.ParallelFor(count, [&](size_t begin, size_t end) {
        core::ThreeLinePhases local_phases;
        for (size_t i = begin; i < end; ++i) {
          Result<core::ThreeLineResult> fit = core::ComputeThreeLine(
              access.consumption(i), access.temperature,
              access.household_id(i), request.three_line, &local_phases);
          if (!fit.ok()) {
            errors.Record(fit.status());
            return;
          }
          results[i] = std::move(*fit);
        }
        std::lock_guard<std::mutex> lock(phase_mu);
        metrics.phases.Accumulate(local_phases);
      });
      SM_RETURN_IF_ERROR(errors.first());
      if (outputs != nullptr) outputs->three_lines = std::move(results);
      break;
    }
    case core::TaskType::kPar: {
      std::vector<core::DailyProfileResult> results(count);
      pool.ParallelFor(count, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          Result<core::DailyProfileResult> profile =
              core::ComputeDailyProfile(access.consumption(i),
                                        access.temperature,
                                        access.household_id(i), request.par);
          if (!profile.ok()) {
            errors.Record(profile.status());
            return;
          }
          results[i] = std::move(*profile);
        }
      });
      SM_RETURN_IF_ERROR(errors.first());
      if (outputs != nullptr) outputs->profiles = std::move(results);
      break;
    }
    case core::TaskType::kSimilarity: {
      size_t n = count;
      if (request.similarity_households > 0) {
        n = std::min(n, static_cast<size_t>(request.similarity_households));
      }
      std::vector<core::SeriesView> views;
      views.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        views.push_back({access.household_id(i), access.consumption(i)});
      }
      const std::vector<double> norms = core::ComputeNorms(views);
      std::vector<core::SimilarityResult> results(n);
      pool.ParallelFor(n, [&](size_t begin, size_t end) {
        Result<std::vector<core::SimilarityResult>> chunk =
            core::ComputeSimilarityTopKRange(views, norms, begin, end,
                                             request.similarity);
        if (!chunk.ok()) {
          errors.Record(chunk.status());
          return;
        }
        for (size_t i = begin; i < end; ++i) {
          results[i] = std::move((*chunk)[i - begin]);
        }
      });
      SM_RETURN_IF_ERROR(errors.first());
      if (outputs != nullptr) outputs->similarities = std::move(results);
      break;
    }
  }
  metrics.seconds = clock.ElapsedSeconds();
  return metrics;
}

Result<TaskRunMetrics> RunTaskOverDataset(const MeterDataset& dataset,
                                          const TaskRequest& request,
                                          int num_threads,
                                          TaskOutputs* outputs) {
  SeriesAccess access;
  access.count = dataset.num_consumers();
  const auto& consumers = dataset.consumers();
  access.household_id = [&consumers](size_t i) {
    return consumers[i].household_id;
  };
  access.consumption = [&consumers](size_t i) {
    return std::span<const double>(consumers[i].consumption);
  };
  access.temperature = dataset.temperature();
  return RunTaskOverSeries(access, request, num_threads, outputs);
}

}  // namespace smartmeter::engines
