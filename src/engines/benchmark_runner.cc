#include "engines/benchmark_runner.h"

#include "common/memory_probe.h"

namespace smartmeter::engines {

Result<RunReport> RunTaskOnEngine(AnalyticsEngine* engine,
                                  const TaskRequest& request, int threads,
                                  bool sample_memory, bool keep_outputs) {
  engine->SetThreads(threads);
  RunReport report;
  MemorySampler sampler(/*interval_ms=*/20);
  if (sample_memory) sampler.Start();
  SM_ASSIGN_OR_RETURN(
      TaskRunMetrics metrics,
      engine->RunTask(request, keep_outputs ? &report.outputs : nullptr));
  if (sample_memory) {
    sampler.Stop();
    report.memory_bytes = sampler.AverageRssBytes();
  }
  if (metrics.modeled_memory_bytes > 0) {
    report.memory_bytes = metrics.modeled_memory_bytes;
  }
  report.task_seconds = metrics.seconds;
  report.simulated = metrics.simulated;
  report.phases = metrics.phases;
  return report;
}

Result<RunReport> RunBenchmark(const RunSpec& spec) {
  std::unique_ptr<AnalyticsEngine> engine =
      MakeEngine(spec.kind, spec.factory);
  if (engine == nullptr) {
    return Status::InvalidArgument("unknown engine kind");
  }
  engine->SetThreads(spec.threads);
  RunReport report;
  SM_ASSIGN_OR_RETURN(report.attach_seconds, engine->Attach(spec.source));
  if (spec.warm) {
    SM_ASSIGN_OR_RETURN(report.warmup_seconds, engine->WarmUp());
  }
  SM_ASSIGN_OR_RETURN(
      RunReport task_report,
      RunTaskOnEngine(engine.get(), spec.request, spec.threads,
                      spec.sample_memory, spec.keep_outputs));
  report.task_seconds = task_report.task_seconds;
  report.simulated = task_report.simulated;
  report.phases = task_report.phases;
  report.memory_bytes = task_report.memory_bytes;
  report.outputs = std::move(task_report.outputs);
  return report;
}

}  // namespace smartmeter::engines
