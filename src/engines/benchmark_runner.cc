#include "engines/benchmark_runner.h"

#include <string>

#include "common/memory_probe.h"
#include "engines/engine_util.h"
#include "obs/trace.h"

namespace smartmeter::engines {

obs::RunRecord MakeRunRecord(const RunSpec& spec, const RunReport& report) {
  obs::RunRecord record;
  record.engine = std::string(EngineKindName(spec.kind));
  record.task = std::string(core::TaskName(spec.options.task()));
  record.layout = std::string(table::DataSourceLayoutName(spec.source.layout));
  record.threads = spec.threads;
  record.warm = spec.warm;
  record.simulated = report.simulated;
  record.attach_seconds = report.attach_seconds;
  record.warmup_seconds = report.warmup_seconds;
  record.task_seconds = report.task_seconds;
  record.memory_bytes = report.memory_bytes;
  record.quantile_seconds = report.phases.quantile_seconds;
  record.regression_seconds = report.phases.regression_seconds;
  record.adjust_seconds = report.phases.adjust_seconds;
  record.stages.reserve(report.stages.size());
  for (const exec::StageTiming& stage : report.stages) {
    record.stages.push_back({stage.name, stage.seconds, stage.partitions,
                             stage.retries, stage.stragglers,
                             stage.speculative_launched,
                             stage.speculative_wins});
  }
  record.bytes_scanned = report.scan.bytes_decoded;
  record.blocks_decoded = report.scan.blocks_decoded;
  record.blocks_pruned = report.scan.blocks_pruned;
  if (report.scan.bytes_on_disk > 0) {
    record.compression_ratio =
        static_cast<double>(report.scan.bytes_decoded) /
        static_cast<double>(report.scan.bytes_on_disk);
  }
  return record;
}

Result<RunReport> RunTaskOnEngine(AnalyticsEngine* engine,
                                  const exec::QueryContext& ctx,
                                  const TaskOptions& options, int threads,
                                  bool sample_memory, bool keep_outputs) {
  SM_TRACE_SPAN("bench.task");
  engine->SetThreads(threads);
  RunReport report;
  MemorySampler sampler(/*interval_ms=*/20);
  if (sample_memory) sampler.Start();
  SM_ASSIGN_OR_RETURN(
      TaskRunMetrics metrics,
      engine->RunTask(ctx, options, keep_outputs ? &report.results : nullptr));
  if (sample_memory) {
    sampler.Stop();
    report.memory_bytes = sampler.AverageRssBytes();
  }
  if (metrics.modeled_memory_bytes > 0) {
    report.memory_bytes = metrics.modeled_memory_bytes;
  }
  report.task_seconds = metrics.seconds;
  report.simulated = metrics.simulated;
  report.phases = metrics.phases;
  report.stages = std::move(metrics.stages);
  report.scan = metrics.scan;
  return report;
}

Result<RunReport> RunTaskOnEngine(AnalyticsEngine* engine,
                                  const exec::QueryContext& ctx,
                                  const TaskOptions& options,
                                  bool keep_outputs) {
  return RunTaskOnEngine(engine, ctx, options, engine->threads(),
                         /*sample_memory=*/false, keep_outputs);
}

Result<RunReport> RunTaskOnEngine(AnalyticsEngine* engine,
                                  const TaskOptions& options, int threads,
                                  bool sample_memory, bool keep_outputs) {
  return RunTaskOnEngine(engine, exec::QueryContext::Background(), options,
                         threads, sample_memory, keep_outputs);
}

Result<RunReport> RunBenchmark(const RunSpec& spec) {
  std::unique_ptr<AnalyticsEngine> engine =
      MakeEngine(spec.kind, spec.factory);
  if (engine == nullptr) {
    return Status::InvalidArgument("unknown engine kind");
  }
  engine->SetThreads(spec.threads);
  RunReport report;
  {
    SM_TRACE_SPAN("bench.attach");
    SM_ASSIGN_OR_RETURN(report.attach_seconds, engine->Attach(spec.source));
  }
  if (spec.warm) {
    SM_TRACE_SPAN("bench.warmup");
    SM_ASSIGN_OR_RETURN(report.warmup_seconds, engine->WarmUp());
  }
  SM_ASSIGN_OR_RETURN(
      RunReport task_report,
      RunTaskOnEngine(engine.get(), spec.options, spec.threads,
                      spec.sample_memory, spec.keep_outputs));
  report.task_seconds = task_report.task_seconds;
  report.simulated = task_report.simulated;
  report.phases = task_report.phases;
  report.stages = std::move(task_report.stages);
  report.memory_bytes = task_report.memory_bytes;
  report.scan = task_report.scan;
  report.results = std::move(task_report.results);
  if (spec.report != nullptr) {
    spec.report->AddRun(MakeRunRecord(spec, report));
  }
  return report;
}

}  // namespace smartmeter::engines
