#ifndef SMARTMETER_ENGINES_ENGINE_UTIL_H_
#define SMARTMETER_ENGINES_ENGINE_UTIL_H_

#include <functional>
#include <span>

#include "engines/engine.h"
#include "timeseries/dataset.h"

namespace smartmeter::engines {

/// A storage-agnostic view over n consumer series plus the shared
/// temperature series; each engine adapts its own storage (file arrays,
/// row-store extracts, mmap'd column segments) to this shape.
struct SeriesAccess {
  size_t count = 0;
  std::function<int64_t(size_t)> household_id;
  std::function<std::span<const double>(size_t)> consumption;
  std::span<const double> temperature;
};

/// Shared per-consumer task executor used by every single-node engine
/// once data is accessible: splits households across `num_threads`
/// workers (the per-consumer tasks are embarrassingly parallel, Section
/// 5.3.4) and runs the requested algorithm. Similarity partitions the
/// query side of the quadratic loop. Returns wall-clock metrics;
/// `outputs` (optional) receives results in household order.
Result<TaskRunMetrics> RunTaskOverSeries(const SeriesAccess& access,
                                         const TaskRequest& request,
                                         int num_threads,
                                         TaskOutputs* outputs);

/// Convenience adapter over an in-memory dataset.
Result<TaskRunMetrics> RunTaskOverDataset(const MeterDataset& dataset,
                                          const TaskRequest& request,
                                          int num_threads,
                                          TaskOutputs* outputs);

std::string_view DataSourceLayoutName(DataSource::Layout layout);

}  // namespace smartmeter::engines

#endif  // SMARTMETER_ENGINES_ENGINE_UTIL_H_
