#ifndef SMARTMETER_ENGINES_ENGINE_UTIL_H_
#define SMARTMETER_ENGINES_ENGINE_UTIL_H_

#include <initializer_list>

#include "engines/engine.h"
#include "table/columnar_batch.h"
#include "timeseries/dataset.h"

namespace smartmeter::engines {

/// Shared per-consumer task executor used by every single-node engine
/// once data is in a ColumnarBatch: splits households across
/// `num_threads` workers (the per-consumer tasks are embarrassingly
/// parallel, Section 5.3.4) and runs the requested algorithm via the
/// kernels' batch-range entry points, so every inner loop reads
/// contiguous column slices with no per-access indirection. Similarity
/// partitions the query side of the quadratic loop. `ctx` is polled per
/// household so a cancelled or expired query returns kCancelled /
/// kDeadlineExceeded promptly. Returns wall-clock metrics; `results`
/// (optional) receives results in household order.
Result<TaskRunMetrics> RunTaskOverBatch(const exec::QueryContext& ctx,
                                        const table::ColumnarBatch& batch,
                                        const TaskOptions& options,
                                        int num_threads,
                                        TaskResultSet* results);

/// Convenience adapter over an in-memory dataset (builds a borrowing
/// batch first).
Result<TaskRunMetrics> RunTaskOverDataset(const exec::QueryContext& ctx,
                                          const MeterDataset& dataset,
                                          const TaskOptions& options,
                                          int num_threads,
                                          TaskResultSet* results);

/// Shared Attach screening: validates `source` and requires its layout to
/// be one of `allowed`, returning kNotSupported naming the engine
/// otherwise. Replaces the per-engine ad-hoc layout checks.
Status RequireLayout(const DataSource& source,
                     std::initializer_list<DataSource::Layout> allowed,
                     std::string_view engine_name);

}  // namespace smartmeter::engines

#endif  // SMARTMETER_ENGINES_ENGINE_UTIL_H_
