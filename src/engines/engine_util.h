#ifndef SMARTMETER_ENGINES_ENGINE_UTIL_H_
#define SMARTMETER_ENGINES_ENGINE_UTIL_H_

#include <functional>
#include <initializer_list>
#include <span>

#include "engines/engine.h"
#include "timeseries/dataset.h"

namespace smartmeter::engines {

/// A storage-agnostic view over n consumer series plus the shared
/// temperature series; each engine adapts its own storage (file arrays,
/// row-store extracts, mmap'd column segments) to this shape.
struct SeriesAccess {
  size_t count = 0;
  std::function<int64_t(size_t)> household_id;
  std::function<std::span<const double>(size_t)> consumption;
  std::span<const double> temperature;
};

/// Shared per-consumer task executor used by every single-node engine
/// once data is accessible: splits households across `num_threads`
/// workers (the per-consumer tasks are embarrassingly parallel, Section
/// 5.3.4) and runs the requested algorithm. Similarity partitions the
/// query side of the quadratic loop. `ctx` is polled per household so a
/// cancelled or expired query returns kCancelled / kDeadlineExceeded
/// promptly. Returns wall-clock metrics; `results` (optional) receives
/// results in household order.
Result<TaskRunMetrics> RunTaskOverSeries(const exec::QueryContext& ctx,
                                         const SeriesAccess& access,
                                         const TaskOptions& options,
                                         int num_threads,
                                         TaskResultSet* results);

/// Convenience adapter over an in-memory dataset.
Result<TaskRunMetrics> RunTaskOverDataset(const exec::QueryContext& ctx,
                                          const MeterDataset& dataset,
                                          const TaskOptions& options,
                                          int num_threads,
                                          TaskResultSet* results);

/// Shared Attach screening: validates `source` and requires its layout to
/// be one of `allowed`, returning kNotSupported naming the engine
/// otherwise. Replaces the per-engine ad-hoc layout checks.
Status RequireLayout(const DataSource& source,
                     std::initializer_list<DataSource::Layout> allowed,
                     std::string_view engine_name);

}  // namespace smartmeter::engines

#endif  // SMARTMETER_ENGINES_ENGINE_UTIL_H_
