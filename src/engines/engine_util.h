#ifndef SMARTMETER_ENGINES_ENGINE_UTIL_H_
#define SMARTMETER_ENGINES_ENGINE_UTIL_H_

#include <initializer_list>
#include <string_view>

#include "engines/engine.h"
#include "exec/plan_executor.h"
#include "table/columnar_batch.h"
#include "table/data_source.h"
#include "timeseries/dataset.h"

namespace smartmeter::engines {

/// Maps one plan run onto the engine metrics surface.
TaskRunMetrics ToTaskMetrics(exec::PlanRunMetrics&& run);

/// The single-node dispatch policy: partitions on the work-stealing
/// ThreadPool, wall-clock timings.
exec::ExecutionPolicy LocalPoolPolicy(int num_threads);

/// Runs one task over an already-materialized batch by building the
/// canonical scan -> kernel -> materialize plan and handing it to the
/// PlanExecutor (the batch is re-viewed, not copied). Kept as the ad-hoc
/// entry point for callers that hold a batch without an engine.
Result<TaskRunMetrics> RunTaskOverBatch(const exec::QueryContext& ctx,
                                        const table::ColumnarBatch& batch,
                                        const TaskOptions& options,
                                        int num_threads,
                                        TaskResultSet* results);

/// Convenience adapter over an in-memory dataset (the plan's scan builds
/// a borrowing batch).
Result<TaskRunMetrics> RunTaskOverDataset(const exec::QueryContext& ctx,
                                          const MeterDataset& dataset,
                                          const TaskOptions& options,
                                          int num_threads,
                                          TaskResultSet* results);

/// Shared Attach screening: validates `source` and requires its layout to
/// be one of `allowed`, returning kNotSupported naming the engine
/// otherwise. Replaces the per-engine ad-hoc layout checks.
Status RequireLayout(const table::DataSource& source,
                     std::initializer_list<table::DataSource::Layout> allowed,
                     std::string_view engine_name);

}  // namespace smartmeter::engines

#endif  // SMARTMETER_ENGINES_ENGINE_UTIL_H_
