#ifndef SMARTMETER_ENGINES_RESULT_SERDE_H_
#define SMARTMETER_ENGINES_RESULT_SERDE_H_

#include <cstdint>

#include "core/task_types.h"

namespace smartmeter::core {

/// Modeled serialized sizes of the task-result records, used by the
/// cluster simulation to convert result streams into shuffle bytes.
/// Overloads live in the result types' namespace so the cluster
/// frameworks find them by argument-dependent lookup.

inline int64_t ApproxByteSize(const HistogramResult& r) {
  return 8 /*id*/ + 16 /*range*/ +
         static_cast<int64_t>(r.histogram.counts.size()) * 8;
}

inline int64_t ApproxByteSize(const ThreeLineResult&) {
  // Two 3-piece models (6 segments x {range, slope, intercept}) + id +
  // three derived scalars.
  return 8 + 6 * 4 * 8 + 3 * 8;
}

inline int64_t ApproxByteSize(const DailyProfileResult& r) {
  int64_t coeffs = 0;
  for (const auto& c : r.coefficients) {
    coeffs += 16 + static_cast<int64_t>(c.size()) * 8;
  }
  return 8 + 16 + static_cast<int64_t>(r.profile.size()) * 8 + coeffs +
         16 + static_cast<int64_t>(r.temperature_beta.size()) * 8;
}

inline int64_t ApproxByteSize(const SimilarityResult& r) {
  return 8 + 16 + static_cast<int64_t>(r.matches.size()) * 16;
}

}  // namespace smartmeter::core

#endif  // SMARTMETER_ENGINES_RESULT_SERDE_H_
