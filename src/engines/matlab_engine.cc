#include "engines/matlab_engine.h"

#include <algorithm>
#include <mutex>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "engines/engine_util.h"
#include "obs/trace.h"
#include "storage/csv.h"
#include "table/columnar_batch.h"

namespace smartmeter::engines {

namespace {

/// Parses one single-household file (rows already in hour order, as the
/// partitioned writer produces them) without any grouping structure --
/// the fast streaming path a per-file loop enjoys.
Status ParseSingleHouseholdFile(const std::string& path,
                                ConsumerSeries* series,
                                std::vector<double>* temperature) {
  storage::ReadingCsvReader reader(path);
  SM_RETURN_IF_ERROR(reader.Open());
  storage::ReadingRow row;
  bool first = true;
  series->consumption.clear();
  temperature->clear();
  while (reader.Next(&row)) {
    if (first) {
      series->household_id = row.household_id;
      first = false;
    }
    series->consumption.push_back(row.consumption);
    temperature->push_back(row.temperature);
  }
  SM_RETURN_IF_ERROR(reader.status());
  if (first) {
    return Status::Corruption("empty household file " + path);
  }
  return Status::OK();
}

}  // namespace

Result<double> MatlabEngine::Attach(const DataSource& source) {
  SM_TRACE_SPAN("matlab.attach");
  SM_RETURN_IF_ERROR(RequireLayout(source,
                                   {DataSource::Layout::kSingleCsv,
                                    DataSource::Layout::kPartitionedDir},
                                   name()));
  Stopwatch clock;
  source_ = source;
  warm_.reset();
  // No load phase: Matlab works off the files themselves.
  return clock.ElapsedSeconds();
}

Result<MeterDataset> MatlabEngine::ParseAll() const {
  SM_TRACE_SPAN("matlab.parse_all");
  if (source_.layout == DataSource::Layout::kSingleCsv) {
    // One big file: Matlab textscans the whole file into flat column
    // arrays, then pulls each household out with logical indexing --
    // data(data(:,1) == id, :) -- which rescans the full arrays once per
    // household. That O(rows x households) extraction is the slow path
    // of Figure 5.
    storage::ReadingCsvReader reader(source_.files.front());
    SM_RETURN_IF_ERROR(reader.Open());
    std::vector<int64_t> ids;
    std::vector<int32_t> hours;
    std::vector<double> cons;
    std::vector<double> temps;
    storage::ReadingRow row;
    while (reader.Next(&row)) {
      ids.push_back(row.household_id);
      hours.push_back(row.hour);
      cons.push_back(row.consumption);
      temps.push_back(row.temperature);
    }
    SM_RETURN_IF_ERROR(reader.status());
    if (ids.empty()) {
      return Status::InvalidArgument("matlab: empty input file");
    }
    std::vector<int64_t> distinct = ids;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());

    MeterDataset dataset;
    std::vector<double> temperature;
    for (int64_t id : distinct) {
      // Logical-indexing pass over the full arrays for this household.
      std::vector<std::pair<int32_t, double>> keyed;
      std::vector<std::pair<int32_t, double>> keyed_temp;
      for (size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] == id) {
          keyed.emplace_back(hours[i], cons[i]);
          keyed_temp.emplace_back(hours[i], temps[i]);
        }
      }
      std::sort(keyed.begin(), keyed.end());
      ConsumerSeries series;
      series.household_id = id;
      series.consumption.reserve(keyed.size());
      for (const auto& [hour, value] : keyed) {
        series.consumption.push_back(value);
      }
      if (temperature.empty()) {
        std::sort(keyed_temp.begin(), keyed_temp.end());
        temperature.reserve(keyed_temp.size());
        for (const auto& [hour, value] : keyed_temp) {
          temperature.push_back(value);
        }
      }
      dataset.AddConsumer(std::move(series));
    }
    dataset.SetTemperature(std::move(temperature));
    SM_RETURN_IF_ERROR(dataset.Validate());
    return dataset;
  }
  // Partitioned: stream the files one by one, in parallel slices.
  const size_t n = source_.files.size();
  std::vector<ConsumerSeries> consumers(n);
  std::vector<double> temperature;
  std::mutex mu;
  Status first_error = Status::OK();
  ThreadPool pool(std::max(1, threads_));
  pool.ParallelFor(n, [&](size_t begin, size_t end) {
    std::vector<double> local_temp;
    for (size_t i = begin; i < end; ++i) {
      const Status st = ParseSingleHouseholdFile(source_.files[i],
                                                 &consumers[i], &local_temp);
      std::lock_guard<std::mutex> lock(mu);
      if (!st.ok()) {
        if (first_error.ok()) first_error = st;
        return;
      }
      if (temperature.empty()) temperature = local_temp;
    }
  });
  SM_RETURN_IF_ERROR(first_error);
  MeterDataset dataset(std::move(temperature), std::move(consumers));
  SM_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

Result<double> MatlabEngine::WarmUp() {
  SM_TRACE_SPAN("matlab.warmup");
  Stopwatch clock;
  SM_ASSIGN_OR_RETURN(MeterDataset dataset, ParseAll());
  warm_ = std::move(dataset);
  return clock.ElapsedSeconds();
}

void MatlabEngine::DropWarmData() { warm_.reset(); }

Result<TaskRunMetrics> MatlabEngine::RunTask(const exec::QueryContext& ctx,
                                             const TaskOptions& options,
                                             TaskResultSet* results) {
  SM_TRACE_SPAN("matlab.task");
  if (source_.files.empty()) {
    return Status::InvalidArgument("matlab: no data attached");
  }
  if (warm_.has_value()) {
    return RunTaskOverDataset(ctx, *warm_, options, threads_, results);
  }
  Stopwatch clock;
  if (source_.layout == DataSource::Layout::kSingleCsv ||
      options.task() == core::TaskType::kSimilarity) {
    // Whole-dataset path: parse everything first (for one big file this
    // includes the index build), then compute.
    SM_ASSIGN_OR_RETURN(MeterDataset dataset, ParseAll());
    SM_RETURN_IF_ERROR(ctx.CheckNotStopped());
    SM_ASSIGN_OR_RETURN(
        TaskRunMetrics metrics,
        RunTaskOverDataset(ctx, dataset, options, threads_, results));
    metrics.seconds = clock.ElapsedSeconds();
    return metrics;
  }

  // Partitioned per-household tasks: stream file -> compute -> next file,
  // so only one household is in memory per worker at a time.
  const size_t n = source_.files.size();
  TaskRunMetrics metrics;
  TaskResultSet local;
  if (results == nullptr) results = &local;
  std::vector<core::HistogramResult>* histograms = nullptr;
  std::vector<core::ThreeLineResult>* three_lines = nullptr;
  std::vector<core::DailyProfileResult>* profiles = nullptr;
  switch (options.task()) {
    case core::TaskType::kHistogram:
      histograms = &results->Mutable<core::HistogramResult>();
      histograms->assign(n, {});
      break;
    case core::TaskType::kThreeLine:
      three_lines = &results->Mutable<core::ThreeLineResult>();
      three_lines->assign(n, {});
      break;
    case core::TaskType::kPar:
      profiles = &results->Mutable<core::DailyProfileResult>();
      profiles->assign(n, {});
      break;
    case core::TaskType::kSimilarity:
      return Status::Internal("similarity handled above");
  }

  std::mutex mu;
  Status first_error = Status::OK();
  ThreadPool pool(std::max(1, threads_));
  pool.ParallelFor(n, [&](size_t begin, size_t end) {
    ConsumerSeries consumer;
    std::vector<double> temperature;
    core::ThreeLinePhases local_phases;
    for (size_t i = begin; i < end; ++i) {
      Status st = ctx.CheckNotStopped();
      if (st.ok()) {
        st = ParseSingleHouseholdFile(source_.files[i], &consumer,
                                      &temperature);
      }
      if (st.ok()) {
        // One-household batch over the freshly parsed arrays: the same
        // range kernels the batch engines run, writing result slot i.
        Result<table::ColumnarBatch> batch = table::ColumnarBatch::FromSlices(
            {consumer.household_id},
            {table::SeriesSlice(consumer.consumption)}, temperature);
        if (!batch.ok()) {
          st = batch.status();
        } else {
          switch (options.task()) {
            case core::TaskType::kHistogram:
              st = core::ComputeHistogramRange(
                  *batch, 0, 1, options.Get<core::HistogramOptions>(), &ctx,
                  std::span<core::HistogramResult>(*histograms)
                      .subspan(i, 1));
              break;
            case core::TaskType::kThreeLine:
              st = core::ComputeThreeLineRange(
                  *batch, 0, 1, options.Get<core::ThreeLineOptions>(),
                  &local_phases, &ctx,
                  std::span<core::ThreeLineResult>(*three_lines)
                      .subspan(i, 1));
              break;
            case core::TaskType::kPar:
              st = core::ComputeDailyProfileRange(
                  *batch, 0, 1, options.Get<core::ParOptions>(), &ctx,
                  std::span<core::DailyProfileResult>(*profiles)
                      .subspan(i, 1));
              break;
            case core::TaskType::kSimilarity:
              st = Status::Internal("similarity handled above");
              break;
          }
        }
      }
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.ok()) first_error = st;
        return;
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    metrics.phases.Accumulate(local_phases);
  });
  SM_RETURN_IF_ERROR(first_error);
  metrics.seconds = clock.ElapsedSeconds();
  return metrics;
}

}  // namespace smartmeter::engines
