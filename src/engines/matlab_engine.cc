#include "engines/matlab_engine.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/task_types.h"
#include "engines/engine_util.h"
#include "engines/plan_builders.h"
#include "obs/trace.h"
#include "storage/csv.h"
#include "table/columnar_batch.h"
#include "table/table_reader.h"

namespace smartmeter::engines {

Result<double> MatlabEngine::Attach(const table::DataSource& source) {
  SM_TRACE_SPAN("matlab.attach");
  SM_RETURN_IF_ERROR(RequireLayout(source,
                                   {table::DataSource::Layout::kSingleCsv,
                                    table::DataSource::Layout::kPartitionedDir,
                                    table::DataSource::Layout::kColumnFile},
                                   name()));
  Stopwatch clock;
  source_ = source;
  warm_.reset();
  // No load phase: Matlab works off the files themselves.
  return clock.ElapsedSeconds();
}

Result<MeterDataset> MatlabEngine::ParseAll() const {
  SM_TRACE_SPAN("matlab.parse_all");
  if (source_.layout == table::DataSource::Layout::kColumnFile) {
    // Binary column file: load it whole (Matlab's `load` of a prepared
    // binary), no per-household extraction pass.
    return table::ReadDatasetFromSource(source_);
  }
  if (source_.layout == table::DataSource::Layout::kSingleCsv) {
    // One big file: Matlab textscans the whole file into flat column
    // arrays, then pulls each household out with logical indexing --
    // data(data(:,1) == id, :) -- which rescans the full arrays once per
    // household. That O(rows x households) extraction is the slow path
    // of Figure 5.
    storage::ReadingCsvReader reader(source_.files.front());
    SM_RETURN_IF_ERROR(reader.Open());
    std::vector<int64_t> ids;
    std::vector<int32_t> hours;
    std::vector<double> cons;
    std::vector<double> temps;
    storage::ReadingRow row;
    while (reader.Next(&row)) {
      ids.push_back(row.household_id);
      hours.push_back(row.hour);
      cons.push_back(row.consumption);
      temps.push_back(row.temperature);
    }
    SM_RETURN_IF_ERROR(reader.status());
    if (ids.empty()) {
      return Status::InvalidArgument("matlab: empty input file");
    }
    std::vector<int64_t> distinct = ids;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());

    MeterDataset dataset;
    std::vector<double> temperature;
    for (int64_t id : distinct) {
      // Logical-indexing pass over the full arrays for this household.
      std::vector<std::pair<int32_t, double>> keyed;
      std::vector<std::pair<int32_t, double>> keyed_temp;
      for (size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] == id) {
          keyed.emplace_back(hours[i], cons[i]);
          keyed_temp.emplace_back(hours[i], temps[i]);
        }
      }
      std::sort(keyed.begin(), keyed.end());
      ConsumerSeries series;
      series.household_id = id;
      series.consumption.reserve(keyed.size());
      for (const auto& [hour, value] : keyed) {
        series.consumption.push_back(value);
      }
      if (temperature.empty()) {
        std::sort(keyed_temp.begin(), keyed_temp.end());
        temperature.reserve(keyed_temp.size());
        for (const auto& [hour, value] : keyed_temp) {
          temperature.push_back(value);
        }
      }
      dataset.AddConsumer(std::move(series));
    }
    dataset.SetTemperature(std::move(temperature));
    SM_RETURN_IF_ERROR(dataset.Validate());
    return dataset;
  }
  // Partitioned: stream the files one by one, in parallel slices.
  const size_t n = source_.files.size();
  std::vector<ConsumerSeries> consumers(n);
  std::vector<double> temperature;
  std::mutex mu;
  Status first_error = Status::OK();
  ThreadPool pool(std::max(1, threads_));
  pool.ParallelFor(n, [&](size_t begin, size_t end) {
    std::vector<double> local_temp;
    for (size_t i = begin; i < end; ++i) {
      const Status st = planning::ParseSingleHouseholdFile(
          source_.files[i], &consumers[i], &local_temp);
      std::lock_guard<std::mutex> lock(mu);
      if (!st.ok()) {
        if (first_error.ok()) first_error = st;
        return;
      }
      if (temperature.empty()) temperature = local_temp;
    }
  });
  SM_RETURN_IF_ERROR(first_error);
  MeterDataset dataset(std::move(temperature), std::move(consumers));
  SM_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

Result<double> MatlabEngine::WarmUp() {
  SM_TRACE_SPAN("matlab.warmup");
  Stopwatch clock;
  SM_ASSIGN_OR_RETURN(MeterDataset dataset, ParseAll());
  warm_ = std::move(dataset);
  return clock.ElapsedSeconds();
}

void MatlabEngine::DropWarmData() { warm_.reset(); }

Result<exec::Plan> MatlabEngine::BuildPlan(const TaskOptions& options) const {
  if (source_.files.empty()) {
    return Status::InvalidArgument("matlab: no data attached");
  }
  exec::Plan plan;
  const std::string task(core::TaskName(options.task()));
  exec::KernelOp kernel;
  kernel.options = options;
  if (warm_.has_value()) {
    plan.label = "matlab/" + task + "/warm-arrays";
    plan.stages.push_back(
        {"scan", planning::DatasetBatchScan(&*warm_, "warm-arrays")});
    plan.stages.push_back({"kernel", std::move(kernel)});
    plan.stages.push_back({"materialize", exec::MaterializeOp{}});
    return plan;
  }
  if (source_.layout != table::DataSource::Layout::kPartitionedDir ||
      options.task() == core::TaskType::kSimilarity) {
    // Whole-dataset path: parse everything inside the scan stage (for
    // one big file this includes the index build), then compute.
    plan.label = "matlab/" + task + "/parse-all";
    exec::ScanOp scan;
    scan.kind = exec::ScanOp::Kind::kBatch;
    scan.source =
        source_.layout == table::DataSource::Layout::kSingleCsv
            ? "single-csv"
            : source_.layout == table::DataSource::Layout::kColumnFile
                  ? "column-file"
                  : "household-files";
    scan.scan_batch = [this]() -> Result<exec::BatchScan> {
      SM_ASSIGN_OR_RETURN(MeterDataset dataset, ParseAll());
      auto owner = std::make_shared<const MeterDataset>(std::move(dataset));
      SM_ASSIGN_OR_RETURN(table::ColumnarBatch batch,
                          table::ColumnarBatch::FromDataset(*owner));
      return exec::BatchScan{std::move(batch), owner, {}};
    };
    plan.stages.push_back({"scan", std::move(scan)});
    plan.stages.push_back({"kernel", std::move(kernel)});
    plan.stages.push_back({"materialize", exec::MaterializeOp{}});
    return plan;
  }
  // Partitioned per-household tasks: stream file -> compute -> next
  // file (a fused scan+kernel wave), so only one household is in memory
  // per worker at a time. Partition order == file order, so no merge.
  plan.label = "matlab/" + task + "/per-file";
  kernel.fuse_scan = true;
  plan.stages.push_back(
      {"scan", planning::FileSeriesScan(source_.files, "household-files")});
  plan.stages.push_back({"kernel", std::move(kernel)});
  plan.stages.push_back({"materialize", exec::MaterializeOp{}});
  return plan;
}

Result<TaskRunMetrics> MatlabEngine::RunTask(const exec::QueryContext& ctx,
                                             const TaskOptions& options,
                                             TaskResultSet* results) {
  SM_TRACE_SPAN("matlab.task");
  SM_ASSIGN_OR_RETURN(exec::Plan plan, BuildPlan(options));
  SM_ASSIGN_OR_RETURN(
      exec::PlanRunMetrics run,
      exec::PlanExecutor().Run(ctx, plan, LocalPoolPolicy(threads_), results));
  return ToTaskMetrics(std::move(run));
}

}  // namespace smartmeter::engines
