#ifndef SMARTMETER_ENGINES_CLUSTER_TASK_UTIL_H_
#define SMARTMETER_ENGINES_CLUSTER_TASK_UTIL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "engines/engine.h"
#include "table/columnar_batch.h"

namespace smartmeter::engines::internal {

/// One reading as shuffled by the cluster engines' row-format plans:
/// hour + consumption + temperature keyed by household id.
struct HourRecord {
  int32_t hour;
  double consumption;
  double temperature;
};

/// Sorts records by hour and splits them into aligned consumption /
/// temperature arrays; the reduce-side assembly step of the row-format
/// plans.
void AssembleSeries(std::vector<HourRecord>* records,
                    std::vector<double>* consumption,
                    std::vector<double>* temperature);

/// One household parsed from a format-2 line: "id,c0,c1,...".
struct HouseholdLine {
  int64_t household_id = 0;
  std::vector<double> consumption;
};

Result<HouseholdLine> ParseHouseholdLine(std::string_view line);

/// Reads a "<path>.temperature" sidecar (one value per line).
Result<std::vector<double>> ReadTemperatureSidecar(const std::string& path);

/// An assembled (household id, series) table as the cluster engines'
/// similarity stages gather it from their shuffles.
using SeriesTable = std::vector<std::pair<int64_t, std::vector<double>>>;

/// Views a series table as a columnar batch (no temperature column —
/// similarity does not use one). The batch borrows the table's memory,
/// which must stay alive and unmoved while the batch is used.
Result<table::ColumnarBatch> BatchFromSeriesTable(const SeriesTable& table);

/// Computes the requested per-household task (histogram / 3-line / PAR)
/// and appends the result to `results`. Similarity is not a per-household
/// task and is rejected. `ctx` is forwarded into the kernel so simulated
/// cluster tasks stop on cancel/timeout too.
Status ComputeHouseholdTask(const exec::QueryContext& ctx,
                            const TaskOptions& options, int64_t household_id,
                            std::span<const double> consumption,
                            std::span<const double> temperature,
                            TaskResultSet* results);

}  // namespace smartmeter::engines::internal

#endif  // SMARTMETER_ENGINES_CLUSTER_TASK_UTIL_H_
