#ifndef SMARTMETER_ENGINES_CLUSTER_TASK_UTIL_H_
#define SMARTMETER_ENGINES_CLUSTER_TASK_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace smartmeter::engines::internal {

/// One reading as shuffled by the cluster engines' row-format plans:
/// hour + consumption + temperature keyed by household id.
struct HourRecord {
  int32_t hour;
  double consumption;
  double temperature;
};

/// Sorts records by hour and splits them into aligned consumption /
/// temperature arrays; the reduce-side assembly step of the row-format
/// plans.
void AssembleSeries(std::vector<HourRecord>* records,
                    std::vector<double>* consumption,
                    std::vector<double>* temperature);

/// One household parsed from a format-2 line: "id,c0,c1,...".
struct HouseholdLine {
  int64_t household_id = 0;
  std::vector<double> consumption;
};

Result<HouseholdLine> ParseHouseholdLine(std::string_view line);

/// Reads a "<path>.temperature" sidecar (one value per line).
Result<std::vector<double>> ReadTemperatureSidecar(const std::string& path);

/// Records driver-side columnar block pruning (blocks whose household
/// range missed a scoped scan, so no task was ever created for them) in
/// the `table.scan.blocks_pruned` counter the single-node reader also
/// feeds.
void CountPrunedClusterBlocks(size_t total_blocks, size_t kept_blocks);

}  // namespace smartmeter::engines::internal

#endif  // SMARTMETER_ENGINES_CLUSTER_TASK_UTIL_H_
