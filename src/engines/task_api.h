#ifndef SMARTMETER_ENGINES_TASK_API_H_
#define SMARTMETER_ENGINES_TASK_API_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <utility>
#include <variant>
#include <vector>

#include "core/histogram_task.h"
#include "core/par_task.h"
#include "core/similarity_task.h"
#include "core/task_types.h"
#include "core/three_line_task.h"

namespace smartmeter::engines {

/// Similarity search options as the engines see them: the core search
/// knobs plus the benchmark's household cap (the paper runs this
/// quadratic task on subsets; 0 means all households).
struct SimilarityTaskOptions {
  core::SimilarityOptions search;
  int households = 0;
};

/// A half-open window of batch rows [begin, begin + count); count == 0
/// means "through the last row", so the default scope covers the whole
/// table. The sharded serving layer scopes each scatter subquery to one
/// shard's slice of households; batch-scan plans honor the scope inside
/// the kernel stage, while the cluster series paths (which re-partition
/// by household hash and lose row positions) reject a non-default scope.
/// For similarity the scope selects the *query* rows only — candidates
/// always come from the whole table, which is what keeps scatter-gather
/// results bit-identical to an unsharded run.
struct RowScope {
  size_t begin = 0;
  size_t count = 0;

  bool whole() const { return begin == 0 && count == 0; }

  /// The scope clamped to a table of `n` rows.
  size_t First(size_t n) const { return std::min(begin, n); }
  size_t Last(size_t n) const {
    const size_t first = First(n);
    if (count == 0) return n;
    return first + std::min(count, n - first);
  }
};

/// A typed task request: exactly one of the four tasks' option structs.
/// The variant's alternative order matches core::TaskType, so task() is
/// a constant-time index read and std::visit over variant() is
/// exhaustive by construction — adding a fifth task fails to compile
/// everywhere a visitor forgot it.
class TaskOptions {
 public:
  using Variant = std::variant<core::HistogramOptions, core::ThreeLineOptions,
                               core::ParOptions, SimilarityTaskOptions>;

  /// Defaults to the histogram task with the paper's fixed knobs.
  TaskOptions() = default;
  TaskOptions(core::HistogramOptions options)  // NOLINT(runtime/explicit)
      : v_(std::move(options)) {}
  TaskOptions(core::ThreeLineOptions options)  // NOLINT(runtime/explicit)
      : v_(std::move(options)) {}
  TaskOptions(core::ParOptions options)  // NOLINT(runtime/explicit)
      : v_(std::move(options)) {}
  TaskOptions(SimilarityTaskOptions options)  // NOLINT(runtime/explicit)
      : v_(std::move(options)) {}

  /// Default options (the paper's fixed choices) for `task`.
  static TaskOptions Default(core::TaskType task);

  core::TaskType task() const {
    return static_cast<core::TaskType>(v_.index());
  }

  /// Typed access; asserts the variant holds T (check task() first when
  /// handling arbitrary requests).
  template <typename T>
  const T& Get() const {
    assert(std::holds_alternative<T>(v_));
    return std::get<T>(v_);
  }
  template <typename T>
  T& Get() {
    assert(std::holds_alternative<T>(v_));
    return std::get<T>(v_);
  }
  template <typename T>
  bool Holds() const {
    return std::holds_alternative<T>(v_);
  }

  const Variant& variant() const { return v_; }

  /// Row window this request is restricted to (default: the whole
  /// table). Rides outside the per-task variant because it is a property
  /// of the request's placement, not of any one task's algorithm.
  const RowScope& scope() const { return scope_; }
  void set_scope(const RowScope& scope) { scope_ = scope; }

 private:
  Variant v_;
  RowScope scope_;
};

/// A typed task response: the per-household result vector of whichever
/// task ran, or monostate while empty. Engines fill it through
/// Mutable<T>(); readers take Get<T>() after checking task().
class TaskResultSet {
 public:
  using Variant =
      std::variant<std::monostate, std::vector<core::HistogramResult>,
                   std::vector<core::ThreeLineResult>,
                   std::vector<core::DailyProfileResult>,
                   std::vector<core::SimilarityResult>>;

  TaskResultSet() = default;

  bool empty() const { return v_.index() == 0; }

  /// The task whose results are held; meaningless while empty().
  core::TaskType task() const {
    assert(!empty());
    return static_cast<core::TaskType>(v_.index() - 1);
  }

  /// Switches the set to hold T (clearing anything else) and returns the
  /// vector to append into.
  template <typename T>
  std::vector<T>& Mutable() {
    if (!std::holds_alternative<std::vector<T>>(v_)) {
      v_.emplace<std::vector<T>>();
    }
    return std::get<std::vector<T>>(v_);
  }

  /// Typed read access; asserts the set holds T's results.
  template <typename T>
  const std::vector<T>& Get() const {
    assert(std::holds_alternative<std::vector<T>>(v_));
    return std::get<std::vector<T>>(v_);
  }
  template <typename T>
  bool Holds() const {
    return std::holds_alternative<std::vector<T>>(v_);
  }

  /// Number of per-household results held (0 while empty).
  size_t size() const;

  void Clear() { v_.emplace<std::monostate>(); }

  const Variant& variant() const { return v_; }
  Variant& variant() { return v_; }

 private:
  Variant v_;
};

/// Moves `src`'s results onto the back of `dst` (used by the cluster
/// engines, whose partition jobs produce partial sets). `dst` adopts
/// `src`'s type when empty; mixing tasks is a programming error.
void MergeResults(TaskResultSet&& src, TaskResultSet* dst);

/// Sorts whatever result vector is held by ascending household_id, so
/// parallel/partitioned execution orders are deterministic.
void SortResultsByHousehold(TaskResultSet* results);

}  // namespace smartmeter::engines

#endif  // SMARTMETER_ENGINES_TASK_API_H_
