#ifndef SMARTMETER_ENGINES_MATLAB_ENGINE_H_
#define SMARTMETER_ENGINES_MATLAB_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "engines/engine.h"
#include "exec/plan.h"
#include "timeseries/dataset.h"

namespace smartmeter::engines {

/// Models Matlab's execution style (Section 5.1): a numeric computing
/// process that works straight off text files with vectorized in-memory
/// kernels and no managed storage.
///
///  * Attach() only records the file list -- "Matlab does not actually
///    load any data and instead reads from files directly".
///  * A cold RunTask parses the files as part of the task. With the
///    partitioned layout it streams one household file at a time; with
///    one big file it must first build an id -> readings index of the
///    whole file, which is why partitioning matters so much for this
///    engine (Figure 5).
///  * WarmUp() parses everything into in-memory arrays; warm runs then
///    compute straight from them.
///  * SetThreads models running several shared-nothing Matlab instances,
///    each owning a slice of the household files (Section 5.3.4).
class MatlabEngine : public AnalyticsEngine {
 public:
  MatlabEngine() = default;

  std::string_view name() const override { return "matlab"; }
  Result<double> Attach(const table::DataSource& source) override;
  Result<double> WarmUp() override;
  void DropWarmData() override;
  using AnalyticsEngine::RunTask;
  Result<TaskRunMetrics> RunTask(const exec::QueryContext& ctx,
                                 const TaskOptions& options,
                                 TaskResultSet* results) override;

  /// The physical plan RunTask executes: warm runs scan the parsed
  /// arrays; a cold single-file (or similarity) run parses everything in
  /// the scan stage; cold partitioned per-household runs fuse a per-file
  /// scan into the kernel wave.
  Result<exec::Plan> BuildPlan(const TaskOptions& options) const;
  void SetThreads(int num_threads) override { threads_ = num_threads; }
  int threads() const override { return threads_; }

 private:
  /// Parses every attached file into one dataset (the cold path for
  /// whole-dataset tasks and the WarmUp implementation).
  Result<MeterDataset> ParseAll() const;

  table::DataSource source_;
  std::optional<MeterDataset> warm_;
  int threads_ = 1;
};

}  // namespace smartmeter::engines

#endif  // SMARTMETER_ENGINES_MATLAB_ENGINE_H_
