#ifndef SMARTMETER_ENGINES_SYSTEMC_ENGINE_H_
#define SMARTMETER_ENGINES_SYSTEMC_ENGINE_H_

#include <memory>
#include <string>

#include "engines/engine.h"
#include "exec/plan.h"
#include "table/columnar_batch.h"
#include "table/columnar_cache.h"
#include "table/table_reader.h"

namespace smartmeter::engines {

/// Models "System C", the commercial main-memory column store of Section
/// 5.1: at load time the data is converted once into a binary columnar
/// file that is memory-mapped, so subsequent access is pointer arithmetic
/// over contiguous doubles; all statistical operators are the library's
/// own hand-written kernels (System C ships none). Parallelism is a
/// native configuration parameter.
///
/// The conversion runs through the shared columnar cache: the first
/// Attach of a source parses and spools the column file (cache miss);
/// re-attaching the unchanged source is an mmap with no parsing (cache
/// hit) — the Figure 6 cold/warm distinction made explicit.
class SystemCEngine : public AnalyticsEngine {
 public:
  /// `spool_dir` is where the engine materializes its columnar files.
  explicit SystemCEngine(std::string spool_dir);

  std::string_view name() const override { return "system-c"; }
  Result<double> Attach(const table::DataSource& source) override;
  Result<double> WarmUp() override;
  void DropWarmData() override;
  using AnalyticsEngine::RunTask;
  Result<TaskRunMetrics> RunTask(const exec::QueryContext& ctx,
                                 const TaskOptions& options,
                                 TaskResultSet* results) override;

  /// The physical plan RunTask executes: scan the resident columnar
  /// batch, run the kernel, materialize.
  Result<exec::Plan> BuildPlan(const TaskOptions& options) const;
  void SetThreads(int num_threads) override { threads_ = num_threads; }
  int threads() const override { return threads_; }

  const table::TableReader* reader() const { return reader_.get(); }

 private:
  table::ColumnarCache cache_;
  std::unique_ptr<table::TableReader> reader_;
  table::ColumnarBatch batch_;
  int threads_ = 1;
  bool prefaulted_ = false;
};

}  // namespace smartmeter::engines

#endif  // SMARTMETER_ENGINES_SYSTEMC_ENGINE_H_
