#include "engines/spark_engine.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/task_types.h"
#include "engines/cluster_task_util.h"
#include "engines/engine_util.h"
#include "engines/plan_builders.h"
#include "obs/trace.h"

namespace smartmeter::engines {

Result<double> SparkEngine::Attach(const table::DataSource& source) {
  SM_TRACE_SPAN("spark.attach");
  SM_RETURN_IF_ERROR(RequireLayout(source,
                                   {table::DataSource::Layout::kSingleCsv,
                                    table::DataSource::Layout::kHouseholdLines,
                                    table::DataSource::Layout::kWholeFileDir,
                                    table::DataSource::Layout::kColumnFile},
                                   name()));
  if (source.layout == table::DataSource::Layout::kWholeFileDir &&
      static_cast<int>(source.files.size()) >=
          options_.cluster.cost.spark_max_open_files) {
    // The paper hit this wall at ~100,000 input files (Section 5.4.2).
    return Status::IOError(
        "spark executor: too many open files (raise ulimit or use fewer, "
        "larger input files)");
  }
  source_ = source;
  columnar_reader_.reset();
  hdfs_ = std::make_unique<cluster::BlockStore>(options_.cluster.num_nodes,
                                                options_.block_bytes);
  if (source.layout == table::DataSource::Layout::kColumnFile) {
    auto reader =
        std::make_shared<table::ColumnFileReader>(source.files.front());
    SM_RETURN_IF_ERROR(reader->Open());
    SM_RETURN_IF_ERROR(hdfs_->AddColumnarFile(
        source.files.front(), planning::ColumnarFileBlocks(*reader)));
    columnar_reader_ = std::move(reader);
  } else {
    SM_RETURN_IF_ERROR(hdfs_->AddFiles(source.files));
  }
  return 0.0;
}

void SparkEngine::SetClusterConfig(const cluster::ClusterConfig& config) {
  options_.cluster = config;
  if (hdfs_ != nullptr) {
    auto store = std::make_unique<cluster::BlockStore>(config.num_nodes,
                                                       options_.block_bytes);
    if (columnar_reader_ != nullptr) {
      (void)store->AddColumnarFile(
          source_.files.front(),
          planning::ColumnarFileBlocks(*columnar_reader_));
    } else {
      (void)store->AddFiles(source_.files);
    }
    hdfs_ = std::move(store);
  }
}

exec::ExecutionPolicy SparkEngine::policy() const {
  exec::ExecutionPolicy policy;
  policy.dispatch = exec::ExecutionPolicy::Dispatch::kSimulatedCluster;
  policy.threads = threads_;
  policy.cluster = options_.cluster;
  policy.job_overhead_seconds =
      options_.cluster.cost.spark_job_overhead_seconds;
  policy.task_startup_seconds =
      options_.cluster.cost.spark_task_startup_seconds;
  policy.memory_model =
      exec::ExecutionPolicy::MemoryModel::kResidentPlusTaskBuffers;
  policy.block_bytes = options_.block_bytes;
  return policy;
}

Result<exec::Plan> SparkEngine::BuildPlan(const TaskOptions& options) const {
  if (hdfs_ == nullptr) {
    return Status::InvalidArgument("spark: no data attached");
  }
  const cluster::CostModel& cost = options_.cluster.cost;
  const bool whole_files =
      source_.layout == table::DataSource::Layout::kWholeFileDir;
  if (whole_files && static_cast<int>(source_.files.size()) >=
                         cost.spark_max_open_files) {
    return Status::IOError(
        "spark executor: too many open files (raise ulimit or use fewer, "
        "larger input files)");
  }
  if (whole_files && options.task() == core::TaskType::kSimilarity) {
    return Status::NotSupported(
        "spark: similarity not run for format 3 (matches the paper)");
  }

  const bool columnar =
      source_.layout == table::DataSource::Layout::kColumnFile;
  std::vector<cluster::InputSplit> splits;
  if (!columnar) {
    splits = whole_files ? hdfs_->WholeFileSplits() : hdfs_->SplittableSplits();
  }
  // Serial driver-side scheduling work per partition; wholeTextFiles also
  // lists and stats every input file at the driver before any task
  // launches -- the serial cost that makes thousands of small files
  // painful for Spark (Figure 18).
  double driver_seconds = static_cast<double>(splits.size()) *
                          cost.spark_per_partition_driver_seconds;
  if (whole_files) {
    driver_seconds +=
        static_cast<double>(source_.files.size()) * cost.file_open_seconds;
  }

  exec::Plan plan;
  const std::string task(core::TaskName(options.task()));
  exec::KernelOp kernel;
  kernel.options = options;
  if (options.task() == core::TaskType::kSimilarity) {
    // Broadcast the assembled series table + norms for a map-side join.
    kernel.broadcast_series_table = true;
  }

  if (columnar) {
    // Columnar file: one partition per compression block. A row-scoped
    // task prunes non-matching blocks at the driver (the cluster twin of
    // the single-node block-index pushdown) and the kept tasks decode
    // only the scoped rows, so the kernel's own scope is cleared.
    // Similarity never prunes: its candidate set is the whole table, and
    // its readings must be shuffled into assembled series first.
    plan.label = "spark/" + task + "/columnar";
    const bool prune = !options.scope().whole() &&
                       options.task() != core::TaskType::kSimilarity;
    storage::ScanScope scope;
    scope.row_begin = options.scope().begin;
    scope.row_count = options.scope().count;
    std::vector<cluster::ColumnarSplit> columnar_splits =
        hdfs_->ColumnarSplits(prune ? &scope : nullptr);
    if (prune) {
      internal::CountPrunedClusterBlocks(hdfs_->num_columnar_blocks(),
                                         columnar_splits.size());
      kernel.options.set_scope({});
    }
    driver_seconds = static_cast<double>(columnar_splits.size()) *
                     cost.spark_per_partition_driver_seconds;
    exec::ScanOp scan = planning::ColumnarReadingsScan(
        columnar_reader_, std::move(columnar_splits), "hdfs-columnar");
    scan.driver_seconds = driver_seconds;
    plan.stages.push_back({"scan", std::move(scan)});
    if (options.task() == core::TaskType::kSimilarity) {
      exec::ShuffleOp shuffle;
      shuffle.strategy = exec::ShuffleOp::Strategy::kDataflow;
      plan.stages.push_back({"shuffle", shuffle});
    }
  } else if (source_.layout == table::DataSource::Layout::kHouseholdLines) {
    // Format 2: map-only over whole-household lines; the temperature
    // sidecar ships as a broadcast variable (16-byte vector header + the
    // doubles), unconditionally -- the driver broadcasts before it looks
    // at the task.
    plan.label = "spark/" + task + "/format2";
    SM_ASSIGN_OR_RETURN(std::vector<double> sidecar,
                        internal::ReadTemperatureSidecar(
                            source_.files.front() + ".temperature"));
    kernel.broadcast_bytes +=
        16 + static_cast<int64_t>(sidecar.size()) * 8;
    exec::ScanOp scan =
        planning::SplitSeriesScan(std::move(splits), "hdfs-lines");
    scan.driver_seconds = driver_seconds;
    scan.shared_temperature =
        std::make_shared<const std::vector<double>>(std::move(sidecar));
    plan.stages.push_back({"scan", std::move(scan)});
  } else if (whole_files) {
    // Format 3: one partition per whole file, households grouped within
    // the partition -- no shuffle, but the wholeTextFiles read penalty.
    plan.label = "spark/" + task + "/format3";
    exec::ScanOp scan = planning::SplitReadingsScan(
        std::move(splits), "hdfs-wholefile",
        cost.spark_wholefile_read_seconds_per_mb);
    scan.driver_seconds = driver_seconds;
    plan.stages.push_back({"scan", std::move(scan)});
  } else {
    // Format 1: parse reading rows, then a wide groupBy stage shuffles
    // them into per-household groups.
    plan.label = "spark/" + task + "/format1";
    exec::ScanOp scan =
        planning::SplitReadingsScan(std::move(splits), "hdfs-rows");
    scan.driver_seconds = driver_seconds;
    plan.stages.push_back({"scan", std::move(scan)});
    exec::ShuffleOp shuffle;
    shuffle.strategy = exec::ShuffleOp::Strategy::kDataflow;
    plan.stages.push_back({"shuffle", shuffle});
  }

  plan.stages.push_back({"kernel", std::move(kernel)});
  plan.stages.push_back({"materialize", exec::MaterializeOp{}});
  plan.stages.push_back({"merge", exec::MergeOp{}});
  return plan;
}

Result<TaskRunMetrics> SparkEngine::RunTask(const exec::QueryContext& qctx,
                                            const TaskOptions& options,
                                            TaskResultSet* results) {
  SM_TRACE_SPAN("spark.task");
  SM_ASSIGN_OR_RETURN(exec::Plan plan, BuildPlan(options));
  SM_ASSIGN_OR_RETURN(
      exec::PlanRunMetrics run,
      exec::PlanExecutor().Run(qctx, plan, policy(), results));
  return ToTaskMetrics(std::move(run));
}

}  // namespace smartmeter::engines
