#include "engines/spark_engine.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "cluster/dataflow.h"
#include "core/similarity_task.h"
#include "engines/cluster_task_util.h"
#include "engines/engine_util.h"
#include "engines/result_serde.h"
#include "obs/trace.h"
#include "storage/csv.h"

namespace smartmeter::engines {

namespace internal {

/// Modeled serialized size of a parsed format-2 line.
inline int64_t ApproxByteSize(const HouseholdLine& line) {
  return 24 + static_cast<int64_t>(line.consumption.size()) * 8;
}

}  // namespace internal

namespace {

using cluster::InputSplit;
using cluster::dataflow::Context;
using cluster::dataflow::Partitioned;
using internal::HourRecord;
using internal::HouseholdLine;

using RowPair = std::pair<int64_t, HourRecord>;
using SeriesPair = std::pair<int64_t, std::vector<double>>;

Status ParseRowLine(std::string_view line, std::vector<RowPair>* out) {
  SM_ASSIGN_OR_RETURN(storage::ReadingRow row,
                      storage::ParseReadingRow(line));
  out->emplace_back(row.household_id,
                    HourRecord{row.hour, row.consumption, row.temperature});
  return Status::OK();
}

}  // namespace

Result<double> SparkEngine::Attach(const DataSource& source) {
  SM_TRACE_SPAN("spark.attach");
  SM_RETURN_IF_ERROR(RequireLayout(source,
                                   {DataSource::Layout::kSingleCsv,
                                    DataSource::Layout::kHouseholdLines,
                                    DataSource::Layout::kWholeFileDir},
                                   name()));
  if (source.layout == DataSource::Layout::kWholeFileDir &&
      static_cast<int>(source.files.size()) >=
          options_.cluster.cost.spark_max_open_files) {
    // The paper hit this wall at ~100,000 input files (Section 5.4.2).
    return Status::IOError(
        "spark executor: too many open files (raise ulimit or use fewer, "
        "larger input files)");
  }
  source_ = source;
  hdfs_ = std::make_unique<cluster::BlockStore>(options_.cluster.num_nodes,
                                                options_.block_bytes);
  SM_RETURN_IF_ERROR(hdfs_->AddFiles(source.files));
  return 0.0;
}

void SparkEngine::SetClusterConfig(const cluster::ClusterConfig& config) {
  options_.cluster = config;
  if (hdfs_ != nullptr) {
    auto store = std::make_unique<cluster::BlockStore>(config.num_nodes,
                                                       options_.block_bytes);
    (void)store->AddFiles(source_.files);
    hdfs_ = std::move(store);
  }
}

Result<TaskRunMetrics> SparkEngine::RunTask(const exec::QueryContext& qctx,
                                            const TaskOptions& options,
                                            TaskResultSet* results) {
  SM_TRACE_SPAN("spark.task");
  if (hdfs_ == nullptr) {
    return Status::InvalidArgument("spark: no data attached");
  }
  TaskResultSet local;
  if (results == nullptr) results = &local;

  const cluster::CostModel& cost = options_.cluster.cost;
  if (source_.layout == DataSource::Layout::kWholeFileDir &&
      static_cast<int>(source_.files.size()) >= cost.spark_max_open_files) {
    return Status::IOError(
        "spark executor: too many open files (raise ulimit or use fewer, "
        "larger input files)");
  }

  Context ctx(options_.cluster);
  ctx.ChargeJobOverhead();

  const bool whole_files =
      source_.layout == DataSource::Layout::kWholeFileDir;
  const std::vector<InputSplit> splits =
      whole_files ? hdfs_->WholeFileSplits() : hdfs_->SplittableSplits();
  // Serial driver-side scheduling work per partition.
  ctx.ChargeSeconds(static_cast<double>(splits.size()) *
                    cost.spark_per_partition_driver_seconds);
  if (whole_files) {
    // wholeTextFiles lists and stats every input file at the driver
    // before any task launches -- the serial cost that makes thousands
    // of small files painful for Spark (Figure 18).
    ctx.ChargeSeconds(static_cast<double>(source_.files.size()) *
                      cost.file_open_seconds);
  }

  std::mutex out_mu;
  auto append_results = [&out_mu, results](TaskResultSet&& chunk) {
    std::lock_guard<std::mutex> lock(out_mu);
    MergeResults(std::move(chunk), results);
  };

  // ---- Assemble per-household series as (id, consumption, temperature).
  // The three per-household tasks and similarity all start from series.
  std::vector<SeriesPair> collected_series;  // Similarity path only.
  std::shared_ptr<const std::vector<double>> broadcast_temp;

  if (source_.layout == DataSource::Layout::kHouseholdLines) {
    SM_ASSIGN_OR_RETURN(std::vector<double> sidecar,
                        internal::ReadTemperatureSidecar(
                            source_.files.front() + ".temperature"));
    broadcast_temp = ctx.Broadcast(std::move(sidecar));
    SM_ASSIGN_OR_RETURN(
        Partitioned<HouseholdLine> lines,
        ctx.ReadText<HouseholdLine>(
            splits,
            [](std::string_view line,
               std::vector<HouseholdLine>* out) -> Status {
              SM_ASSIGN_OR_RETURN(HouseholdLine parsed,
                                  internal::ParseHouseholdLine(line));
              out->push_back(std::move(parsed));
              return Status::OK();
            }));
    if (options.task() == core::TaskType::kSimilarity) {
      SM_ASSIGN_OR_RETURN(
          Partitioned<SeriesPair> series,
          (ctx.MapPartitions<HouseholdLine, SeriesPair>(
              lines,
              [](const std::vector<HouseholdLine>& in,
                 std::vector<SeriesPair>* out) -> Status {
                for (const HouseholdLine& l : in) {
                  out->emplace_back(l.household_id, l.consumption);
                }
                return Status::OK();
              })));
      collected_series = ctx.Collect(std::move(series));
    } else {
      const std::vector<double>& temp = *broadcast_temp;
      SM_ASSIGN_OR_RETURN(
          Partitioned<int> done,
          (ctx.MapPartitions<HouseholdLine, int>(
              lines,
              [&qctx, &options, &temp, &append_results](
                  const std::vector<HouseholdLine>& in,
                  std::vector<int>* out) -> Status {
                TaskResultSet chunk;
                for (const HouseholdLine& l : in) {
                  SM_RETURN_IF_ERROR(internal::ComputeHouseholdTask(
                      qctx, options, l.household_id, l.consumption, temp,
                      &chunk));
                  out->push_back(0);
                }
                append_results(std::move(chunk));
                return Status::OK();
              })));
      (void)done;
    }
  } else {
    // Row formats (1 and 3): parse reading rows. Whole-file ingestion
    // pays the wholeTextFiles materialization penalty.
    const double read_penalty =
        whole_files ? cost.spark_wholefile_read_seconds_per_mb : 0.0;
    SM_ASSIGN_OR_RETURN(
        Partitioned<RowPair> rows,
        ctx.ReadText<RowPair>(splits, ParseRowLine, read_penalty));

    if (whole_files) {
      // Households are whole within a partition: group in place, no
      // shuffle -- the map-only advantage of format 3.
      if (options.task() == core::TaskType::kSimilarity) {
        return Status::NotSupported(
            "spark: similarity not run for format 3 (matches the paper)");
      }
      SM_ASSIGN_OR_RETURN(
          Partitioned<int> done,
          (ctx.MapPartitions<RowPair, int>(
              rows,
              [&qctx, &options, &append_results](
                  const std::vector<RowPair>& in,
                  std::vector<int>* out) -> Status {
                std::map<int64_t, std::vector<HourRecord>> groups;
                for (const RowPair& r : in) {
                  groups[r.first].push_back(r.second);
                }
                TaskResultSet chunk;
                for (auto& [id, records] : groups) {
                  std::vector<double> consumption, temperature;
                  internal::AssembleSeries(&records, &consumption,
                                           &temperature);
                  SM_RETURN_IF_ERROR(internal::ComputeHouseholdTask(
                      qctx, options, id, consumption, temperature, &chunk));
                  out->push_back(0);
                }
                append_results(std::move(chunk));
                return Status::OK();
              })));
      (void)done;
    } else {
      // Format 1: a shuffle groups readings by household.
      SM_ASSIGN_OR_RETURN(
          auto grouped,
          (ctx.GroupBy<RowPair, int64_t, HourRecord>(
              rows,
              [](const RowPair& r) {
                return std::make_pair(r.first, r.second);
              })));
      using Grouped = std::pair<int64_t, std::vector<HourRecord>>;
      if (options.task() == core::TaskType::kSimilarity) {
        SM_ASSIGN_OR_RETURN(
            Partitioned<SeriesPair> series,
            (ctx.MapPartitions<Grouped, SeriesPair>(
                grouped,
                [](const std::vector<Grouped>& in,
                   std::vector<SeriesPair>* out) -> Status {
                  for (const Grouped& g : in) {
                    std::vector<HourRecord> records = g.second;
                    std::vector<double> consumption, temperature;
                    internal::AssembleSeries(&records, &consumption,
                                             &temperature);
                    out->emplace_back(g.first, std::move(consumption));
                  }
                  return Status::OK();
                })));
        collected_series = ctx.Collect(std::move(series));
      } else {
        SM_ASSIGN_OR_RETURN(
            Partitioned<int> done,
            (ctx.MapPartitions<Grouped, int>(
                grouped,
                [&qctx, &options, &append_results](
                    const std::vector<Grouped>& in,
                    std::vector<int>* out) -> Status {
                  TaskResultSet chunk;
                  for (const Grouped& g : in) {
                    std::vector<HourRecord> records = g.second;
                    std::vector<double> consumption, temperature;
                    internal::AssembleSeries(&records, &consumption,
                                             &temperature);
                    SM_RETURN_IF_ERROR(internal::ComputeHouseholdTask(
                        qctx, options, g.first, consumption, temperature,
                        &chunk));
                    out->push_back(0);
                  }
                  append_results(std::move(chunk));
                  return Status::OK();
                })));
        (void)done;
      }
    }
  }

  // ---- Similarity: broadcast the series table, map-side join ------------
  if (options.task() == core::TaskType::kSimilarity) {
    const auto& similarity = options.Get<SimilarityTaskOptions>();
    std::sort(collected_series.begin(), collected_series.end(),
              [](const SeriesPair& a, const SeriesPair& b) {
                return a.first < b.first;
              });
    if (similarity.households > 0 &&
        collected_series.size() >
            static_cast<size_t>(similarity.households)) {
      collected_series.resize(static_cast<size_t>(similarity.households));
    }
    auto table = ctx.Broadcast(std::move(collected_series));
    std::vector<double> norms;
    {
      SM_ASSIGN_OR_RETURN(const auto batch,
                          internal::BatchFromSeriesTable(*table));
      norms = core::ComputeNorms(core::BuildSeriesViews(batch));
    }
    auto norms_bc = ctx.Broadcast(std::move(norms));

    std::vector<int64_t> query_indices(table->size());
    for (size_t i = 0; i < table->size(); ++i) {
      query_indices[i] = static_cast<int64_t>(i);
    }
    Partitioned<int64_t> queries = ctx.Parallelize(
        std::move(query_indices), options_.cluster.total_slots());
    SM_ASSIGN_OR_RETURN(
        Partitioned<int> done,
        (ctx.MapPartitions<int64_t, int>(
            queries,
            [&qctx, &similarity, table, norms_bc, &append_results](
                const std::vector<int64_t>& in,
                std::vector<int>* out) -> Status {
              SM_ASSIGN_OR_RETURN(const auto batch,
                                  internal::BatchFromSeriesTable(*table));
              const std::vector<core::SeriesView> views =
                  core::BuildSeriesViews(batch);
              TaskResultSet chunk;
              for (int64_t q : in) {
                SM_ASSIGN_OR_RETURN(
                    std::vector<core::SimilarityResult> one,
                    core::ComputeSimilarityTopKRange(
                        views, *norms_bc, static_cast<size_t>(q),
                        static_cast<size_t>(q) + 1, similarity.search,
                        &qctx));
                chunk.Mutable<core::SimilarityResult>().push_back(
                    std::move(one.front()));
                out->push_back(0);
              }
              append_results(std::move(chunk));
              return Status::OK();
            })));
    (void)done;
  }

  SortResultsByHousehold(results);
  TaskRunMetrics metrics;
  metrics.seconds = ctx.simulated_seconds();
  metrics.simulated = true;
  // Per-node memory: the node's share of the resident RDDs plus the
  // executor's per-slot task buffers (input block + shuffle buffer).
  metrics.modeled_memory_bytes =
      ctx.modeled_cached_bytes() / std::max(1, options_.cluster.num_nodes) +
      static_cast<int64_t>(options_.cluster.slots_per_node) * 3 *
          options_.block_bytes;
  return metrics;
}

}  // namespace smartmeter::engines
