#ifndef SMARTMETER_ENGINES_MADLIB_ENGINE_H_
#define SMARTMETER_ENGINES_MADLIB_ENGINE_H_

#include <memory>

#include "engines/engine.h"
#include "exec/plan.h"
#include "storage/row_store.h"
#include "table/table_reader.h"

namespace smartmeter::engines {

/// Models PostgreSQL + MADLib (Section 5.1): data lives in a relational
/// table and every algorithm reads it through the table access path.
///
/// Two table layouts, per Figure 9:
///  * kRow   -- one reading per row with a B+-tree index on household id
///              (Table 1). Extracting a household is an index lookup,
///              row gathers and an ORDER BY hour sort; loading pays
///              per-tuple insert + index maintenance, which is why this
///              engine loads slowest (Figure 4).
///  * kArray -- one row per household with consumption/temperature
///              arrays (Table 2), the hybrid layout that cut 3-line from
///              19.6 to 11.3 minutes in the paper.
///
/// Both layouts reach the kernels through their TableReader
/// (RowStoreReader / ArrayStoreReader): a cold task opens the reader —
/// paying the scan-and-group or deserialize cost — while WarmUp keeps an
/// opened reader around so warm tasks serve batches from memory.
///
/// SetThreads models opening several database connections that partition
/// the household list.
class MadlibEngine : public AnalyticsEngine {
 public:
  enum class TableLayout { kRow, kArray };

  explicit MadlibEngine(TableLayout layout = TableLayout::kRow)
      : layout_(layout) {}

  std::string_view name() const override {
    return layout_ == TableLayout::kRow ? "madlib" : "madlib-array";
  }
  Result<double> Attach(const table::DataSource& source) override;
  Result<double> WarmUp() override;
  void DropWarmData() override;
  using AnalyticsEngine::RunTask;
  Result<TaskRunMetrics> RunTask(const exec::QueryContext& ctx,
                                 const TaskOptions& options,
                                 TaskResultSet* results) override;

  /// The physical plan RunTask executes: a batch scan through the
  /// layout's table access path (warm reader or a cold Open), then the
  /// kernel.
  Result<exec::Plan> BuildPlan(const TaskOptions& options) const;
  void SetThreads(int num_threads) override { threads_ = num_threads; }
  int threads() const override { return threads_; }

  TableLayout layout() const { return layout_; }

 private:
  /// The table access path for this layout (reader is not yet open;
  /// Open() performs the extraction SELECTs of Section 5.3.2).
  std::unique_ptr<table::TableReader> MakeTableReader() const;

  TableLayout layout_;
  storage::RowStore row_table_;
  storage::ArrayStore array_table_;
  bool attached_ = false;
  /// An opened reader whose batches serve warm tasks; null when cold.
  std::unique_ptr<table::TableReader> warm_reader_;
  int threads_ = 1;
};

}  // namespace smartmeter::engines

#endif  // SMARTMETER_ENGINES_MADLIB_ENGINE_H_
