#include "engines/task_api.h"

#include <algorithm>
#include <iterator>

#include "common/logging.h"
#include "common/overload.h"

namespace smartmeter::engines {

TaskOptions TaskOptions::Default(core::TaskType task) {
  switch (task) {
    case core::TaskType::kHistogram:
      return TaskOptions(core::HistogramOptions{});
    case core::TaskType::kThreeLine:
      return TaskOptions(core::ThreeLineOptions{});
    case core::TaskType::kPar:
      return TaskOptions(core::ParOptions{});
    case core::TaskType::kSimilarity:
      return TaskOptions(SimilarityTaskOptions{});
  }
  return TaskOptions(core::HistogramOptions{});
}

size_t TaskResultSet::size() const {
  return std::visit(
      Overloaded{[](const std::monostate&) -> size_t { return 0; },
                 [](const auto& results) -> size_t { return results.size(); }},
      v_);
}

void MergeResults(TaskResultSet&& src, TaskResultSet* dst) {
  if (src.empty()) return;
  if (dst->empty()) {
    *dst = std::move(src);
    return;
  }
  SM_CHECK(dst->task() == src.task())
      << "MergeResults across task types: " << core::TaskName(dst->task())
      << " vs " << core::TaskName(src.task());
  std::visit(
      Overloaded{[](std::monostate&) {},
                 [dst]<typename T>(std::vector<T>& partial) {
                   std::vector<T>& merged = dst->Mutable<T>();
                   merged.insert(merged.end(),
                                 std::make_move_iterator(partial.begin()),
                                 std::make_move_iterator(partial.end()));
                 }},
      src.variant());
}

void SortResultsByHousehold(TaskResultSet* results) {
  std::visit(Overloaded{[](std::monostate&) {},
                        [](auto& vec) {
                          std::sort(vec.begin(), vec.end(),
                                    [](const auto& a, const auto& b) {
                                      return a.household_id < b.household_id;
                                    });
                        }},
             results->variant());
}

}  // namespace smartmeter::engines
