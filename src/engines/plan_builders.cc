#include "engines/plan_builders.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "engines/cluster_task_util.h"
#include "storage/column_store.h"
#include "storage/csv.h"

namespace smartmeter::engines::planning {

exec::ScanOp ResidentBatchScan(const table::ColumnarBatch* batch,
                               std::string source) {
  exec::ScanOp scan;
  scan.kind = exec::ScanOp::Kind::kBatch;
  scan.source = std::move(source);
  scan.scan_batch = [batch]() -> Result<exec::BatchScan> {
    return exec::BatchScan{batch->View(), nullptr, {}};
  };
  return scan;
}

exec::ScanOp ReaderBatchScan(const table::TableReader* reader,
                             const table::ColumnarBatch* batch,
                             std::string source) {
  exec::ScanOp scan = ResidentBatchScan(batch, std::move(source));
  scan.scan_batch_scoped =
      [reader](const storage::ScanScope& scope) -> Result<exec::BatchScan> {
    SM_ASSIGN_OR_RETURN(table::ScopedBatch scoped,
                        reader->NewScopedBatch(scope));
    return exec::BatchScan{std::move(scoped.batch), std::move(scoped.owner),
                           scoped.stats};
  };
  return scan;
}

exec::ScanOp DatasetBatchScan(const MeterDataset* dataset,
                              std::string source) {
  exec::ScanOp scan;
  scan.kind = exec::ScanOp::Kind::kBatch;
  scan.source = std::move(source);
  scan.scan_batch = [dataset]() -> Result<exec::BatchScan> {
    SM_ASSIGN_OR_RETURN(table::ColumnarBatch batch,
                        table::ColumnarBatch::FromDataset(*dataset));
    return exec::BatchScan{std::move(batch), nullptr, {}};
  };
  return scan;
}

std::vector<cluster::ColumnarBlock> ColumnarFileBlocks(
    const table::ColumnFileReader& reader) {
  std::vector<cluster::ColumnarBlock> blocks;
  const storage::CompressedColumnFile* compressed = reader.compressed();
  if (compressed != nullptr) {
    const size_t hours = compressed->hours();
    const size_t rows = compressed->num_households();
    if (hours == 0 || rows == 0) return blocks;
    for (size_t i = 0; i < compressed->num_consumption_blocks(); ++i) {
      const storage::CompressedColumnFile::BlockInfo info =
          compressed->consumption_block(i);
      // A block owns the rows that START inside it (a row straddling
      // two blocks belongs to the earlier one), so block row ranges are
      // disjoint and contiguous even though decoding a boundary row may
      // touch the neighbour block.
      cluster::ColumnarBlock block;
      block.row_begin = (info.value_begin + hours - 1) / hours;
      block.row_end =
          (info.value_begin + info.value_count + hours - 1) / hours;
      block.bytes = info.encoded_bytes;
      if (block.row_end > block.row_begin) blocks.push_back(block);
    }
    if (!blocks.empty()) blocks.back().row_end = rows;
    return blocks;
  }
  // SMCOLV1 has no block index; synthesize chunks holding the same
  // number of values as an SMCOLV2 block, so both generations produce
  // comparable task counts.
  const storage::ColumnStore& store = reader.store();
  const size_t hours = store.hours();
  const size_t rows = store.num_households();
  if (rows == 0) return blocks;
  const size_t rows_per =
      std::max<size_t>(
          1, storage::kColumnBlockValues / std::max<size_t>(1, hours));
  for (size_t begin = 0; begin < rows; begin += rows_per) {
    cluster::ColumnarBlock block;
    block.row_begin = begin;
    block.row_end = std::min(rows, begin + rows_per);
    block.bytes = static_cast<int64_t>((block.row_end - begin) *
                                       (hours + 1) * sizeof(double));
    blocks.push_back(block);
  }
  return blocks;
}

exec::ScanOp ColumnarReadingsScan(
    std::shared_ptr<const table::ColumnFileReader> reader,
    std::vector<cluster::ColumnarSplit> splits, std::string source) {
  exec::ScanOp scan;
  scan.kind = exec::ScanOp::Kind::kReadings;
  scan.source = std::move(source);
  scan.partitions = static_cast<int>(splits.size());
  auto shared = std::make_shared<const std::vector<cluster::ColumnarSplit>>(
      std::move(splits));
  scan.scan_readings = [reader, shared](
                           int partition,
                           std::vector<exec::ReadingRecord>* out,
                           cluster::TaskStats* stats) -> Status {
    const cluster::ColumnarSplit& columnar =
        (*shared)[static_cast<size_t>(partition)];
    storage::ScanScope scope;
    scope.row_begin = columnar.row_begin;
    scope.row_count = columnar.row_end - columnar.row_begin;
    SM_ASSIGN_OR_RETURN(table::ScopedBatch scoped,
                        reader->NewScopedBatch(scope));
    const table::SeriesSlice temperature = scoped.batch.temperature();
    const size_t hours = scoped.batch.hours();
    out->reserve(scoped.batch.count() * hours);
    for (size_t i = 0; i < scoped.batch.count(); ++i) {
      const int64_t id = scoped.batch.household_id(i);
      const table::SeriesSlice series = scoped.batch.consumption(i);
      for (size_t h = 0; h < hours; ++h) {
        out->push_back({id, static_cast<int32_t>(h), series[h],
                        temperature.empty() ? 0.0 : temperature[h]});
      }
    }
    stats->input_bytes = columnar.split.length;
    stats->files_opened = columnar.split.opens_file ? 1 : 0;
    return Status::OK();
  };
  return scan;
}

exec::ScanOp SplitReadingsScan(std::vector<cluster::InputSplit> splits,
                               std::string source,
                               double extra_seconds_per_mb) {
  exec::ScanOp scan;
  scan.kind = exec::ScanOp::Kind::kReadings;
  scan.source = std::move(source);
  scan.partitions = static_cast<int>(splits.size());
  auto shared =
      std::make_shared<const std::vector<cluster::InputSplit>>(
          std::move(splits));
  scan.scan_readings = [shared, extra_seconds_per_mb](
                           int partition,
                           std::vector<exec::ReadingRecord>* out,
                           cluster::TaskStats* stats) -> Status {
    const cluster::InputSplit& split =
        (*shared)[static_cast<size_t>(partition)];
    SM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        cluster::ReadSplitLines(split));
    out->reserve(lines.size());
    for (const std::string& line : lines) {
      SM_ASSIGN_OR_RETURN(storage::ReadingRow row,
                          storage::ParseReadingRow(line));
      out->push_back({row.household_id, row.hour, row.consumption,
                      row.temperature});
    }
    stats->input_bytes = split.length;
    stats->files_opened = split.opens_file ? 1 : 0;
    stats->fixed_seconds = extra_seconds_per_mb *
                           static_cast<double>(split.length) /
                           (1024.0 * 1024.0);
    return Status::OK();
  };
  return scan;
}

exec::ScanOp SplitSeriesScan(std::vector<cluster::InputSplit> splits,
                             std::string source) {
  exec::ScanOp scan;
  scan.kind = exec::ScanOp::Kind::kSeries;
  scan.source = std::move(source);
  scan.partitions = static_cast<int>(splits.size());
  auto shared =
      std::make_shared<const std::vector<cluster::InputSplit>>(
          std::move(splits));
  scan.scan_series = [shared](int partition,
                              std::vector<exec::SeriesRecord>* out,
                              cluster::TaskStats* stats) -> Status {
    const cluster::InputSplit& split =
        (*shared)[static_cast<size_t>(partition)];
    SM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        cluster::ReadSplitLines(split));
    out->reserve(lines.size());
    for (const std::string& line : lines) {
      SM_ASSIGN_OR_RETURN(internal::HouseholdLine parsed,
                          internal::ParseHouseholdLine(line));
      exec::SeriesRecord record;
      record.household_id = parsed.household_id;
      record.consumption = std::move(parsed.consumption);
      out->push_back(std::move(record));
    }
    stats->input_bytes = split.length;
    stats->files_opened = split.opens_file ? 1 : 0;
    return Status::OK();
  };
  return scan;
}

exec::ScanOp FileSeriesScan(std::vector<std::string> files,
                            std::string source) {
  exec::ScanOp scan;
  scan.kind = exec::ScanOp::Kind::kSeries;
  scan.source = std::move(source);
  scan.partitions = static_cast<int>(files.size());
  auto shared =
      std::make_shared<const std::vector<std::string>>(std::move(files));
  scan.scan_series = [shared](int partition,
                              std::vector<exec::SeriesRecord>* out,
                              cluster::TaskStats*) -> Status {
    ConsumerSeries consumer;
    std::vector<double> temperature;
    SM_RETURN_IF_ERROR(ParseSingleHouseholdFile(
        (*shared)[static_cast<size_t>(partition)], &consumer, &temperature));
    exec::SeriesRecord record;
    record.household_id = consumer.household_id;
    record.consumption = std::move(consumer.consumption);
    record.temperature = std::move(temperature);
    out->push_back(std::move(record));
    return Status::OK();
  };
  return scan;
}

Status ParseSingleHouseholdFile(const std::string& path,
                                ConsumerSeries* series,
                                std::vector<double>* temperature) {
  storage::ReadingCsvReader reader(path);
  SM_RETURN_IF_ERROR(reader.Open());
  storage::ReadingRow row;
  bool first = true;
  series->consumption.clear();
  temperature->clear();
  while (reader.Next(&row)) {
    if (first) {
      series->household_id = row.household_id;
      first = false;
    }
    series->consumption.push_back(row.consumption);
    temperature->push_back(row.temperature);
  }
  SM_RETURN_IF_ERROR(reader.status());
  if (first) {
    return Status::Corruption("empty household file " + path);
  }
  return Status::OK();
}

}  // namespace smartmeter::engines::planning
