#include "engines/plan_builders.h"

#include <memory>
#include <utility>

#include "engines/cluster_task_util.h"
#include "storage/csv.h"

namespace smartmeter::engines::planning {

exec::ScanOp ResidentBatchScan(const table::ColumnarBatch* batch,
                               std::string source) {
  exec::ScanOp scan;
  scan.kind = exec::ScanOp::Kind::kBatch;
  scan.source = std::move(source);
  scan.scan_batch = [batch]() -> Result<exec::BatchScan> {
    return exec::BatchScan{batch->View(), nullptr};
  };
  return scan;
}

exec::ScanOp DatasetBatchScan(const MeterDataset* dataset,
                              std::string source) {
  exec::ScanOp scan;
  scan.kind = exec::ScanOp::Kind::kBatch;
  scan.source = std::move(source);
  scan.scan_batch = [dataset]() -> Result<exec::BatchScan> {
    SM_ASSIGN_OR_RETURN(table::ColumnarBatch batch,
                        table::ColumnarBatch::FromDataset(*dataset));
    return exec::BatchScan{std::move(batch), nullptr};
  };
  return scan;
}

exec::ScanOp SplitReadingsScan(std::vector<cluster::InputSplit> splits,
                               std::string source,
                               double extra_seconds_per_mb) {
  exec::ScanOp scan;
  scan.kind = exec::ScanOp::Kind::kReadings;
  scan.source = std::move(source);
  scan.partitions = static_cast<int>(splits.size());
  auto shared =
      std::make_shared<const std::vector<cluster::InputSplit>>(
          std::move(splits));
  scan.scan_readings = [shared, extra_seconds_per_mb](
                           int partition,
                           std::vector<exec::ReadingRecord>* out,
                           cluster::TaskStats* stats) -> Status {
    const cluster::InputSplit& split =
        (*shared)[static_cast<size_t>(partition)];
    SM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        cluster::ReadSplitLines(split));
    out->reserve(lines.size());
    for (const std::string& line : lines) {
      SM_ASSIGN_OR_RETURN(storage::ReadingRow row,
                          storage::ParseReadingRow(line));
      out->push_back({row.household_id, row.hour, row.consumption,
                      row.temperature});
    }
    stats->input_bytes = split.length;
    stats->files_opened = split.opens_file ? 1 : 0;
    stats->fixed_seconds = extra_seconds_per_mb *
                           static_cast<double>(split.length) /
                           (1024.0 * 1024.0);
    return Status::OK();
  };
  return scan;
}

exec::ScanOp SplitSeriesScan(std::vector<cluster::InputSplit> splits,
                             std::string source) {
  exec::ScanOp scan;
  scan.kind = exec::ScanOp::Kind::kSeries;
  scan.source = std::move(source);
  scan.partitions = static_cast<int>(splits.size());
  auto shared =
      std::make_shared<const std::vector<cluster::InputSplit>>(
          std::move(splits));
  scan.scan_series = [shared](int partition,
                              std::vector<exec::SeriesRecord>* out,
                              cluster::TaskStats* stats) -> Status {
    const cluster::InputSplit& split =
        (*shared)[static_cast<size_t>(partition)];
    SM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        cluster::ReadSplitLines(split));
    out->reserve(lines.size());
    for (const std::string& line : lines) {
      SM_ASSIGN_OR_RETURN(internal::HouseholdLine parsed,
                          internal::ParseHouseholdLine(line));
      exec::SeriesRecord record;
      record.household_id = parsed.household_id;
      record.consumption = std::move(parsed.consumption);
      out->push_back(std::move(record));
    }
    stats->input_bytes = split.length;
    stats->files_opened = split.opens_file ? 1 : 0;
    return Status::OK();
  };
  return scan;
}

exec::ScanOp FileSeriesScan(std::vector<std::string> files,
                            std::string source) {
  exec::ScanOp scan;
  scan.kind = exec::ScanOp::Kind::kSeries;
  scan.source = std::move(source);
  scan.partitions = static_cast<int>(files.size());
  auto shared =
      std::make_shared<const std::vector<std::string>>(std::move(files));
  scan.scan_series = [shared](int partition,
                              std::vector<exec::SeriesRecord>* out,
                              cluster::TaskStats*) -> Status {
    ConsumerSeries consumer;
    std::vector<double> temperature;
    SM_RETURN_IF_ERROR(ParseSingleHouseholdFile(
        (*shared)[static_cast<size_t>(partition)], &consumer, &temperature));
    exec::SeriesRecord record;
    record.household_id = consumer.household_id;
    record.consumption = std::move(consumer.consumption);
    record.temperature = std::move(temperature);
    out->push_back(std::move(record));
    return Status::OK();
  };
  return scan;
}

Status ParseSingleHouseholdFile(const std::string& path,
                                ConsumerSeries* series,
                                std::vector<double>* temperature) {
  storage::ReadingCsvReader reader(path);
  SM_RETURN_IF_ERROR(reader.Open());
  storage::ReadingRow row;
  bool first = true;
  series->consumption.clear();
  temperature->clear();
  while (reader.Next(&row)) {
    if (first) {
      series->household_id = row.household_id;
      first = false;
    }
    series->consumption.push_back(row.consumption);
    temperature->push_back(row.temperature);
  }
  SM_RETURN_IF_ERROR(reader.status());
  if (first) {
    return Status::Corruption("empty household file " + path);
  }
  return Status::OK();
}

}  // namespace smartmeter::engines::planning
