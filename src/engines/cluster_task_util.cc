#include "engines/cluster_task_util.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace smartmeter::engines::internal {

void CountPrunedClusterBlocks(size_t total_blocks, size_t kept_blocks) {
  static obs::Counter* pruned =
      obs::MetricsRegistry::Global().GetCounter("table.scan.blocks_pruned");
  if (total_blocks > kept_blocks) {
    pruned->Add(static_cast<int64_t>(total_blocks - kept_blocks));
  }
}

void AssembleSeries(std::vector<HourRecord>* records,
                    std::vector<double>* consumption,
                    std::vector<double>* temperature) {
  std::sort(records->begin(), records->end(),
            [](const HourRecord& a, const HourRecord& b) {
              return a.hour < b.hour;
            });
  consumption->clear();
  temperature->clear();
  consumption->reserve(records->size());
  temperature->reserve(records->size());
  for (const HourRecord& r : *records) {
    consumption->push_back(r.consumption);
    temperature->push_back(r.temperature);
  }
}

Result<HouseholdLine> ParseHouseholdLine(std::string_view line) {
  // Single pass over the line: no field vector is materialized. A format
  // 2 line holds a whole year (8760 values), so the old split-then-parse
  // allocated a ~9k-entry vector per household just to throw it away.
  const size_t id_end = line.find(',');
  if (id_end == std::string_view::npos) {
    return Status::Corruption("household line with no readings");
  }
  HouseholdLine parsed;
  SM_ASSIGN_OR_RETURN(parsed.household_id,
                      ParseInt64(line.substr(0, id_end)));
  parsed.consumption.reserve(
      static_cast<size_t>(std::count(line.begin(), line.end(), ',')));
  size_t pos = id_end + 1;
  for (;;) {
    const size_t comma = line.find(',', pos);
    const std::string_view field =
        comma == std::string_view::npos ? line.substr(pos)
                                        : line.substr(pos, comma - pos);
    SM_ASSIGN_OR_RETURN(double v, ParseDouble(field));
    parsed.consumption.push_back(v);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return parsed;
}

Result<std::vector<double>> ReadTemperatureSidecar(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IOError("missing temperature sidecar " + path);
  }
  std::vector<double> values;
  char line[64];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::string_view view = TrimWhitespace(line);
    if (view.empty()) continue;
    Result<double> v = ParseDouble(view);
    if (!v.ok()) {
      std::fclose(f);
      return v.status();
    }
    values.push_back(*v);
  }
  std::fclose(f);
  return values;
}

}  // namespace smartmeter::engines::internal
