#include "engines/cluster_task_util.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"

namespace smartmeter::engines::internal {

void AssembleSeries(std::vector<HourRecord>* records,
                    std::vector<double>* consumption,
                    std::vector<double>* temperature) {
  std::sort(records->begin(), records->end(),
            [](const HourRecord& a, const HourRecord& b) {
              return a.hour < b.hour;
            });
  consumption->clear();
  temperature->clear();
  consumption->reserve(records->size());
  temperature->reserve(records->size());
  for (const HourRecord& r : *records) {
    consumption->push_back(r.consumption);
    temperature->push_back(r.temperature);
  }
}

Result<HouseholdLine> ParseHouseholdLine(std::string_view line) {
  const std::vector<std::string_view> fields = SplitString(line, ',');
  if (fields.size() < 2) {
    return Status::Corruption("household line with no readings");
  }
  HouseholdLine parsed;
  SM_ASSIGN_OR_RETURN(parsed.household_id, ParseInt64(fields[0]));
  parsed.consumption.reserve(fields.size() - 1);
  for (size_t i = 1; i < fields.size(); ++i) {
    SM_ASSIGN_OR_RETURN(double v, ParseDouble(fields[i]));
    parsed.consumption.push_back(v);
  }
  return parsed;
}

Result<std::vector<double>> ReadTemperatureSidecar(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IOError("missing temperature sidecar " + path);
  }
  std::vector<double> values;
  char line[64];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::string_view view = TrimWhitespace(line);
    if (view.empty()) continue;
    Result<double> v = ParseDouble(view);
    if (!v.ok()) {
      std::fclose(f);
      return v.status();
    }
    values.push_back(*v);
  }
  std::fclose(f);
  return values;
}

Status ComputeHouseholdTask(const exec::QueryContext& ctx,
                            const TaskOptions& options, int64_t household_id,
                            std::span<const double> consumption,
                            std::span<const double> temperature,
                            TaskResultSet* results) {
  switch (options.task()) {
    case core::TaskType::kHistogram: {
      SM_ASSIGN_OR_RETURN(
          stats::EquiWidthHistogram hist,
          core::ComputeConsumptionHistogram(
              consumption, options.Get<core::HistogramOptions>(), &ctx));
      results->Mutable<core::HistogramResult>().push_back(
          {household_id, std::move(hist)});
      return Status::OK();
    }
    case core::TaskType::kThreeLine: {
      SM_ASSIGN_OR_RETURN(
          core::ThreeLineResult fit,
          core::ComputeThreeLine(consumption, temperature, household_id,
                                 options.Get<core::ThreeLineOptions>(),
                                 nullptr, &ctx));
      results->Mutable<core::ThreeLineResult>().push_back(std::move(fit));
      return Status::OK();
    }
    case core::TaskType::kPar: {
      SM_ASSIGN_OR_RETURN(
          core::DailyProfileResult profile,
          core::ComputeDailyProfile(consumption, temperature, household_id,
                                    options.Get<core::ParOptions>(), &ctx));
      results->Mutable<core::DailyProfileResult>().push_back(
          std::move(profile));
      return Status::OK();
    }
    case core::TaskType::kSimilarity:
      return Status::InvalidArgument(
          "similarity is not a per-household task");
  }
  return Status::Internal("unreachable");
}

}  // namespace smartmeter::engines::internal
