#ifndef SMARTMETER_ENGINES_PLAN_BUILDERS_H_
#define SMARTMETER_ENGINES_PLAN_BUILDERS_H_

#include <string>
#include <vector>

#include "cluster/block_store.h"
#include "common/result.h"
#include "exec/plan.h"
#include "table/columnar_batch.h"
#include "table/table_reader.h"
#include "timeseries/dataset.h"

namespace smartmeter::engines::planning {

/// Shared ScanOp constructors: the handful of physical input shapes the
/// five engines scan, factored out so each PlanBuilder is just "pick a
/// scan, pick a shuffle, price it". Closures capture their inputs by
/// shared pointer, so plans stay cheap to copy.

/// Views an engine-resident batch (System C's mmap, a warm reader's
/// batch). `batch` must outlive the plan.
exec::ScanOp ResidentBatchScan(const table::ColumnarBatch* batch,
                               std::string source);

/// Like ResidentBatchScan, but backed by the reader that owns `batch`,
/// so the executor can push a kernel's row scope down into the scan:
/// `reader->NewScopedBatch` materializes only the scoped rows, and a
/// block-indexed reader (SMCOLV2) skips non-matching blocks entirely.
/// Both `reader` and `batch` must outlive the plan.
exec::ScanOp ReaderBatchScan(const table::TableReader* reader,
                             const table::ColumnarBatch* batch,
                             std::string source);

/// Views an engine-resident in-memory dataset (Matlab's warm arrays).
/// `dataset` must outlive the plan.
exec::ScanOp DatasetBatchScan(const MeterDataset* dataset,
                              std::string source);

/// The household-range blocks of an opened column file, for
/// BlockStore::AddColumnarFile. SMCOLV2 blocks mirror the file's own
/// compression-block index (each block owns the rows that start inside
/// it); SMCOLV1 files get synthesized fixed-size row chunks so both
/// generations split into comparably sized cluster tasks.
std::vector<cluster::ColumnarBlock> ColumnarFileBlocks(
    const table::ColumnFileReader& reader);

/// Decodes columnar splits into per-partition reading rows (one task
/// per block). Each task decodes only its split's household range —
/// through the block index for SMCOLV2 — and emits records with the
/// real per-hour temperature attached, so downstream assembly matches
/// the text formats bit for bit. `reader` is shared by every task.
exec::ScanOp ColumnarReadingsScan(
    std::shared_ptr<const table::ColumnFileReader> reader,
    std::vector<cluster::ColumnarSplit> splits, std::string source);

/// Reads format 1 / format 3 splits into per-partition reading rows
/// (one task per split). `extra_seconds_per_mb` charges an additional
/// modeled ingestion cost (format 3's whole-file materialization).
exec::ScanOp SplitReadingsScan(std::vector<cluster::InputSplit> splits,
                               std::string source,
                               double extra_seconds_per_mb = 0.0);

/// Reads format 2 splits ("id,c0,c1,..." lines) into per-partition
/// assembled households (one task per split). Records carry no
/// temperature; pair with ScanOp::shared_temperature.
exec::ScanOp SplitSeriesScan(std::vector<cluster::InputSplit> splits,
                             std::string source);

/// Streams one single-household CSV file per partition (Matlab's
/// file-at-a-time loop over the partitioned layout).
exec::ScanOp FileSeriesScan(std::vector<std::string> files,
                            std::string source);

/// Parses one single-household file (rows already in hour order, as the
/// partitioned writer produces them) without any grouping structure.
Status ParseSingleHouseholdFile(const std::string& path,
                                ConsumerSeries* series,
                                std::vector<double>* temperature);

}  // namespace smartmeter::engines::planning

#endif  // SMARTMETER_ENGINES_PLAN_BUILDERS_H_
