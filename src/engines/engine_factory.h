#ifndef SMARTMETER_ENGINES_ENGINE_FACTORY_H_
#define SMARTMETER_ENGINES_ENGINE_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "engines/engine.h"

namespace smartmeter::engines {

/// Options for constructing any engine.
struct EngineFactoryOptions {
  /// Scratch directory for engines that materialize storage (System C).
  std::string spool_dir = "/tmp/smartmeter-spool";
  /// Cluster shape for the distributed engines.
  cluster::ClusterConfig cluster;
  int64_t block_bytes = 4 << 20;
  /// MADLib table layout (row vs array, Figure 9).
  bool madlib_array_layout = false;
};

/// Creates an engine by kind.
std::unique_ptr<AnalyticsEngine> MakeEngine(EngineKind kind,
                                            const EngineFactoryOptions&
                                                options);

/// Row of the Table 1 capability matrix: which statistical functions a
/// platform ships versus which this benchmark had to implement.
struct FeatureMatrixRow {
  std::string function;
  std::string matlab;
  std::string madlib;
  std::string system_c;
  std::string spark;
  std::string hive;
};

/// The paper's Table 1 verbatim: built-in statistical functions per
/// platform ("yes" built-in, "no" hand-implemented, "third party" via a
/// library).
std::vector<FeatureMatrixRow> BuiltinFunctionMatrix();

}  // namespace smartmeter::engines

#endif  // SMARTMETER_ENGINES_ENGINE_FACTORY_H_
