#include "engines/madlib_engine.h"

#include <utility>

#include "common/stopwatch.h"
#include "engines/engine_util.h"
#include "obs/trace.h"
#include "storage/csv.h"

namespace smartmeter::engines {

Result<double> MadlibEngine::Attach(const DataSource& source) {
  SM_TRACE_SPAN("madlib.attach");
  SM_RETURN_IF_ERROR(RequireLayout(source,
                                   {DataSource::Layout::kSingleCsv,
                                    DataSource::Layout::kPartitionedDir},
                                   name()));
  Stopwatch clock;
  warm_reader_.reset();
  attached_ = false;
  row_table_ = storage::RowStore();
  array_table_ = storage::ArrayStore();
  if (layout_ == TableLayout::kRow) {
    // COPY into the row table: tuple-at-a-time appends into slotted
    // pages with WAL and index maintenance, the dominant cost of
    // Figure 4's MADLib bars.
    for (const std::string& path : source.files) {
      SM_RETURN_IF_ERROR(row_table_.LoadFromCsv(path));
    }
    SM_RETURN_IF_ERROR(row_table_.FinishLoad());
  } else {
    // The array layout groups by household at load time.
    MeterDataset staged;
    if (source.layout == DataSource::Layout::kSingleCsv) {
      SM_ASSIGN_OR_RETURN(staged,
                          storage::ReadReadingsCsv(source.files.front()));
    } else {
      storage::RowStore staging;
      for (const std::string& path : source.files) {
        SM_RETURN_IF_ERROR(staging.LoadFromCsv(path));
      }
      SM_RETURN_IF_ERROR(staging.FinishLoad());
      SM_ASSIGN_OR_RETURN(staged, staging.ScanAll());
    }
    SM_RETURN_IF_ERROR(array_table_.LoadFromDataset(staged));
  }
  attached_ = true;
  return clock.ElapsedSeconds();
}

std::unique_ptr<table::TableReader> MadlibEngine::MakeTableReader() const {
  if (layout_ == TableLayout::kRow) {
    // All-household extraction plans as ONE sequential scan with a sort
    // per group (the GROUP BY plan PostgreSQL would pick), not as n
    // index scans over an un-clustered table.
    return std::make_unique<table::RowStoreReader>(&row_table_);
  }
  return std::make_unique<table::ArrayStoreReader>(&array_table_);
}

Result<double> MadlibEngine::WarmUp() {
  SM_TRACE_SPAN("madlib.warmup");
  if (!attached_) {
    return Status::InvalidArgument("madlib: no data attached");
  }
  Stopwatch clock;
  std::unique_ptr<table::TableReader> reader = MakeTableReader();
  SM_RETURN_IF_ERROR(reader->Open());
  warm_reader_ = std::move(reader);
  return clock.ElapsedSeconds();
}

void MadlibEngine::DropWarmData() { warm_reader_.reset(); }

Result<TaskRunMetrics> MadlibEngine::RunTask(const exec::QueryContext& ctx,
                                             const TaskOptions& options,
                                             TaskResultSet* results) {
  SM_TRACE_SPAN("madlib.task");
  if (!attached_) {
    return Status::InvalidArgument("madlib: no data attached");
  }
  if (warm_reader_ != nullptr) {
    SM_ASSIGN_OR_RETURN(table::ColumnarBatch batch, warm_reader_->NewBatch());
    return RunTaskOverBatch(ctx, batch, options, threads_, results);
  }
  Stopwatch clock;
  TaskRunMetrics metrics;
  // Cold start reads the table from disk first: the row layout pays a
  // full scan plus per-household grouping and sorting; the array layout
  // reads far fewer, wider rows and skips the sort -- the Section 5.3.3
  // gap. Both then run the same kernels.
  std::unique_ptr<table::TableReader> reader = MakeTableReader();
  SM_RETURN_IF_ERROR(reader->Open());
  SM_RETURN_IF_ERROR(ctx.CheckNotStopped());
  SM_ASSIGN_OR_RETURN(table::ColumnarBatch batch, reader->NewBatch());
  SM_ASSIGN_OR_RETURN(
      metrics, RunTaskOverBatch(ctx, batch, options, threads_, results));
  metrics.seconds = clock.ElapsedSeconds();
  return metrics;
}

}  // namespace smartmeter::engines
