#include "engines/madlib_engine.h"

#include <memory>
#include <string>
#include <utility>

#include "common/stopwatch.h"
#include "core/task_types.h"
#include "engines/engine_util.h"
#include "obs/trace.h"
#include "storage/csv.h"
#include "table/table_reader.h"

namespace smartmeter::engines {

Result<double> MadlibEngine::Attach(const table::DataSource& source) {
  SM_TRACE_SPAN("madlib.attach");
  SM_RETURN_IF_ERROR(RequireLayout(source,
                                   {table::DataSource::Layout::kSingleCsv,
                                    table::DataSource::Layout::kPartitionedDir,
                                    table::DataSource::Layout::kColumnFile},
                                   name()));
  Stopwatch clock;
  warm_reader_.reset();
  attached_ = false;
  row_table_ = storage::RowStore();
  array_table_ = storage::ArrayStore();
  if (layout_ == TableLayout::kRow) {
    if (source.layout == table::DataSource::Layout::kColumnFile) {
      // COPY from a decoded column file: the rows arrive hour-ordered
      // (interleaved), the same un-clustered table a timestamp-ordered
      // export produces.
      SM_ASSIGN_OR_RETURN(MeterDataset staged,
                          table::ReadDatasetFromSource(source));
      SM_RETURN_IF_ERROR(
          row_table_.LoadFromDataset(staged, /*interleave=*/true));
    } else {
      // COPY into the row table: tuple-at-a-time appends into slotted
      // pages with WAL and index maintenance, the dominant cost of
      // Figure 4's MADLib bars.
      for (const std::string& path : source.files) {
        SM_RETURN_IF_ERROR(row_table_.LoadFromCsv(path));
      }
      SM_RETURN_IF_ERROR(row_table_.FinishLoad());
    }
  } else {
    // The array layout groups by household at load time.
    MeterDataset staged;
    if (source.layout == table::DataSource::Layout::kSingleCsv) {
      SM_ASSIGN_OR_RETURN(staged,
                          storage::ReadReadingsCsv(source.files.front()));
    } else if (source.layout == table::DataSource::Layout::kColumnFile) {
      SM_ASSIGN_OR_RETURN(staged, table::ReadDatasetFromSource(source));
    } else {
      storage::RowStore staging;
      for (const std::string& path : source.files) {
        SM_RETURN_IF_ERROR(staging.LoadFromCsv(path));
      }
      SM_RETURN_IF_ERROR(staging.FinishLoad());
      SM_ASSIGN_OR_RETURN(staged, staging.ScanAll());
    }
    SM_RETURN_IF_ERROR(array_table_.LoadFromDataset(staged));
  }
  attached_ = true;
  return clock.ElapsedSeconds();
}

std::unique_ptr<table::TableReader> MadlibEngine::MakeTableReader() const {
  if (layout_ == TableLayout::kRow) {
    // All-household extraction plans as ONE sequential scan with a sort
    // per group (the GROUP BY plan PostgreSQL would pick), not as n
    // index scans over an un-clustered table.
    return std::make_unique<table::RowStoreReader>(&row_table_);
  }
  return std::make_unique<table::ArrayStoreReader>(&array_table_);
}

Result<double> MadlibEngine::WarmUp() {
  SM_TRACE_SPAN("madlib.warmup");
  if (!attached_) {
    return Status::InvalidArgument("madlib: no data attached");
  }
  Stopwatch clock;
  std::unique_ptr<table::TableReader> reader = MakeTableReader();
  SM_RETURN_IF_ERROR(reader->Open());
  warm_reader_ = std::move(reader);
  return clock.ElapsedSeconds();
}

void MadlibEngine::DropWarmData() { warm_reader_.reset(); }

Result<exec::Plan> MadlibEngine::BuildPlan(const TaskOptions& options) const {
  if (!attached_) {
    return Status::InvalidArgument("madlib: no data attached");
  }
  exec::Plan plan;
  const std::string task(core::TaskName(options.task()));
  exec::ScanOp scan;
  scan.kind = exec::ScanOp::Kind::kBatch;
  if (warm_reader_ != nullptr) {
    // Warm: the opened reader serves batches from memory.
    plan.label = std::string(name()) + "/" + task + "/warm";
    scan.source = "warm-reader";
    scan.scan_batch =
        [reader = warm_reader_.get()]() -> Result<exec::BatchScan> {
      SM_ASSIGN_OR_RETURN(table::ColumnarBatch batch, reader->NewBatch());
      return exec::BatchScan{std::move(batch), nullptr, {}};
    };
  } else {
    // Cold start reads the table from disk inside the scan stage: the
    // row layout pays a full scan plus per-household grouping and
    // sorting; the array layout reads far fewer, wider rows and skips
    // the sort -- the Section 5.3.3 gap. Both then run the same kernels.
    plan.label = std::string(name()) + "/" + task + "/cold";
    scan.source =
        layout_ == TableLayout::kRow ? "row-store" : "array-store";
    scan.scan_batch = [this]() -> Result<exec::BatchScan> {
      std::shared_ptr<table::TableReader> reader = MakeTableReader();
      SM_RETURN_IF_ERROR(reader->Open());
      SM_ASSIGN_OR_RETURN(table::ColumnarBatch batch, reader->NewBatch());
      return exec::BatchScan{std::move(batch), std::move(reader), {}};
    };
  }
  plan.stages.push_back({"scan", std::move(scan)});
  exec::KernelOp kernel;
  kernel.options = options;
  plan.stages.push_back({"kernel", std::move(kernel)});
  plan.stages.push_back({"materialize", exec::MaterializeOp{}});
  return plan;
}

Result<TaskRunMetrics> MadlibEngine::RunTask(const exec::QueryContext& ctx,
                                             const TaskOptions& options,
                                             TaskResultSet* results) {
  SM_TRACE_SPAN("madlib.task");
  SM_ASSIGN_OR_RETURN(exec::Plan plan, BuildPlan(options));
  SM_ASSIGN_OR_RETURN(
      exec::PlanRunMetrics run,
      exec::PlanExecutor().Run(ctx, plan, LocalPoolPolicy(threads_), results));
  return ToTaskMetrics(std::move(run));
}

}  // namespace smartmeter::engines
