#include "engines/madlib_engine.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "engines/engine_util.h"
#include "obs/trace.h"
#include "storage/csv.h"

namespace smartmeter::engines {

Result<double> MadlibEngine::Attach(const DataSource& source) {
  SM_TRACE_SPAN("madlib.attach");
  SM_RETURN_IF_ERROR(RequireLayout(source,
                                   {DataSource::Layout::kSingleCsv,
                                    DataSource::Layout::kPartitionedDir},
                                   name()));
  Stopwatch clock;
  warm_.reset();
  row_table_ = storage::RowStore();
  array_table_ = storage::ArrayStore();
  if (layout_ == TableLayout::kRow) {
    // COPY into the row table: tuple-at-a-time appends into slotted
    // pages with WAL and index maintenance, the dominant cost of
    // Figure 4's MADLib bars.
    for (const std::string& path : source.files) {
      SM_RETURN_IF_ERROR(row_table_.LoadFromCsv(path));
    }
    SM_RETURN_IF_ERROR(row_table_.FinishLoad());
  } else {
    // The array layout groups by household at load time.
    MeterDataset staged;
    if (source.layout == DataSource::Layout::kSingleCsv) {
      SM_ASSIGN_OR_RETURN(staged,
                          storage::ReadReadingsCsv(source.files.front()));
    } else {
      storage::RowStore staging;
      for (const std::string& path : source.files) {
        SM_RETURN_IF_ERROR(staging.LoadFromCsv(path));
      }
      SM_RETURN_IF_ERROR(staging.FinishLoad());
      SM_ASSIGN_OR_RETURN(staged, staging.ScanAll());
    }
    SM_RETURN_IF_ERROR(array_table_.LoadFromDataset(staged));
  }
  return clock.ElapsedSeconds();
}

Result<MeterDataset> MadlibEngine::ExtractAll() const {
  SM_TRACE_SPAN("madlib.extract_all");
  MeterDataset dataset;
  if (layout_ == TableLayout::kRow) {
    // All-household extraction plans as ONE sequential scan with a sort
    // per group (the GROUP BY plan PostgreSQL would pick), not as n
    // index scans over an un-clustered table.
    SM_ASSIGN_OR_RETURN(MeterDataset scanned, row_table_.ScanAll());
    dataset = std::move(scanned);
    return dataset;
  } else {
    SM_ASSIGN_OR_RETURN(dataset, array_table_.ReadAll());
  }
  return dataset;
}

Result<double> MadlibEngine::WarmUp() {
  SM_TRACE_SPAN("madlib.warmup");
  Stopwatch clock;
  SM_ASSIGN_OR_RETURN(MeterDataset dataset, ExtractAll());
  warm_ = std::move(dataset);
  return clock.ElapsedSeconds();
}

void MadlibEngine::DropWarmData() { warm_.reset(); }

Result<TaskRunMetrics> MadlibEngine::RunTask(const exec::QueryContext& ctx,
                                             const TaskOptions& options,
                                             TaskResultSet* results) {
  SM_TRACE_SPAN("madlib.task");
  if (warm_.has_value()) {
    return RunTaskOverDataset(ctx, *warm_, options, threads_, results);
  }
  Stopwatch clock;
  TaskRunMetrics metrics;
  // Cold start reads the table from disk first: the row layout pays a
  // full scan plus per-household grouping and sorting; the array layout
  // reads far fewer, wider rows and skips the sort -- the Section 5.3.3
  // gap. Both then run the same kernels.
  SM_ASSIGN_OR_RETURN(MeterDataset dataset, ExtractAll());
  SM_RETURN_IF_ERROR(ctx.CheckNotStopped());
  SM_ASSIGN_OR_RETURN(
      metrics, RunTaskOverDataset(ctx, dataset, options, threads_, results));
  metrics.seconds = clock.ElapsedSeconds();
  return metrics;
}

}  // namespace smartmeter::engines
