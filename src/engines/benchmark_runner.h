#ifndef SMARTMETER_ENGINES_BENCHMARK_RUNNER_H_
#define SMARTMETER_ENGINES_BENCHMARK_RUNNER_H_

#include "engines/engine.h"
#include "engines/engine_factory.h"
#include "obs/report.h"

namespace smartmeter::engines {

/// One benchmark execution: which engine, which data, which task, and
/// the methodology switches of Section 5 (cold vs warm start, degree of
/// parallelism, memory sampling).
struct RunSpec {
  EngineKind kind = EngineKind::kSystemC;
  EngineFactoryOptions factory;
  table::DataSource source;
  TaskOptions options;
  int threads = 1;
  /// Warm start: load into memory before the timed task run.
  bool warm = false;
  /// Sample process RSS during the run (single-node engines).
  bool sample_memory = false;
  /// Keep task outputs in the report (off for pure timing runs).
  bool keep_outputs = false;
  /// Observability sink: when set, RunBenchmark appends a RunRecord for
  /// this execution (the caller still decides when to capture metrics /
  /// spans and write the JSON file).
  obs::BenchReport* report = nullptr;
};

/// What one execution measured.
struct RunReport {
  double attach_seconds = 0.0;
  double warmup_seconds = 0.0;
  double task_seconds = 0.0;
  /// attach + warmup + task: the paper's cold-start number includes the
  /// in-task load, warm-start excludes it.
  bool simulated = false;
  core::ThreeLinePhases phases;
  /// Per-stage plan timings from the executed task (see TaskRunMetrics).
  std::vector<exec::StageTiming> stages;
  /// Average RSS over the task (sampled) or the cluster model's memory.
  int64_t memory_bytes = 0;
  /// Block-index scan accounting from the task (see TaskRunMetrics).
  storage::ScanStats scan;
  TaskResultSet results;
};

/// Flattens one execution into the obs export schema (engine/task/layout
/// names, timings, phase split).
obs::RunRecord MakeRunRecord(const RunSpec& spec, const RunReport& report);

/// Runs one spec end to end: construct engine, Attach, optional WarmUp,
/// RunTask with optional memory sampling. Each lifecycle phase is
/// recorded as a trace span (bench.attach / bench.warmup / bench.task).
Result<RunReport> RunBenchmark(const RunSpec& spec);

/// Reuses an already attached engine for another task run (benches that
/// sweep tasks or thread counts without reloading). Runs under `ctx`'s
/// deadline/cancellation; `threads` reconfigures the engine before the
/// run and is the batch-bench parallelism surface (RunSpec.threads).
Result<RunReport> RunTaskOnEngine(AnalyticsEngine* engine,
                                  const exec::QueryContext& ctx,
                                  const TaskOptions& options, int threads,
                                  bool sample_memory, bool keep_outputs);

/// Serving-path form: runs at the engine's already-configured thread
/// count. A session's `AnalyticsEngine::SetThreads()` (flowing into
/// `ExecutionPolicy.threads`) is the single source of intra-query
/// parallelism — the serving layer never overrides it per query (see
/// DESIGN.md, "Serving layer").
Result<RunReport> RunTaskOnEngine(AnalyticsEngine* engine,
                                  const exec::QueryContext& ctx,
                                  const TaskOptions& options,
                                  bool keep_outputs);

/// Background-context convenience overload.
Result<RunReport> RunTaskOnEngine(AnalyticsEngine* engine,
                                  const TaskOptions& options, int threads,
                                  bool sample_memory, bool keep_outputs);

}  // namespace smartmeter::engines

#endif  // SMARTMETER_ENGINES_BENCHMARK_RUNNER_H_
