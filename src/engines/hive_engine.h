#ifndef SMARTMETER_ENGINES_HIVE_ENGINE_H_
#define SMARTMETER_ENGINES_HIVE_ENGINE_H_

#include <memory>
#include <vector>

#include "cluster/block_store.h"
#include "cluster/cost_model.h"
#include "engines/engine.h"
#include "exec/plan.h"
#include "table/table_reader.h"

namespace smartmeter::engines {

/// Models Hive on Hadoop/HDFS (Sections 5.1 and 5.4): every task is one
/// or more MapReduce jobs over input splits, with the plan shape decided
/// by the data format exactly as in the paper:
///
///  * format 1 (one reading per line, kSingleCsv): a UDAF plan -- map
///    parses rows, a full shuffle groups readings by household, reduce
///    assembles the series and runs the algorithm.
///  * format 2 (one household per line, kHouseholdLines): a generic-UDF,
///    map-only plan; the temperature series ships via distributed cache.
///  * format 3 (many whole-household files, kWholeFileDir): either a
///    UDTF plan (map-only over a non-splittable file format) or a UDAF
///    plan (shuffle like format 1) -- Figure 18 compares both.
///
/// Similarity search is implemented the way the paper implemented it in
/// Hive: as a self-join whose plan cannot use map-side joins, so the
/// series table is re-shuffled to every reducer (Figure 13d's gap).
///
/// Reported times are simulated cluster seconds; real kernels run on the
/// host and their measured CPU time is combined with modeled I/O costs.
class HiveEngine : public AnalyticsEngine {
 public:
  enum class Format3Style { kUdtf, kUdaf };

  struct Options {
    cluster::ClusterConfig cluster;
    /// HDFS block size for splittable formats; small by default so that
    /// scaled-down benches still produce multi-task jobs.
    int64_t block_bytes = 4 << 20;
    Format3Style format3_style = Format3Style::kUdtf;
  };

  explicit HiveEngine(Options options) : options_(std::move(options)) {}

  std::string_view name() const override { return "hive"; }
  bool is_cluster_engine() const override { return true; }
  Result<double> Attach(const table::DataSource& source) override;
  Result<double> WarmUp() override { return 0.0; }  // Hive has no warm cache.
  void DropWarmData() override {}
  using AnalyticsEngine::RunTask;
  Result<TaskRunMetrics> RunTask(const exec::QueryContext& ctx,
                                 const TaskOptions& options,
                                 TaskResultSet* results) override;
  void SetThreads(int num_threads) override { threads_ = num_threads; }
  int threads() const override { return threads_; }

  /// Builds the physical plan for one task over the attached layout: a
  /// sort-merge shuffle for the UDAF plans, a fused map-only wave for the
  /// UDF/UDTF plans, and a second self-join job for similarity whose
  /// every task re-reads the series table through the shuffle.
  Result<exec::Plan> BuildPlan(const TaskOptions& options) const;

  /// The Hive pricing policy: simulated dispatch, Hadoop's heavy job and
  /// task startup, nothing resident between jobs.
  exec::ExecutionPolicy policy() const;

  /// Reconfigures the simulated cluster (e.g. Figure 14's 4..16 nodes).
  void SetClusterConfig(const cluster::ClusterConfig& config);
  const Options& options() const { return options_; }

 private:
  Options options_;
  table::DataSource source_;
  std::unique_ptr<cluster::BlockStore> hdfs_;
  // Open handle to an attached SMCOLV1/SMCOLV2 file; its block index is
  // registered with `hdfs_` so columnar splits align with the format's
  // own compression blocks, and every simulated task decodes through it.
  std::shared_ptr<table::ColumnFileReader> columnar_reader_;
  int threads_ = 1;
};

}  // namespace smartmeter::engines

#endif  // SMARTMETER_ENGINES_HIVE_ENGINE_H_
