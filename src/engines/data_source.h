#ifndef SMARTMETER_ENGINES_DATA_SOURCE_H_
#define SMARTMETER_ENGINES_DATA_SOURCE_H_

#include "table/data_source.h"

namespace smartmeter::engines {

/// DataSource moved into the shared data plane (src/table) so the
/// storage readers, the engines, and the serving layer validate inputs
/// the same way. This alias keeps the historical engines:: spelling
/// working for the many call sites that attach engines.
using DataSource = table::DataSource;
using table::DataSourceLayoutName;

}  // namespace smartmeter::engines

#endif  // SMARTMETER_ENGINES_DATA_SOURCE_H_
