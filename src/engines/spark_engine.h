#ifndef SMARTMETER_ENGINES_SPARK_ENGINE_H_
#define SMARTMETER_ENGINES_SPARK_ENGINE_H_

#include <memory>
#include <vector>

#include "cluster/block_store.h"
#include "cluster/cost_model.h"
#include "engines/engine.h"
#include "exec/plan.h"
#include "table/table_reader.h"

namespace smartmeter::engines {

/// Models Spark (Sections 5.1 and 5.4): jobs are dataflow DAGs over
/// in-memory partitioned collections. Narrow stages pipeline without
/// shuffles; grouping is a wide stage; similarity search uses broadcast
/// variables and a map-side join (the design that makes Spark's Figure
/// 13d so much faster than Hive's self-join).
///
/// Data-format plans mirror the paper:
///  * format 1: read rows -> groupBy household (shuffle) -> compute.
///  * format 2: read household lines -> compute (map-only, temperature
///    broadcast).
///  * format 3: one partition per whole file -> group within partition
///    -> compute. Spark pays serial driver work per partition and keeps
///    file handles open, so many small files degrade it (Figure 18) and
///    ~100k files abort with "too many open files".
///
/// Reported times are simulated cluster seconds.
class SparkEngine : public AnalyticsEngine {
 public:
  struct Options {
    cluster::ClusterConfig cluster;
    int64_t block_bytes = 4 << 20;
  };

  explicit SparkEngine(Options options) : options_(std::move(options)) {}

  std::string_view name() const override { return "spark"; }
  bool is_cluster_engine() const override { return true; }
  Result<double> Attach(const table::DataSource& source) override;
  Result<double> WarmUp() override { return 0.0; }
  void DropWarmData() override {}
  using AnalyticsEngine::RunTask;
  Result<TaskRunMetrics> RunTask(const exec::QueryContext& qctx,
                                 const TaskOptions& options,
                                 TaskResultSet* results) override;
  void SetThreads(int num_threads) override { threads_ = num_threads; }
  int threads() const override { return threads_; }

  /// Builds the physical plan for one task over the attached layout: a
  /// dataflow shuffle for format 1, a broadcast map for format 2,
  /// whole-file partitions for format 3; similarity broadcasts the
  /// assembled series table for a map-side join.
  Result<exec::Plan> BuildPlan(const TaskOptions& options) const;

  /// The Spark pricing policy: simulated dispatch, Spark's cheap task
  /// startup, resident-RDD memory accounting.
  exec::ExecutionPolicy policy() const;

  void SetClusterConfig(const cluster::ClusterConfig& config);
  const Options& options() const { return options_; }

 private:
  Options options_;
  table::DataSource source_;
  std::unique_ptr<cluster::BlockStore> hdfs_;
  // Open handle to an attached SMCOLV1/SMCOLV2 file; its block index is
  // registered with `hdfs_` so columnar splits align with the format's
  // own compression blocks, and every simulated task decodes through it.
  std::shared_ptr<table::ColumnFileReader> columnar_reader_;
  int threads_ = 1;
};

}  // namespace smartmeter::engines

#endif  // SMARTMETER_ENGINES_SPARK_ENGINE_H_
