#include "engines/engine_factory.h"

#include "engines/hive_engine.h"
#include "engines/madlib_engine.h"
#include "engines/matlab_engine.h"
#include "engines/spark_engine.h"
#include "engines/systemc_engine.h"

namespace smartmeter::engines {

std::string_view EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMatlab:
      return "matlab";
    case EngineKind::kMadlib:
      return "madlib";
    case EngineKind::kSystemC:
      return "system-c";
    case EngineKind::kSpark:
      return "spark";
    case EngineKind::kHive:
      return "hive";
  }
  return "unknown";
}

std::unique_ptr<AnalyticsEngine> MakeEngine(
    EngineKind kind, const EngineFactoryOptions& options) {
  switch (kind) {
    case EngineKind::kMatlab:
      return std::make_unique<MatlabEngine>();
    case EngineKind::kMadlib:
      return std::make_unique<MadlibEngine>(
          options.madlib_array_layout ? MadlibEngine::TableLayout::kArray
                                      : MadlibEngine::TableLayout::kRow);
    case EngineKind::kSystemC:
      return std::make_unique<SystemCEngine>(options.spool_dir);
    case EngineKind::kSpark: {
      SparkEngine::Options spark;
      spark.cluster = options.cluster;
      spark.block_bytes = options.block_bytes;
      return std::make_unique<SparkEngine>(spark);
    }
    case EngineKind::kHive: {
      HiveEngine::Options hive;
      hive.cluster = options.cluster;
      hive.block_bytes = options.block_bytes;
      return std::make_unique<HiveEngine>(hive);
    }
  }
  return nullptr;
}

std::vector<FeatureMatrixRow> BuiltinFunctionMatrix() {
  // Table 1 of the paper.
  return {
      {"Histogram", "yes", "yes", "no", "no", "yes"},
      {"Quantiles", "yes", "yes", "no", "no", "no"},
      {"Regression and PAR", "yes", "yes", "no", "third party",
       "third party"},
      {"Cosine similarity", "no", "no", "no", "no", "no"},
  };
}

}  // namespace smartmeter::engines
