#ifndef SMARTMETER_ENGINES_ENGINE_H_
#define SMARTMETER_ENGINES_ENGINE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/three_line_task.h"
#include "engines/task_api.h"
#include "exec/plan_executor.h"
#include "exec/query_context.h"
#include "table/data_source.h"

namespace smartmeter::engines {

/// What one task execution produced and cost.
struct TaskRunMetrics {
  /// Task time: wall-clock for single-node engines, simulated cluster
  /// time for Hive/Spark.
  double seconds = 0.0;
  /// True when `seconds` comes from the cluster simulation.
  bool simulated = false;
  /// 3-line phase breakdown (Figure 6), filled only for kThreeLine.
  core::ThreeLinePhases phases;
  /// Modeled resident memory of the engine's task execution (cluster
  /// engines; single-node engines report 0 and the bench samples RSS).
  int64_t modeled_memory_bytes = 0;
  /// Per-stage timing rows of the executed physical plan; stage seconds
  /// sum to `seconds` (wall-clock or simulated, matching `simulated`).
  std::vector<exec::StageTiming> stages;
  /// Injected-fault totals across the plan's simulated waves (zero for
  /// local engines and healthy clusters).
  cluster::WaveFaultStats faults;
  /// Block-index scan accounting, summed over the plan's batch scans
  /// (zero for text sources and unindexed formats).
  storage::ScanStats scan;
};

/// A platform under benchmark. The lifecycle mirrors Section 5's
/// methodology:
///   Attach(source)  -- "loading": whatever the platform does to make
///                      data queryable (bulk-load a DBMS table, convert
///                      and mmap a columnar file, register HDFS files).
///   RunTask(...)    -- cold start when called right after Attach.
///   WarmUp()        -- pull working data into memory structures.
///   RunTask(...)    -- warm start.
///
/// RunTask takes an exec::QueryContext carrying the query's deadline and
/// cancellation token; engines poll ctx.ShouldStop() from their scan
/// loops so a cancelled or expired query returns promptly instead of
/// finishing a multi-second scan. Engines that hold no mutable per-call
/// state may serve concurrent RunTask calls from different threads (the
/// serving layer still dedicates one session per engine instance).
class AnalyticsEngine {
 public:
  virtual ~AnalyticsEngine() = default;

  virtual std::string_view name() const = 0;
  virtual bool is_cluster_engine() const { return false; }

  /// Makes `source` the engine's active data set. Returns the loading
  /// time in seconds (Figure 4). Replaces any previously attached data.
  virtual Result<double> Attach(const table::DataSource& source) = 0;

  /// Brings the attached data into memory; returns the seconds spent.
  virtual Result<double> WarmUp() = 0;

  /// Drops warm state so the next RunTask is a cold start again.
  virtual void DropWarmData() = 0;

  /// Executes one benchmark task over all attached households under
  /// `ctx`'s deadline/cancellation. `results` may be null when only
  /// timing is wanted. Returns kCancelled / kDeadlineExceeded when the
  /// context stops the query mid-scan.
  virtual Result<TaskRunMetrics> RunTask(const exec::QueryContext& ctx,
                                         const TaskOptions& options,
                                         TaskResultSet* results) = 0;

  /// Convenience overload: runs under the never-cancelled background
  /// context. Derived classes re-expose it with
  /// `using AnalyticsEngine::RunTask;`.
  Result<TaskRunMetrics> RunTask(const TaskOptions& options,
                                 TaskResultSet* results) {
    return RunTask(exec::QueryContext::Background(), options, results);
  }

  /// Degree of parallelism for subsequent RunTask calls (Figure 10).
  virtual void SetThreads(int num_threads) = 0;
  virtual int threads() const = 0;
};

/// Identifiers for the factory.
enum class EngineKind { kMatlab, kMadlib, kSystemC, kSpark, kHive };

std::string_view EngineKindName(EngineKind kind);

}  // namespace smartmeter::engines

#endif  // SMARTMETER_ENGINES_ENGINE_H_
