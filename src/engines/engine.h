#ifndef SMARTMETER_ENGINES_ENGINE_H_
#define SMARTMETER_ENGINES_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/histogram_task.h"
#include "core/par_task.h"
#include "core/similarity_task.h"
#include "core/task_types.h"
#include "core/three_line_task.h"

namespace smartmeter::engines {

/// Where an engine's input data lives on disk.
struct DataSource {
  enum class Layout {
    kSingleCsv,        // One reading-per-line CSV file.
    kPartitionedDir,   // One CSV file per household (single-server "part.").
    kHouseholdLines,   // One household per line + temperature sidecar.
    kWholeFileDir,     // Many reading-per-line files, households not split.
  };
  Layout layout = Layout::kSingleCsv;
  /// The file (kSingleCsv / kHouseholdLines) or every file of the
  /// directory layouts.
  std::vector<std::string> files;
};

/// Per-task knobs, defaulted to the paper's fixed choices (10 buckets,
/// p = 3 lags, k = 10 neighbours).
struct TaskRequest {
  core::TaskType task = core::TaskType::kHistogram;
  core::HistogramOptions histogram;
  core::ThreeLineOptions three_line;
  core::ParOptions par;
  core::SimilarityOptions similarity;
  /// Similarity search may be limited to the first n households (the
  /// paper uses subsets for this quadratic task); 0 means all.
  int similarity_households = 0;
};

/// What one task execution produced and cost.
struct TaskRunMetrics {
  /// Task time: wall-clock for single-node engines, simulated cluster
  /// time for Hive/Spark.
  double seconds = 0.0;
  /// True when `seconds` comes from the cluster simulation.
  bool simulated = false;
  /// 3-line phase breakdown (Figure 6), filled only for kThreeLine.
  core::ThreeLinePhases phases;
  /// Modeled resident memory of the engine's task execution (cluster
  /// engines; single-node engines report 0 and the bench samples RSS).
  int64_t modeled_memory_bytes = 0;
};

/// Union of the four tasks' outputs; only the vector matching the
/// requested task is filled.
struct TaskOutputs {
  std::vector<core::HistogramResult> histograms;
  std::vector<core::ThreeLineResult> three_lines;
  std::vector<core::DailyProfileResult> profiles;
  std::vector<core::SimilarityResult> similarities;
};

/// A platform under benchmark. The lifecycle mirrors Section 5's
/// methodology:
///   Attach(source)  -- "loading": whatever the platform does to make
///                      data queryable (bulk-load a DBMS table, convert
///                      and mmap a columnar file, register HDFS files).
///   RunTask(...)    -- cold start when called right after Attach.
///   WarmUp()        -- pull working data into memory structures.
///   RunTask(...)    -- warm start.
class AnalyticsEngine {
 public:
  virtual ~AnalyticsEngine() = default;

  virtual std::string_view name() const = 0;
  virtual bool is_cluster_engine() const { return false; }

  /// Makes `source` the engine's active data set. Returns the loading
  /// time in seconds (Figure 4). Replaces any previously attached data.
  virtual Result<double> Attach(const DataSource& source) = 0;

  /// Brings the attached data into memory; returns the seconds spent.
  virtual Result<double> WarmUp() = 0;

  /// Drops warm state so the next RunTask is a cold start again.
  virtual void DropWarmData() = 0;

  /// Executes one benchmark task over all attached households. `outputs`
  /// may be null when only timing is wanted.
  virtual Result<TaskRunMetrics> RunTask(const TaskRequest& request,
                                         TaskOutputs* outputs) = 0;

  /// Degree of parallelism for subsequent RunTask calls (Figure 10).
  virtual void SetThreads(int num_threads) = 0;
  virtual int threads() const = 0;
};

/// Identifiers for the factory.
enum class EngineKind { kMatlab, kMadlib, kSystemC, kSpark, kHive };

std::string_view EngineKindName(EngineKind kind);

}  // namespace smartmeter::engines

#endif  // SMARTMETER_ENGINES_ENGINE_H_
