#include "engines/hive_engine.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/task_types.h"
#include "engines/cluster_task_util.h"
#include "engines/engine_util.h"
#include "engines/plan_builders.h"
#include "obs/trace.h"

namespace smartmeter::engines {

Result<double> HiveEngine::Attach(const table::DataSource& source) {
  SM_TRACE_SPAN("hive.attach");
  SM_RETURN_IF_ERROR(RequireLayout(source,
                                   {table::DataSource::Layout::kSingleCsv,
                                    table::DataSource::Layout::kHouseholdLines,
                                    table::DataSource::Layout::kWholeFileDir,
                                    table::DataSource::Layout::kColumnFile},
                                   name()));
  source_ = source;
  columnar_reader_.reset();
  hdfs_ = std::make_unique<cluster::BlockStore>(options_.cluster.num_nodes,
                                                options_.block_bytes);
  if (source.layout == table::DataSource::Layout::kColumnFile) {
    auto reader =
        std::make_shared<table::ColumnFileReader>(source.files.front());
    SM_RETURN_IF_ERROR(reader->Open());
    SM_RETURN_IF_ERROR(hdfs_->AddColumnarFile(
        source.files.front(), planning::ColumnarFileBlocks(*reader)));
    columnar_reader_ = std::move(reader);
  } else {
    SM_RETURN_IF_ERROR(hdfs_->AddFiles(source.files));
  }
  return 0.0;  // HDFS registration; upload is outside the benchmark clock.
}

void HiveEngine::SetClusterConfig(const cluster::ClusterConfig& config) {
  options_.cluster = config;
  if (hdfs_ != nullptr) {
    // Re-place blocks for the new node count.
    auto store = std::make_unique<cluster::BlockStore>(config.num_nodes,
                                                       options_.block_bytes);
    if (columnar_reader_ != nullptr) {
      (void)store->AddColumnarFile(
          source_.files.front(),
          planning::ColumnarFileBlocks(*columnar_reader_));
    } else {
      (void)store->AddFiles(source_.files);
    }
    hdfs_ = std::move(store);
  }
}

exec::ExecutionPolicy HiveEngine::policy() const {
  exec::ExecutionPolicy policy;
  policy.dispatch = exec::ExecutionPolicy::Dispatch::kSimulatedCluster;
  policy.threads = threads_;
  policy.cluster = options_.cluster;
  policy.job_overhead_seconds =
      options_.cluster.cost.hive_job_overhead_seconds;
  policy.task_startup_seconds =
      options_.cluster.cost.hive_task_startup_seconds;
  policy.memory_model =
      exec::ExecutionPolicy::MemoryModel::kPeakTaskTimesSlots;
  policy.block_bytes = options_.block_bytes;
  return policy;
}

Result<exec::Plan> HiveEngine::BuildPlan(const TaskOptions& options) const {
  if (hdfs_ == nullptr) {
    return Status::InvalidArgument("hive: no data attached");
  }
  exec::Plan plan;
  const std::string task(core::TaskName(options.task()));
  exec::KernelOp kernel;
  kernel.options = options;

  if (options.task() == core::TaskType::kSimilarity) {
    if (source_.layout == table::DataSource::Layout::kWholeFileDir) {
      // The distance computation cannot be expressed in one UDTF pass
      // (Section 5.4.2: similarity is skipped for the third format).
      return Status::NotSupported("hive: no similarity plan for format 3");
    }
    // The self-join runs as a second MapReduce job (its own job
    // overhead), and Hive cannot plan a map-side join here, so every
    // join task re-reads the full series table through the shuffle.
    kernel.shuffle_table_per_task = true;
    kernel.extra_overhead_seconds =
        options_.cluster.cost.hive_job_overhead_seconds;
    if (source_.layout == table::DataSource::Layout::kColumnFile) {
      // Columnar similarity decodes every block (the candidate set is
      // the whole table) and shuffles the readings into assembled series
      // for the self-join, exactly like format 1.
      plan.label = "hive/" + task + "/columnar";
      plan.stages.push_back(
          {"scan", planning::ColumnarReadingsScan(columnar_reader_,
                                                  hdfs_->ColumnarSplits(nullptr),
                                                  "hdfs-columnar")});
      exec::ShuffleOp shuffle;
      shuffle.strategy = exec::ShuffleOp::Strategy::kSortMerge;
      plan.stages.push_back({"shuffle", shuffle});
    } else if (source_.layout == table::DataSource::Layout::kSingleCsv) {
      plan.label = "hive/" + task + "/format1";
      plan.stages.push_back(
          {"scan", planning::SplitReadingsScan(hdfs_->SplittableSplits(),
                                               "hdfs-rows")});
      exec::ShuffleOp shuffle;
      shuffle.strategy = exec::ShuffleOp::Strategy::kSortMerge;
      plan.stages.push_back({"shuffle", shuffle});
    } else {
      plan.label = "hive/" + task + "/format2";
      plan.stages.push_back(
          {"scan", planning::SplitSeriesScan(hdfs_->SplittableSplits(),
                                             "hdfs-lines")});
    }
  } else {
    switch (source_.layout) {
      case table::DataSource::Layout::kColumnFile: {
        // Columnar map-only plan: one map task per compression block,
        // each decoding its own household range through the block index
        // and aggregating map-side (rows arrive household-grouped, so no
        // reduce phase is needed). A row-scoped task prunes non-matching
        // blocks before any task is created and the kept tasks decode
        // only the scoped rows, so the kernel's own scope is cleared.
        plan.label = "hive/" + task + "/columnar";
        kernel.fuse_scan = true;
        const bool prune = !options.scope().whole();
        storage::ScanScope scope;
        scope.row_begin = options.scope().begin;
        scope.row_count = options.scope().count;
        std::vector<cluster::ColumnarSplit> columnar_splits =
            hdfs_->ColumnarSplits(prune ? &scope : nullptr);
        if (prune) {
          internal::CountPrunedClusterBlocks(hdfs_->num_columnar_blocks(),
                                             columnar_splits.size());
          kernel.options.set_scope({});
        }
        plan.stages.push_back(
            {"scan", planning::ColumnarReadingsScan(columnar_reader_,
                                                    std::move(columnar_splits),
                                                    "hdfs-columnar")});
        break;
      }
      case table::DataSource::Layout::kSingleCsv: {
        // UDAF plan: map parses rows, a sort-merge shuffle groups them,
        // reduce assembles and computes.
        plan.label = "hive/" + task + "/format1";
        plan.stages.push_back(
            {"scan", planning::SplitReadingsScan(hdfs_->SplittableSplits(),
                                                 "hdfs-rows")});
        exec::ShuffleOp shuffle;
        shuffle.strategy = exec::ShuffleOp::Strategy::kSortMerge;
        plan.stages.push_back({"shuffle", shuffle});
        break;
      }
      case table::DataSource::Layout::kHouseholdLines: {
        // Generic-UDF, map-only plan: each line is one complete
        // household, computed in the same wave that scans it. The
        // temperature table ships raw (8 bytes per value) to every node
        // via the distributed cache.
        plan.label = "hive/" + task + "/format2";
        SM_ASSIGN_OR_RETURN(std::vector<double> sidecar,
                            internal::ReadTemperatureSidecar(
                                source_.files.front() + ".temperature"));
        kernel.fuse_scan = true;
        kernel.broadcast_bytes = static_cast<int64_t>(sidecar.size()) * 8;
        exec::ScanOp scan = planning::SplitSeriesScan(
            hdfs_->SplittableSplits(), "hdfs-lines");
        scan.shared_temperature =
            std::make_shared<const std::vector<double>>(std::move(sidecar));
        plan.stages.push_back({"scan", std::move(scan)});
        break;
      }
      case table::DataSource::Layout::kWholeFileDir:
      default: {
        if (options_.format3_style == Format3Style::kUdtf) {
          // UDTF plan over the non-splittable format: each map task owns
          // whole files, aggregates per household map-side (a built-in
          // combiner), and no reduce phase is needed.
          plan.label = "hive/" + task + "/format3-udtf";
          kernel.fuse_scan = true;
          plan.stages.push_back(
              {"scan", planning::SplitReadingsScan(hdfs_->WholeFileSplits(),
                                                   "hdfs-wholefile")});
        } else {
          // UDAF plan over whole files: shuffle like format 1.
          plan.label = "hive/" + task + "/format3-udaf";
          plan.stages.push_back(
              {"scan", planning::SplitReadingsScan(hdfs_->WholeFileSplits(),
                                                   "hdfs-wholefile")});
          exec::ShuffleOp shuffle;
          shuffle.strategy = exec::ShuffleOp::Strategy::kSortMerge;
          plan.stages.push_back({"shuffle", shuffle});
        }
        break;
      }
    }
  }

  plan.stages.push_back({"kernel", std::move(kernel)});
  plan.stages.push_back({"materialize", exec::MaterializeOp{}});
  plan.stages.push_back({"merge", exec::MergeOp{}});
  return plan;
}

Result<TaskRunMetrics> HiveEngine::RunTask(const exec::QueryContext& ctx,
                                           const TaskOptions& options,
                                           TaskResultSet* results) {
  SM_TRACE_SPAN("hive.task");
  SM_ASSIGN_OR_RETURN(exec::Plan plan, BuildPlan(options));
  SM_ASSIGN_OR_RETURN(exec::PlanRunMetrics run,
                      exec::PlanExecutor().Run(ctx, plan, policy(), results));
  return ToTaskMetrics(std::move(run));
}

}  // namespace smartmeter::engines
