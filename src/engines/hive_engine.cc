#include "engines/hive_engine.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "cluster/mapreduce.h"
#include "cluster/task_scheduler.h"
#include "core/similarity_task.h"
#include "engines/cluster_task_util.h"
#include "engines/engine_util.h"
#include "engines/result_serde.h"
#include "obs/trace.h"
#include "storage/csv.h"

namespace smartmeter::engines {

namespace {

using cluster::InputSplit;
using cluster::TaskStats;
using cluster::TaskWaveRunner;
using cluster::mapreduce::Emitter;
using cluster::mapreduce::JobOptions;
using internal::HourRecord;

JobOptions HiveJobOptions(const cluster::ClusterConfig& config) {
  JobOptions options;
  options.job_overhead_seconds = config.cost.hive_job_overhead_seconds;
  options.task_startup_seconds = config.cost.hive_task_startup_seconds;
  return options;
}

/// Map function shared by the UDAF plans: parse reading rows, emit
/// (household, reading).
Status MapParseRows(const InputSplit& split,
                    Emitter<int64_t, HourRecord>* emitter) {
  SM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                      cluster::ReadSplitLines(split));
  for (const std::string& line : lines) {
    SM_ASSIGN_OR_RETURN(storage::ReadingRow row,
                        storage::ParseReadingRow(line));
    emitter->Emit(row.household_id,
                  {row.hour, row.consumption, row.temperature});
  }
  return Status::OK();
}

}  // namespace

Result<double> HiveEngine::Attach(const DataSource& source) {
  SM_TRACE_SPAN("hive.attach");
  SM_RETURN_IF_ERROR(RequireLayout(source,
                                   {DataSource::Layout::kSingleCsv,
                                    DataSource::Layout::kHouseholdLines,
                                    DataSource::Layout::kWholeFileDir},
                                   name()));
  source_ = source;
  hdfs_ = std::make_unique<cluster::BlockStore>(options_.cluster.num_nodes,
                                                options_.block_bytes);
  SM_RETURN_IF_ERROR(hdfs_->AddFiles(source.files));
  return 0.0;  // HDFS registration; upload is outside the benchmark clock.
}

void HiveEngine::SetClusterConfig(const cluster::ClusterConfig& config) {
  options_.cluster = config;
  if (hdfs_ != nullptr) {
    // Re-place blocks for the new node count.
    auto store = std::make_unique<cluster::BlockStore>(config.num_nodes,
                                                       options_.block_bytes);
    (void)store->AddFiles(source_.files);
    hdfs_ = std::move(store);
  }
}

Result<TaskRunMetrics> HiveEngine::RunTask(const exec::QueryContext& ctx,
                                           const TaskOptions& options,
                                           TaskResultSet* results) {
  SM_TRACE_SPAN("hive.task");
  if (hdfs_ == nullptr) {
    return Status::InvalidArgument("hive: no data attached");
  }
  TaskResultSet local;
  if (results == nullptr) results = &local;
  if (options.task() == core::TaskType::kSimilarity) {
    if (source_.layout == DataSource::Layout::kWholeFileDir) {
      // The distance computation cannot be expressed in one UDTF pass
      // (Section 5.4.2: similarity is skipped for the third format).
      return Status::NotSupported("hive: no similarity plan for format 3");
    }
    return RunSimilarity(ctx, options, results);
  }
  switch (source_.layout) {
    case DataSource::Layout::kSingleCsv:
      return RunRowFormatTask(ctx, options, /*whole_files=*/false, results);
    case DataSource::Layout::kHouseholdLines:
      return RunHouseholdLineTask(ctx, options, results);
    case DataSource::Layout::kWholeFileDir:
      return options_.format3_style == Format3Style::kUdtf
                 ? RunUdtfTask(ctx, options, results)
                 : RunRowFormatTask(ctx, options, /*whole_files=*/true,
                                    results);
    default:
      return Status::NotSupported("hive: unsupported layout");
  }
}

Result<TaskRunMetrics> HiveEngine::RunRowFormatTask(
    const exec::QueryContext& ctx, const TaskOptions& options,
    bool whole_files, TaskResultSet* results) {
  const std::vector<InputSplit> splits =
      whole_files ? hdfs_->WholeFileSplits() : hdfs_->SplittableSplits();
  std::mutex out_mu;
  // UDAF plan: reduce assembles each household's series and runs the
  // algorithm. The reduce function appends straight into `results`.
  cluster::mapreduce::ReduceFn<int64_t, HourRecord, int> reduce =
      [&ctx, &options, &out_mu, results](int64_t household_id,
                                         std::vector<HourRecord>&& records,
                                         std::vector<int>*) -> Status {
    std::vector<double> consumption, temperature;
    internal::AssembleSeries(&records, &consumption, &temperature);
    TaskResultSet one;
    SM_RETURN_IF_ERROR(internal::ComputeHouseholdTask(
        ctx, options, household_id, consumption, temperature, &one));
    std::lock_guard<std::mutex> lock(out_mu);
    MergeResults(std::move(one), results);
    return Status::OK();
  };
  SM_ASSIGN_OR_RETURN(
      auto job,
      (cluster::mapreduce::RunMapReduce<int64_t, HourRecord, int>(
          splits, options_.cluster, HiveJobOptions(options_.cluster),
          MapParseRows, reduce)));
  SortResultsByHousehold(results);

  TaskRunMetrics metrics;
  metrics.seconds = job.simulated_seconds;
  metrics.simulated = true;
  metrics.modeled_memory_bytes =
      job.peak_task_bytes * options_.cluster.slots_per_node;
  return metrics;
}

Result<TaskRunMetrics> HiveEngine::RunHouseholdLineTask(
    const exec::QueryContext& ctx, const TaskOptions& options,
    TaskResultSet* results) {
  // Generic-UDF, map-only plan: each line is one complete household.
  SM_ASSIGN_OR_RETURN(std::vector<double> temperature,
                      internal::ReadTemperatureSidecar(
                          source_.files.front() + ".temperature"));
  const std::vector<InputSplit> splits = hdfs_->SplittableSplits();
  std::mutex out_mu;
  cluster::mapreduce::MapFn<int64_t, int> map =
      [&](const InputSplit& split, Emitter<int64_t, int>* emitter)
      -> Status {
    SM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        cluster::ReadSplitLines(split));
    TaskResultSet local;
    for (const std::string& line : lines) {
      SM_ASSIGN_OR_RETURN(internal::HouseholdLine parsed,
                          internal::ParseHouseholdLine(line));
      SM_RETURN_IF_ERROR(internal::ComputeHouseholdTask(
          ctx, options, parsed.household_id, parsed.consumption, temperature,
          &local));
      emitter->Emit(parsed.household_id, 0);
    }
    std::lock_guard<std::mutex> lock(out_mu);
    MergeResults(std::move(local), results);
    return Status::OK();
  };
  SM_ASSIGN_OR_RETURN(auto job,
                      (cluster::mapreduce::RunMapOnly<int64_t, int>(
                          splits, options_.cluster,
                          HiveJobOptions(options_.cluster), map)));
  SortResultsByHousehold(results);

  TaskRunMetrics metrics;
  // Distributed-cache shipment of the temperature table to every node.
  const double temp_mb = static_cast<double>(temperature.size()) * 8.0 /
                         (1024.0 * 1024.0);
  metrics.seconds =
      job.simulated_seconds +
      temp_mb * options_.cluster.cost.broadcast_seconds_per_mb_per_node *
          options_.cluster.num_nodes;
  metrics.simulated = true;
  metrics.modeled_memory_bytes =
      job.peak_task_bytes * options_.cluster.slots_per_node;
  return metrics;
}

Result<TaskRunMetrics> HiveEngine::RunUdtfTask(const exec::QueryContext& ctx,
                                               const TaskOptions& options,
                                               TaskResultSet* results) {
  // UDTF plan over the non-splittable input format: each map task owns
  // whole files, so it can aggregate per household map-side (a built-in
  // combiner) and no reduce phase is needed.
  const std::vector<InputSplit> splits = hdfs_->WholeFileSplits();
  std::mutex out_mu;
  cluster::mapreduce::MapFn<int64_t, int> map =
      [&](const InputSplit& split, Emitter<int64_t, int>* emitter)
      -> Status {
    SM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        cluster::ReadSplitLines(split));
    // Group rows by household. Files are written household-contiguous,
    // but grouping does not rely on it.
    std::map<int64_t, std::vector<HourRecord>> groups;
    for (const std::string& line : lines) {
      SM_ASSIGN_OR_RETURN(storage::ReadingRow row,
                          storage::ParseReadingRow(line));
      groups[row.household_id].push_back(
          {row.hour, row.consumption, row.temperature});
    }
    TaskResultSet local;
    for (auto& [household_id, records] : groups) {
      std::vector<double> consumption, temperature;
      internal::AssembleSeries(&records, &consumption, &temperature);
      SM_RETURN_IF_ERROR(internal::ComputeHouseholdTask(
          ctx, options, household_id, consumption, temperature, &local));
      emitter->Emit(household_id, 0);
    }
    std::lock_guard<std::mutex> lock(out_mu);
    MergeResults(std::move(local), results);
    return Status::OK();
  };
  SM_ASSIGN_OR_RETURN(auto job,
                      (cluster::mapreduce::RunMapOnly<int64_t, int>(
                          splits, options_.cluster,
                          HiveJobOptions(options_.cluster), map)));
  SortResultsByHousehold(results);

  TaskRunMetrics metrics;
  metrics.seconds = job.simulated_seconds;
  metrics.simulated = true;
  metrics.modeled_memory_bytes =
      job.peak_task_bytes * options_.cluster.slots_per_node;
  return metrics;
}

Result<TaskRunMetrics> HiveEngine::RunSimilarity(const exec::QueryContext& ctx,
                                                 const TaskOptions& options,
                                                 TaskResultSet* results) {
  const auto& similarity = options.Get<SimilarityTaskOptions>();
  // Stage 1: assemble each household's consumption series.
  double stage1_seconds = 0.0;
  int64_t stage1_peak = 0;
  std::vector<std::pair<int64_t, std::vector<double>>> series_table;
  if (source_.layout == DataSource::Layout::kSingleCsv) {
    std::mutex mu;
    cluster::mapreduce::ReduceFn<int64_t, HourRecord,
                                 std::pair<int64_t, std::vector<double>>>
        reduce = [&mu](int64_t household_id,
                       std::vector<HourRecord>&& records,
                       std::vector<std::pair<int64_t, std::vector<double>>>*
                           out) -> Status {
      std::vector<double> consumption, temperature;
      internal::AssembleSeries(&records, &consumption, &temperature);
      (void)mu;
      out->emplace_back(household_id, std::move(consumption));
      return Status::OK();
    };
    SM_ASSIGN_OR_RETURN(
        auto job,
        (cluster::mapreduce::RunMapReduce<
            int64_t, HourRecord, std::pair<int64_t, std::vector<double>>>(
            hdfs_->SplittableSplits(), options_.cluster,
            HiveJobOptions(options_.cluster), MapParseRows, reduce)));
    series_table = std::move(job.outputs);
    stage1_seconds = job.simulated_seconds;
    stage1_peak = job.peak_task_bytes;
  } else {
    // Format 2: series arrive whole; a map-only scan collects them.
    std::mutex mu;
    std::vector<std::pair<int64_t, std::vector<double>>> collected;
    cluster::mapreduce::MapFn<int64_t, int> map =
        [&](const InputSplit& split, Emitter<int64_t, int>* emitter)
        -> Status {
      SM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                          cluster::ReadSplitLines(split));
      for (const std::string& line : lines) {
        SM_ASSIGN_OR_RETURN(internal::HouseholdLine parsed,
                            internal::ParseHouseholdLine(line));
        emitter->Emit(parsed.household_id, 0);
        std::lock_guard<std::mutex> lock(mu);
        collected.emplace_back(parsed.household_id,
                               std::move(parsed.consumption));
      }
      return Status::OK();
    };
    SM_ASSIGN_OR_RETURN(auto job,
                        (cluster::mapreduce::RunMapOnly<int64_t, int>(
                            hdfs_->SplittableSplits(), options_.cluster,
                            HiveJobOptions(options_.cluster), map)));
    series_table = std::move(collected);
    stage1_seconds = job.simulated_seconds;
    stage1_peak = job.peak_task_bytes;
  }
  std::sort(series_table.begin(), series_table.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (similarity.households > 0 &&
      series_table.size() > static_cast<size_t>(similarity.households)) {
    series_table.resize(static_cast<size_t>(similarity.households));
  }

  // Stage 2: the self-join. Hive's plan cannot use a map-side join here
  // (Section 5.4.2), so every join task receives a full copy of the
  // series table through the shuffle -- the dominant cost.
  SM_ASSIGN_OR_RETURN(const table::ColumnarBatch series_batch,
                      internal::BatchFromSeriesTable(series_table));
  const std::vector<core::SeriesView> views =
      core::BuildSeriesViews(series_batch);
  int64_t table_bytes = 0;
  for (const auto& [id, series] : series_table) {
    table_bytes += 24 + static_cast<int64_t>(series.size()) * 8;
  }
  const std::vector<double> norms = core::ComputeNorms(views);

  const int join_tasks = std::max(1, options_.cluster.total_slots());
  const size_t n = views.size();
  std::vector<std::vector<core::SimilarityResult>> partials(
      static_cast<size_t>(join_tasks));
  std::vector<TaskWaveRunner::TaskFn> tasks;
  tasks.reserve(static_cast<size_t>(join_tasks));
  for (int t = 0; t < join_tasks; ++t) {
    tasks.push_back([&, t](TaskStats* stats) -> Status {
      const size_t begin = n * static_cast<size_t>(t) /
                           static_cast<size_t>(join_tasks);
      const size_t end = n * (static_cast<size_t>(t) + 1) /
                         static_cast<size_t>(join_tasks);
      if (begin < end) {
        SM_ASSIGN_OR_RETURN(
            std::vector<core::SimilarityResult> chunk,
            core::ComputeSimilarityTopKRange(views, norms, begin, end,
                                             similarity.search, &ctx));
        partials[static_cast<size_t>(t)] = std::move(chunk);
      }
      stats->shuffle_bytes = table_bytes;  // Full table to every task.
      return Status::OK();
    });
  }
  TaskWaveRunner runner(options_.cluster,
                        options_.cluster.cost.hive_task_startup_seconds);
  SM_ASSIGN_OR_RETURN(double join_makespan, runner.Run(&tasks));

  std::vector<core::SimilarityResult>& out =
      results->Mutable<core::SimilarityResult>();
  for (auto& chunk : partials) {
    for (auto& r : chunk) out.push_back(std::move(r));
  }
  SortResultsByHousehold(results);

  TaskRunMetrics metrics;
  metrics.seconds = stage1_seconds +
                    options_.cluster.cost.hive_job_overhead_seconds +
                    join_makespan;
  metrics.simulated = true;
  metrics.modeled_memory_bytes =
      std::max(stage1_peak, table_bytes) * options_.cluster.slots_per_node;
  return metrics;
}

}  // namespace smartmeter::engines
