#ifndef SMARTMETER_DATAGEN_SEED_GENERATOR_H_
#define SMARTMETER_DATAGEN_SEED_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "datagen/temperature_model.h"
#include "timeseries/dataset.h"

namespace smartmeter::datagen {

/// A household behaviour archetype used to synthesize the "real" seed
/// data set this reproduction cannot obtain (the paper's 27,300-consumer
/// Ontario data set is private). Each archetype is a distinct daily
/// activity shape plus thermal-response ranges; sampled households jitter
/// around the archetype, so a population contains recognizable clusters —
/// exactly the structure the paper's generator extracts with k-means.
struct HouseholdArchetype {
  std::string name;
  /// Relative activity level per hour of day; scaled per household.
  double activity_shape[24];
  /// Uniform ranges the per-household parameters are drawn from.
  double activity_scale_min, activity_scale_max;    // kWh at shape == 1.
  double base_load_min, base_load_max;              // Always-on kWh.
  double heating_gradient_min, heating_gradient_max;  // kWh per deg C.
  double cooling_gradient_min, cooling_gradient_max;  // kWh per deg C.
  double heating_balance_c;  // Heating kicks in below this temperature.
  double cooling_balance_c;  // Cooling kicks in above this temperature.
  /// Multiplier applied to activity load on weekends.
  double weekend_factor;
  /// Share of this archetype in the population (weights normalized).
  double population_weight;
};

/// The five built-in archetypes (early riser, nine-to-five commuter,
/// night owl, home worker, retired couple).
const std::vector<HouseholdArchetype>& BuiltinArchetypes();

struct SeedGeneratorOptions {
  int num_households = 200;
  int hours = 365 * 24;
  /// Standard deviation of per-reading appliance noise in kWh.
  double noise_sigma = 0.08;
  uint64_t seed = 7;
  TemperatureModelOptions temperature;
};

/// Generates a synthetic seed data set with realistic structure: each
/// household is an archetype sample whose hourly load is
///   activity(hour, weekday) + base + heating/cooling response(T) + noise.
/// Household ids are 1..n. Deterministic in the seed.
Result<MeterDataset> GenerateSeedDataset(const SeedGeneratorOptions& options);

}  // namespace smartmeter::datagen

#endif  // SMARTMETER_DATAGEN_SEED_GENERATOR_H_
