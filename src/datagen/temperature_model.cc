#include "datagen/temperature_model.h"

#include <cmath>

#include "common/rng.h"
#include "timeseries/calendar.h"

namespace smartmeter::datagen {

std::vector<double> GenerateTemperatureSeries(
    int hours, const TemperatureModelOptions& options) {
  std::vector<double> series;
  series.reserve(static_cast<size_t>(hours));
  Rng rng(options.seed);
  double weather = 0.0;
  for (int t = 0; t < hours; ++t) {
    const int day = HourlyCalendar::DayOfYear(t % kHoursPerYear) +
                    kDaysPerYear * (t / kHoursPerYear);
    const int hour = HourlyCalendar::HourOfDay(t);
    // Annual cycle: minimum at coldest_day.
    const double annual_phase = 2.0 * M_PI *
                                static_cast<double>(day - options.coldest_day) /
                                static_cast<double>(kDaysPerYear);
    const double annual =
        options.annual_mean_c - options.annual_amplitude_c *
                                    std::cos(annual_phase);
    // Diurnal cycle: maximum at warmest_hour.
    const double diurnal_phase = 2.0 * M_PI *
                                 static_cast<double>(hour -
                                                     options.warmest_hour) /
                                 static_cast<double>(kHoursPerDay);
    const double diurnal =
        options.diurnal_amplitude_c * std::cos(diurnal_phase);
    // Synoptic noise: slow AR(1) so fronts last days, not hours.
    weather = options.weather_persistence * weather +
              rng.Gaussian(0.0, options.weather_sigma_c);
    series.push_back(annual + diurnal + weather);
  }
  return series;
}

}  // namespace smartmeter::datagen
