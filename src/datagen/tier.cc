#include "datagen/tier.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <span>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "datagen/generator.h"
#include "datagen/seed_generator.h"
#include "storage/column_store.h"

namespace smartmeter::datagen {

namespace {

// Households synthesized per generator call while streaming a tier. The
// chunk size is part of the tier's definition: chunk i draws from seed
// mix(spec.seed, i), so the same spec produces the same bytes however
// large the tier is.
constexpr int kTierChunkHouseholds = 4096;

// Households in the small "real" seed the generator trains on.
constexpr int kTierSeedHouseholds = 96;

// The CSV writers print consumption with %.4f and temperature with
// %.2f; quantizing to the same grid keeps SMCOLV2's decimal fixed-point
// codec lossless on tier data.
double QuantizeConsumption(double v) {
  return static_cast<double>(std::llround(v * 1e4)) / 1e4;
}
double QuantizeTemperature(double v) {
  return static_cast<double>(std::llround(v * 1e2)) / 1e2;
}

uint64_t ChunkSeed(uint64_t base, int chunk) {
  // SplitMix64-style mix so chunk streams are decorrelated.
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(chunk + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Streaming SMCOLV1 writer (the V1 layout is frozen: 24-byte header,
// ids, household-major consumption, temperature — see ColumnStore).
// ColumnStore::WriteFile needs the whole dataset in memory; tiers
// stream, so the fixed layout is emitted section by section here.
class V1StreamWriter {
 public:
  explicit V1StreamWriter(std::string path) : path_(std::move(path)) {}
  ~V1StreamWriter() {
    if (file_ != nullptr) {
      std::fclose(file_);
      std::remove(path_.c_str());
    }
  }

  Status Open(uint64_t households, uint64_t hours) {
    file_ = std::fopen(path_.c_str(), "wb");
    if (file_ == nullptr) {
      return Status::IOError("cannot create " + path_);
    }
    hours_ = hours;
    char magic[8] = {'S', 'M', 'C', 'O', 'L', 'V', '1', '\0'};
    SM_RETURN_IF_ERROR(Write(magic, sizeof(magic)));
    SM_RETURN_IF_ERROR(Write(&households, sizeof(households)));
    SM_RETURN_IF_ERROR(Write(&hours, sizeof(hours)));
    // The id section is fully determined by the count (tier households
    // are 1..n), so it can be written before any series is generated.
    for (uint64_t i = 0; i < households; ++i) {
      const int64_t id = static_cast<int64_t>(i + 1);
      SM_RETURN_IF_ERROR(Write(&id, sizeof(id)));
    }
    return Status::OK();
  }

  Status AppendHousehold(std::span<const double> consumption) {
    if (consumption.size() != hours_) {
      return Status::InvalidArgument("tier series length mismatch");
    }
    return Write(consumption.data(), consumption.size() * sizeof(double));
  }

  Status Finish(std::span<const double> temperature) {
    if (temperature.size() != hours_) {
      return Status::InvalidArgument("tier temperature length mismatch");
    }
    SM_RETURN_IF_ERROR(
        Write(temperature.data(), temperature.size() * sizeof(double)));
    if (std::fclose(file_) != 0) {
      file_ = nullptr;
      std::remove(path_.c_str());
      return Status::IOError("cannot finish " + path_);
    }
    file_ = nullptr;
    return Status::OK();
  }

 private:
  Status Write(const void* data, size_t bytes) {
    if (std::fwrite(data, 1, bytes, file_) != bytes) {
      return Status::IOError("short write to " + path_);
    }
    return Status::OK();
  }

  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t hours_ = 0;
};

Status GenerateTier(const TierSpec& spec, const std::string& path) {
  // Train the Section 4 generator once on a small synthetic seed drawn
  // from the same RNG seed, then synthesize the tier chunk by chunk. The
  // seed always spans at least a year: feature extraction (the 3-line
  // fit) needs the full seasonal temperature range, while Generate()
  // works against a temperature window of any length.
  SeedGeneratorOptions seed_options;
  seed_options.num_households = kTierSeedHouseholds;
  seed_options.hours = std::max(spec.hours, 365 * 24);
  seed_options.seed = spec.seed;
  SM_ASSIGN_OR_RETURN(MeterDataset seed_dataset,
                      GenerateSeedDataset(seed_options));
  SM_ASSIGN_OR_RETURN(
      DataGenerator generator,
      DataGenerator::Train(seed_dataset, DataGeneratorOptions{}));

  std::vector<double> temperature(
      seed_dataset.temperature().begin(),
      seed_dataset.temperature().begin() + spec.hours);
  for (double& v : temperature) v = QuantizeTemperature(v);

  storage::ColumnFileWriter v2(path);
  V1StreamWriter v1(path);
  if (spec.format == 2) {
    SM_RETURN_IF_ERROR(v2.Open(static_cast<size_t>(spec.hours)));
  } else {
    SM_RETURN_IF_ERROR(v1.Open(static_cast<uint64_t>(spec.households),
                               static_cast<uint64_t>(spec.hours)));
  }

  for (int begin = 0, chunk = 0; begin < spec.households;
       begin += kTierChunkHouseholds, ++chunk) {
    const int count =
        std::min(kTierChunkHouseholds, spec.households - begin);
    SM_ASSIGN_OR_RETURN(
        MeterDataset generated,
        generator.Generate(count, temperature, ChunkSeed(spec.seed, chunk),
                           /*first_household_id=*/begin + 1));
    for (const ConsumerSeries& consumer : generated.consumers()) {
      std::vector<double> quantized = consumer.consumption;
      for (double& v : quantized) v = QuantizeConsumption(v);
      if (spec.format == 2) {
        SM_RETURN_IF_ERROR(
            v2.AppendHousehold(consumer.household_id, quantized));
      } else {
        SM_RETURN_IF_ERROR(v1.AppendHousehold(quantized));
      }
    }
  }
  if (spec.format == 2) return v2.Finish(temperature);
  return v1.Finish(temperature);
}

}  // namespace

std::string TierFileName(const TierSpec& spec) {
  return StringPrintf("tier-%llu-%dx%d-v%d.smcol",
                      static_cast<unsigned long long>(spec.seed),
                      spec.households, spec.hours, spec.format);
}

Result<std::string> EnsureTierColumnFile(const TierSpec& spec,
                                         const std::string& cache_dir) {
  if (spec.households < 1 || spec.hours < 1 ||
      (spec.format != 1 && spec.format != 2)) {
    return Status::InvalidArgument("invalid tier spec");
  }
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  if (ec) {
    return Status::IOError("cannot create tier cache dir " + cache_dir);
  }
  const std::string path = cache_dir + "/" + TierFileName(spec);
  if (std::filesystem::exists(path, ec)) {
    // Cached hit: the name encodes the full spec, so a sniffable file of
    // the right generation is the right file.
    Result<int> format = storage::SniffColumnFileFormat(path);
    if (format.ok() && *format == spec.format) return path;
    std::filesystem::remove(path, ec);
  }
  SM_RETURN_IF_ERROR(GenerateTier(spec, path));
  return path;
}

}  // namespace smartmeter::datagen
