#ifndef SMARTMETER_DATAGEN_GENERATOR_H_
#define SMARTMETER_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/par_task.h"
#include "core/three_line_task.h"
#include "stats/kmeans.h"
#include "timeseries/dataset.h"

namespace smartmeter::datagen {

/// Per-seed-consumer features extracted during the generator's
/// pre-processing step (Section 4 / Figure 3): the PAR daily profile and
/// the 3-line thermal response.
struct ConsumerFeatures {
  int64_t household_id = 0;
  /// 24-value temperature-independent daily activity profile.
  std::vector<double> profile;
  double heating_gradient = 0.0;   // kWh per degree C below balance.
  double cooling_gradient = 0.0;   // kWh per degree C above balance.
  double heating_balance_c = 12.0;  // Breakpoint of the left 90th line.
  double cooling_balance_c = 18.0;  // Breakpoint of the right 90th line.
};

struct DataGeneratorOptions {
  /// Number of k-means clusters of daily profiles.
  int num_clusters = 8;
  /// Standard deviation of the Gaussian white-noise component (kWh).
  double noise_sigma = 0.1;
  core::ParOptions par;
  core::ThreeLineOptions three_line;
  stats::KMeansOptions kmeans;
};

/// The paper's data generator. Train() disaggregates every consumer of a
/// small seed data set into an activity profile and a thermal response and
/// clusters the profiles; Generate() re-aggregates randomly chosen pieces
/// into any number of new, realistic consumers:
///
///   reading = cluster-centroid activity load at that hour
///           + heating/cooling gradient of a random cluster member
///             applied to the input temperature
///           + Gaussian white noise.
class DataGenerator {
 public:
  /// Extracts features from `seed` and clusters the activity profiles.
  /// Consumers whose features cannot be computed (e.g. too little data)
  /// are skipped; training fails only if fewer than two consumers remain.
  static Result<DataGenerator> Train(const MeterDataset& seed,
                                     const DataGeneratorOptions& options);

  /// Synthesizes `num_households` new consumers against `temperature`.
  /// Household ids are first_household_id, first_household_id + 1, ...
  /// Deterministic in `seed`.
  Result<MeterDataset> Generate(int num_households,
                                std::vector<double> temperature,
                                uint64_t seed,
                                int64_t first_household_id = 1) const;

  const std::vector<ConsumerFeatures>& features() const { return features_; }
  const stats::KMeansResult& clusters() const { return clusters_; }
  const DataGeneratorOptions& options() const { return options_; }

  /// Members (indexes into features()) of each cluster.
  const std::vector<std::vector<int>>& cluster_members() const {
    return cluster_members_;
  }

 private:
  DataGenerator() = default;

  DataGeneratorOptions options_;
  std::vector<ConsumerFeatures> features_;
  stats::KMeansResult clusters_;
  std::vector<std::vector<int>> cluster_members_;
};

/// Extracts the generator features of a single consumer (exposed for
/// tests and the consumer-feedback example).
Result<ConsumerFeatures> ExtractConsumerFeatures(
    const ConsumerSeries& consumer, const std::vector<double>& temperature,
    const DataGeneratorOptions& options);

}  // namespace smartmeter::datagen

#endif  // SMARTMETER_DATAGEN_GENERATOR_H_
