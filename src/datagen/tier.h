#ifndef SMARTMETER_DATAGEN_TIER_H_
#define SMARTMETER_DATAGEN_TIER_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace smartmeter::datagen {

/// One cached large-tier column file: a deterministic function of
/// (seed, households, hours, format). Tiers exist so storage benches can
/// sweep realistic sizes (100k households locally, 1M on CI) without
/// regenerating data on every run — the file name doubles as the CI
/// cache key.
struct TierSpec {
  uint64_t seed = 7;
  int households = 100000;
  int hours = 24 * 30;
  /// 1 writes SMCOLV1, 2 writes SMCOLV2.
  int format = 2;
};

/// The cache key / file name of a tier: "tier-<seed>-<households>x<hours>
/// -v<format>.smcol". Same spec, same bytes, so cached files are safe to
/// reuse across runs and CI jobs.
std::string TierFileName(const TierSpec& spec);

/// Ensures the tier's column file exists under `cache_dir` (created if
/// needed) and returns its path. A present file whose header sniffs to
/// the requested format is reused as-is; otherwise the tier is generated
/// with the paper's Section 4 generator — trained once on a small
/// synthetic seed, then synthesized and streamed to disk in fixed-size
/// household chunks, so a 1M-household tier never materializes in memory.
///
/// All values are quantized to the CSV writers' precision (consumption
/// %.4f, temperature %.2f) before writing: the tier then measures the
/// compression the format achieves on data it could actually have
/// ingested, and SMCOLV2's decimal fixed-point codec stays lossless.
Result<std::string> EnsureTierColumnFile(const TierSpec& spec,
                                         const std::string& cache_dir);

}  // namespace smartmeter::datagen

#endif  // SMARTMETER_DATAGEN_TIER_H_
