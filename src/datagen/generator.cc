#include "datagen/generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "timeseries/calendar.h"

namespace smartmeter::datagen {

Result<ConsumerFeatures> ExtractConsumerFeatures(
    const ConsumerSeries& consumer, const std::vector<double>& temperature,
    const DataGeneratorOptions& options) {
  ConsumerFeatures features;
  features.household_id = consumer.household_id;

  SM_ASSIGN_OR_RETURN(
      core::DailyProfileResult profile,
      core::ComputeDailyProfile(consumer.consumption, temperature,
                                consumer.household_id, options.par));
  features.profile = std::move(profile.profile);

  SM_ASSIGN_OR_RETURN(
      core::ThreeLineResult lines,
      core::ComputeThreeLine(consumer.consumption, temperature,
                             consumer.household_id, options.three_line));
  // Gradients can come out slightly negative for flat consumers; the
  // generator treats those as "no thermal response".
  features.heating_gradient = std::max(0.0, lines.heating_gradient);
  features.cooling_gradient = std::max(0.0, lines.cooling_gradient);
  features.heating_balance_c = lines.p90.left.t_high;
  features.cooling_balance_c = lines.p90.mid.t_high;

  // Refine the activity profile by subtracting the fitted piecewise
  // thermal response from the raw readings (Figure 2's decomposition).
  // The PAR profile alone removes only the *linear* temperature effect,
  // so re-adding the donor's gradients in Generate() would double-count
  // part of the heating/cooling load and dilute seasonality.
  std::vector<double> activity(kHoursPerDay, 0.0);
  std::vector<int> counts(kHoursPerDay, 0);
  for (size_t t = 0; t < consumer.consumption.size(); ++t) {
    const double temp = temperature[t];
    const double thermal =
        features.heating_gradient *
            std::max(0.0, features.heating_balance_c - temp) +
        features.cooling_gradient *
            std::max(0.0, temp - features.cooling_balance_c);
    const int hour = static_cast<int>(t % kHoursPerDay);
    activity[static_cast<size_t>(hour)] +=
        consumer.consumption[t] - thermal;
    ++counts[static_cast<size_t>(hour)];
  }
  for (int h = 0; h < kHoursPerDay; ++h) {
    features.profile[static_cast<size_t>(h)] = std::max(
        0.0, activity[static_cast<size_t>(h)] /
                 std::max(1, counts[static_cast<size_t>(h)]));
  }
  return features;
}

Result<DataGenerator> DataGenerator::Train(
    const MeterDataset& seed, const DataGeneratorOptions& options) {
  SM_RETURN_IF_ERROR(seed.Validate());
  if (options.num_clusters < 1) {
    return Status::InvalidArgument("generator: num_clusters must be >= 1");
  }
  if (options.noise_sigma < 0.0) {
    return Status::InvalidArgument("generator: noise_sigma must be >= 0");
  }

  DataGenerator generator;
  generator.options_ = options;
  size_t skipped = 0;
  for (const ConsumerSeries& consumer : seed.consumers()) {
    Result<ConsumerFeatures> features =
        ExtractConsumerFeatures(consumer, seed.temperature(), options);
    if (!features.ok()) {
      ++skipped;
      continue;
    }
    generator.features_.push_back(std::move(*features));
  }
  if (skipped > 0) {
    SM_LOG(Warning) << "data generator skipped " << skipped
                    << " seed consumers with unusable features";
  }
  if (generator.features_.size() < 2) {
    return Status::InvalidArgument(
        "generator: fewer than two usable seed consumers");
  }

  std::vector<std::vector<double>> profiles;
  profiles.reserve(generator.features_.size());
  for (const ConsumerFeatures& f : generator.features_) {
    profiles.push_back(f.profile);
  }
  SM_ASSIGN_OR_RETURN(
      generator.clusters_,
      stats::KMeans(profiles, options.num_clusters, options.kmeans));

  generator.cluster_members_.assign(generator.clusters_.centroids.size(),
                                    {});
  for (size_t i = 0; i < generator.clusters_.assignment.size(); ++i) {
    generator.cluster_members_[static_cast<size_t>(
                                   generator.clusters_.assignment[i])]
        .push_back(static_cast<int>(i));
  }
  // Drop empty clusters so Generate() can sample members uniformly.
  std::vector<std::vector<int>> non_empty;
  std::vector<std::vector<double>> kept_centroids;
  for (size_t c = 0; c < generator.cluster_members_.size(); ++c) {
    if (!generator.cluster_members_[c].empty()) {
      non_empty.push_back(std::move(generator.cluster_members_[c]));
      kept_centroids.push_back(std::move(generator.clusters_.centroids[c]));
    }
  }
  generator.cluster_members_ = std::move(non_empty);
  generator.clusters_.centroids = std::move(kept_centroids);
  return generator;
}

Result<MeterDataset> DataGenerator::Generate(
    int num_households, std::vector<double> temperature, uint64_t seed,
    int64_t first_household_id) const {
  if (num_households < 0) {
    return Status::InvalidArgument("generator: negative household count");
  }
  if (temperature.empty()) {
    return Status::InvalidArgument("generator: empty temperature series");
  }
  const size_t hours = temperature.size();
  MeterDataset dataset;
  dataset.SetTemperature(std::move(temperature));
  const std::vector<double>& temp = dataset.temperature();

  Rng master(seed);
  const size_t num_clusters = clusters_.centroids.size();
  for (int n = 0; n < num_households; ++n) {
    Rng rng = master.Split();
    // Step 1 (Figure 3): a random activity-profile cluster; its centroid
    // supplies the daily activity load.
    const size_t cluster = rng.UniformInt(num_clusters);
    const std::vector<double>& activity = clusters_.centroids[cluster];
    // Step 2: a random member of that cluster supplies the gradients.
    const std::vector<int>& members = cluster_members_[cluster];
    const ConsumerFeatures& donor =
        features_[static_cast<size_t>(members[rng.UniformInt(
            members.size())])];

    ConsumerSeries series;
    series.household_id = first_household_id + n;
    series.consumption.reserve(hours);
    for (size_t t = 0; t < hours; ++t) {
      const int hour = HourlyCalendar::HourOfDay(static_cast<int>(
          t % static_cast<size_t>(kHoursPerYear)));
      const double heating =
          donor.heating_gradient *
          std::max(0.0, donor.heating_balance_c - temp[t]);
      const double cooling =
          donor.cooling_gradient *
          std::max(0.0, temp[t] - donor.cooling_balance_c);
      const double noise = rng.Gaussian(0.0, options_.noise_sigma);
      series.consumption.push_back(std::max(
          0.0, activity[static_cast<size_t>(hour)] + heating + cooling +
                   noise));
    }
    dataset.AddConsumer(std::move(series));
  }
  SM_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace smartmeter::datagen
