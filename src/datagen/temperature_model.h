#ifndef SMARTMETER_DATAGEN_TEMPERATURE_MODEL_H_
#define SMARTMETER_DATAGEN_TEMPERATURE_MODEL_H_

#include <cstdint>
#include <vector>

namespace smartmeter::datagen {

/// Parameters of the synthetic outdoor-temperature model. Defaults are
/// fitted by eye to a southern-Ontario climate (the origin of the paper's
/// real data set): cold winters around -10 C, warm summers around 25 C.
struct TemperatureModelOptions {
  double annual_mean_c = 7.5;
  /// Half the summer-winter swing of the daily mean.
  double annual_amplitude_c = 14.0;
  /// Day of year (0-based) with the lowest daily mean; mid January.
  int coldest_day = 15;
  /// Half the night-day swing within one day.
  double diurnal_amplitude_c = 4.0;
  /// Hour of day of the daily maximum.
  int warmest_hour = 15;
  /// AR(1) persistence of the synoptic (weather-front) noise.
  double weather_persistence = 0.98;
  /// Innovation standard deviation of the synoptic noise, degrees C.
  double weather_sigma_c = 0.6;
  uint64_t seed = 20150323;  // EDBT 2015 opening day.
};

/// Produces `hours` hourly outdoor temperatures: annual sinusoid +
/// diurnal sinusoid + AR(1) weather noise. Deterministic in the seed.
std::vector<double> GenerateTemperatureSeries(
    int hours, const TemperatureModelOptions& options = {});

}  // namespace smartmeter::datagen

#endif  // SMARTMETER_DATAGEN_TEMPERATURE_MODEL_H_
