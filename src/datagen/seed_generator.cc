#include "datagen/seed_generator.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "timeseries/calendar.h"

namespace smartmeter::datagen {

namespace {

// Hour-by-hour activity shapes. Values are relative; a household scales
// the whole shape by its activity_scale draw.
//                         0    1    2    3    4    5    6    7    8    9   10   11   12   13   14   15   16   17   18   19   20   21   22   23
constexpr double kEarlyRiser[24] = {
    0.1, 0.1, 0.1, 0.1, 0.2, 0.6, 1.0, 0.9, 0.5, 0.3, 0.3, 0.3,
    0.4, 0.3, 0.3, 0.4, 0.6, 0.9, 1.0, 0.8, 0.6, 0.4, 0.2, 0.1};
constexpr double kNineToFive[24] = {
    0.1, 0.1, 0.1, 0.1, 0.1, 0.2, 0.5, 0.8, 0.4, 0.2, 0.2, 0.2,
    0.2, 0.2, 0.2, 0.2, 0.3, 0.7, 1.0, 1.0, 0.9, 0.7, 0.4, 0.2};
constexpr double kNightOwl[24] = {
    0.7, 0.5, 0.4, 0.2, 0.1, 0.1, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
    0.6, 0.5, 0.5, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.0, 1.0, 0.9};
constexpr double kHomeWorker[24] = {
    0.1, 0.1, 0.1, 0.1, 0.1, 0.2, 0.4, 0.7, 0.8, 0.9, 1.0, 0.9,
    1.0, 0.9, 0.9, 0.8, 0.8, 0.9, 1.0, 0.9, 0.7, 0.5, 0.3, 0.2};
constexpr double kRetired[24] = {
    0.1, 0.1, 0.1, 0.1, 0.1, 0.3, 0.6, 0.8, 0.8, 0.7, 0.7, 0.8,
    0.9, 0.7, 0.6, 0.6, 0.7, 0.8, 0.9, 0.8, 0.6, 0.4, 0.2, 0.1};

HouseholdArchetype MakeArchetype(const std::string& name,
                                 const double shape[24],
                                 double scale_min, double scale_max,
                                 double base_min, double base_max,
                                 double heat_min, double heat_max,
                                 double cool_min, double cool_max,
                                 double heat_balance, double cool_balance,
                                 double weekend_factor, double weight) {
  HouseholdArchetype a;
  a.name = name;
  std::copy(shape, shape + 24, a.activity_shape);
  a.activity_scale_min = scale_min;
  a.activity_scale_max = scale_max;
  a.base_load_min = base_min;
  a.base_load_max = base_max;
  a.heating_gradient_min = heat_min;
  a.heating_gradient_max = heat_max;
  a.cooling_gradient_min = cool_min;
  a.cooling_gradient_max = cool_max;
  a.heating_balance_c = heat_balance;
  a.cooling_balance_c = cool_balance;
  a.weekend_factor = weekend_factor;
  a.population_weight = weight;
  return a;
}

}  // namespace

const std::vector<HouseholdArchetype>& BuiltinArchetypes() {
  static const std::vector<HouseholdArchetype>& archetypes =
      *new std::vector<HouseholdArchetype>{
          MakeArchetype("early_riser", kEarlyRiser, 0.5, 1.2, 0.05, 0.25,
                        0.03, 0.12, 0.02, 0.10, 12.0, 18.0, 1.15, 0.20),
          MakeArchetype("nine_to_five", kNineToFive, 0.6, 1.4, 0.05, 0.30,
                        0.02, 0.10, 0.03, 0.15, 11.0, 19.0, 1.35, 0.30),
          MakeArchetype("night_owl", kNightOwl, 0.4, 1.0, 0.10, 0.35,
                        0.02, 0.08, 0.02, 0.12, 10.0, 20.0, 1.05, 0.15),
          MakeArchetype("home_worker", kHomeWorker, 0.7, 1.5, 0.10, 0.40,
                        0.05, 0.15, 0.04, 0.18, 13.0, 17.0, 0.95, 0.15),
          MakeArchetype("retired", kRetired, 0.5, 1.1, 0.05, 0.30,
                        0.06, 0.18, 0.03, 0.12, 14.0, 16.0, 1.00, 0.20),
      };
  return archetypes;
}

Result<MeterDataset> GenerateSeedDataset(
    const SeedGeneratorOptions& options) {
  if (options.num_households < 1) {
    return Status::InvalidArgument("seed: need at least one household");
  }
  if (options.hours < kHoursPerDay) {
    return Status::InvalidArgument("seed: need at least one day of data");
  }

  MeterDataset dataset;
  dataset.SetTemperature(
      GenerateTemperatureSeries(options.hours, options.temperature));
  const std::vector<double>& temp = dataset.temperature();
  const std::vector<HouseholdArchetype>& archetypes = BuiltinArchetypes();
  double total_weight = 0.0;
  for (const auto& a : archetypes) total_weight += a.population_weight;

  Rng master(options.seed);
  for (int h = 0; h < options.num_households; ++h) {
    Rng rng = master.Split();
    // Pick an archetype by population weight.
    double pick = rng.NextDouble() * total_weight;
    const HouseholdArchetype* archetype = &archetypes.back();
    for (const auto& a : archetypes) {
      pick -= a.population_weight;
      if (pick <= 0.0) {
        archetype = &a;
        break;
      }
    }
    const double scale =
        rng.Uniform(archetype->activity_scale_min,
                    archetype->activity_scale_max);
    const double base =
        rng.Uniform(archetype->base_load_min, archetype->base_load_max);
    const double heat_gradient = rng.Uniform(
        archetype->heating_gradient_min, archetype->heating_gradient_max);
    const double cool_gradient = rng.Uniform(
        archetype->cooling_gradient_min, archetype->cooling_gradient_max);
    // Small per-household phase jitter so households within an archetype
    // are similar but not identical.
    const int shift = static_cast<int>(rng.UniformInt(3)) - 1;

    ConsumerSeries series;
    series.household_id = h + 1;
    series.consumption.reserve(static_cast<size_t>(options.hours));
    for (int t = 0; t < options.hours; ++t) {
      const int hour = (HourlyCalendar::HourOfDay(t) + shift + 24) % 24;
      const bool weekend = HourlyCalendar::IsWeekend(t % kHoursPerYear);
      double activity = scale * archetype->activity_shape[hour];
      if (weekend) activity *= archetype->weekend_factor;
      const double heating =
          heat_gradient *
          std::max(0.0, archetype->heating_balance_c - temp[static_cast<
                                                          size_t>(t)]);
      const double cooling =
          cool_gradient *
          std::max(0.0, temp[static_cast<size_t>(t)] -
                            archetype->cooling_balance_c);
      const double noise = rng.Gaussian(0.0, options.noise_sigma);
      series.consumption.push_back(
          std::max(0.0, base + activity + heating + cooling + noise));
    }
    dataset.AddConsumer(std::move(series));
  }
  SM_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace smartmeter::datagen
