#ifndef SMARTMETER_EXEC_SERVING_RUNNER_H_
#define SMARTMETER_EXEC_SERVING_RUNNER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "engines/engine.h"
#include "exec/query_context.h"
#include "table/data_source.h"

namespace smartmeter::exec {

/// Serving-layer tuning knobs.
struct ServingOptions {
  /// Bounded admission queue: Submit() sheds with ResourceExhausted once
  /// this many queries are waiting (in-flight queries do not count).
  size_t queue_capacity = 64;
  /// Intra-query parallelism handed to the engine for each query.
  int threads_per_query = 1;
  /// Retain task results in the QueryOutcome (off for pure load tests).
  bool keep_results = false;
};

/// One query as submitted by a client.
struct QueryRequest {
  engines::TaskOptions options;
  QueryPriority priority = QueryPriority::kNormal;
  /// Time budget measured from admission; zero means no deadline.
  std::chrono::nanoseconds deadline{0};
  /// Observability label ("client-3/q17").
  std::string label;
};

/// What happened to one admitted query.
struct QueryOutcome {
  uint64_t query_id = 0;
  std::string label;
  /// OK, Cancelled, or DeadlineExceeded (engine errors pass through).
  Status status;
  /// True when the serving layer gave up on the query rather than the
  /// query failing on its own merits: deadline expired or cancelled,
  /// either while queued or mid-flight.
  bool shed = false;
  /// Admission to dispatch.
  double queue_seconds = 0.0;
  /// Dispatch to completion.
  double run_seconds = 0.0;
  /// Per-stage timings of the executed plan (empty for shed queries).
  std::vector<exec::StageTiming> stages;
  engines::TaskResultSet results;
};

/// Completion handle returned by ServingRunner::Submit. Clients block on
/// Wait() for the outcome and may RequestCancel() at any time; the
/// running kernels observe the shared token cooperatively.
class QueryTicket {
 public:
  /// Blocks until the query finishes (or is shed) and returns the
  /// outcome. Repeated calls return the same outcome.
  const QueryOutcome& Wait();

  /// True once the outcome is available (non-blocking).
  bool done() const;

  void RequestCancel() { context_.RequestCancel(); }
  const QueryContext& context() const { return context_; }

 private:
  friend class ServingRunner;
  void Finish(QueryOutcome outcome);

  QueryContext context_;
  engines::TaskOptions options_;
  std::chrono::steady_clock::time_point submitted_at_{};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  QueryOutcome outcome_;
};

/// Point-in-time serving counters (monotone over a runner's lifetime).
struct ServingStats {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t completed_ok = 0;
  int64_t shed_queue_full = 0;
  int64_t shed_deadline = 0;
  int64_t shed_cancelled = 0;
  int64_t failed = 0;
  int64_t peak_queue_depth = 0;
};

/// Serves concurrent queries against a pool of attached engine sessions.
///
/// Each AddSession() registers one engine and starts a dispatcher thread
/// for it; dispatchers pull the highest-priority admitted query off a
/// shared bounded queue and run it via RunTaskOnEngine under the query's
/// own QueryContext, so deadline/cancel propagate into the kernels.
/// Submit() never blocks: when the queue is full the query is shed
/// immediately with ResourceExhausted (the paper's workloads are batch;
/// this is the serving-path counterpart the benchmark sweeps).
///
/// Thread-safe. Engines are borrowed, not owned, and must stay attached
/// and alive until Shutdown() returns; each engine only ever runs one
/// query at a time (its session's dispatcher), so engines need not be
/// internally thread-safe across queries.
class ServingRunner {
 public:
  explicit ServingRunner(ServingOptions options);
  ~ServingRunner();

  ServingRunner(const ServingRunner&) = delete;
  ServingRunner& operator=(const ServingRunner&) = delete;

  /// Registers an attached engine and starts its dispatcher thread.
  void AddSession(engines::AnalyticsEngine* engine);

  /// Validates `source` through the shared data-plane screening, attaches
  /// the engine to it, then registers the session. One call replaces the
  /// validate/attach/register dance every serving harness repeated — and
  /// guarantees a session never enters the pool pointing at a malformed
  /// source. Returns the engine's attach seconds.
  Result<double> AttachSession(engines::AnalyticsEngine* engine,
                               const table::DataSource& source);

  size_t num_sessions() const;

  /// Admits one query, or sheds it with ResourceExhausted when the
  /// queue is at capacity. On success the ticket resolves once a
  /// session has run (or shed) the query.
  Result<std::shared_ptr<QueryTicket>> Submit(QueryRequest request);

  /// Blocks until every admitted query has resolved.
  void Drain();

  /// Drains, then stops and joins the dispatcher threads. Idempotent;
  /// the destructor calls it. Submit() after Shutdown() sheds.
  void Shutdown();

  ServingStats stats() const;

 private:
  static constexpr size_t kPriorities = 3;

  /// Pops the next query by priority (FIFO within a priority class).
  /// Blocks until one is available or shutdown. Null on shutdown.
  std::shared_ptr<QueryTicket> NextQuery();

  void DispatchLoop(engines::AnalyticsEngine* engine);
  void RunQuery(engines::AnalyticsEngine* engine,
                const std::shared_ptr<QueryTicket>& ticket);
  void ResolveTicket(const std::shared_ptr<QueryTicket>& ticket,
                     QueryOutcome outcome);

  const ServingOptions options_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  /// queues_[p] holds priority p; higher priorities dispatch first.
  std::array<std::deque<std::shared_ptr<QueryTicket>>, kPriorities> queues_;
  size_t queued_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> dispatchers_;
  size_t sessions_ = 0;

  /// Admitted but not yet resolved (queued + running); Drain blocks on 0.
  std::mutex drain_mu_;
  std::condition_variable drained_cv_;
  int64_t unresolved_ = 0;

  std::atomic<uint64_t> next_query_id_{1};

  mutable std::mutex stats_mu_;
  ServingStats stats_;
};

}  // namespace smartmeter::exec

#endif  // SMARTMETER_EXEC_SERVING_RUNNER_H_
