#ifndef SMARTMETER_EXEC_SERVING_RUNNER_H_
#define SMARTMETER_EXEC_SERVING_RUNNER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "engines/engine.h"
#include "exec/plan_executor.h"
#include "exec/query_context.h"
#include "streaming/alert_log.h"
#include "table/data_source.h"

namespace smartmeter::exec {

/// Serving-layer tuning knobs.
///
/// Intra-query parallelism is deliberately NOT a serving knob: each
/// session's `AnalyticsEngine::SetThreads()` (flowing into
/// `ExecutionPolicy.threads`) is the single source of truth, configured
/// when the session is attached and never overridden per query. See
/// DESIGN.md, "Serving layer".
struct ServingOptions {
  /// Households are partitioned across this many shards, each with its
  /// own admission queue and dispatcher set. 1 = the unsharded runner.
  size_t num_shards = 1;
  /// Bounded admission queue *per shard*: Submit() sheds with
  /// ResourceExhausted once this many queries are waiting on the target
  /// shard (in-flight queries do not count).
  size_t queue_capacity = 64;
  /// Max queued queries one tenant may hold per shard; 0 disables the
  /// per-tenant quota (only queue_capacity guards admission).
  /// Submissions beyond it shed with an "over queue quota"
  /// ResourceExhausted.
  size_t tenant_queue_quota = 0;
  /// Deficit round-robin quantum: consecutive queries a tenant may
  /// dispatch per scheduling visit (multiplied by its weight).
  int fair_share_quantum = 1;
  /// Per-tenant DRR weights; tenants not listed get weight 1. A weight-w
  /// tenant drains w queries for every 1 of a weight-1 tenant under
  /// contention.
  std::map<std::string, int> tenant_weights;
  /// Retain task results in the QueryOutcome (off for pure load tests).
  bool keep_results = false;
};

/// One query as submitted by a client (serving API v3). Immutable once
/// built; construct through QueryRequest::Builder, which validates the
/// combination at submit time instead of letting a malformed request
/// travel to a dispatcher.
class QueryRequest {
 public:
  /// Household sentinel: the query spans all households (scatter-gather
  /// across every shard when the runner is sharded).
  static constexpr int64_t kAllHouseholds = -1;

  class Builder;

  const engines::TaskOptions& options() const { return options_; }
  const std::string& tenant() const { return tenant_; }
  QueryPriority priority() const { return priority_; }
  std::chrono::nanoseconds deadline() const { return deadline_; }
  const std::string& label() const { return label_; }
  /// kAllHouseholds, or the single household this query is routed to.
  int64_t household() const { return household_; }

 private:
  QueryRequest() = default;

  engines::TaskOptions options_;
  std::string tenant_;
  QueryPriority priority_ = QueryPriority::kNormal;
  std::chrono::nanoseconds deadline_{0};
  std::string label_;
  int64_t household_ = kAllHouseholds;
};

/// Fluent validated builder:
///
///   SM_ASSIGN_OR_RETURN(QueryRequest request,
///                       QueryRequest::Builder()
///                           .Tenant("analytics-ui")
///                           .Task(options)
///                           .Deadline(std::chrono::milliseconds(50))
///                           .Household(1042)
///                           .Build());
///
/// Build() rejects nonsensical combinations (empty tenant, negative
/// deadline, negative household id) so they surface where the request
/// is written, not in a dispatcher thread.
class QueryRequest::Builder {
 public:
  Builder& Task(engines::TaskOptions options) {
    request_.options_ = std::move(options);
    return *this;
  }
  Builder& Tenant(std::string tenant) {
    request_.tenant_ = std::move(tenant);
    return *this;
  }
  Builder& Priority(QueryPriority priority) {
    request_.priority_ = priority;
    return *this;
  }
  /// Time budget measured from admission; zero means no deadline.
  Builder& Deadline(std::chrono::nanoseconds deadline) {
    request_.deadline_ = deadline;
    return *this;
  }
  /// Observability label ("client-3/q17").
  Builder& Label(std::string label) {
    request_.label_ = std::move(label);
    return *this;
  }
  /// Routes the query to the shard owning `household`. The query runs
  /// over that shard's whole slice (the shard is the pruning unit; no
  /// finer index exists yet) and the outcome's results are filtered to
  /// the household.
  Builder& Household(int64_t household) {
    request_.household_ = household;
    return *this;
  }

  Result<QueryRequest> Build() const;

 private:
  QueryRequest request_;
};

/// What happened to one admitted query.
struct QueryOutcome {
  uint64_t query_id = 0;
  std::string label;
  std::string tenant;
  /// OK, or the failure/shed status. Shed statuses carry the reason in
  /// the message: queue-full, over-quota, evicted, deadline-in-queue,
  /// cancelled-while-queued, or the in-flight deadline/cancel.
  Status status;
  /// True when the serving layer gave up on the query rather than the
  /// query failing on its own merits: shed at admission, evicted,
  /// deadline expired, or cancelled — queued or mid-flight.
  bool shed = false;
  /// Admission to dispatch (max across children for scatter queries).
  double queue_seconds = 0.0;
  /// Dispatch to completion.
  double run_seconds = 0.0;
  /// Per-stage timings of the executed plan (empty for shed queries).
  /// Scatter queries report a synthetic "scatter" row (seconds = slowest
  /// shard, partitions = shards) followed by the gather plan's
  /// materialize/merge rows.
  std::vector<exec::StageTiming> stages;
  engines::TaskResultSet results;
};

/// Completion handle returned by ServingRunner::Submit. Clients block on
/// Wait() for the outcome and may RequestCancel() at any time; the
/// running kernels observe the shared token cooperatively.
class QueryTicket {
 public:
  /// Blocks until the query finishes (or is shed) and returns the
  /// outcome. Repeated calls return the same outcome.
  const QueryOutcome& Wait();

  /// True once the outcome is available (non-blocking).
  bool done() const;

  void RequestCancel() { context_.RequestCancel(); }
  const QueryContext& context() const { return context_; }

 private:
  friend class ServingRunner;
  void Finish(QueryOutcome outcome);

  QueryContext context_;
  engines::TaskOptions options_;
  std::string tenant_;
  size_t shard_ = 0;
  /// Routed queries filter results to this household; kAllHouseholds
  /// keeps everything.
  int64_t household_ = QueryRequest::kAllHouseholds;
  /// Scatter children: invisible to global/tenant counters (the parent
  /// is counted once), resolved through on_resolve_.
  bool internal_ = false;
  std::function<void(const QueryOutcome&)> on_resolve_;
  std::chrono::steady_clock::time_point submitted_at_{};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  QueryOutcome outcome_;
};

/// Per-tenant slice of the serving counters.
struct TenantServingStats {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t completed_ok = 0;
  /// All shed reasons: queue-full, quota, evicted, deadline, cancelled.
  int64_t shed = 0;
  int64_t failed = 0;
};

/// Point-in-time serving counters (monotone over a runner's lifetime).
/// Scatter queries count once (the parent), not once per shard.
struct ServingStats {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t completed_ok = 0;
  int64_t shed_queue_full = 0;
  int64_t shed_quota = 0;
  int64_t shed_evicted = 0;
  int64_t shed_deadline = 0;
  int64_t shed_cancelled = 0;
  int64_t failed = 0;
  /// Max queued across any one shard.
  int64_t peak_queue_depth = 0;
  std::map<std::string, TenantServingStats> tenants;
};

/// Serves concurrent queries for many tenants against a sharded pool of
/// attached engine sessions.
///
/// Households are partitioned into `num_shards` contiguous row ranges of
/// the shared columnar image (OpenRouting builds the id → row map once).
/// Each shard owns its own bounded admission queue and its own sessions
/// (AddSession assigns sessions round-robin across shards). Ownership is
/// logical — every session attaches the full source and the shard scopes
/// its scans to its row slice via engines::RowScope, so on one box the
/// mmap'd pages are physically shared while each shard only ever scans
/// 1/N of the table.
///
/// Routing: a Household() query runs on the owning shard over that
/// shard's slice; an all-households query scatters one scoped child per
/// shard and gathers the partials through PlanExecutor::RunGather (the
/// plan IR's Materialize + Merge stages), bit-identical to an unsharded
/// run.
///
/// Scheduling within a shard is priority-major (high first), then
/// deficit round-robin across tenants inside each priority class, so a
/// tenant flooding the queue cannot starve the others: each visit grants
/// quantum x weight dispatches before the next tenant runs. Admission is
/// per-tenant too — a tenant over its queue quota sheds without touching
/// other tenants, and when a shard's queue is full an over-fair-share
/// tenant's newest low-priority ticket is evicted in favor of an
/// under-share submitter (the submitter sheds only if its tenant already
/// holds the most queued entries).
///
/// Thread-safe. Engines are borrowed, not owned, and must stay attached
/// and alive until Shutdown() returns; each engine only ever runs one
/// query at a time (its session's dispatcher), so engines need not be
/// internally thread-safe across queries.
class ServingRunner {
 public:
  explicit ServingRunner(ServingOptions options);
  ~ServingRunner();

  ServingRunner(const ServingRunner&) = delete;
  ServingRunner& operator=(const ServingRunner&) = delete;

  /// Builds the household → row routing table by reading `source`'s
  /// household ids through a columnar cache rooted at `cache_dir`
  /// (a cache hit when the sessions already attached the same source
  /// through the same directory). Required before Household() routing
  /// and before any Submit when num_shards > 1; a single-shard runner
  /// without routed queries can skip it.
  Status OpenRouting(const table::DataSource& source,
                     const std::string& cache_dir);

  /// Registers an attached engine and starts its dispatcher thread. The
  /// session joins shard (sessions added so far) % num_shards, so adding
  /// a multiple of num_shards sessions balances the shards.
  void AddSession(engines::AnalyticsEngine* engine);

  /// Validates `source` through the shared data-plane screening, attaches
  /// the engine to it, then registers the session. One call replaces the
  /// validate/attach/register dance every serving harness repeated — and
  /// guarantees a session never enters the pool pointing at a malformed
  /// source. Returns the engine's attach seconds.
  Result<double> AttachSession(engines::AnalyticsEngine* engine,
                               const table::DataSource& source);

  size_t num_sessions() const;
  size_t num_shards() const { return options_.num_shards; }

  /// Admits one query, or sheds it with ResourceExhausted (queue full /
  /// over tenant quota) or InvalidArgument (unroutable: no routing
  /// table, unknown household, shard without sessions). On success the
  /// ticket resolves once the owning shard has run (or shed) the query —
  /// or, for all-households queries on a sharded runner, once every
  /// shard's child resolved and the partials were gathered.
  Result<std::shared_ptr<QueryTicket>> Submit(const QueryRequest& request);

  /// Wires the live alert channel: alerts recorded into `log` (by a
  /// StreamProcessor's alert sink on the ingest path) become queryable
  /// through QueryAlerts alongside the analytical queries — the lambda
  /// serving surface. Borrowed, not owned; must outlive the runner or a
  /// later AttachAlertLog(nullptr).
  void AttachAlertLog(const streaming::AlertLog* log);

  /// Reads back alerts matching `query` from the attached log, oldest
  /// first. NotFound when no alert log is attached.
  Result<std::vector<streaming::Alert>> QueryAlerts(
      const streaming::AlertQuery& query) const;

  /// Blocks until every admitted query has resolved.
  void Drain();

  /// Drains, then stops and joins the dispatcher threads. Idempotent;
  /// the destructor calls it. Submit() after Shutdown() sheds.
  void Shutdown();

  ServingStats stats() const;

 private:
  static constexpr size_t kPriorities = 3;

  /// One tenant's FIFO within one (shard, priority) class plus its DRR
  /// scheduling state.
  struct TenantQueue {
    std::deque<std::shared_ptr<QueryTicket>> tickets;
    /// Dispatches left in the current scheduling visit.
    int credits = 0;
    bool in_ring = false;
  };

  struct PriorityClass {
    std::map<std::string, TenantQueue> tenants;
    /// Tenants with queued work, in DRR visiting order.
    std::deque<std::string> ring;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::array<PriorityClass, kPriorities> classes;
    size_t queued = 0;
    /// Queued entries per tenant across classes (children included), for
    /// quota and eviction decisions.
    std::map<std::string, size_t> tenant_queued;
    size_t sessions = 0;
  };

  /// Tracks one scatter query: the parent resolves when the last child
  /// does and the partials are gathered.
  struct ScatterState;

  /// Immutable once built: household ids sorted with their batch rows,
  /// plus the total row count the shard slices divide.
  struct RoutingTable {
    std::vector<int64_t> ids;
    std::vector<size_t> rows;
    size_t total_rows = 0;
  };

  /// The half-open row slice shard `shard` owns out of `total` rows.
  std::pair<size_t, size_t> ShardSlice(size_t shard, size_t total) const;

  int TenantWeight(const std::string& tenant) const;

  std::shared_ptr<QueryTicket> MakeTicket(const QueryRequest& request);
  Status Enqueue(size_t shard_index,
                 const std::shared_ptr<QueryTicket>& ticket);
  Result<std::shared_ptr<QueryTicket>> SubmitScatter(
      const QueryRequest& request,
      const std::shared_ptr<const RoutingTable>& routing);
  void FinishScatter(const std::shared_ptr<ScatterState>& state);

  /// Pops the next query off `shard`'s queues: priority-major, deficit
  /// round-robin across tenants within a class. Blocks until one is
  /// available or shutdown. Null on shutdown with an empty queue.
  std::shared_ptr<QueryTicket> NextQuery(Shard* shard);

  void DispatchLoop(engines::AnalyticsEngine* engine, size_t shard_index);
  void RunQuery(engines::AnalyticsEngine* engine,
                const std::shared_ptr<QueryTicket>& ticket);
  void ResolveTicket(const std::shared_ptr<QueryTicket>& ticket,
                     QueryOutcome outcome);
  void RecordSubmitShed(const std::string& tenant, int64_t* reason_counter);

  const ServingOptions options_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Atomic because every shard's dispatcher reads it in its own
  /// cv-wait predicate under that shard's mutex, not mu_.
  std::atomic<bool> shutting_down_{false};
  std::vector<std::thread> dispatchers_;
  size_t sessions_ = 0;
  std::shared_ptr<const RoutingTable> routing_;
  /// Atomic: queried from client threads without taking mu_.
  std::atomic<const streaming::AlertLog*> alert_log_{nullptr};

  /// Admitted but not yet resolved (queued + running); Drain blocks on 0.
  std::mutex drain_mu_;
  std::condition_variable drained_cv_;
  int64_t unresolved_ = 0;

  std::atomic<uint64_t> next_query_id_{1};

  mutable std::mutex stats_mu_;
  ServingStats stats_;
};

}  // namespace smartmeter::exec

#endif  // SMARTMETER_EXEC_SERVING_RUNNER_H_
