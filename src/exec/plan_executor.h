#ifndef SMARTMETER_EXEC_PLAN_EXECUTOR_H_
#define SMARTMETER_EXEC_PLAN_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "cluster/task_scheduler.h"
#include "common/result.h"
#include "core/three_line_task.h"
#include "engines/task_api.h"
#include "exec/plan.h"
#include "exec/query_context.h"
#include "storage/scan_scope.h"

namespace smartmeter::exec {

/// How a plan's stages are dispatched and priced -- the whole difference
/// between the five engines once their plans share one IR.
struct ExecutionPolicy {
  enum class Dispatch {
    /// Partitions run on the work-stealing ThreadPool; timings are
    /// wall-clock (the single-node engines).
    kLocalPool,
    /// Partitions become simulated cluster tasks: real work runs on the
    /// host, timings are the modeled makespan under `cluster` (Hive,
    /// Spark).
    kSimulatedCluster,
  };
  Dispatch dispatch = Dispatch::kLocalPool;
  /// Intra-query parallelism under kLocalPool.
  int threads = 1;

  // -- Simulated-cluster pricing (ignored under kLocalPool) ---------------
  cluster::ClusterConfig cluster;
  /// Charged once per job (Hadoop job submission / Spark DAG scheduling).
  double job_overhead_seconds = 0.0;
  double task_startup_seconds = 0.0;

  /// What "memory" means for this engine's report.
  enum class MemoryModel {
    kNone,
    /// Busiest task's bytes x slots per node (Hive: nothing is resident
    /// between jobs).
    kPeakTaskTimesSlots,
    /// Resident collections / nodes + per-slot task buffers (Spark: RDDs
    /// stay cached).
    kResidentPlusTaskBuffers,
  };
  MemoryModel memory_model = MemoryModel::kNone;
  /// Task buffer unit for kResidentPlusTaskBuffers.
  int64_t block_bytes = 0;

  /// One-line policy summary for plan goldens and logs.
  std::string DebugString() const;
};

/// What one stage contributed: simulated seconds under cluster dispatch,
/// wall-clock otherwise, so stage rows sum to the task's reported time.
/// The fault fields count what the simulated cluster injected into this
/// stage's waves (always zero under kLocalPool or a healthy cluster).
struct StageTiming {
  std::string name;
  double seconds = 0.0;
  int partitions = 1;
  int64_t retries = 0;
  int64_t stragglers = 0;
  int64_t speculative_launched = 0;
  int64_t speculative_wins = 0;
};

/// What one plan execution measured.
struct PlanRunMetrics {
  double seconds = 0.0;
  bool simulated = false;
  core::ThreeLinePhases phases;
  int64_t modeled_memory_bytes = 0;
  std::vector<StageTiming> stages;
  /// Whole-plan fault ledger (the per-stage rows sum to this).
  cluster::WaveFaultStats faults;
  /// Block-index accounting summed over every batch scan: how many
  /// compressed blocks the scans pruned vs. decoded and the bytes read
  /// vs. materialized. All zero for unindexed sources.
  storage::ScanStats scan;
};

/// Runs physical plans: owns partitioning, dispatch (ThreadPool waves or
/// simulated cluster waves), per-partition QueryContext deadline/cancel
/// checks, and per-stage observability (plan.stage.<name> trace spans
/// and plan.stage.<name>.ns counters). Engines build plans; this is the
/// only place that executes them.
class PlanExecutor {
 public:
  /// Executes `plan` under `policy`. `results` may be null when only
  /// timing is wanted. Returns kCancelled / kDeadlineExceeded as soon as
  /// a partition boundary (or a kernel's per-household poll) observes
  /// the stopped context.
  Result<PlanRunMetrics> Run(const QueryContext& ctx, const Plan& plan,
                             const ExecutionPolicy& policy,
                             engines::TaskResultSet* results);

  /// Gathers already-computed partial result sets through the plan IR's
  /// Materialize and Merge stages — the reduce half of the serving
  /// layer's scatter-gather path. Partials merge in vector order;
  /// `sort_by_household` then applies the canonical Merge ordering.
  /// Stage rows ("materialize", "merge") land in the returned metrics
  /// exactly as they do for a full plan run.
  Result<PlanRunMetrics> RunGather(const QueryContext& ctx,
                                   std::vector<engines::TaskResultSet> partials,
                                   bool sort_by_household,
                                   engines::TaskResultSet* results);
};

}  // namespace smartmeter::exec

#endif  // SMARTMETER_EXEC_PLAN_EXECUTOR_H_
