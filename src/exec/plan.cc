#include "exec/plan.h"

#include <string_view>

#include "core/task_types.h"

namespace smartmeter::exec {

namespace {

std::string_view ScanKindName(ScanOp::Kind kind) {
  switch (kind) {
    case ScanOp::Kind::kBatch:
      return "batch";
    case ScanOp::Kind::kReadings:
      return "readings";
    case ScanOp::Kind::kSeries:
      return "series";
  }
  return "unknown";
}

void AppendOp(const PlanOp& op, std::string* out) {
  if (const auto* scan = std::get_if<ScanOp>(&op)) {
    out->append("scan[");
    out->append(ScanKindName(scan->kind));
    out->append(" source=");
    out->append(scan->source);
    if (scan->kind != ScanOp::Kind::kBatch) {
      out->append(" partitions=");
      out->append(std::to_string(scan->partitions));
    }
    out->append("]");
    return;
  }
  if (const auto* shuffle = std::get_if<ShuffleOp>(&op)) {
    out->append("shuffle[");
    out->append(shuffle->strategy == ShuffleOp::Strategy::kDataflow
                    ? "dataflow"
                    : "sort-merge");
    out->append(" partitions=");
    out->append(shuffle->partitions == 0
                    ? std::string("per-slot")
                    : std::to_string(shuffle->partitions));
    out->append("]");
    return;
  }
  if (const auto* kernel = std::get_if<KernelOp>(&op)) {
    out->append("kernel[");
    out->append(core::TaskName(kernel->options.task()));
    if (!kernel->options.scope().whole()) {
      const engines::RowScope& scope = kernel->options.scope();
      out->append(" scope=");
      out->append(std::to_string(scope.begin));
      out->append("+");
      out->append(scope.count == 0 ? std::string("rest")
                                   : std::to_string(scope.count));
    }
    if (kernel->fuse_scan) out->append(" fused-scan");
    if (kernel->broadcast_bytes > 0) out->append(" broadcast");
    if (kernel->broadcast_series_table) out->append(" broadcast-table");
    if (kernel->shuffle_table_per_task) out->append(" self-join-shuffle");
    out->append("]");
    return;
  }
  if (std::get_if<MaterializeOp>(&op) != nullptr) {
    out->append("materialize");
    return;
  }
  if (const auto* merge = std::get_if<MergeOp>(&op)) {
    out->append(merge->sort_by_household ? "merge[sort=household_id]"
                                         : "merge");
    return;
  }
  out->append("unknown-op");
}

}  // namespace

std::string Plan::DebugString() const {
  std::string out = "plan " + label + " {\n";
  for (const PlanStage& stage : stages) {
    out.append("  ");
    out.append(stage.name);
    out.append(": ");
    AppendOp(stage.op, &out);
    out.append("\n");
  }
  out.append("}");
  return out;
}

}  // namespace smartmeter::exec
