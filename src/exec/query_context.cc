#include "exec/query_context.h"

namespace smartmeter::exec {

std::string_view QueryPriorityName(QueryPriority priority) {
  switch (priority) {
    case QueryPriority::kLow:
      return "low";
    case QueryPriority::kNormal:
      return "normal";
    case QueryPriority::kHigh:
      return "high";
  }
  return "unknown";
}

const QueryContext& QueryContext::Background() {
  static const QueryContext* background = [] {
    auto* ctx = new QueryContext();
    ctx->set_label("background");
    return ctx;
  }();
  return *background;
}

Status QueryContext::CheckNotStopped() const {
  if (!ShouldStop()) return Status::OK();
  if (deadline_expired_.load(std::memory_order_acquire)) {
    return Status::DeadlineExceeded("query deadline exceeded" +
                                    (label_.empty() ? "" : " (" + label_ +
                                                              ")"));
  }
  return Status::Cancelled("query cancelled" +
                           (label_.empty() ? "" : " (" + label_ + ")"));
}

}  // namespace smartmeter::exec
