#include "exec/plan_executor.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/histogram_task.h"
#include "core/par_task.h"
#include "core/similarity_task.h"
#include "core/task_types.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smartmeter::exec {

namespace {

using cluster::TaskStats;
using cluster::TaskWaveRunner;
using engines::TaskOptions;
using engines::TaskResultSet;

constexpr double kBytesPerMb = 1024.0 * 1024.0;

/// Modeled wire sizes on the simulated shuffle (cluster/serde.h rules):
/// an 8-byte household key, a 24-byte hour record, a 16-byte vector
/// header ahead of a batched value list.
constexpr int64_t kKeyBytes = 8;
constexpr int64_t kRecordPayloadBytes = 24;
constexpr int64_t kVectorHeaderBytes = 16;

/// Static span labels (span names are not owned by the trace buffer).
const char* StageSpanName(const PlanOp& op) {
  if (std::get_if<ScanOp>(&op) != nullptr) return "plan.stage.scan";
  if (std::get_if<ShuffleOp>(&op) != nullptr) return "plan.stage.shuffle";
  if (std::get_if<KernelOp>(&op) != nullptr) return "plan.stage.kernel";
  if (std::get_if<MaterializeOp>(&op) != nullptr) {
    return "plan.stage.materialize";
  }
  return "plan.stage.merge";
}

const char* TaskSpanName(core::TaskType task) {
  switch (task) {
    case core::TaskType::kHistogram:
      return "task.histogram";
    case core::TaskType::kThreeLine:
      return "task.three_line";
    case core::TaskType::kPar:
      return "task.par";
    case core::TaskType::kSimilarity:
      return "task.similarity";
  }
  return "task.unknown";
}

/// Collects the first error seen across parallel workers.
class ErrorCollector {
 public:
  void Record(const Status& status) {
    if (status.ok()) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (first_.ok()) first_ = status;
  }
  const Status& first() const { return first_; }

 private:
  std::mutex mu_;
  Status first_ = Status::OK();
};

/// Assembles a raw shuffled record in place: sort by hour, split into
/// aligned consumption / temperature columns.
void AssembleRecord(SeriesRecord* record) {
  if (record->raw.empty()) return;
  std::sort(record->raw.begin(), record->raw.end(),
            [](const ReadingRecord& a, const ReadingRecord& b) {
              return a.hour < b.hour;
            });
  record->consumption.reserve(record->raw.size());
  record->temperature.reserve(record->raw.size());
  for (const ReadingRecord& r : record->raw) {
    record->consumption.push_back(r.consumption);
    record->temperature.push_back(r.temperature);
  }
  record->raw.clear();
  record->raw.shrink_to_fit();
}

/// Runs one per-household kernel over an assembled series record and
/// appends the result. Similarity is not per-household and is handled by
/// the gather path in the executor.
Status ComputeSeries(const QueryContext& ctx, const TaskOptions& options,
                     SeriesRecord* record,
                     const std::vector<double>* shared_temperature,
                     core::ThreeLinePhases* phases, TaskResultSet* out) {
  AssembleRecord(record);
  std::span<const double> temperature(record->temperature);
  if (temperature.empty() && shared_temperature != nullptr) {
    temperature = std::span<const double>(*shared_temperature);
  }
  switch (options.task()) {
    case core::TaskType::kHistogram: {
      SM_ASSIGN_OR_RETURN(
          stats::EquiWidthHistogram hist,
          core::ComputeConsumptionHistogram(
              record->consumption, options.Get<core::HistogramOptions>(),
              &ctx));
      out->Mutable<core::HistogramResult>().push_back(
          {record->household_id, std::move(hist)});
      return Status::OK();
    }
    case core::TaskType::kThreeLine: {
      SM_ASSIGN_OR_RETURN(
          core::ThreeLineResult fit,
          core::ComputeThreeLine(record->consumption, temperature,
                                 record->household_id,
                                 options.Get<core::ThreeLineOptions>(),
                                 phases, &ctx));
      out->Mutable<core::ThreeLineResult>().push_back(std::move(fit));
      return Status::OK();
    }
    case core::TaskType::kPar: {
      SM_ASSIGN_OR_RETURN(
          core::DailyProfileResult profile,
          core::ComputeDailyProfile(record->consumption, temperature,
                                    record->household_id,
                                    options.Get<core::ParOptions>(), &ctx));
      out->Mutable<core::DailyProfileResult>().push_back(std::move(profile));
      return Status::OK();
    }
    case core::TaskType::kSimilarity:
      return Status::Internal("similarity is not a per-household kernel");
  }
  return Status::Internal("unreachable");
}

/// One plan execution's mutable state, so PlanExecutor itself stays
/// stateless and re-entrant.
class Execution {
 public:
  Execution(const QueryContext& ctx, const Plan& plan,
            const ExecutionPolicy& policy, TaskResultSet* results)
      : ctx_(ctx),
        plan_(plan),
        policy_(policy),
        cluster_(policy.dispatch ==
                 ExecutionPolicy::Dispatch::kSimulatedCluster),
        results_(results) {}

  Result<PlanRunMetrics> Run();

  /// Preloads partial result sets as if a kernel stage had produced
  /// them, so a materialize+merge plan can gather results computed
  /// elsewhere (the serving layer's scatter-gather path).
  void SeedPartials(std::vector<TaskResultSet> partials) {
    partials_ = std::move(partials);
  }

 private:
  using PartitionFn = std::function<Status(int partition, TaskStats* stats)>;

  ThreadPool& pool() {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(std::max(1, policy_.threads));
    }
    return *pool_;
  }

  /// Dispatches one unit of work per partition: a ThreadPool loop under
  /// kLocalPool, one simulated cluster task per partition otherwise.
  /// Every unit re-checks the query context first, so cancellation lands
  /// at partition boundaries even when a kernel never polls.
  Status RunPartitions(size_t count, const PartitionFn& body);

  /// Times a stage body (wall-clock locally, simulated-seconds delta
  /// under cluster dispatch) and records its row + counter + span,
  /// including the fault events its waves injected.
  template <typename Fn>
  Status TimedStage(const PlanStage& stage, int partitions, Fn&& body) {
    obs::SpanScope span(StageSpanName(stage.op));
    Stopwatch watch;
    const double simulated_before = simulated_seconds_;
    const cluster::WaveFaultStats faults_before = fault_stats_;
    SM_RETURN_IF_ERROR(body());
    StageTiming row;
    row.name = stage.name;
    row.seconds = cluster_ ? simulated_seconds_ - simulated_before
                           : watch.ElapsedSeconds();
    row.partitions = partitions;
    row.retries = fault_stats_.retries - faults_before.retries;
    row.stragglers = fault_stats_.stragglers - faults_before.stragglers;
    row.speculative_launched = fault_stats_.speculative_launched -
                               faults_before.speculative_launched;
    row.speculative_wins =
        fault_stats_.speculative_wins - faults_before.speculative_wins;
    AddStageRow(std::move(row));
    return Status::OK();
  }

  void AddStageRow(const std::string& name, double seconds, int partitions) {
    StageTiming row;
    row.name = name;
    row.seconds = seconds;
    row.partitions = partitions;
    AddStageRow(std::move(row));
  }

  void AddStageRow(StageTiming row) {
    obs::MetricsRegistry::Global()
        .GetCounter("plan.stage." + row.name + ".ns")
        ->Add(static_cast<int64_t>(row.seconds * 1e9));
    stage_rows_.push_back(std::move(row));
  }

  // -- Stage runners --------------------------------------------------------
  Status RunScan(const PlanStage& stage, const ScanOp& op,
                 bool sort_merge_follows, const KernelOp* next_kernel);
  Status RunShuffle(const PlanStage& stage, const ShuffleOp& op);
  Status RunKernel(const PlanStage& stage, const KernelOp& op);
  Status RunFused(const PlanStage& scan_stage, const ScanOp& scan,
                  const PlanStage& kernel_stage, const KernelOp& kernel);
  Status RunMaterialize(const PlanStage& stage);
  Status RunMerge(const PlanStage& stage, const MergeOp& op);

  // -- Kernel input forms ---------------------------------------------------
  Status BatchKernel(const KernelOp& op);
  Status SeriesKernel(const KernelOp& op);
  Status SimilarityOverSeries(const KernelOp& op);

  void ChargeBroadcast(int64_t bytes) {
    simulated_seconds_ +=
        static_cast<double>(bytes) / kBytesPerMb *
        policy_.cluster.cost.broadcast_seconds_per_mb_per_node *
        policy_.cluster.num_nodes;
  }

  int DefaultPartitions() const {
    return cluster_ ? std::max(1, policy_.cluster.total_slots())
                    : std::max(1, policy_.threads);
  }

  const QueryContext& ctx_;
  const Plan& plan_;
  const ExecutionPolicy& policy_;
  const bool cluster_;
  TaskResultSet* results_;

  std::unique_ptr<ThreadPool> pool_;

  // Intermediate data, in whichever form the last stage produced.
  table::ColumnarBatch batch_;
  std::shared_ptr<const void> batch_owner_;
  bool have_batch_ = false;
  /// True when the scan already restricted the batch to the kernel's row
  /// scope (scope pushdown): the kernel then runs over the whole —
  /// already-scoped — batch instead of re-slicing it.
  bool scan_scope_applied_ = false;
  std::vector<std::vector<ReadingRecord>> readings_;
  std::vector<std::vector<SeriesRecord>> series_;
  /// Sort-merge shuffle read bytes, billed to the consuming wave's tasks
  /// (Hadoop charges the reduce side; the host regroup itself is free).
  std::vector<int64_t> series_read_bytes_;
  std::shared_ptr<const std::vector<double>> shared_temperature_;

  // Results in flight.
  std::vector<TaskResultSet> partials_;
  TaskResultSet full_;
  bool have_full_ = false;

  // Accounting.
  std::mutex mu_;
  double simulated_seconds_ = 0.0;
  int64_t peak_task_bytes_ = 0;
  int64_t cached_bytes_ = 0;
  core::ThreeLinePhases phases_;
  std::vector<StageTiming> stage_rows_;
  storage::ScanStats scan_stats_;
  /// Fault ledger across waves; RunPartitions is called serially, so no
  /// lock is needed. The wave counter salts each wave's fault stream.
  cluster::WaveFaultStats fault_stats_;
  uint64_t wave_counter_ = 0;
};

Status Execution::RunPartitions(size_t count, const PartitionFn& body) {
  if (count == 0) return Status::OK();
  if (!cluster_) {
    ErrorCollector errors;
    pool().ParallelFor(count, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        Status guard = ctx_.CheckNotStopped();
        if (!guard.ok()) {
          errors.Record(guard);
          return;
        }
        TaskStats ignored;
        errors.Record(body(static_cast<int>(i), &ignored));
        if (!errors.first().ok()) return;
      }
    });
    return errors.first();
  }
  std::vector<TaskWaveRunner::TaskFn> tasks;
  tasks.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    tasks.push_back([this, &body, i](TaskStats* stats) -> Status {
      SM_RETURN_IF_ERROR(ctx_.CheckNotStopped());
      SM_RETURN_IF_ERROR(body(static_cast<int>(i), stats));
      const int64_t task_bytes = stats->input_bytes + stats->shuffle_bytes;
      std::lock_guard<std::mutex> lock(mu_);
      peak_task_bytes_ = std::max(peak_task_bytes_, task_bytes);
      return Status::OK();
    });
  }
  TaskWaveRunner runner(policy_.cluster, policy_.task_startup_seconds);
  cluster::WaveOptions wave;
  wave.wave_salt = wave_counter_++;
  wave.stop_check = [this]() { return ctx_.CheckNotStopped(); };
  SM_ASSIGN_OR_RETURN(cluster::WaveResult result,
                      runner.RunWave(&tasks, wave));
  simulated_seconds_ += result.makespan_seconds;
  fault_stats_.Accumulate(result.faults);
  return Status::OK();
}

Status Execution::RunScan(const PlanStage& stage, const ScanOp& op,
                          bool sort_merge_follows,
                          const KernelOp* next_kernel) {
  return TimedStage(stage, op.partitions, [&]() -> Status {
    shared_temperature_ = op.shared_temperature;
    if (op.kind == ScanOp::Kind::kBatch) {
      // Scope pushdown: when the scan knows how to materialize only a
      // row window and the next kernel is restricted to one, scan just
      // that window (an indexed store then skips whole blocks) and let
      // the kernel run unscoped over the result. Similarity is exempt —
      // its candidate table must stay the full batch even when the
      // query rows are scoped.
      if (op.scan_batch_scoped && next_kernel != nullptr &&
          !next_kernel->options.scope().whole() &&
          next_kernel->options.task() != core::TaskType::kSimilarity) {
        const engines::RowScope& rows = next_kernel->options.scope();
        storage::ScanScope scope;
        scope.row_begin = rows.begin;
        scope.row_count = rows.count;
        SM_ASSIGN_OR_RETURN(BatchScan scan, op.scan_batch_scoped(scope));
        SM_RETURN_IF_ERROR(scan.batch.Validate());
        batch_ = std::move(scan.batch);
        batch_owner_ = std::move(scan.owner);
        scan_stats_.Add(scan.stats);
        have_batch_ = true;
        scan_scope_applied_ = true;
        return Status::OK();
      }
      if (!op.scan_batch) return Status::Internal("scan has no batch source");
      SM_ASSIGN_OR_RETURN(BatchScan scan, op.scan_batch());
      SM_RETURN_IF_ERROR(scan.batch.Validate());
      batch_ = std::move(scan.batch);
      batch_owner_ = std::move(scan.owner);
      scan_stats_.Add(scan.stats);
      have_batch_ = true;
      scan_scope_applied_ = false;
      return Status::OK();
    }
    if (cluster_) simulated_seconds_ += op.driver_seconds;
    const size_t parts = static_cast<size_t>(std::max(1, op.partitions));
    const bool readings = op.kind == ScanOp::Kind::kReadings;
    if (readings) {
      if (!op.scan_readings) {
        return Status::Internal("scan has no readings source");
      }
      readings_.assign(parts, {});
    } else {
      if (!op.scan_series) {
        return Status::Internal("scan has no series source");
      }
      series_.assign(parts, {});
    }
    return RunPartitions(parts, [&](int i, TaskStats* stats) -> Status {
      int64_t scanned_bytes = 0;
      if (readings) {
        SM_RETURN_IF_ERROR(op.scan_readings(i, &readings_[i], stats));
        scanned_bytes = ApproxReadingBytes() *
                        static_cast<int64_t>(readings_[i].size());
        if (sort_merge_follows) {
          // Hadoop's map side spills and sends what it emitted; the
          // wave is both scan and shuffle write.
          stats->shuffle_bytes += scanned_bytes;
        }
      } else {
        SM_RETURN_IF_ERROR(op.scan_series(i, &series_[i], stats));
        for (const SeriesRecord& r : series_[i]) {
          scanned_bytes += ApproxSeriesBytes(r);
        }
      }
      if (cluster_) {
        std::lock_guard<std::mutex> lock(mu_);
        cached_bytes_ += scanned_bytes;
      }
      return Status::OK();
    });
  });
}

Status Execution::RunShuffle(const PlanStage& stage, const ShuffleOp& op) {
  const int parts =
      op.partitions > 0 ? op.partitions : DefaultPartitions();
  return TimedStage(stage, parts, [&]() -> Status {
    std::hash<int64_t> hasher;
    if (op.strategy == ShuffleOp::Strategy::kDataflow) {
      // Wide dataflow exchange: a bucket wave charged the written bytes
      // and a merge wave charged the read bytes -- the two extra task
      // waves of a groupByKey.
      std::vector<std::vector<std::map<int64_t, std::vector<ReadingRecord>>>>
          buckets(readings_.size());
      SM_RETURN_IF_ERROR(RunPartitions(
          readings_.size(), [&](int i, TaskStats* stats) -> Status {
            buckets[i].resize(static_cast<size_t>(parts));
            int64_t bytes = 0;
            for (ReadingRecord& r : readings_[i]) {
              bytes += ApproxReadingBytes();
              const size_t p = hasher(r.household_id) %
                               static_cast<size_t>(parts);
              buckets[i][p][r.household_id].push_back(r);
            }
            readings_[i].clear();
            readings_[i].shrink_to_fit();
            stats->shuffle_bytes = bytes;
            return Status::OK();
          }));
      series_.assign(static_cast<size_t>(parts), {});
      int64_t moved_bytes = 0;
      SM_RETURN_IF_ERROR(RunPartitions(
          static_cast<size_t>(parts), [&](int p, TaskStats* stats) -> Status {
            std::map<int64_t, std::vector<ReadingRecord>> merged;
            int64_t bytes = 0;
            for (auto& per_input : buckets) {
              if (static_cast<size_t>(p) >= per_input.size()) continue;
              for (auto& [key, values] : per_input[static_cast<size_t>(p)]) {
                bytes += kKeyBytes + kVectorHeaderBytes +
                         kRecordPayloadBytes *
                             static_cast<int64_t>(values.size());
                auto& dst = merged[key];
                dst.insert(dst.end(),
                           std::make_move_iterator(values.begin()),
                           std::make_move_iterator(values.end()));
              }
            }
            stats->shuffle_bytes = bytes;
            auto& out = series_[static_cast<size_t>(p)];
            out.reserve(merged.size());
            for (auto& [key, values] : merged) {
              SeriesRecord record;
              record.household_id = key;
              record.raw = std::move(values);
              out.push_back(std::move(record));
            }
            std::lock_guard<std::mutex> lock(mu_);
            moved_bytes += bytes;
            return Status::OK();
          }));
      if (cluster_) cached_bytes_ += moved_bytes;
      obs::MetricsRegistry::Global()
          .GetCounter("shuffle.partitions")
          ->Add(parts);
      obs::MetricsRegistry::Global()
          .GetCounter("shuffle.bytes_moved")
          ->Add(moved_bytes);
      readings_.clear();
      return Status::OK();
    }
    // Sort-merge: the regroup is host-side bookkeeping (Hadoop's sort
    // happens inside the already-charged map tasks); the read cost is
    // billed to the consuming wave per partition.
    std::vector<std::map<int64_t, std::vector<ReadingRecord>>> grouped(
        static_cast<size_t>(parts));
    series_read_bytes_.assign(static_cast<size_t>(parts), 0);
    int64_t written_bytes = 0;
    for (auto& partition : readings_) {
      SM_RETURN_IF_ERROR(ctx_.CheckNotStopped());
      for (ReadingRecord& r : partition) {
        const size_t p =
            hasher(r.household_id) % static_cast<size_t>(parts);
        series_read_bytes_[p] += ApproxReadingBytes();
        written_bytes += ApproxReadingBytes();
        grouped[p][r.household_id].push_back(r);
      }
      partition.clear();
      partition.shrink_to_fit();
    }
    readings_.clear();
    series_.assign(static_cast<size_t>(parts), {});
    for (size_t p = 0; p < grouped.size(); ++p) {
      auto& out = series_[p];
      out.reserve(grouped[p].size());
      for (auto& [key, values] : grouped[p]) {
        SeriesRecord record;
        record.household_id = key;
        record.raw = std::move(values);
        out.push_back(std::move(record));
      }
    }
    obs::MetricsRegistry::Global()
        .GetCounter("shuffle.partitions")
        ->Add(parts);
    obs::MetricsRegistry::Global()
        .GetCounter("shuffle.bytes_moved")
        ->Add(written_bytes);
    return Status::OK();
  });
}

Status Execution::BatchKernel(const KernelOp& op) {
  SM_RETURN_IF_ERROR(batch_.Validate());
  ErrorCollector errors;
  const size_t count = batch_.count();
  const TaskOptions& options = op.options;
  // Scoped requests compute only the rows in [first, last). The range
  // kernels index `out` by absolute batch row, so the buffer spans
  // [0, last) and the untouched prefix is trimmed before materialize.
  // When the scan already pushed the scope down, the batch holds exactly
  // the scoped rows and the kernel covers all of them.
  const engines::RowScope scope =
      scan_scope_applied_ ? engines::RowScope{} : options.scope();
  const size_t first = scope.First(count);
  const size_t last = scope.Last(count);
  switch (options.task()) {
    case core::TaskType::kHistogram: {
      const auto& histogram = options.Get<core::HistogramOptions>();
      std::vector<core::HistogramResult> out(last);
      pool().ParallelFor(last - first, [&](size_t begin, size_t end) {
        Status guard = ctx_.CheckNotStopped();
        if (!guard.ok()) {
          errors.Record(guard);
          return;
        }
        errors.Record(core::ComputeHistogramRange(
            batch_, first + begin, first + end, histogram, &ctx_, out));
      });
      SM_RETURN_IF_ERROR(errors.first());
      out.erase(out.begin(), out.begin() + static_cast<ptrdiff_t>(first));
      full_.Mutable<core::HistogramResult>() = std::move(out);
      break;
    }
    case core::TaskType::kThreeLine: {
      const auto& three_line = options.Get<core::ThreeLineOptions>();
      std::vector<core::ThreeLineResult> out(last);
      pool().ParallelFor(last - first, [&](size_t begin, size_t end) {
        Status guard = ctx_.CheckNotStopped();
        if (!guard.ok()) {
          errors.Record(guard);
          return;
        }
        core::ThreeLinePhases local_phases;
        errors.Record(core::ComputeThreeLineRange(batch_, first + begin,
                                                  first + end, three_line,
                                                  &local_phases, &ctx_, out));
        std::lock_guard<std::mutex> lock(mu_);
        phases_.Accumulate(local_phases);
      });
      SM_RETURN_IF_ERROR(errors.first());
      out.erase(out.begin(), out.begin() + static_cast<ptrdiff_t>(first));
      full_.Mutable<core::ThreeLineResult>() = std::move(out);
      break;
    }
    case core::TaskType::kPar: {
      const auto& par = options.Get<core::ParOptions>();
      std::vector<core::DailyProfileResult> out(last);
      pool().ParallelFor(last - first, [&](size_t begin, size_t end) {
        Status guard = ctx_.CheckNotStopped();
        if (!guard.ok()) {
          errors.Record(guard);
          return;
        }
        errors.Record(core::ComputeDailyProfileRange(
            batch_, first + begin, first + end, par, &ctx_, out));
      });
      SM_RETURN_IF_ERROR(errors.first());
      out.erase(out.begin(), out.begin() + static_cast<ptrdiff_t>(first));
      full_.Mutable<core::DailyProfileResult>() = std::move(out);
      break;
    }
    case core::TaskType::kSimilarity: {
      const auto& similarity = options.Get<engines::SimilarityTaskOptions>();
      // The candidate table is always the full (capped) view set; the
      // scope restricts only which query rows are answered, so a
      // scoped run scores every query row against identical candidates.
      const std::vector<core::SeriesView> views = core::BuildSeriesViews(
          batch_, similarity.households > 0
                      ? static_cast<size_t>(similarity.households)
                      : 0);
      const size_t n = views.size();
      const size_t q_first = options.scope().First(n);
      const size_t q_last = options.scope().Last(n);
      const std::vector<double> norms = core::ComputeNorms(views);
      std::vector<core::SimilarityResult> out(q_last);
      pool().ParallelFor(q_last - q_first, [&](size_t begin, size_t end) {
        Status guard = ctx_.CheckNotStopped();
        if (!guard.ok()) {
          errors.Record(guard);
          return;
        }
        Result<std::vector<core::SimilarityResult>> chunk =
            core::ComputeSimilarityTopKRange(views, norms, q_first + begin,
                                             q_first + end, similarity.search,
                                             &ctx_);
        if (!chunk.ok()) {
          errors.Record(chunk.status());
          return;
        }
        for (size_t i = begin; i < end; ++i) {
          out[q_first + i] = std::move((*chunk)[i - begin]);
        }
      });
      SM_RETURN_IF_ERROR(errors.first());
      out.erase(out.begin(), out.begin() + static_cast<ptrdiff_t>(q_first));
      full_.Mutable<core::SimilarityResult>() = std::move(out);
      break;
    }
  }
  have_full_ = true;
  return Status::OK();
}

Status Execution::SeriesKernel(const KernelOp& op) {
  const bool from_readings = series_.empty() && !readings_.empty();
  const size_t parts = from_readings ? readings_.size() : series_.size();
  partials_.assign(parts, TaskResultSet{});
  const std::vector<double>* shared_temperature = shared_temperature_.get();
  SM_RETURN_IF_ERROR(
      RunPartitions(parts, [&](int p, TaskStats* stats) -> Status {
        core::ThreeLinePhases local_phases;
        std::vector<SeriesRecord> local;
        std::vector<SeriesRecord>* records = nullptr;
        if (from_readings) {
          // No shuffle ran (whole-file splits): group within the
          // partition, the map-side equivalent of format 3's in-task
          // assembly.
          std::map<int64_t, std::vector<ReadingRecord>> grouped;
          for (ReadingRecord& r : readings_[p]) {
            grouped[r.household_id].push_back(r);
          }
          readings_[p].clear();
          readings_[p].shrink_to_fit();
          local.reserve(grouped.size());
          for (auto& [key, values] : grouped) {
            SeriesRecord record;
            record.household_id = key;
            record.raw = std::move(values);
            local.push_back(std::move(record));
          }
          records = &local;
        } else {
          records = &series_[p];
        }
        for (SeriesRecord& record : *records) {
          SM_RETURN_IF_ERROR(ComputeSeries(ctx_, op.options, &record,
                                           shared_temperature, &local_phases,
                                           &partials_[p]));
        }
        if (!series_read_bytes_.empty()) {
          stats->shuffle_bytes += series_read_bytes_[p];
        }
        std::lock_guard<std::mutex> lock(mu_);
        phases_.Accumulate(local_phases);
        return Status::OK();
      }));
  series_read_bytes_.clear();
  series_.clear();
  readings_.clear();
  return Status::OK();
}

Status Execution::SimilarityOverSeries(const KernelOp& op) {
  const auto& similarity = op.options.Get<engines::SimilarityTaskOptions>();
  // Gather the assembled table to the driver, canonically ordered.
  std::vector<SeriesRecord> table;
  for (auto& partition : series_) {
    SM_RETURN_IF_ERROR(ctx_.CheckNotStopped());
    for (SeriesRecord& record : partition) {
      AssembleRecord(&record);
      table.push_back(std::move(record));
    }
  }
  series_.clear();
  series_read_bytes_.clear();
  std::sort(table.begin(), table.end(),
            [](const SeriesRecord& a, const SeriesRecord& b) {
              return a.household_id < b.household_id;
            });
  if (similarity.households > 0 &&
      table.size() > static_cast<size_t>(similarity.households)) {
    table.resize(static_cast<size_t>(similarity.households));
  }
  int64_t table_bytes = 0;
  for (const SeriesRecord& record : table) {
    table_bytes += ApproxSeriesBytes(record);
  }
  std::vector<int64_t> ids;
  std::vector<table::SeriesSlice> slices;
  ids.reserve(table.size());
  slices.reserve(table.size());
  for (const SeriesRecord& record : table) {
    ids.push_back(record.household_id);
    slices.emplace_back(record.consumption);
  }
  SM_ASSIGN_OR_RETURN(table::ColumnarBatch batch,
                      table::ColumnarBatch::FromSlices(
                          std::move(ids), std::move(slices), {}));
  const std::vector<core::SeriesView> views = core::BuildSeriesViews(batch);
  const std::vector<double> norms = core::ComputeNorms(views);
  const size_t n = views.size();
  if (cluster_ && op.broadcast_series_table) {
    // Broadcast the (id, series) table and the norms; parallelize the
    // query ids (Spark's shuffle-free self-join).
    ChargeBroadcast(kVectorHeaderBytes + table_bytes);
    ChargeBroadcast(kVectorHeaderBytes + 8 * static_cast<int64_t>(n));
    cached_bytes_ += 8 * static_cast<int64_t>(n);
  }
  if (!cluster_) {
    // Local: the gathered table is just a batch; run the batch kernel's
    // guided loop over query rows.
    ErrorCollector errors;
    std::vector<core::SimilarityResult> out(n);
    pool().ParallelFor(n, [&](size_t begin, size_t end) {
      Status guard = ctx_.CheckNotStopped();
      if (!guard.ok()) {
        errors.Record(guard);
        return;
      }
      Result<std::vector<core::SimilarityResult>> chunk =
          core::ComputeSimilarityTopKRange(views, norms, begin, end,
                                           similarity.search, &ctx_);
      if (!chunk.ok()) {
        errors.Record(chunk.status());
        return;
      }
      for (size_t i = begin; i < end; ++i) {
        out[i] = std::move((*chunk)[i - begin]);
      }
    });
    SM_RETURN_IF_ERROR(errors.first());
    full_.Mutable<core::SimilarityResult>() = std::move(out);
    have_full_ = true;
    return Status::OK();
  }
  // Simulated cluster: one join task per slot over a contiguous query
  // range.
  const size_t tasks = static_cast<size_t>(DefaultPartitions());
  partials_.assign(tasks, TaskResultSet{});
  SM_RETURN_IF_ERROR(
      RunPartitions(tasks, [&](int t, TaskStats* stats) -> Status {
        const size_t begin = n * static_cast<size_t>(t) / tasks;
        const size_t end = n * (static_cast<size_t>(t) + 1) / tasks;
        if (op.shuffle_table_per_task) {
          // Every join task re-reads the full table through the shuffle.
          stats->shuffle_bytes += table_bytes;
        }
        if (begin == end) return Status::OK();
        SM_ASSIGN_OR_RETURN(
            std::vector<core::SimilarityResult> chunk,
            core::ComputeSimilarityTopKRange(views, norms, begin, end,
                                             similarity.search, &ctx_));
        partials_[t].Mutable<core::SimilarityResult>() = std::move(chunk);
        return Status::OK();
      }));
  return Status::OK();
}

Status Execution::RunKernel(const PlanStage& stage, const KernelOp& op) {
  const int parts =
      have_batch_ ? 1
                  : static_cast<int>(series_.empty() ? readings_.size()
                                                     : series_.size());
  return TimedStage(stage, std::max(parts, 1), [&]() -> Status {
    obs::SpanScope task_span(TaskSpanName(op.options.task()));
    if (cluster_) {
      if (op.broadcast_bytes > 0) ChargeBroadcast(op.broadcast_bytes);
      simulated_seconds_ += op.extra_overhead_seconds;
    }
    if (have_batch_) return BatchKernel(op);
    if (!op.options.scope().whole()) {
      // The partitioned series paths re-group records by household hash
      // and lose row positions, so a row scope has no meaning there.
      return Status::NotSupported(
          "row-scoped kernels require a batch-scan plan");
    }
    if (op.options.task() == core::TaskType::kSimilarity) {
      return SimilarityOverSeries(op);
    }
    return SeriesKernel(op);
  });
}

Status Execution::RunFused(const PlanStage& scan_stage, const ScanOp& scan,
                           const PlanStage& kernel_stage,
                           const KernelOp& kernel) {
  if (scan.kind == ScanOp::Kind::kBatch) {
    return Status::Internal("batch scans cannot fuse into a kernel wave");
  }
  if (kernel.options.task() == core::TaskType::kSimilarity) {
    return Status::Internal("similarity kernels cannot fuse with a scan");
  }
  if (!kernel.options.scope().whole()) {
    return Status::NotSupported(
        "row-scoped kernels require a batch-scan plan");
  }
  // The combined wave is billed to the kernel stage (where the work
  // lands); the scan stage keeps a zero-cost row so plans stay readable.
  AddStageRow(scan_stage.name, 0.0, scan.partitions);
  shared_temperature_ = scan.shared_temperature;
  const std::vector<double>* shared_temperature = shared_temperature_.get();
  return TimedStage(kernel_stage, scan.partitions, [&]() -> Status {
    obs::SpanScope task_span(TaskSpanName(kernel.options.task()));
    if (cluster_) {
      simulated_seconds_ += scan.driver_seconds;
      if (kernel.broadcast_bytes > 0) ChargeBroadcast(kernel.broadcast_bytes);
      simulated_seconds_ += kernel.extra_overhead_seconds;
    }
    const size_t parts = static_cast<size_t>(std::max(1, scan.partitions));
    partials_.assign(parts, TaskResultSet{});
    return RunPartitions(parts, [&](int i, TaskStats* stats) -> Status {
      core::ThreeLinePhases local_phases;
      std::vector<SeriesRecord> records;
      if (scan.kind == ScanOp::Kind::kSeries) {
        if (!scan.scan_series) {
          return Status::Internal("scan has no series source");
        }
        SM_RETURN_IF_ERROR(scan.scan_series(i, &records, stats));
      } else {
        if (!scan.scan_readings) {
          return Status::Internal("scan has no readings source");
        }
        std::vector<ReadingRecord> rows;
        SM_RETURN_IF_ERROR(scan.scan_readings(i, &rows, stats));
        std::map<int64_t, std::vector<ReadingRecord>> grouped;
        for (ReadingRecord& r : rows) grouped[r.household_id].push_back(r);
        records.reserve(grouped.size());
        for (auto& [key, values] : grouped) {
          SeriesRecord record;
          record.household_id = key;
          record.raw = std::move(values);
          records.push_back(std::move(record));
        }
      }
      for (SeriesRecord& record : records) {
        SM_RETURN_IF_ERROR(ComputeSeries(ctx_, kernel.options, &record,
                                         shared_temperature, &local_phases,
                                         &partials_[i]));
      }
      std::lock_guard<std::mutex> lock(mu_);
      phases_.Accumulate(local_phases);
      return Status::OK();
    });
  });
}

Status Execution::RunMaterialize(const PlanStage& stage) {
  return TimedStage(stage, 1, [&]() -> Status {
    if (results_ == nullptr) {
      partials_.clear();
      full_.Clear();
      have_full_ = false;
      return Status::OK();
    }
    if (have_full_) {
      engines::MergeResults(std::move(full_), results_);
      full_.Clear();
      have_full_ = false;
      return Status::OK();
    }
    for (TaskResultSet& partial : partials_) {
      engines::MergeResults(std::move(partial), results_);
    }
    partials_.clear();
    return Status::OK();
  });
}

Status Execution::RunMerge(const PlanStage& stage, const MergeOp& op) {
  return TimedStage(stage, 1, [&]() -> Status {
    if (op.sort_by_household && results_ != nullptr) {
      engines::SortResultsByHousehold(results_);
    }
    return Status::OK();
  });
}

Result<PlanRunMetrics> Execution::Run() {
  Stopwatch clock;
  if (results_ != nullptr) results_->Clear();
  if (cluster_ && policy_.job_overhead_seconds > 0.0) {
    // Job submission / DAG scheduling: a synthetic stage row so the
    // per-stage timings sum to the reported task seconds.
    simulated_seconds_ += policy_.job_overhead_seconds;
    AddStageRow("driver", policy_.job_overhead_seconds, 1);
  }
  for (size_t i = 0; i < plan_.stages.size(); ++i) {
    SM_RETURN_IF_ERROR(ctx_.CheckNotStopped());
    const PlanStage& stage = plan_.stages[i];
    const ScanOp* scan = std::get_if<ScanOp>(&stage.op);
    const KernelOp* fused = nullptr;
    if (scan != nullptr && i + 1 < plan_.stages.size()) {
      const KernelOp* next = std::get_if<KernelOp>(&plan_.stages[i + 1].op);
      if (next != nullptr && next->fuse_scan) fused = next;
    }
    if (fused != nullptr) {
      SM_RETURN_IF_ERROR(RunFused(stage, *scan, plan_.stages[i + 1], *fused));
      ++i;
      continue;
    }
    if (scan != nullptr) {
      const ShuffleOp* next =
          i + 1 < plan_.stages.size()
              ? std::get_if<ShuffleOp>(&plan_.stages[i + 1].op)
              : nullptr;
      const bool sort_merge_follows =
          next != nullptr && next->strategy == ShuffleOp::Strategy::kSortMerge;
      const KernelOp* next_kernel =
          i + 1 < plan_.stages.size()
              ? std::get_if<KernelOp>(&plan_.stages[i + 1].op)
              : nullptr;
      SM_RETURN_IF_ERROR(
          RunScan(stage, *scan, sort_merge_follows, next_kernel));
      continue;
    }
    if (const ShuffleOp* shuffle = std::get_if<ShuffleOp>(&stage.op)) {
      SM_RETURN_IF_ERROR(RunShuffle(stage, *shuffle));
      continue;
    }
    if (const KernelOp* kernel = std::get_if<KernelOp>(&stage.op)) {
      SM_RETURN_IF_ERROR(RunKernel(stage, *kernel));
      continue;
    }
    if (std::get_if<MaterializeOp>(&stage.op) != nullptr) {
      SM_RETURN_IF_ERROR(RunMaterialize(stage));
      continue;
    }
    if (const MergeOp* merge = std::get_if<MergeOp>(&stage.op)) {
      SM_RETURN_IF_ERROR(RunMerge(stage, *merge));
      continue;
    }
    return Status::Internal("unknown plan operator");
  }
  PlanRunMetrics metrics;
  metrics.simulated = cluster_;
  metrics.seconds = cluster_ ? simulated_seconds_ : clock.ElapsedSeconds();
  metrics.phases = phases_;
  metrics.stages = std::move(stage_rows_);
  metrics.faults = fault_stats_;
  metrics.scan = scan_stats_;
  if (fault_stats_.any()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("cluster.task.retries")->Add(fault_stats_.retries);
    registry.GetCounter("cluster.task.stragglers")
        ->Add(fault_stats_.stragglers);
    registry.GetCounter("cluster.task.speculative_launched")
        ->Add(fault_stats_.speculative_launched);
    registry.GetCounter("cluster.task.speculative_wins")
        ->Add(fault_stats_.speculative_wins);
  }
  switch (policy_.memory_model) {
    case ExecutionPolicy::MemoryModel::kNone:
      break;
    case ExecutionPolicy::MemoryModel::kPeakTaskTimesSlots:
      metrics.modeled_memory_bytes =
          peak_task_bytes_ * policy_.cluster.slots_per_node;
      break;
    case ExecutionPolicy::MemoryModel::kResidentPlusTaskBuffers:
      metrics.modeled_memory_bytes =
          cached_bytes_ / std::max(1, policy_.cluster.num_nodes) +
          static_cast<int64_t>(policy_.cluster.slots_per_node) * 3 *
              policy_.block_bytes;
      break;
  }
  return metrics;
}

}  // namespace

std::string ExecutionPolicy::DebugString() const {
  if (dispatch == Dispatch::kLocalPool) {
    return "local-pool threads=" + std::to_string(threads);
  }
  std::string out = "simulated-cluster nodes=" +
                    std::to_string(cluster.num_nodes) +
                    " slots/node=" + std::to_string(cluster.slots_per_node);
  switch (memory_model) {
    case MemoryModel::kNone:
      break;
    case MemoryModel::kPeakTaskTimesSlots:
      out += " memory=peak-task-x-slots";
      break;
    case MemoryModel::kResidentPlusTaskBuffers:
      out += " memory=resident+task-buffers";
      break;
  }
  return out;
}

Result<PlanRunMetrics> PlanExecutor::Run(const QueryContext& ctx,
                                         const Plan& plan,
                                         const ExecutionPolicy& policy,
                                         engines::TaskResultSet* results) {
  SM_TRACE_SPAN("plan.execute");
  Execution execution(ctx, plan, policy, results);
  return execution.Run();
}

Result<PlanRunMetrics> PlanExecutor::RunGather(
    const QueryContext& ctx, std::vector<engines::TaskResultSet> partials,
    bool sort_by_household, engines::TaskResultSet* results) {
  SM_TRACE_SPAN("plan.gather");
  Plan plan;
  plan.label = "gather";
  plan.stages.push_back({"materialize", MaterializeOp{}});
  MergeOp merge;
  merge.sort_by_household = sort_by_household;
  plan.stages.push_back({"merge", merge});
  const ExecutionPolicy policy;  // Local, serial: gather is merge-bound.
  Execution execution(ctx, plan, policy, results);
  execution.SeedPartials(std::move(partials));
  return execution.Run();
}

}  // namespace smartmeter::exec
