#ifndef SMARTMETER_EXEC_QUERY_CONTEXT_H_
#define SMARTMETER_EXEC_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace smartmeter::exec {

/// Shared cancellation flag. One token may be observed by many worker
/// threads while a controller (client disconnect, serving-layer timeout
/// sweep) flips it once; observation is a relaxed atomic load, cheap
/// enough for per-household checks inside the task kernels.
class CancellationToken {
 public:
  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Admission-queue ordering for the serving layer; higher runs first.
enum class QueryPriority : int {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,
};

std::string_view QueryPriorityName(QueryPriority priority);

/// Per-query execution context threaded from the serving layer through
/// an engine's RunTask into the task kernels' hot loops: carries the
/// cooperative cancellation token, an optional deadline, the admission
/// priority, and an observability label identifying the query in
/// metrics and trace spans.
///
/// Kernels poll ShouldStop() between units of work (one household, one
/// similarity query row) and bail out with CheckNotStopped()'s status,
/// so a cancelled or timed-out query stops scanning within one unit of
/// work rather than running to completion.
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  QueryContext() : token_(std::make_shared<CancellationToken>()) {}

  /// A process-lifetime context with no deadline that is never
  /// cancelled: the implicit context of batch benchmark runs.
  static const QueryContext& Background();

  // -- Identity / observability -------------------------------------------
  uint64_t query_id() const { return query_id_; }
  void set_query_id(uint64_t id) { query_id_ = id; }

  /// Short label recorded with serving metrics ("client-3/q17").
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  // -- Priority ------------------------------------------------------------
  QueryPriority priority() const { return priority_; }
  void set_priority(QueryPriority priority) { priority_ = priority; }

  // -- Deadline ------------------------------------------------------------
  bool has_deadline() const { return deadline_.has_value(); }
  Clock::time_point deadline() const { return *deadline_; }
  void set_deadline(Clock::time_point deadline) { deadline_ = deadline; }
  /// Sets the deadline `budget` from now.
  void set_deadline_after(std::chrono::nanoseconds budget) {
    deadline_ = Clock::now() + budget;
  }
  void clear_deadline() { deadline_.reset(); }

  // -- Cancellation --------------------------------------------------------
  const std::shared_ptr<CancellationToken>& token() const { return token_; }
  /// Shares another query's token (scatter-gather children observe their
  /// parent's cancellation; cancelling any of them stops the whole fan).
  void set_token(std::shared_ptr<CancellationToken> token) {
    token_ = std::move(token);
  }
  void RequestCancel() const { token_->RequestCancel(); }
  bool cancelled() const { return token_->cancelled(); }

  /// True once the query should stop: its token was cancelled or its
  /// deadline passed. A passed deadline also trips the token so every
  /// other worker of the same query sees the cheap flag, not the clock.
  bool ShouldStop() const {
    if (token_->cancelled()) return true;
    if (deadline_.has_value() && Clock::now() >= *deadline_) {
      token_->RequestCancel();
      deadline_expired_.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  /// OK while the query may continue; Cancelled or DeadlineExceeded once
  /// it should stop. This is what kernels return up the stack.
  Status CheckNotStopped() const;

 private:
  uint64_t query_id_ = 0;
  std::string label_;
  QueryPriority priority_ = QueryPriority::kNormal;
  std::optional<Clock::time_point> deadline_;
  std::shared_ptr<CancellationToken> token_;
  /// Distinguishes "deadline tripped the token" from an explicit cancel
  /// so CheckNotStopped reports the right code from any thread.
  mutable std::atomic<bool> deadline_expired_{false};
};

}  // namespace smartmeter::exec

#endif  // SMARTMETER_EXEC_QUERY_CONTEXT_H_
