#ifndef SMARTMETER_EXEC_PLAN_H_
#define SMARTMETER_EXEC_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "cluster/task_scheduler.h"
#include "common/result.h"
#include "engines/task_api.h"
#include "storage/scan_scope.h"
#include "table/columnar_batch.h"

namespace smartmeter::exec {

/// One reading as it flows between the stages of a cluster-style plan
/// (the shuffled unit of the paper's data format 1). Sized so the
/// modeled wire format matches the (household, hour-record) pairs the
/// simulated frameworks shuffle: 8 key bytes + 24 payload bytes.
struct ReadingRecord {
  int64_t household_id = 0;
  int32_t hour = 0;
  double consumption = 0.0;
  double temperature = 0.0;
};

/// One household between stages: either an assembled series (consumption
/// aligned by hour, optional per-household temperature) or the raw
/// shuffled readings still awaiting assembly. Assembly happens inside
/// the kernel stage so its CPU time lands in that stage's (simulated)
/// task, exactly where the reduce/MapPartitions work ran before.
struct SeriesRecord {
  int64_t household_id = 0;
  std::vector<double> consumption;
  std::vector<double> temperature;
  /// Unassembled shuffle output; empty once assembled.
  std::vector<ReadingRecord> raw;
};

/// Modeled serialized sizes on the simulated wire.
inline int64_t ApproxReadingBytes() { return 32; }
inline int64_t ApproxSeriesBytes(const SeriesRecord& record) {
  return 24 + static_cast<int64_t>(record.consumption.size()) * 8;
}

/// A scanned batch plus whatever owns the memory it views (a table
/// reader, a parsed dataset); null owner means the caller guarantees
/// lifetime (resident engine state). `stats` reports what the scan cost
/// against a block-indexed store (zero for unindexed sources).
struct BatchScan {
  table::ColumnarBatch batch;
  std::shared_ptr<const void> owner;
  storage::ScanStats stats;
};

/// Scan: materializes the plan's input. Exactly one of the three
/// callbacks is set, matching `kind`:
///  * kBatch    -- one columnar batch (resident, mmap'd, or parsed); the
///                 whole-dataset granularity of the single-node engines.
///  * kReadings -- per-partition reading rows (splittable cluster scans
///                 ahead of a shuffle, or format 3's whole-file splits
///                 grouped later in-partition).
///  * kSeries   -- per-partition assembled households (format 2 lines,
///                 one file per household).
/// Partitioned callbacks fill cluster::TaskStats with the partition's
/// modeled costs (input bytes, files opened, fixed seconds); the
/// executor prices them only under simulated-cluster dispatch.
struct ScanOp {
  enum class Kind { kBatch, kReadings, kSeries };
  Kind kind = Kind::kBatch;
  /// Display name of the storage being scanned ("resident-batch",
  /// "row-store", "splits", "household-files", ...).
  std::string source;
  int partitions = 1;
  std::function<Result<BatchScan>()> scan_batch;
  /// Optional scoped variant of `scan_batch`: materializes only the rows
  /// and hours of a ScanScope, decoding just the index-matching blocks
  /// of an SMCOLV2 store. When set, the executor pushes the next
  /// kernel's row scope down into the scan (and clears it from the
  /// kernel) instead of scanning everything and slicing later.
  /// Similarity plans never push down — their candidate table must stay
  /// the whole batch.
  std::function<Result<BatchScan>(const storage::ScanScope&)>
      scan_batch_scoped;
  std::function<Status(int partition, std::vector<ReadingRecord>* out,
                       cluster::TaskStats* stats)>
      scan_readings;
  std::function<Status(int partition, std::vector<SeriesRecord>* out,
                       cluster::TaskStats* stats)>
      scan_series;
  /// Serial driver-side seconds charged with this scan under simulated
  /// dispatch (Spark's per-partition scheduling, wholeTextFiles listing).
  double driver_seconds = 0.0;
  /// Shared temperature column for scans whose records carry none (the
  /// format-2 sidecar, broadcast/distributed-cache shipped).
  std::shared_ptr<const std::vector<double>> shared_temperature;
};

/// Shuffle: regroups reading records by household.
///  * kDataflow  -- Spark-style wide stage: a bucket wave and a merge
///                  wave, both charged shuffle bytes (the 2 extra task
///                  waves of a dataflow groupByKey).
///  * kSortMerge -- Hadoop-style sort-shuffle: the regroup itself is
///                  host-side bookkeeping; its read cost is charged to
///                  the next (reduce) wave's tasks, as RunMapReduce did.
struct ShuffleOp {
  enum class Strategy { kDataflow, kSortMerge };
  Strategy strategy = Strategy::kSortMerge;
  /// Output partitions; 0 means one per cluster slot (simulated) or one
  /// per thread (local).
  int partitions = 0;
};

/// KernelMap: runs one of the four task kernels over whatever form the
/// upstream stages produced (batch, readings, or series).
struct KernelOp {
  engines::TaskOptions options;
  /// Stream scan partitions straight into the kernel: one pass, one
  /// wave, one household resident per worker (Matlab's file-at-a-time
  /// loop; Hive's map-only UDF/UDTF plans).
  bool fuse_scan = false;
  /// Modeled bytes shipped to every node before compute (broadcast
  /// variable / distributed cache).
  int64_t broadcast_bytes = 0;
  /// Similarity only: broadcast the assembled series table + norms
  /// (sized after assembly, so flagged rather than precomputed).
  bool broadcast_series_table = false;
  /// Similarity only: every join task re-reads the full series table
  /// through the shuffle (Hive's self-join without map-side joins).
  bool shuffle_table_per_task = false;
  /// Extra driver overhead when this kernel launches a second job.
  double extra_overhead_seconds = 0.0;
};

/// Materialize: gathers per-partition partial result sets, in partition
/// order (deterministic for file-aligned plans).
struct MaterializeOp {};

/// Merge: canonical household order for plans whose partitioning does
/// not already produce it (everything downstream of a shuffle).
struct MergeOp {
  bool sort_by_household = true;
};

using PlanOp =
    std::variant<ScanOp, ShuffleOp, KernelOp, MaterializeOp, MergeOp>;

/// One stage of a physical plan. `name` keys the per-stage metrics
/// (plan.stage.<name>.ns counters, report rows), so keep it short and
/// stable: "scan", "shuffle", "kernel", "materialize", "merge".
struct PlanStage {
  std::string name;
  PlanOp op;
};

/// A physical execution plan: what to run, in stage order. How to run it
/// (dispatch backend, threads, cluster model) lives in ExecutionPolicy;
/// the same plan shape priced under two policies is exactly the paper's
/// platform comparison.
struct Plan {
  /// "engine/task/layout", used in labels and DebugString.
  std::string label;
  std::vector<PlanStage> stages;

  /// Stable, human-diffable plan shape (no timings, no data-dependent
  /// float formatting) -- the golden-test surface for plan reviews.
  std::string DebugString() const;
};

}  // namespace smartmeter::exec

#endif  // SMARTMETER_EXEC_PLAN_H_
