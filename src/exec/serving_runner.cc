#include "exec/serving_runner.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "engines/benchmark_runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace smartmeter::exec {

namespace {

obs::Counter* SubmittedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.submitted");
  return counter;
}

obs::Counter* AdmittedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.admitted");
  return counter;
}

obs::Counter* CompletedOkCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.completed_ok");
  return counter;
}

obs::Counter* ShedQueueFullCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.shed_queue_full");
  return counter;
}

obs::Counter* ShedDeadlineCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.shed_deadline");
  return counter;
}

obs::Counter* ShedCancelledCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.shed_cancelled");
  return counter;
}

obs::Counter* FailedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.failed");
  return counter;
}

obs::Gauge* QueueDepthPeakGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("serving.queue_depth_peak");
  return gauge;
}

obs::LatencyHistogram* QueueLatencyHistogram() {
  static obs::LatencyHistogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("serving.queue_seconds");
  return histogram;
}

obs::LatencyHistogram* QueryLatencyHistogram() {
  static obs::LatencyHistogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("serving.query_seconds");
  return histogram;
}

}  // namespace

const QueryOutcome& QueryTicket::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return outcome_;
}

bool QueryTicket::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void QueryTicket::Finish(QueryOutcome outcome) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SM_CHECK(!done_) << "query ticket resolved twice";
    outcome_ = std::move(outcome);
    done_ = true;
  }
  cv_.notify_all();
}

ServingRunner::ServingRunner(ServingOptions options)
    : options_(options) {
  SM_CHECK(options_.queue_capacity >= 1) << "admission queue needs capacity";
}

ServingRunner::~ServingRunner() { Shutdown(); }

void ServingRunner::AddSession(engines::AnalyticsEngine* engine) {
  SM_CHECK(engine != nullptr) << "serving session needs an engine";
  std::lock_guard<std::mutex> lock(mu_);
  SM_CHECK(!shutting_down_) << "AddSession after Shutdown";
  ++sessions_;
  dispatchers_.emplace_back(&ServingRunner::DispatchLoop, this, engine);
}

Result<double> ServingRunner::AttachSession(engines::AnalyticsEngine* engine,
                                            const table::DataSource& source) {
  SM_CHECK(engine != nullptr) << "serving session needs an engine";
  SM_RETURN_IF_ERROR(source.Validate());
  SM_ASSIGN_OR_RETURN(const double attach_seconds, engine->Attach(source));
  AddSession(engine);
  return attach_seconds;
}

size_t ServingRunner::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_;
}

Result<std::shared_ptr<QueryTicket>> ServingRunner::Submit(
    QueryRequest request) {
  SubmittedCounter()->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
  }

  auto ticket = std::make_shared<QueryTicket>();
  ticket->context_.set_query_id(
      next_query_id_.fetch_add(1, std::memory_order_relaxed));
  ticket->context_.set_label(request.label);
  ticket->context_.set_priority(request.priority);
  if (request.deadline.count() > 0) {
    ticket->context_.set_deadline_after(request.deadline);
  }
  ticket->options_ = std::move(request.options);
  ticket->submitted_at_ = std::chrono::steady_clock::now();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ || queued_ >= options_.queue_capacity) {
      ShedQueueFullCounter()->Increment();
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.shed_queue_full;
      return Status::ResourceExhausted(StringPrintf(
          "admission queue full (%zu queued, capacity %zu): query '%s' shed",
          queued_, options_.queue_capacity, request.label.c_str()));
    }
    const auto p = static_cast<size_t>(request.priority);
    SM_CHECK(p < kPriorities) << "bad query priority";
    queues_[p].push_back(ticket);
    ++queued_;
    QueueDepthPeakGauge()->UpdateMax(static_cast<int64_t>(queued_));
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.admitted;
      stats_.peak_queue_depth = std::max(
          stats_.peak_queue_depth, static_cast<int64_t>(queued_));
    }
  }
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++unresolved_;
  }
  AdmittedCounter()->Increment();
  queue_cv_.notify_one();
  return ticket;
}

std::shared_ptr<QueryTicket> ServingRunner::NextQuery() {
  std::unique_lock<std::mutex> lock(mu_);
  queue_cv_.wait(lock, [this] { return shutting_down_ || queued_ > 0; });
  // Drain remaining queries even during shutdown so every admitted
  // ticket resolves (they shed quickly: Shutdown cancels them).
  for (size_t p = kPriorities; p-- > 0;) {
    if (!queues_[p].empty()) {
      std::shared_ptr<QueryTicket> ticket = std::move(queues_[p].front());
      queues_[p].pop_front();
      --queued_;
      return ticket;
    }
  }
  return nullptr;  // Shutting down with an empty queue.
}

void ServingRunner::ResolveTicket(const std::shared_ptr<QueryTicket>& ticket,
                                  QueryOutcome outcome) {
  QueryLatencyHistogram()->Record(outcome.queue_seconds + outcome.run_seconds);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (outcome.status.ok()) {
      ++stats_.completed_ok;
    } else if (outcome.shed) {
      if (outcome.status.code() == StatusCode::kDeadlineExceeded) {
        ++stats_.shed_deadline;
      } else {
        ++stats_.shed_cancelled;
      }
    } else {
      ++stats_.failed;
    }
  }
  if (outcome.status.ok()) {
    CompletedOkCounter()->Increment();
  } else if (outcome.shed) {
    if (outcome.status.code() == StatusCode::kDeadlineExceeded) {
      ShedDeadlineCounter()->Increment();
    } else {
      ShedCancelledCounter()->Increment();
    }
  } else {
    FailedCounter()->Increment();
  }
  ticket->Finish(std::move(outcome));
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    --unresolved_;
  }
  drained_cv_.notify_all();
}

void ServingRunner::RunQuery(engines::AnalyticsEngine* engine,
                             const std::shared_ptr<QueryTicket>& ticket) {
  const QueryContext& ctx = ticket->context_;
  QueryOutcome outcome;
  outcome.query_id = ctx.query_id();
  outcome.label = ctx.label();
  outcome.queue_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ticket->submitted_at_)
          .count();
  QueueLatencyHistogram()->Record(outcome.queue_seconds);

  // A query whose deadline expired (or that was cancelled) while queued
  // is shed without touching the engine.
  Status admission = ctx.CheckNotStopped();
  if (!admission.ok()) {
    outcome.status = std::move(admission);
    outcome.shed = true;
    ResolveTicket(ticket, std::move(outcome));
    return;
  }

  Stopwatch run_timer;
  Result<engines::RunReport> report = engines::RunTaskOnEngine(
      engine, ctx, ticket->options_, options_.threads_per_query,
      /*sample_memory=*/false, /*keep_outputs=*/options_.keep_results);
  outcome.run_seconds = run_timer.ElapsedSeconds();
  if (report.ok()) {
    outcome.status = Status::OK();
    outcome.stages = std::move(report->stages);
    if (options_.keep_results) outcome.results = std::move(report->results);
  } else {
    outcome.status = report.status();
    // Deadline/cancel surfacing from inside the kernels is a shed, not
    // an engine failure.
    outcome.shed =
        outcome.status.code() == StatusCode::kDeadlineExceeded ||
        outcome.status.code() == StatusCode::kCancelled;
  }
  ResolveTicket(ticket, std::move(outcome));
}

void ServingRunner::DispatchLoop(engines::AnalyticsEngine* engine) {
  for (;;) {
    std::shared_ptr<QueryTicket> ticket = NextQuery();
    if (ticket == nullptr) return;
    SM_TRACE_SPAN("serving.query");
    RunQuery(engine, ticket);
  }
}

void ServingRunner::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drained_cv_.wait(lock, [this] { return unresolved_ == 0; });
}

void ServingRunner::Shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && dispatchers_.empty()) return;
    shutting_down_ = true;
    // Cancel whatever is still queued so dispatchers shed it quickly
    // instead of running long queries during teardown.
    for (auto& queue : queues_) {
      for (const auto& ticket : queue) ticket->RequestCancel();
    }
    to_join.swap(dispatchers_);
  }
  queue_cv_.notify_all();
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
  // With no sessions (or none left), queued tickets have no dispatcher
  // to shed them; resolve them here so waiters never hang.
  std::vector<std::shared_ptr<QueryTicket>> stranded;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& queue : queues_) {
      for (auto& ticket : queue) stranded.push_back(std::move(ticket));
      queue.clear();
    }
    queued_ = 0;
  }
  for (const auto& ticket : stranded) {
    QueryOutcome outcome;
    outcome.query_id = ticket->context_.query_id();
    outcome.label = ticket->context_.label();
    outcome.status = Status::Cancelled(
        "serving runner shut down before query dispatched");
    outcome.shed = true;
    outcome.queue_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      ticket->submitted_at_)
            .count();
    ResolveTicket(ticket, std::move(outcome));
  }
}

ServingStats ServingRunner::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace smartmeter::exec
