#include "exec/serving_runner.h"

#include <algorithm>
#include <numeric>
#include <type_traits>
#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "engines/benchmark_runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "table/columnar_cache.h"

namespace smartmeter::exec {

namespace {

obs::Counter* SubmittedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.submitted");
  return counter;
}

obs::Counter* AdmittedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.admitted");
  return counter;
}

obs::Counter* CompletedOkCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.completed_ok");
  return counter;
}

obs::Counter* ShedQueueFullCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.shed_queue_full");
  return counter;
}

obs::Counter* ShedQuotaCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.shed_quota");
  return counter;
}

obs::Counter* ShedEvictedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.shed_evicted");
  return counter;
}

obs::Counter* ShedDeadlineCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.shed_deadline");
  return counter;
}

obs::Counter* ShedCancelledCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.shed_cancelled");
  return counter;
}

obs::Counter* FailedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("serving.failed");
  return counter;
}

obs::Gauge* QueueDepthPeakGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("serving.queue_depth_peak");
  return gauge;
}

obs::LatencyHistogram* QueueLatencyHistogram() {
  static obs::LatencyHistogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("serving.queue_seconds");
  return histogram;
}

obs::LatencyHistogram* QueryLatencyHistogram() {
  static obs::LatencyHistogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("serving.query_seconds");
  return histogram;
}

/// Keeps only `household`'s row of whichever result vector is held
/// (routed queries run over their whole shard slice; the client asked
/// for one household).
void FilterResultsToHousehold(int64_t household,
                              engines::TaskResultSet* results) {
  std::visit(
      [&](auto& alternative) {
        using T = std::decay_t<decltype(alternative)>;
        if constexpr (!std::is_same_v<T, std::monostate>) {
          std::erase_if(alternative, [&](const auto& row) {
            return row.household_id != household;
          });
        }
      },
      results->variant());
}

}  // namespace

// ---------------------------------------------------------------------------
// QueryRequest::Builder
// ---------------------------------------------------------------------------

Result<QueryRequest> QueryRequest::Builder::Build() const {
  if (request_.tenant_.empty()) {
    return Status::InvalidArgument(StringPrintf(
        "query '%s': tenant id must be non-empty", request_.label_.c_str()));
  }
  if (request_.deadline_.count() < 0) {
    return Status::InvalidArgument(
        StringPrintf("query '%s': deadline must be non-negative, got %lld ns",
                     request_.label_.c_str(),
                     static_cast<long long>(request_.deadline_.count())));
  }
  if (request_.household_ != kAllHouseholds && request_.household_ < 0) {
    return Status::InvalidArgument(StringPrintf(
        "query '%s': household id must be non-negative, got %lld",
        request_.label_.c_str(),
        static_cast<long long>(request_.household_)));
  }
  if (!request_.options_.scope().whole()) {
    return Status::InvalidArgument(StringPrintf(
        "query '%s': row scopes are assigned by shard routing, not clients",
        request_.label_.c_str()));
  }
  return request_;
}

// ---------------------------------------------------------------------------
// QueryTicket
// ---------------------------------------------------------------------------

const QueryOutcome& QueryTicket::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return outcome_;
}

bool QueryTicket::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void QueryTicket::Finish(QueryOutcome outcome) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SM_CHECK(!done_) << "query ticket resolved twice";
    outcome_ = std::move(outcome);
    done_ = true;
  }
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// ServingRunner
// ---------------------------------------------------------------------------

struct ServingRunner::ScatterState {
  std::mutex mu;
  std::shared_ptr<QueryTicket> parent;
  /// One slot per shard; shards with an empty slice keep the default
  /// (OK, empty) outcome.
  std::vector<QueryOutcome> outcomes;
  size_t pending = 0;
};

ServingRunner::ServingRunner(ServingOptions options)
    : options_(std::move(options)) {
  SM_CHECK(options_.queue_capacity >= 1) << "admission queue needs capacity";
  SM_CHECK(options_.num_shards >= 1) << "serving needs at least one shard";
  SM_CHECK(options_.fair_share_quantum >= 1) << "DRR quantum must be >= 1";
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ServingRunner::~ServingRunner() { Shutdown(); }

Status ServingRunner::OpenRouting(const table::DataSource& source,
                                  const std::string& cache_dir) {
  SM_RETURN_IF_ERROR(source.Validate());
  table::ColumnarCache cache(cache_dir);
  SM_ASSIGN_OR_RETURN(std::unique_ptr<table::TableReader> reader,
                      cache.OpenOrBuild(source));
  SM_ASSIGN_OR_RETURN(table::ColumnarBatch batch, reader->NewBatch());
  auto routing = std::make_shared<RoutingTable>();
  const std::span<const int64_t> ids = batch.household_ids();
  routing->total_rows = ids.size();
  std::vector<size_t> order(ids.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return ids[a] < ids[b]; });
  routing->ids.reserve(ids.size());
  routing->rows.reserve(ids.size());
  for (size_t row : order) {
    routing->ids.push_back(ids[row]);
    routing->rows.push_back(row);
  }
  std::lock_guard<std::mutex> lock(mu_);
  routing_ = std::move(routing);
  return Status::OK();
}

void ServingRunner::AddSession(engines::AnalyticsEngine* engine) {
  SM_CHECK(engine != nullptr) << "serving session needs an engine";
  std::lock_guard<std::mutex> lock(mu_);
  SM_CHECK(!shutting_down_) << "AddSession after Shutdown";
  const size_t shard_index = sessions_ % options_.num_shards;
  ++shards_[shard_index]->sessions;
  ++sessions_;
  dispatchers_.emplace_back(&ServingRunner::DispatchLoop, this, engine,
                            shard_index);
}

Result<double> ServingRunner::AttachSession(engines::AnalyticsEngine* engine,
                                            const table::DataSource& source) {
  SM_CHECK(engine != nullptr) << "serving session needs an engine";
  SM_RETURN_IF_ERROR(source.Validate());
  SM_ASSIGN_OR_RETURN(const double attach_seconds, engine->Attach(source));
  AddSession(engine);
  return attach_seconds;
}

size_t ServingRunner::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_;
}

std::pair<size_t, size_t> ServingRunner::ShardSlice(size_t shard,
                                                    size_t total) const {
  const size_t n = options_.num_shards;
  return {total * shard / n, total * (shard + 1) / n};
}

int ServingRunner::TenantWeight(const std::string& tenant) const {
  const auto it = options_.tenant_weights.find(tenant);
  return it == options_.tenant_weights.end() ? 1 : std::max(1, it->second);
}

std::shared_ptr<QueryTicket> ServingRunner::MakeTicket(
    const QueryRequest& request) {
  auto ticket = std::make_shared<QueryTicket>();
  ticket->context_.set_query_id(
      next_query_id_.fetch_add(1, std::memory_order_relaxed));
  ticket->context_.set_label(request.label());
  ticket->context_.set_priority(request.priority());
  if (request.deadline().count() > 0) {
    ticket->context_.set_deadline_after(request.deadline());
  }
  ticket->options_ = request.options();
  ticket->tenant_ = request.tenant();
  ticket->household_ = request.household();
  ticket->submitted_at_ = std::chrono::steady_clock::now();
  return ticket;
}

void ServingRunner::RecordSubmitShed(const std::string& tenant,
                                     int64_t* reason_counter) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++*reason_counter;
  ++stats_.tenants[tenant].shed;
}

Result<std::shared_ptr<QueryTicket>> ServingRunner::Submit(
    const QueryRequest& request) {
  SubmittedCounter()->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
    ++stats_.tenants[request.tenant()].submitted;
  }

  std::shared_ptr<const RoutingTable> routing;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      ShedQueueFullCounter()->Increment();
      RecordSubmitShed(request.tenant(), &stats_.shed_queue_full);
      return Status::ResourceExhausted(
          StringPrintf("serving runner is shutting down: query '%s' shed",
                       request.label().c_str()));
    }
    routing = routing_;
  }

  size_t shard_index = 0;
  engines::RowScope scope;
  if (request.household() != QueryRequest::kAllHouseholds) {
    if (routing == nullptr) {
      return Status::InvalidArgument(StringPrintf(
          "query '%s' routes to household %lld but OpenRouting() was "
          "never called",
          request.label().c_str(),
          static_cast<long long>(request.household())));
    }
    const auto it = std::lower_bound(routing->ids.begin(), routing->ids.end(),
                                     request.household());
    if (it == routing->ids.end() || *it != request.household()) {
      return Status::NotFound(StringPrintf(
          "query '%s': household %lld is not in the routing table",
          request.label().c_str(),
          static_cast<long long>(request.household())));
    }
    const size_t row = routing->rows[static_cast<size_t>(
        std::distance(routing->ids.begin(), it))];
    shard_index = row * options_.num_shards / std::max<size_t>(
                      routing->total_rows, 1);
    while (ShardSlice(shard_index, routing->total_rows).second <= row) {
      ++shard_index;
    }
    if (options_.num_shards > 1) {
      const auto [begin, end] = ShardSlice(shard_index, routing->total_rows);
      scope.begin = begin;
      scope.count = end - begin;
    }
  } else if (options_.num_shards > 1) {
    if (routing == nullptr) {
      return Status::InvalidArgument(StringPrintf(
          "sharded serving requires OpenRouting() before scatter query '%s'",
          request.label().c_str()));
    }
    return SubmitScatter(request, routing);
  }

  std::shared_ptr<QueryTicket> ticket = MakeTicket(request);
  ticket->shard_ = shard_index;
  if (!scope.whole()) ticket->options_.set_scope(scope);
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++unresolved_;
  }
  Status admitted = Enqueue(shard_index, ticket);
  if (!admitted.ok()) {
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      --unresolved_;
    }
    drained_cv_.notify_all();
    return admitted;
  }
  return ticket;
}

Result<std::shared_ptr<QueryTicket>> ServingRunner::SubmitScatter(
    const QueryRequest& request,
    const std::shared_ptr<const RoutingTable>& routing) {
  const size_t shards = options_.num_shards;
  std::shared_ptr<QueryTicket> parent = MakeTicket(request);

  auto state = std::make_shared<ScatterState>();
  state->parent = parent;
  state->outcomes.resize(shards);
  size_t live_children = 0;
  for (size_t s = 0; s < shards; ++s) {
    const auto [begin, end] = ShardSlice(s, routing->total_rows);
    if (begin < end) ++live_children;
  }
  state->pending = live_children;

  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++unresolved_;
  }
  AdmittedCounter()->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.admitted;
    ++stats_.tenants[request.tenant()].admitted;
  }

  if (live_children == 0) {
    FinishScatter(state);
    return parent;
  }

  for (size_t s = 0; s < shards; ++s) {
    const auto [begin, end] = ShardSlice(s, routing->total_rows);
    if (begin >= end) continue;
    auto child = std::make_shared<QueryTicket>();
    child->context_.set_query_id(
        next_query_id_.fetch_add(1, std::memory_order_relaxed));
    child->context_.set_label(request.label() + "/shard-" +
                              std::to_string(s));
    child->context_.set_priority(request.priority());
    child->context_.set_token(parent->context_.token());
    if (parent->context_.has_deadline()) {
      child->context_.set_deadline(parent->context_.deadline());
    }
    child->options_ = request.options();
    engines::RowScope scope;
    scope.begin = begin;
    scope.count = end - begin;
    child->options_.set_scope(scope);
    child->tenant_ = request.tenant();
    child->shard_ = s;
    child->internal_ = true;
    child->submitted_at_ = parent->submitted_at_;
    child->on_resolve_ = [this, state, s](const QueryOutcome& outcome) {
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->outcomes[s] = outcome;
        last = (--state->pending == 0);
      }
      // A failed or shed child stops its siblings: they share the
      // parent's token, so one cancel reaches every shard's kernels.
      if (!outcome.status.ok()) state->parent->RequestCancel();
      if (last) FinishScatter(state);
    };

    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      ++unresolved_;
    }
    Status admitted = Enqueue(s, child);
    if (!admitted.ok()) {
      QueryOutcome outcome;
      outcome.query_id = child->context_.query_id();
      outcome.label = child->context_.label();
      outcome.tenant = child->tenant_;
      outcome.status = std::move(admitted);
      outcome.shed = true;
      ResolveTicket(child, std::move(outcome));
    }
  }
  return parent;
}

void ServingRunner::FinishScatter(const std::shared_ptr<ScatterState>& state) {
  const std::shared_ptr<QueryTicket>& parent = state->parent;
  const QueryContext& ctx = parent->context_;
  QueryOutcome outcome;
  outcome.query_id = ctx.query_id();
  outcome.label = ctx.label();
  outcome.tenant = parent->tenant_;

  double queue_seconds = 0.0;
  double slowest_shard = 0.0;
  const QueryOutcome* failure = nullptr;
  for (const QueryOutcome& child : state->outcomes) {
    queue_seconds = std::max(queue_seconds, child.queue_seconds);
    slowest_shard = std::max(slowest_shard, child.run_seconds);
    if (!child.status.ok()) {
      // Prefer the root cause over sibling cancellations it triggered.
      if (failure == nullptr ||
          (failure->status.code() == StatusCode::kCancelled &&
           child.status.code() != StatusCode::kCancelled)) {
        failure = &child;
      }
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    parent->submitted_at_)
          .count();
  outcome.queue_seconds = queue_seconds;
  outcome.run_seconds = std::max(0.0, elapsed - queue_seconds);

  if (failure != nullptr) {
    outcome.status = failure->status;
    outcome.shed = failure->shed;
  } else {
    StageTiming scatter_row;
    scatter_row.name = "scatter";
    scatter_row.seconds = slowest_shard;
    scatter_row.partitions = static_cast<int>(options_.num_shards);
    outcome.stages.push_back(std::move(scatter_row));
    if (options_.keep_results) {
      std::vector<engines::TaskResultSet> partials;
      partials.reserve(state->outcomes.size());
      for (QueryOutcome& child : state->outcomes) {
        partials.push_back(std::move(child.results));
      }
      Result<PlanRunMetrics> gather = PlanExecutor().RunGather(
          ctx, std::move(partials), /*sort_by_household=*/true,
          &outcome.results);
      if (gather.ok()) {
        for (StageTiming& stage : gather->stages) {
          outcome.stages.push_back(std::move(stage));
        }
      } else {
        outcome.status = gather.status();
        outcome.shed =
            outcome.status.code() == StatusCode::kDeadlineExceeded ||
            outcome.status.code() == StatusCode::kCancelled;
        outcome.stages.clear();
        outcome.results.Clear();
      }
    }
  }
  QueueLatencyHistogram()->Record(outcome.queue_seconds);
  ResolveTicket(parent, std::move(outcome));
}

Status ServingRunner::Enqueue(size_t shard_index,
                              const std::shared_ptr<QueryTicket>& ticket) {
  Shard& shard = *shards_[shard_index];
  const std::string& tenant = ticket->tenant_;
  const size_t quota = options_.tenant_queue_quota;
  std::shared_ptr<QueryTicket> evicted;
  size_t depth = 0;
  {
    // A shard without sessions still queues: sessions may join later
    // (tests and harnesses build a backlog first) and Shutdown resolves
    // whatever never dispatched.
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto queued_it = shard.tenant_queued.find(tenant);
    const size_t tenant_queued =
        queued_it == shard.tenant_queued.end() ? 0 : queued_it->second;
    if (quota > 0 && tenant_queued >= quota) {
      if (!ticket->internal_) {
        ShedQuotaCounter()->Increment();
        RecordSubmitShed(tenant, &stats_.shed_quota);
      }
      return Status::ResourceExhausted(StringPrintf(
          "tenant '%s' over queue quota on shard %zu (%zu queued, quota "
          "%zu): query '%s' shed",
          tenant.c_str(), shard_index, tenant_queued, quota,
          ticket->context_.label().c_str()));
    }
    if (shard.queued >= options_.queue_capacity) {
      // Full queue: an over-fair-share tenant (strictly more queued
      // entries than the submitter's tenant) loses its newest
      // lowest-priority ticket to the under-share submitter; otherwise
      // the submitter sheds.
      const auto victim_it = std::max_element(
          shard.tenant_queued.begin(), shard.tenant_queued.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      if (victim_it == shard.tenant_queued.end() ||
          victim_it->second <= tenant_queued) {
        if (!ticket->internal_) {
          ShedQueueFullCounter()->Increment();
          RecordSubmitShed(tenant, &stats_.shed_queue_full);
        }
        return Status::ResourceExhausted(StringPrintf(
            "shard %zu admission queue full (%zu queued, capacity %zu): "
            "query '%s' shed",
            shard_index, shard.queued, options_.queue_capacity,
            ticket->context_.label().c_str()));
      }
      const std::string victim = victim_it->first;
      for (size_t p = 0; p < kPriorities && evicted == nullptr; ++p) {
        auto tenant_it = shard.classes[p].tenants.find(victim);
        if (tenant_it == shard.classes[p].tenants.end()) continue;
        TenantQueue& tq = tenant_it->second;
        if (tq.tickets.empty()) continue;
        evicted = std::move(tq.tickets.back());
        tq.tickets.pop_back();
      }
      SM_CHECK(evicted != nullptr) << "queued tenant with no queued ticket";
      --shard.queued;
      if (--victim_it->second == 0) shard.tenant_queued.erase(victim_it);
    }
    const auto p = static_cast<size_t>(ticket->context_.priority());
    SM_CHECK(p < kPriorities) << "bad query priority";
    PriorityClass& cls = shard.classes[p];
    TenantQueue& tq = cls.tenants[tenant];
    tq.tickets.push_back(ticket);
    if (!tq.in_ring) {
      cls.ring.push_back(tenant);
      tq.in_ring = true;
    }
    ++shard.queued;
    ++shard.tenant_queued[tenant];
    depth = shard.queued;
  }
  if (evicted != nullptr) {
    // ResolveTicket classifies the ResourceExhausted shed (shed_evicted
    // bucket, tenant counter, obs counter) — no pre-counting here.
    QueryOutcome outcome;
    outcome.query_id = evicted->context_.query_id();
    outcome.label = evicted->context_.label();
    outcome.tenant = evicted->tenant_;
    outcome.status = Status::ResourceExhausted(StringPrintf(
        "query '%s' evicted from shard %zu admission queue: tenant '%s' "
        "over fair share when the queue filled",
        evicted->context_.label().c_str(), shard_index,
        evicted->tenant_.c_str()));
    outcome.shed = true;
    outcome.queue_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      evicted->submitted_at_)
            .count();
    ResolveTicket(evicted, std::move(outcome));
  }
  QueueDepthPeakGauge()->UpdateMax(static_cast<int64_t>(depth));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.peak_queue_depth =
        std::max(stats_.peak_queue_depth, static_cast<int64_t>(depth));
    if (!ticket->internal_) {
      ++stats_.admitted;
      ++stats_.tenants[tenant].admitted;
    }
  }
  if (!ticket->internal_) AdmittedCounter()->Increment();
  shard.cv.notify_one();
  return Status::OK();
}

std::shared_ptr<QueryTicket> ServingRunner::NextQuery(Shard* shard) {
  std::unique_lock<std::mutex> lock(shard->mu);
  shard->cv.wait(lock, [&] {
    return shutting_down_.load(std::memory_order_acquire) ||
           shard->queued > 0;
  });
  for (size_t p = kPriorities; p-- > 0;) {
    PriorityClass& cls = shard->classes[p];
    while (!cls.ring.empty()) {
      const std::string tenant = cls.ring.front();
      TenantQueue& tq = cls.tenants[tenant];
      if (tq.tickets.empty()) {
        // Stale ring entry (its tickets were evicted); drop and rescan.
        cls.ring.pop_front();
        tq.in_ring = false;
        tq.credits = 0;
        continue;
      }
      if (tq.credits <= 0) {
        tq.credits = options_.fair_share_quantum * TenantWeight(tenant);
      }
      std::shared_ptr<QueryTicket> ticket = std::move(tq.tickets.front());
      tq.tickets.pop_front();
      --tq.credits;
      --shard->queued;
      const auto queued_it = shard->tenant_queued.find(tenant);
      if (queued_it != shard->tenant_queued.end() &&
          --queued_it->second == 0) {
        shard->tenant_queued.erase(queued_it);
      }
      if (tq.tickets.empty() || tq.credits <= 0) {
        cls.ring.pop_front();
        if (tq.tickets.empty()) {
          tq.in_ring = false;
          tq.credits = 0;
        } else {
          cls.ring.push_back(tenant);
        }
      }
      return ticket;
    }
  }
  return nullptr;  // Shutting down with an empty queue.
}

void ServingRunner::ResolveTicket(const std::shared_ptr<QueryTicket>& ticket,
                                  QueryOutcome outcome) {
  if (!ticket->internal_) {
    QueryLatencyHistogram()->Record(outcome.queue_seconds +
                                    outcome.run_seconds);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      TenantServingStats& tenant = stats_.tenants[ticket->tenant_];
      if (outcome.status.ok()) {
        ++stats_.completed_ok;
        ++tenant.completed_ok;
      } else if (outcome.shed) {
        ++tenant.shed;
        switch (outcome.status.code()) {
          case StatusCode::kDeadlineExceeded:
            ++stats_.shed_deadline;
            break;
          case StatusCode::kResourceExhausted:
            ++stats_.shed_evicted;
            break;
          default:
            ++stats_.shed_cancelled;
            break;
        }
      } else {
        ++stats_.failed;
        ++tenant.failed;
      }
    }
    if (outcome.status.ok()) {
      CompletedOkCounter()->Increment();
    } else if (outcome.shed) {
      switch (outcome.status.code()) {
        case StatusCode::kDeadlineExceeded:
          ShedDeadlineCounter()->Increment();
          break;
        case StatusCode::kResourceExhausted:
          ShedEvictedCounter()->Increment();
          break;
        default:
          ShedCancelledCounter()->Increment();
          break;
      }
    } else {
      FailedCounter()->Increment();
    }
  }
  if (ticket->on_resolve_) ticket->on_resolve_(outcome);
  ticket->Finish(std::move(outcome));
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    --unresolved_;
  }
  drained_cv_.notify_all();
}

void ServingRunner::RunQuery(engines::AnalyticsEngine* engine,
                             const std::shared_ptr<QueryTicket>& ticket) {
  const QueryContext& ctx = ticket->context_;
  QueryOutcome outcome;
  outcome.query_id = ctx.query_id();
  outcome.label = ctx.label();
  outcome.tenant = ticket->tenant_;
  outcome.queue_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ticket->submitted_at_)
          .count();
  if (!ticket->internal_) {
    QueueLatencyHistogram()->Record(outcome.queue_seconds);
  }

  // A query whose deadline expired (or that was cancelled) while queued
  // is shed without touching the engine — with the reason spelled out.
  Status admission = ctx.CheckNotStopped();
  if (!admission.ok()) {
    outcome.status =
        admission.code() == StatusCode::kDeadlineExceeded
            ? Status::DeadlineExceeded(StringPrintf(
                  "deadline expired while queued (%.1f ms in queue): "
                  "query '%s' shed",
                  outcome.queue_seconds * 1e3, ctx.label().c_str()))
            : Status::Cancelled(
                  StringPrintf("cancelled while queued: query '%s' shed",
                               ctx.label().c_str()));
    outcome.shed = true;
    ResolveTicket(ticket, std::move(outcome));
    return;
  }

  Stopwatch run_timer;
  Result<engines::RunReport> report = engines::RunTaskOnEngine(
      engine, ctx, ticket->options_, /*keep_outputs=*/options_.keep_results);
  outcome.run_seconds = run_timer.ElapsedSeconds();
  if (report.ok()) {
    outcome.status = Status::OK();
    outcome.stages = std::move(report->stages);
    if (options_.keep_results) {
      outcome.results = std::move(report->results);
      if (ticket->household_ != QueryRequest::kAllHouseholds) {
        FilterResultsToHousehold(ticket->household_, &outcome.results);
      }
    }
  } else {
    outcome.status = report.status();
    // Deadline/cancel surfacing from inside the kernels is a shed, not
    // an engine failure.
    outcome.shed =
        outcome.status.code() == StatusCode::kDeadlineExceeded ||
        outcome.status.code() == StatusCode::kCancelled;
  }
  ResolveTicket(ticket, std::move(outcome));
}

void ServingRunner::DispatchLoop(engines::AnalyticsEngine* engine,
                                 size_t shard_index) {
  Shard* shard = shards_[shard_index].get();
  for (;;) {
    std::shared_ptr<QueryTicket> ticket = NextQuery(shard);
    if (ticket == nullptr) return;
    SM_TRACE_SPAN("serving.query");
    RunQuery(engine, ticket);
  }
}

void ServingRunner::AttachAlertLog(const streaming::AlertLog* log) {
  alert_log_.store(log, std::memory_order_release);
}

Result<std::vector<streaming::Alert>> ServingRunner::QueryAlerts(
    const streaming::AlertQuery& query) const {
  const streaming::AlertLog* log = alert_log_.load(std::memory_order_acquire);
  if (log == nullptr) {
    return Status::NotFound("serving runner: no alert log attached");
  }
  return log->Query(query);
}

void ServingRunner::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drained_cv_.wait(lock, [this] { return unresolved_ == 0; });
}

void ServingRunner::Shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_.load(std::memory_order_acquire) &&
        dispatchers_.empty()) {
      return;
    }
    shutting_down_.store(true, std::memory_order_release);
    to_join.swap(dispatchers_);
  }
  // Cancel whatever is still queued so dispatchers shed it quickly
  // instead of running long queries during teardown.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (PriorityClass& cls : shard->classes) {
      for (auto& [tenant, tq] : cls.tenants) {
        for (const auto& ticket : tq.tickets) ticket->RequestCancel();
      }
    }
    shard->cv.notify_all();
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
  // With no sessions (or none left), queued tickets have no dispatcher
  // to shed them; resolve them here so waiters never hang.
  std::vector<std::shared_ptr<QueryTicket>> stranded;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (PriorityClass& cls : shard->classes) {
      for (auto& [tenant, tq] : cls.tenants) {
        for (auto& ticket : tq.tickets) stranded.push_back(std::move(ticket));
        tq.tickets.clear();
        tq.in_ring = false;
        tq.credits = 0;
      }
      cls.ring.clear();
    }
    shard->queued = 0;
    shard->tenant_queued.clear();
  }
  for (const auto& ticket : stranded) {
    QueryOutcome outcome;
    outcome.query_id = ticket->context_.query_id();
    outcome.label = ticket->context_.label();
    outcome.tenant = ticket->tenant_;
    outcome.status = Status::Cancelled(
        "serving runner shut down before query dispatched");
    outcome.shed = true;
    outcome.queue_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      ticket->submitted_at_)
            .count();
    ResolveTicket(ticket, std::move(outcome));
  }
}

ServingStats ServingRunner::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace smartmeter::exec
