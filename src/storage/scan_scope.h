#ifndef SMARTMETER_STORAGE_SCAN_SCOPE_H_
#define SMARTMETER_STORAGE_SCAN_SCOPE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace smartmeter::storage {

/// A rectangular slice of the household × hour consumption matrix: the
/// predicate a scan pushes down to the block index. Rows select
/// households in file order (the serving layer's `RowScope` routing
/// unit); hours select a time window inside every selected series. A
/// count of 0 means "through the end", so the default-constructed scope
/// selects the whole table.
struct ScanScope {
  size_t row_begin = 0;
  size_t row_count = 0;  // 0 = through the last household.
  size_t hour_begin = 0;
  size_t hour_count = 0;  // 0 = through the last hour.

  bool whole_rows() const { return row_begin == 0 && row_count == 0; }
  bool whole_hours() const { return hour_begin == 0 && hour_count == 0; }
  bool whole() const { return whole_rows() && whole_hours(); }

  /// Clamped half-open row range against a table of `rows` households.
  size_t RowBegin(size_t rows) const { return std::min(row_begin, rows); }
  size_t RowEnd(size_t rows) const {
    if (row_count == 0) return rows;
    return std::min(RowBegin(rows) + row_count, rows);
  }

  /// Clamped half-open hour range against series of `hours` entries.
  size_t HourBegin(size_t hours) const { return std::min(hour_begin, hours); }
  size_t HourEnd(size_t hours) const {
    if (hour_count == 0) return hours;
    return std::min(HourBegin(hours) + hour_count, hours);
  }
};

/// What one (possibly pruned) columnar scan touched. Block counts cover
/// every indexed block of the file (consumption, temperature, ids);
/// `bytes_on_disk` is the file's whole on-disk footprint,
/// `bytes_decoded` the raw doubles/int64s actually materialized. Flows from the format reader
/// through `BatchScan` into plan metrics and bench report rows.
struct ScanStats {
  int64_t blocks_total = 0;
  int64_t blocks_decoded = 0;
  int64_t blocks_pruned = 0;
  int64_t bytes_on_disk = 0;
  int64_t bytes_decoded = 0;

  void Add(const ScanStats& other) {
    blocks_total += other.blocks_total;
    blocks_decoded += other.blocks_decoded;
    blocks_pruned += other.blocks_pruned;
    bytes_on_disk += other.bytes_on_disk;
    bytes_decoded += other.bytes_decoded;
  }

  bool empty() const {
    return blocks_total == 0 && blocks_decoded == 0 && blocks_pruned == 0 &&
           bytes_on_disk == 0 && bytes_decoded == 0;
  }
};

}  // namespace smartmeter::storage

#endif  // SMARTMETER_STORAGE_SCAN_SCOPE_H_
