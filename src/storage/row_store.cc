#include "storage/row_store.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>

#include "common/string_util.h"

namespace smartmeter::storage {

namespace {

std::string UniqueHeapPath() {
  static std::atomic<int> counter{0};
  const auto dir = std::filesystem::temp_directory_path();
  return (dir / StringPrintf("smartmeter_rowstore_%d_%d.heap", getpid(),
                             counter.fetch_add(1)))
      .string();
}

}  // namespace

RowStore::RowStore(std::string heap_path)
    : heap_path_(heap_path.empty() ? UniqueHeapPath()
                                   : std::move(heap_path)) {}

RowStore::~RowStore() {
  heap_.reset();
  std::error_code ec;
  std::filesystem::remove(heap_path_, ec);
  std::filesystem::remove(heap_path_ + ".wal", ec);
}

RowStore::RowStore(RowStore&&) noexcept = default;
RowStore& RowStore::operator=(RowStore&&) noexcept = default;

Status RowStore::EnsureHeap() {
  if (heap_ == nullptr) {
    heap_ = std::make_unique<HeapFile>(heap_path_);
    SM_RETURN_IF_ERROR(heap_->Create());
    load_finished_ = false;
  }
  return Status::OK();
}

Status RowStore::Append(const Row& row) {
  if (load_finished_) {
    return Status::InvalidArgument("row store already finished loading");
  }
  SM_RETURN_IF_ERROR(EnsureHeap());
  Result<uint64_t> slot = index_.Lookup(row.household_id);
  size_t postings_slot;
  if (slot.ok()) {
    postings_slot = static_cast<size_t>(*slot);
  } else {
    postings_slot = postings_.size();
    postings_.emplace_back();
    SM_RETURN_IF_ERROR(
        index_.Insert(row.household_id, static_cast<uint64_t>(postings_slot)));
  }
  SM_ASSIGN_OR_RETURN(
      uint64_t row_id,
      heap_->Append({row.household_id, row.hour, row.consumption,
                     row.temperature}));
  postings_[postings_slot].push_back(row_id);
  return Status::OK();
}

Status RowStore::FinishLoad() {
  if (load_finished_) return Status::OK();
  SM_RETURN_IF_ERROR(EnsureHeap());  // An empty store still finalizes.
  SM_RETURN_IF_ERROR(heap_->FinishLoad());
  load_finished_ = true;
  return Status::OK();
}

Status RowStore::ReopenForAppend() {
  if (!load_finished_) return Status::OK();  // Already appendable.
  SM_RETURN_IF_ERROR(heap_->ReopenForAppend());
  load_finished_ = false;
  return Status::OK();
}

Status RowStore::LoadFromDataset(const MeterDataset& dataset,
                                 bool interleave) {
  SM_RETURN_IF_ERROR(dataset.Validate());
  const auto& temperature = dataset.temperature();
  if (interleave) {
    // Hour-major order: all households' hour 0, then hour 1, ...
    for (size_t h = 0; h < dataset.hours(); ++h) {
      for (const ConsumerSeries& c : dataset.consumers()) {
        SM_RETURN_IF_ERROR(Append({c.household_id, static_cast<int32_t>(h),
                                   c.consumption[h], temperature[h]}));
      }
    }
  } else {
    for (const ConsumerSeries& c : dataset.consumers()) {
      for (size_t h = 0; h < dataset.hours(); ++h) {
        SM_RETURN_IF_ERROR(Append({c.household_id, static_cast<int32_t>(h),
                                   c.consumption[h], temperature[h]}));
      }
    }
  }
  return FinishLoad();
}

Status RowStore::LoadFromCsv(const std::string& path) {
  ReadingCsvReader reader(path);
  SM_RETURN_IF_ERROR(reader.Open());
  ReadingRow csv_row;
  while (reader.Next(&csv_row)) {
    SM_RETURN_IF_ERROR(Append({csv_row.household_id, csv_row.hour,
                               csv_row.consumption, csv_row.temperature}));
  }
  return reader.status();
}

size_t RowStore::num_rows() const {
  return heap_ == nullptr ? 0 : static_cast<size_t>(heap_->num_rows());
}

std::vector<int64_t> RowStore::HouseholdIds() const {
  return index_.Keys();
}

Result<const std::vector<uint64_t>*> RowStore::Postings(
    int64_t household_id) const {
  SM_ASSIGN_OR_RETURN(uint64_t slot, index_.Lookup(household_id));
  return &postings_[static_cast<size_t>(slot)];
}

Result<std::span<const uint64_t>> RowStore::HouseholdRowIds(
    int64_t household_id) const {
  SM_ASSIGN_OR_RETURN(const std::vector<uint64_t>* postings,
                      Postings(household_id));
  return std::span<const uint64_t>(*postings);
}

Result<MeterDataset> RowStore::ScanAll() const {
  if (!load_finished_) {
    return Status::InvalidArgument(
        "row store still loading; call FinishLoad()");
  }
  std::map<int64_t, std::vector<std::pair<int32_t, double>>> groups;
  std::map<int32_t, double> temperature;
  SM_RETURN_IF_ERROR(heap_->Scan(
      [&groups, &temperature](uint64_t, const HeapFile::Tuple& tuple) {
        groups[tuple.household_id].emplace_back(tuple.hour,
                                                tuple.consumption);
        temperature.emplace(tuple.hour, tuple.temperature);
      }));
  if (groups.empty()) {
    return Status::InvalidArgument("row store is empty");
  }
  MeterDataset dataset;
  std::vector<double> temp;
  temp.reserve(temperature.size());
  for (const auto& [hour, value] : temperature) temp.push_back(value);
  dataset.SetTemperature(std::move(temp));
  for (auto& [id, rows] : groups) {
    std::sort(rows.begin(), rows.end());
    ConsumerSeries series;
    series.household_id = id;
    series.consumption.reserve(rows.size());
    for (const auto& [hour, value] : rows) {
      series.consumption.push_back(value);
    }
    dataset.AddConsumer(std::move(series));
  }
  SM_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

Result<std::vector<std::pair<int32_t, double>>> RowStore::GatherColumn(
    int64_t household_id, bool temperature) const {
  if (!load_finished_) {
    return Status::InvalidArgument(
        "row store still loading; call FinishLoad()");
  }
  SM_ASSIGN_OR_RETURN(const std::vector<uint64_t>* postings,
                      Postings(household_id));
  std::vector<std::pair<int32_t, double>> keyed;
  keyed.reserve(postings->size());
  for (uint64_t rid : *postings) {
    SM_ASSIGN_OR_RETURN(HeapFile::Tuple tuple, heap_->Read(rid));
    keyed.emplace_back(tuple.hour, temperature ? tuple.temperature
                                               : tuple.consumption);
  }
  std::sort(keyed.begin(), keyed.end());
  return keyed;
}

Result<std::vector<double>> RowStore::HouseholdConsumption(
    int64_t household_id) const {
  SM_ASSIGN_OR_RETURN(auto keyed,
                      GatherColumn(household_id, /*temperature=*/false));
  std::vector<double> out;
  out.reserve(keyed.size());
  for (const auto& [hour, value] : keyed) out.push_back(value);
  return out;
}

Result<std::vector<double>> RowStore::HouseholdTemperature(
    int64_t household_id) const {
  SM_ASSIGN_OR_RETURN(auto keyed,
                      GatherColumn(household_id, /*temperature=*/true));
  std::vector<double> out;
  out.reserve(keyed.size());
  for (const auto& [hour, value] : keyed) out.push_back(value);
  return out;
}

namespace {

std::string UniqueArrayPath() {
  static std::atomic<int> counter{0};
  const auto dir = std::filesystem::temp_directory_path();
  return (dir / StringPrintf("smartmeter_arraystore_%d_%d.tbl", getpid(),
                             counter.fetch_add(1)))
      .string();
}

}  // namespace

ArrayStore::ArrayStore(std::string path)
    : path_(path.empty() ? UniqueArrayPath() : std::move(path)) {}

ArrayStore::~ArrayStore() {
  if (file_ != nullptr) std::fclose(file_);
  std::error_code ec;
  std::filesystem::remove(path_, ec);
}

ArrayStore::ArrayStore(ArrayStore&&) noexcept = default;
ArrayStore& ArrayStore::operator=(ArrayStore&&) noexcept = default;

Status ArrayStore::LoadFromDataset(const MeterDataset& dataset) {
  SM_RETURN_IF_ERROR(dataset.Validate());
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  offsets_.clear();
  index_ = BPlusTree();

  FILE* out = std::fopen(path_.c_str(), "wb");
  if (out == nullptr) {
    return Status::IOError("cannot create array table " + path_);
  }
  // Record: household_id, hours, consumption[hours], temperature[hours].
  const uint64_t hours = dataset.hours();
  int64_t offset = 0;
  for (const ConsumerSeries& c : dataset.consumers()) {
    const Status st = index_.Insert(
        c.household_id, static_cast<uint64_t>(offsets_.size()));
    if (!st.ok()) {
      std::fclose(out);
      return st;
    }
    offsets_.push_back(offset);
    bool ok = std::fwrite(&c.household_id, sizeof(c.household_id), 1, out)
                  == 1;
    ok = ok && std::fwrite(&hours, sizeof(hours), 1, out) == 1;
    ok = ok && std::fwrite(c.consumption.data(), sizeof(double), hours,
                           out) == hours;
    ok = ok && std::fwrite(dataset.temperature().data(), sizeof(double),
                           hours, out) == hours;
    if (!ok) {
      std::fclose(out);
      return Status::IOError("short write to " + path_);
    }
    offset += static_cast<int64_t>(sizeof(c.household_id) + sizeof(hours) +
                                   2 * hours * sizeof(double));
  }
  if (std::fclose(out) != 0) {
    return Status::IOError("close failed for " + path_);
  }
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IOError("cannot reopen array table " + path_);
  }
  return Status::OK();
}

Result<ArrayStore::HouseholdRow> ArrayStore::ReadAt(int64_t offset) const {
  if (file_ == nullptr) {
    return Status::InvalidArgument("array table not loaded");
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError("seek failed in " + path_);
  }
  HouseholdRow row;
  uint64_t hours = 0;
  if (std::fread(&row.household_id, sizeof(row.household_id), 1, file_) !=
          1 ||
      std::fread(&hours, sizeof(hours), 1, file_) != 1) {
    return Status::IOError("short read in " + path_);
  }
  row.consumption.resize(hours);
  row.temperature.resize(hours);
  if (std::fread(row.consumption.data(), sizeof(double), hours, file_) !=
          hours ||
      std::fread(row.temperature.data(), sizeof(double), hours, file_) !=
          hours) {
    return Status::IOError("short read in " + path_);
  }
  return row;
}

Result<ArrayStore::HouseholdRow> ArrayStore::ReadRow(size_t i) const {
  if (i >= offsets_.size()) {
    return Status::OutOfRange("array row index out of range");
  }
  return ReadAt(offsets_[i]);
}

Result<ArrayStore::HouseholdRow> ArrayStore::Find(
    int64_t household_id) const {
  SM_ASSIGN_OR_RETURN(uint64_t slot, index_.Lookup(household_id));
  return ReadRow(static_cast<size_t>(slot));
}

Result<MeterDataset> ArrayStore::ReadAll() const {
  MeterDataset dataset;
  for (size_t i = 0; i < offsets_.size(); ++i) {
    SM_ASSIGN_OR_RETURN(HouseholdRow row, ReadRow(i));
    if (i == 0) {
      dataset.SetTemperature(std::move(row.temperature));
    }
    dataset.AddConsumer({row.household_id, std::move(row.consumption)});
  }
  SM_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace smartmeter::storage
