#include "storage/btree.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace smartmeter::storage {

struct BPlusTree::Node {
  bool is_leaf = true;
  std::vector<int64_t> keys;
  // Internal nodes: children.size() == keys.size() + 1.
  std::vector<std::unique_ptr<Node>> children;
  // Leaves: values align with keys.
  std::vector<uint64_t> values;
  Node* next_leaf = nullptr;  // Leaf chain for range scans (not owned).
};

struct BPlusTree::SplitResult {
  bool split = false;
  int64_t separator = 0;
  std::unique_ptr<Node> right;
};

BPlusTree::BPlusTree() : root_(std::make_unique<Node>()) {}
BPlusTree::~BPlusTree() = default;
BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

Status BPlusTree::Insert(int64_t key, uint64_t value) {
  Status status = Status::OK();
  SplitResult split = InsertRecursive(root_.get(), key, value, &status);
  if (!status.ok()) return status;
  if (split.split) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->keys.push_back(split.separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split.right));
    root_ = std::move(new_root);
    ++height_;
  }
  ++size_;
  return Status::OK();
}

BPlusTree::SplitResult BPlusTree::InsertRecursive(Node* node, int64_t key,
                                                  uint64_t value,
                                                  Status* status) {
  if (node->is_leaf) {
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    const size_t pos = static_cast<size_t>(it - node->keys.begin());
    if (it != node->keys.end() && *it == key) {
      *status = Status::AlreadyExists(
          StringPrintf("key %lld already in index",
                       static_cast<long long>(key)));
      return {};
    }
    node->keys.insert(it, key);
    node->values.insert(node->values.begin() + static_cast<ptrdiff_t>(pos),
                        value);
    if (node->keys.size() <= kMaxKeys) return {};

    // Split leaf: right half moves to a new node; separator is the first
    // key of the right node (B+-tree convention: separator repeats in leaf).
    const size_t mid = node->keys.size() / 2;
    SplitResult result;
    result.split = true;
    result.right = std::make_unique<Node>();
    result.right->is_leaf = true;
    result.right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(mid),
                              node->keys.end());
    result.right->values.assign(
        node->values.begin() + static_cast<ptrdiff_t>(mid),
        node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    result.right->next_leaf = node->next_leaf;
    node->next_leaf = result.right.get();
    result.separator = result.right->keys.front();
    return result;
  }

  // Internal node: descend into the child that covers `key`.
  auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
  const size_t child_idx = static_cast<size_t>(it - node->keys.begin());
  SplitResult child_split =
      InsertRecursive(node->children[child_idx].get(), key, value, status);
  if (!status->ok() || !child_split.split) return {};

  node->keys.insert(node->keys.begin() + static_cast<ptrdiff_t>(child_idx),
                    child_split.separator);
  node->children.insert(
      node->children.begin() + static_cast<ptrdiff_t>(child_idx) + 1,
      std::move(child_split.right));
  if (node->keys.size() <= kMaxKeys) return {};

  // Split internal node: middle key moves UP, not into the right node.
  const size_t mid = node->keys.size() / 2;
  SplitResult result;
  result.split = true;
  result.separator = node->keys[mid];
  result.right = std::make_unique<Node>();
  result.right->is_leaf = false;
  result.right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(mid) +
                                1,
                            node->keys.end());
  for (size_t i = mid + 1; i < node->children.size(); ++i) {
    result.right->children.push_back(std::move(node->children[i]));
  }
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  return result;
}

const BPlusTree::Node* BPlusTree::FindLeaf(int64_t key) const {
  static obs::Counter* node_visits =
      obs::MetricsRegistry::Global().GetCounter("btree.node_visits");
  const Node* node = root_.get();
  int64_t visited = 1;  // The leaf (or leaf-root) itself.
  while (!node->is_leaf) {
    auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    node = node->children[static_cast<size_t>(it - node->keys.begin())].get();
    ++visited;
  }
  node_visits->Add(visited);
  return node;
}

Result<uint64_t> BPlusTree::Lookup(int64_t key) const {
  const Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) {
    return Status::NotFound(
        StringPrintf("key %lld not in index", static_cast<long long>(key)));
  }
  return leaf->values[static_cast<size_t>(it - leaf->keys.begin())];
}

bool BPlusTree::Contains(int64_t key) const { return Lookup(key).ok(); }

void BPlusTree::Scan(
    int64_t lo, int64_t hi,
    const std::function<void(int64_t, uint64_t)>& visit) const {
  if (lo > hi || size_ == 0) return;
  const Node* leaf = FindLeaf(lo);
  while (leaf != nullptr) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] < lo) continue;
      if (leaf->keys[i] > hi) return;
      visit(leaf->keys[i], leaf->values[i]);
    }
    leaf = leaf->next_leaf;
  }
}

std::vector<int64_t> BPlusTree::Keys() const {
  std::vector<int64_t> keys;
  keys.reserve(size_);
  Scan(INT64_MIN, INT64_MAX,
       [&keys](int64_t key, uint64_t) { keys.push_back(key); });
  return keys;
}

Status BPlusTree::CheckInvariants() const {
  SM_RETURN_IF_ERROR(
      CheckNode(root_.get(), 1, INT64_MIN, INT64_MAX, /*is_root=*/true));
  // Leaf chain must visit exactly size_ keys in ascending order.
  const Node* node = root_.get();
  while (!node->is_leaf) node = node->children.front().get();
  size_t seen = 0;
  int64_t prev = INT64_MIN;
  bool first = true;
  for (const Node* leaf = node; leaf != nullptr; leaf = leaf->next_leaf) {
    for (int64_t key : leaf->keys) {
      if (!first && key <= prev) {
        return Status::Corruption("leaf chain keys not strictly ascending");
      }
      prev = key;
      first = false;
      ++seen;
    }
  }
  if (seen != size_) {
    return Status::Corruption(
        StringPrintf("leaf chain has %zu keys, expected %zu", seen, size_));
  }
  return Status::OK();
}

Status BPlusTree::CheckNode(const Node* node, int depth, int64_t lo,
                            int64_t hi, bool is_root) const {
  if (!std::is_sorted(node->keys.begin(), node->keys.end())) {
    return Status::Corruption("node keys not sorted");
  }
  for (int64_t key : node->keys) {
    if (key < lo || key > hi) {
      return Status::Corruption("key outside separator bounds");
    }
  }
  if (node->keys.size() > kMaxKeys) {
    return Status::Corruption("node overfull");
  }
  if (!is_root && !node->is_leaf && node->keys.empty()) {
    return Status::Corruption("non-root internal node with no keys");
  }
  if (node->is_leaf) {
    if (depth != height_) {
      return Status::Corruption("leaf at wrong depth (tree unbalanced)");
    }
    if (node->values.size() != node->keys.size()) {
      return Status::Corruption("leaf keys/values size mismatch");
    }
    return Status::OK();
  }
  if (node->children.size() != node->keys.size() + 1) {
    return Status::Corruption("internal child count != keys + 1");
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const int64_t child_lo = (i == 0) ? lo : node->keys[i - 1];
    const int64_t child_hi =
        (i == node->keys.size()) ? hi : node->keys[i] - 1;
    SM_RETURN_IF_ERROR(CheckNode(node->children[i].get(), depth + 1, child_lo,
                                 child_hi, /*is_root=*/false));
  }
  return Status::OK();
}

}  // namespace smartmeter::storage
