#include "storage/heap_file.h"

#include <cstdio>
#include <cstring>

#include "common/string_util.h"

namespace smartmeter::storage {

namespace {

// On-disk page image: tuple count header then packed tuples. The slack up
// to kPageBytes is written as-is, modelling fixed-size DBMS pages (the
// space a real system spends on headers, line pointers and alignment).
struct PageImage {
  uint32_t tuple_count;
  char payload[HeapFile::kPageBytes - sizeof(uint32_t)];
};
static_assert(sizeof(PageImage) == HeapFile::kPageBytes);

}  // namespace

HeapFile::HeapFile(std::string path, bool write_ahead_log, int cache_pages)
    : path_(std::move(path)),
      write_ahead_log_(write_ahead_log),
      cache_capacity_(cache_pages < 1 ? 1 : static_cast<size_t>(
                                                cache_pages)) {}

HeapFile::~HeapFile() {
  if (write_file_ != nullptr) std::fclose(write_file_);
  if (wal_file_ != nullptr) std::fclose(wal_file_);
  if (read_file_ != nullptr) std::fclose(read_file_);
}

Status HeapFile::Create() {
  if (read_file_ != nullptr) {
    std::fclose(read_file_);
    read_file_ = nullptr;
  }
  write_file_ = std::fopen(path_.c_str(), "wb");
  if (write_file_ == nullptr) {
    return Status::IOError("cannot create heap file " + path_);
  }
  if (write_ahead_log_) {
    wal_file_ = std::fopen((path_ + ".wal").c_str(), "wb");
    if (wal_file_ == nullptr) {
      return Status::IOError("cannot create WAL for " + path_);
    }
  }
  tail_page_.clear();
  tail_page_.reserve(TuplesPerPage());
  num_rows_ = 0;
  num_pages_ = 0;
  cache_.clear();
  lru_.clear();
  return Status::OK();
}

Result<uint64_t> HeapFile::Append(const Tuple& tuple) {
  if (write_file_ == nullptr) {
    return Status::InvalidArgument("heap file not in load mode");
  }
  // WAL first (write-ahead), then the page buffer.
  if (wal_file_ != nullptr) {
    if (std::fwrite(&tuple, sizeof(tuple), 1, wal_file_) != 1) {
      return Status::IOError("WAL write failed for " + path_);
    }
  }
  const uint64_t row_id =
      num_pages_ * TuplesPerPage() + tail_page_.size();
  tail_page_.push_back(tuple);
  ++num_rows_;
  if (tail_page_.size() == TuplesPerPage()) {
    SM_RETURN_IF_ERROR(FlushTailPage());
  }
  return row_id;
}

Status HeapFile::FlushTailPage() {
  PageImage image;
  std::memset(&image, 0, sizeof(image));
  image.tuple_count = static_cast<uint32_t>(tail_page_.size());
  std::memcpy(image.payload, tail_page_.data(),
              tail_page_.size() * sizeof(Tuple));
  if (std::fwrite(&image, sizeof(image), 1, write_file_) != 1) {
    return Status::IOError("page write failed for " + path_);
  }
  ++num_pages_;
  tail_page_.clear();
  return Status::OK();
}

Status HeapFile::FinishLoad() {
  if (write_file_ == nullptr) {
    return Status::InvalidArgument("heap file not in load mode");
  }
  if (!tail_page_.empty()) {
    SM_RETURN_IF_ERROR(FlushTailPage());
  }
  if (std::fclose(write_file_) != 0) {
    write_file_ = nullptr;
    return Status::IOError("close failed for " + path_);
  }
  write_file_ = nullptr;
  if (wal_file_ != nullptr) {
    std::fclose(wal_file_);
    wal_file_ = nullptr;
  }
  return OpenForRead();
}

Status HeapFile::OpenForRead() {
  if (read_file_ != nullptr) std::fclose(read_file_);
  read_file_ = std::fopen(path_.c_str(), "rb");
  if (read_file_ == nullptr) {
    return Status::IOError("cannot open heap file " + path_);
  }
  if (num_pages_ == 0) {
    // Opening a pre-existing file: size derives the page count; the last
    // page's tuple count resolves num_rows_.
    std::fseek(read_file_, 0, SEEK_END);
    const long bytes = std::ftell(read_file_);
    if (bytes < 0 || bytes % static_cast<long>(kPageBytes) != 0) {
      return Status::Corruption("heap file size not page aligned: " +
                                path_);
    }
    num_pages_ = static_cast<uint64_t>(bytes) / kPageBytes;
    num_rows_ = 0;
    if (num_pages_ > 0) {
      SM_ASSIGN_OR_RETURN(const std::vector<Tuple>* last,
                          FetchPage(num_pages_ - 1));
      num_rows_ = (num_pages_ - 1) * TuplesPerPage() + last->size();
    }
  }
  return Status::OK();
}

Status HeapFile::ReopenForAppend() {
  if (write_file_ != nullptr) {
    return Status::InvalidArgument("heap file already in load mode");
  }
  if (read_file_ == nullptr) {
    SM_RETURN_IF_ERROR(OpenForRead());
  }
  // Pull the tail page back into the write buffer.
  tail_page_.clear();
  uint64_t full_pages = num_pages_;
  if (num_pages_ > 0) {
    SM_ASSIGN_OR_RETURN(const std::vector<Tuple>* last,
                        FetchPage(num_pages_ - 1));
    if (last->size() < TuplesPerPage()) {
      tail_page_ = *last;
      full_pages = num_pages_ - 1;
      // The tail page will be rewritten; drop it from the cache.
      auto it = cache_.find(num_pages_ - 1);
      if (it != cache_.end()) {
        lru_.erase(it->second.second);
        cache_.erase(it);
      }
    }
  }
  std::fclose(read_file_);
  read_file_ = nullptr;
  // "r+b": keep existing pages, position after the last full page.
  write_file_ = std::fopen(path_.c_str(), "r+b");
  if (write_file_ == nullptr) {
    return Status::IOError("cannot reopen heap file " + path_);
  }
  if (std::fseek(write_file_, static_cast<long>(full_pages * kPageBytes),
                 SEEK_SET) != 0) {
    return Status::IOError("seek failed in " + path_);
  }
  if (write_ahead_log_) {
    wal_file_ = std::fopen((path_ + ".wal").c_str(), "ab");
    if (wal_file_ == nullptr) {
      return Status::IOError("cannot reopen WAL for " + path_);
    }
  }
  num_pages_ = full_pages;
  return Status::OK();
}

Result<const std::vector<HeapFile::Tuple>*> HeapFile::FetchPage(
    uint64_t page_id) const {
  auto it = cache_.find(page_id);
  if (it != cache_.end()) {
    ++cache_hits_;
    lru_.erase(it->second.second);
    lru_.push_front(page_id);
    it->second.second = lru_.begin();
    return &it->second.first;
  }
  ++cache_misses_;
  if (read_file_ == nullptr) {
    return Status::InvalidArgument("heap file not open for reading");
  }
  PageImage image;
  if (std::fseek(read_file_,
                 static_cast<long>(page_id * kPageBytes), SEEK_SET) != 0 ||
      std::fread(&image, sizeof(image), 1, read_file_) != 1) {
    return Status::IOError(StringPrintf("cannot read page %llu of %s",
                                        static_cast<unsigned long long>(
                                            page_id),
                                        path_.c_str()));
  }
  if (image.tuple_count > TuplesPerPage()) {
    return Status::Corruption("page tuple count out of range in " + path_);
  }
  std::vector<Tuple> tuples(image.tuple_count);
  std::memcpy(tuples.data(), image.payload,
              image.tuple_count * sizeof(Tuple));
  // Evict least-recently-used pages beyond capacity.
  while (cache_.size() >= cache_capacity_) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
  }
  lru_.push_front(page_id);
  auto [inserted, ok] =
      cache_.emplace(page_id, std::make_pair(std::move(tuples),
                                             lru_.begin()));
  (void)ok;
  return &inserted->second.first;
}

Result<HeapFile::Tuple> HeapFile::Read(uint64_t row_id) const {
  if (row_id >= num_rows_) {
    return Status::OutOfRange(StringPrintf(
        "row %llu >= %llu", static_cast<unsigned long long>(row_id),
        static_cast<unsigned long long>(num_rows_)));
  }
  const uint64_t page_id = row_id / TuplesPerPage();
  const size_t slot = static_cast<size_t>(row_id % TuplesPerPage());
  SM_ASSIGN_OR_RETURN(const std::vector<Tuple>* page, FetchPage(page_id));
  if (slot >= page->size()) {
    return Status::Corruption("slot beyond page tuple count");
  }
  return (*page)[slot];
}

Status HeapFile::Scan(
    const std::function<void(uint64_t, const Tuple&)>& visit) const {
  for (uint64_t page_id = 0; page_id < num_pages_; ++page_id) {
    SM_ASSIGN_OR_RETURN(const std::vector<Tuple>* page, FetchPage(page_id));
    for (size_t slot = 0; slot < page->size(); ++slot) {
      visit(page_id * TuplesPerPage() + slot, (*page)[slot]);
    }
  }
  return Status::OK();
}

}  // namespace smartmeter::storage
