#include "storage/column_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "storage/block_codec.h"

namespace smartmeter::storage {

namespace {

constexpr char kMagic[8] = {'S', 'M', 'C', 'O', 'L', 'V', '1', '\0'};
constexpr size_t kHeaderBytes = 8 + 8 + 8;

constexpr char kMagicV2[8] = {'S', 'M', 'C', 'O', 'L', 'V', '2', '\0'};
// magic + households + hours + block_values + footer_offset + checksum.
constexpr size_t kV2HeaderBytes = 8 + 8 + 8 + 8 + 8 + 8;
// offset, bytes, row range (2), hour range (2), min/max, checksum.
constexpr size_t kV2EntryBytes = 9 * 8;
// Consumption / temperature / id entry counts preceding the entries.
constexpr size_t kV2FooterCounts = 3 * 8;
constexpr size_t kV2MaxBlockValues = size_t{1} << 20;

size_t FileBytes(size_t households, size_t hours) {
  return kHeaderBytes + households * sizeof(int64_t) +
         households * hours * sizeof(double) + hours * sizeof(double);
}

// FileBytes for untrusted (on-disk) header values: fails on arithmetic
// overflow so a corrupt header cannot wrap the size check below and make
// a tiny file look consistent with a huge shape.
bool CheckedFileBytes(uint64_t households, uint64_t hours, size_t* out) {
  uint64_t ids = 0;
  uint64_t rows = 0;
  uint64_t consumption = 0;
  uint64_t temperature = 0;
  uint64_t total = kHeaderBytes;
  if (__builtin_mul_overflow(households, sizeof(int64_t), &ids) ||
      __builtin_mul_overflow(households, hours, &rows) ||
      __builtin_mul_overflow(rows, sizeof(double), &consumption) ||
      __builtin_mul_overflow(hours, sizeof(double), &temperature) ||
      __builtin_add_overflow(total, ids, &total) ||
      __builtin_add_overflow(total, consumption, &total) ||
      __builtin_add_overflow(total, temperature, &total)) {
    return false;
  }
  *out = total;
  return true;
}

}  // namespace

ColumnStore::~ColumnStore() { Close(); }

ColumnStore::ColumnStore(ColumnStore&& other) noexcept {
  *this = std::move(other);
}

ColumnStore& ColumnStore::operator=(ColumnStore&& other) noexcept {
  if (this == &other) return *this;
  Close();
  mapped_base_ = other.mapped_base_;
  mapped_size_ = other.mapped_size_;
  owned_ = std::move(other.owned_);
  num_households_ = other.num_households_;
  hours_ = other.hours_;
  household_ids_ = other.household_ids_;
  consumption_ = other.consumption_;
  temperature_ = other.temperature_;
  other.mapped_base_ = nullptr;
  other.mapped_size_ = 0;
  other.num_households_ = 0;
  other.hours_ = 0;
  other.household_ids_ = nullptr;
  other.consumption_ = nullptr;
  other.temperature_ = nullptr;
  return *this;
}

void ColumnStore::Close() {
  if (mapped_base_ != nullptr) {
    ::munmap(mapped_base_, mapped_size_);
    mapped_base_ = nullptr;
    mapped_size_ = 0;
  }
  owned_.clear();
  owned_.shrink_to_fit();
  num_households_ = 0;
  hours_ = 0;
  household_ids_ = nullptr;
  consumption_ = nullptr;
  temperature_ = nullptr;
}

Status ColumnStore::WriteFile(const MeterDataset& dataset,
                              const std::string& path) {
  SM_RETURN_IF_ERROR(dataset.Validate());
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);

  auto write = [f](const void* data, size_t bytes) {
    return std::fwrite(data, 1, bytes, f) == bytes;
  };
  bool ok = write(kMagic, sizeof(kMagic));
  const uint64_t households = dataset.num_consumers();
  const uint64_t hours = dataset.hours();
  ok = ok && write(&households, sizeof(households));
  ok = ok && write(&hours, sizeof(hours));
  for (const ConsumerSeries& c : dataset.consumers()) {
    ok = ok && write(&c.household_id, sizeof(c.household_id));
  }
  for (const ConsumerSeries& c : dataset.consumers()) {
    ok = ok && write(c.consumption.data(),
                     c.consumption.size() * sizeof(double));
  }
  ok = ok && write(dataset.temperature().data(),
                   dataset.temperature().size() * sizeof(double));
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(path.c_str());  // Never leave a truncated columnar file.
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Status ColumnStore::PointIntoBuffer(const uint8_t* base, size_t size,
                                    const std::string& origin) {
  if (size < kHeaderBytes || std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad columnar magic in " + origin);
  }
  uint64_t households = 0;
  uint64_t hours = 0;
  std::memcpy(&households, base + 8, sizeof(households));
  std::memcpy(&hours, base + 16, sizeof(hours));
  size_t expected = 0;
  if (!CheckedFileBytes(households, hours, &expected) || size != expected) {
    return Status::Corruption(StringPrintf(
        "columnar file %s has %zu bytes, inconsistent with header shape "
        "%llu x %llu",
        origin.c_str(), size, static_cast<unsigned long long>(households),
        static_cast<unsigned long long>(hours)));
  }
  num_households_ = households;
  hours_ = hours;
  const uint8_t* cursor = base + kHeaderBytes;
  household_ids_ = reinterpret_cast<const int64_t*>(cursor);
  cursor += households * sizeof(int64_t);
  consumption_ = reinterpret_cast<const double*>(cursor);
  cursor += households * hours * sizeof(double);
  temperature_ = reinterpret_cast<const double*>(cursor);
  return Status::OK();
}

Status ColumnStore::OpenMapped(const std::string& path) {
  Close();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    return Status::Corruption(StringPrintf(
        "columnar file %s has %zu bytes, smaller than the %zu-byte header",
        path.c_str(), size, kHeaderBytes));
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (base == MAP_FAILED) {
    return Status::IOError("mmap failed for " + path);
  }
  const Status st_parse =
      PointIntoBuffer(static_cast<const uint8_t*>(base), size, path);
  if (!st_parse.ok()) {
    ::munmap(base, size);
    return st_parse;
  }
  mapped_base_ = base;
  mapped_size_ = size;
  static obs::Counter* opens =
      obs::MetricsRegistry::Global().GetCounter("columnstore.opens");
  static obs::Counter* bytes_mapped =
      obs::MetricsRegistry::Global().GetCounter("columnstore.bytes_mapped");
  static obs::Counter* rows_mapped =
      obs::MetricsRegistry::Global().GetCounter("columnstore.rows_mapped");
  opens->Increment();
  bytes_mapped->Add(static_cast<int64_t>(size));
  rows_mapped->Add(static_cast<int64_t>(num_households_ * hours_));
  return Status::OK();
}

Status ColumnStore::LoadFromDataset(const MeterDataset& dataset) {
  Close();
  SM_RETURN_IF_ERROR(dataset.Validate());
  const size_t households = dataset.num_consumers();
  const size_t hours = dataset.hours();
  owned_.resize(FileBytes(households, hours));
  uint8_t* cursor = owned_.data();
  std::memcpy(cursor, kMagic, sizeof(kMagic));
  const uint64_t h64 = households;
  const uint64_t hr64 = hours;
  std::memcpy(cursor + 8, &h64, sizeof(h64));
  std::memcpy(cursor + 16, &hr64, sizeof(hr64));
  cursor += kHeaderBytes;
  for (const ConsumerSeries& c : dataset.consumers()) {
    std::memcpy(cursor, &c.household_id, sizeof(c.household_id));
    cursor += sizeof(c.household_id);
  }
  for (const ConsumerSeries& c : dataset.consumers()) {
    std::memcpy(cursor, c.consumption.data(), hours * sizeof(double));
    cursor += hours * sizeof(double);
  }
  std::memcpy(cursor, dataset.temperature().data(), hours * sizeof(double));
  const Status pointed =
      PointIntoBuffer(owned_.data(), owned_.size(), "<memory>");
  if (!pointed.ok()) Close();  // Don't hold the buffer for a dead store.
  return pointed;
}

// ---------------------------------------------------------------------------
// SMCOLV2
// ---------------------------------------------------------------------------

namespace {

void PutU64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, sizeof(v)); }

uint64_t GetU64(const uint8_t* src) {
  uint64_t v = 0;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  uint8_t bytes[8];
  PutU64(bytes, v);
  out->insert(out->end(), bytes, bytes + sizeof(bytes));
}

void AppendF64(std::vector<uint8_t>* out, double v) {
  uint8_t bytes[8];
  std::memcpy(bytes, &v, sizeof(v));
  out->insert(out->end(), bytes, bytes + sizeof(bytes));
}

size_t BlockCount(size_t values, size_t block_values) {
  return values == 0 ? 0 : (values - 1) / block_values + 1;
}

}  // namespace

ColumnFileWriter::ColumnFileWriter(std::string path, size_t block_values)
    : path_(std::move(path)), block_values_(block_values) {}

ColumnFileWriter::~ColumnFileWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(path_.c_str());  // Finish() never ran: drop the partial file.
  }
}

Status ColumnFileWriter::Fail(const std::string& message) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    std::remove(path_.c_str());
  }
  return Status::IOError(message + ": " + path_);
}

Status ColumnFileWriter::WriteBytes(const void* data, size_t bytes) {
  if (std::fwrite(data, 1, bytes, file_) != bytes) {
    return Fail("short write");
  }
  offset_ += bytes;
  return Status::OK();
}

Status ColumnFileWriter::Open(size_t hours) {
  if (file_ != nullptr) {
    return Status::InvalidArgument("column writer already open: " + path_);
  }
  if (block_values_ < 1 || block_values_ > kV2MaxBlockValues) {
    return Status::InvalidArgument(
        StringPrintf("block_values %zu outside [1, %zu]", block_values_,
                     kV2MaxBlockValues));
  }
  hours_ = hours;
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) return Status::IOError("cannot open " + path_);
  const std::vector<uint8_t> placeholder(kV2HeaderBytes, 0);
  return WriteBytes(placeholder.data(), placeholder.size());
}

Status ColumnFileWriter::WriteBlock(std::span<const double> values,
                                    uint64_t value_begin,
                                    bool temperature_column) {
  scratch_.clear();
  codec::EncodeDoubles(values, &scratch_);
  BlockEntry entry;
  entry.offset = offset_;
  entry.encoded_bytes = scratch_.size();
  if (temperature_column) {
    entry.hour_begin = value_begin;
    entry.hour_end = value_begin + values.size();
  } else {
    entry.row_begin = value_begin / hours_;
    entry.row_end = (value_begin + values.size() - 1) / hours_ + 1;
    if (entry.row_end - entry.row_begin > 1) {
      entry.hour_end = hours_;  // Spans full rows: every hour is inside.
    } else {
      entry.hour_begin = value_begin % hours_;
      entry.hour_end = (value_begin + values.size() - 1) % hours_ + 1;
    }
  }
  entry.min_value = values[0];
  entry.max_value = values[0];
  for (double v : values) {
    entry.min_value = std::min(entry.min_value, v);
    entry.max_value = std::max(entry.max_value, v);
  }
  entry.checksum = codec::Fnv1a(scratch_, codec::Fnv1aSeed());
  SM_RETURN_IF_ERROR(WriteBytes(scratch_.data(), scratch_.size()));
  (temperature_column ? temperature_blocks_ : consumption_blocks_)
      .push_back(entry);
  return Status::OK();
}

Status ColumnFileWriter::FlushPending(bool final_flush) {
  if (pending_.empty()) return Status::OK();
  if (!final_flush && pending_.size() < block_values_) return Status::OK();
  const uint64_t begin = values_written_;
  values_written_ += pending_.size();
  SM_RETURN_IF_ERROR(WriteBlock(pending_, begin, /*temperature_column=*/false));
  pending_.clear();
  return Status::OK();
}

Status ColumnFileWriter::AppendHousehold(int64_t household_id,
                                         std::span<const double> consumption) {
  if (file_ == nullptr) {
    return Status::InvalidArgument("column writer is not open: " + path_);
  }
  if (consumption.size() != hours_) {
    return Status::InvalidArgument(StringPrintf(
        "household %lld has %zu hours, file is %zu hours wide",
        static_cast<long long>(household_id), consumption.size(), hours_));
  }
  ids_.push_back(household_id);
  size_t taken = 0;
  while (taken < consumption.size()) {
    const size_t take = std::min(block_values_ - pending_.size(),
                                 consumption.size() - taken);
    pending_.insert(pending_.end(), consumption.begin() + taken,
                    consumption.begin() + taken + take);
    taken += take;
    if (pending_.size() == block_values_) {
      SM_RETURN_IF_ERROR(FlushPending(/*final_flush=*/false));
    }
  }
  return Status::OK();
}

Status ColumnFileWriter::Finish(std::span<const double> temperature) {
  if (file_ == nullptr) {
    return Status::InvalidArgument("column writer is not open: " + path_);
  }
  if (temperature.size() != hours_) {
    return Status::InvalidArgument(
        StringPrintf("temperature has %zu hours, file is %zu hours wide",
                     temperature.size(), hours_));
  }
  SM_RETURN_IF_ERROR(FlushPending(/*final_flush=*/true));
  for (size_t begin = 0; begin < temperature.size(); begin += block_values_) {
    const size_t count = std::min(block_values_, temperature.size() - begin);
    SM_RETURN_IF_ERROR(WriteBlock(temperature.subspan(begin, count), begin,
                                  /*temperature_column=*/true));
  }
  std::vector<BlockEntry> id_blocks;
  for (size_t begin = 0; begin < ids_.size(); begin += block_values_) {
    const size_t count = std::min(block_values_, ids_.size() - begin);
    scratch_.clear();
    codec::EncodeInts(std::span<const int64_t>(ids_).subspan(begin, count),
                      &scratch_);
    BlockEntry entry;
    entry.offset = offset_;
    entry.encoded_bytes = scratch_.size();
    entry.row_begin = begin;
    entry.row_end = begin + count;
    entry.min_value = static_cast<double>(
        *std::min_element(ids_.begin() + begin, ids_.begin() + begin + count));
    entry.max_value = static_cast<double>(
        *std::max_element(ids_.begin() + begin, ids_.begin() + begin + count));
    entry.checksum = codec::Fnv1a(scratch_, codec::Fnv1aSeed());
    SM_RETURN_IF_ERROR(WriteBytes(scratch_.data(), scratch_.size()));
    id_blocks.push_back(entry);
  }

  const uint64_t footer_offset = offset_;
  std::vector<uint8_t> footer;
  AppendU64(&footer, consumption_blocks_.size());
  AppendU64(&footer, temperature_blocks_.size());
  AppendU64(&footer, id_blocks.size());
  const auto append_entries = [&footer](const std::vector<BlockEntry>& list) {
    for (const BlockEntry& entry : list) {
      AppendU64(&footer, entry.offset);
      AppendU64(&footer, entry.encoded_bytes);
      AppendU64(&footer, entry.row_begin);
      AppendU64(&footer, entry.row_end);
      AppendU64(&footer, entry.hour_begin);
      AppendU64(&footer, entry.hour_end);
      AppendF64(&footer, entry.min_value);
      AppendF64(&footer, entry.max_value);
      AppendU64(&footer, entry.checksum);
    }
  };
  append_entries(consumption_blocks_);
  append_entries(temperature_blocks_);
  append_entries(id_blocks);
  AppendU64(&footer, codec::Fnv1a(footer, codec::Fnv1aSeed()));
  SM_RETURN_IF_ERROR(WriteBytes(footer.data(), footer.size()));

  uint8_t header[kV2HeaderBytes];
  std::memcpy(header, kMagicV2, sizeof(kMagicV2));
  PutU64(header + 8, ids_.size());
  PutU64(header + 16, hours_);
  PutU64(header + 24, block_values_);
  PutU64(header + 32, footer_offset);
  PutU64(header + 40,
         codec::Fnv1a(std::span<const uint8_t>(header, 40), codec::Fnv1aSeed()));
  if (std::fseek(file_, 0, SEEK_SET) != 0) return Fail("cannot rewind");
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header)) {
    return Fail("short header rewrite");
  }
  std::FILE* file = file_;
  file_ = nullptr;
  if (std::fclose(file) != 0) {
    std::remove(path_.c_str());
    return Status::IOError("close failed: " + path_);
  }
  return Status::OK();
}

Status ColumnFileWriter::WriteFile(const MeterDataset& dataset,
                                   const std::string& path,
                                   size_t block_values) {
  SM_RETURN_IF_ERROR(dataset.Validate());
  ColumnFileWriter writer(path, block_values);
  SM_RETURN_IF_ERROR(writer.Open(dataset.hours()));
  for (const ConsumerSeries& c : dataset.consumers()) {
    SM_RETURN_IF_ERROR(writer.AppendHousehold(c.household_id, c.consumption));
  }
  return writer.Finish(dataset.temperature());
}

CompressedColumnFile::~CompressedColumnFile() { Close(); }

CompressedColumnFile::CompressedColumnFile(
    CompressedColumnFile&& other) noexcept {
  *this = std::move(other);
}

CompressedColumnFile& CompressedColumnFile::operator=(
    CompressedColumnFile&& other) noexcept {
  if (this == &other) return *this;
  Close();
  base_ = other.base_;
  size_ = other.size_;
  num_households_ = other.num_households_;
  hours_ = other.hours_;
  block_values_ = other.block_values_;
  consumption_blocks_ = std::move(other.consumption_blocks_);
  temperature_blocks_ = std::move(other.temperature_blocks_);
  id_blocks_ = std::move(other.id_blocks_);
  other.base_ = nullptr;
  other.size_ = 0;
  other.num_households_ = 0;
  other.hours_ = 0;
  other.block_values_ = 0;
  return *this;
}

void CompressedColumnFile::Close() {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
    base_ = nullptr;
  }
  size_ = 0;
  num_households_ = 0;
  hours_ = 0;
  block_values_ = 0;
  consumption_blocks_.clear();
  temperature_blocks_.clear();
  id_blocks_.clear();
}

Status CompressedColumnFile::Parse(const std::string& origin) {
  const auto* base = static_cast<const uint8_t*>(base_);
  if (size_ < kV2HeaderBytes ||
      std::memcmp(base, kMagicV2, sizeof(kMagicV2)) != 0) {
    return Status::Corruption("bad SMCOLV2 magic in " + origin);
  }
  if (GetU64(base + 40) !=
      codec::Fnv1a(std::span<const uint8_t>(base, 40), codec::Fnv1aSeed())) {
    return Status::Corruption("SMCOLV2 header checksum mismatch in " + origin);
  }
  const uint64_t households = GetU64(base + 8);
  const uint64_t hours = GetU64(base + 16);
  const uint64_t block_values = GetU64(base + 24);
  const uint64_t footer_offset = GetU64(base + 32);
  if (block_values < 1 || block_values > kV2MaxBlockValues) {
    return Status::Corruption("SMCOLV2 block size out of range in " + origin);
  }
  uint64_t total_values = 0;
  if (__builtin_mul_overflow(households, hours, &total_values)) {
    return Status::Corruption("SMCOLV2 shape overflows in " + origin);
  }
  const size_t cons_blocks = BlockCount(total_values, block_values);
  const size_t temp_blocks = BlockCount(hours, block_values);
  const size_t id_count = BlockCount(households, block_values);
  uint64_t entries = 0;
  uint64_t footer_bytes = 0;
  if (__builtin_add_overflow(static_cast<uint64_t>(cons_blocks),
                             static_cast<uint64_t>(temp_blocks), &entries) ||
      __builtin_add_overflow(entries, static_cast<uint64_t>(id_count),
                             &entries) ||
      __builtin_mul_overflow(entries, uint64_t{kV2EntryBytes},
                             &footer_bytes) ||
      __builtin_add_overflow(footer_bytes, uint64_t{kV2FooterCounts + 8},
                             &footer_bytes)) {
    return Status::Corruption("SMCOLV2 footer size overflows in " + origin);
  }
  if (footer_offset < kV2HeaderBytes || footer_offset > size_ ||
      size_ - footer_offset != footer_bytes) {
    return Status::Corruption(StringPrintf(
        "SMCOLV2 file %s: footer at %llu inconsistent with %zu-byte file",
        origin.c_str(), static_cast<unsigned long long>(footer_offset),
        size_));
  }
  const uint8_t* footer = base + footer_offset;
  const size_t footer_body = static_cast<size_t>(footer_bytes) - 8;
  if (GetU64(footer + footer_body) !=
      codec::Fnv1a(std::span<const uint8_t>(footer, footer_body),
                   codec::Fnv1aSeed())) {
    return Status::Corruption("SMCOLV2 footer checksum mismatch in " + origin);
  }
  if (GetU64(footer) != cons_blocks || GetU64(footer + 8) != temp_blocks ||
      GetU64(footer + 16) != id_count) {
    return Status::Corruption("SMCOLV2 block counts disagree with shape in " +
                              origin);
  }

  num_households_ = households;
  hours_ = hours;
  block_values_ = block_values;
  const uint8_t* cursor = footer + kV2FooterCounts;
  const auto parse_entries = [&cursor](std::vector<BlockEntry>* list,
                                       size_t count) {
    list->resize(count);
    for (BlockEntry& entry : *list) {
      entry.offset = GetU64(cursor);
      entry.encoded_bytes = GetU64(cursor + 8);
      entry.row_begin = GetU64(cursor + 16);
      entry.row_end = GetU64(cursor + 24);
      entry.hour_begin = GetU64(cursor + 32);
      entry.hour_end = GetU64(cursor + 40);
      std::memcpy(&entry.min_value, cursor + 48, sizeof(double));
      std::memcpy(&entry.max_value, cursor + 56, sizeof(double));
      entry.checksum = GetU64(cursor + 64);
      cursor += kV2EntryBytes;
    }
  };
  parse_entries(&consumption_blocks_, cons_blocks);
  parse_entries(&temperature_blocks_, temp_blocks);
  parse_entries(&id_blocks_, id_count);

  // Every entry must point inside the data section, and its declared
  // (household × hour) ranges must match the ranges the writer derives
  // from the block's value positions -- a mislabeled index would silently
  // misroute pruning decisions.
  const auto check_entry = [&](const BlockEntry& entry, uint64_t row_begin,
                               uint64_t row_end, uint64_t hour_begin,
                               uint64_t hour_end) -> Status {
    uint64_t end = 0;
    if (entry.offset < kV2HeaderBytes ||
        entry.encoded_bytes < codec::kBlockHeaderBytes ||
        __builtin_add_overflow(entry.offset, entry.encoded_bytes, &end) ||
        end > footer_offset) {
      return Status::Corruption("SMCOLV2 block outside data section in " +
                                origin);
    }
    if (entry.row_begin != row_begin || entry.row_end != row_end ||
        entry.hour_begin != hour_begin || entry.hour_end != hour_end) {
      return Status::Corruption("SMCOLV2 block index mislabels a block in " +
                                origin);
    }
    return Status::OK();
  };
  for (size_t i = 0; i < consumption_blocks_.size(); ++i) {
    const uint64_t v0 = i * block_values;
    const uint64_t v1 = std::min<uint64_t>(v0 + block_values, total_values);
    const uint64_t row_begin = v0 / hours;
    const uint64_t row_end = (v1 - 1) / hours + 1;
    uint64_t hour_begin = 0;
    uint64_t hour_end = hours;
    if (row_end - row_begin == 1) {
      hour_begin = v0 % hours;
      hour_end = (v1 - 1) % hours + 1;
    }
    SM_RETURN_IF_ERROR(check_entry(consumption_blocks_[i], row_begin, row_end,
                                   hour_begin, hour_end));
  }
  for (size_t i = 0; i < temperature_blocks_.size(); ++i) {
    const uint64_t h0 = i * block_values;
    const uint64_t h1 = std::min<uint64_t>(h0 + block_values, hours);
    SM_RETURN_IF_ERROR(check_entry(temperature_blocks_[i], 0, 0, h0, h1));
  }
  for (size_t i = 0; i < id_blocks_.size(); ++i) {
    const uint64_t r0 = i * block_values;
    const uint64_t r1 = std::min<uint64_t>(r0 + block_values, households);
    SM_RETURN_IF_ERROR(check_entry(id_blocks_[i], r0, r1, 0, 0));
  }
  return Status::OK();
}

Status CompressedColumnFile::Open(const std::string& path) {
  Close();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kV2HeaderBytes) {
    ::close(fd);
    return Status::Corruption(StringPrintf(
        "SMCOLV2 file %s has %zu bytes, smaller than the %zu-byte header",
        path.c_str(), size, kV2HeaderBytes));
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return Status::IOError("mmap failed for " + path);
  }
  base_ = base;
  size_ = size;
  const Status parsed = Parse(path);
  if (!parsed.ok()) {
    Close();
    return parsed;
  }
  static obs::Counter* opens =
      obs::MetricsRegistry::Global().GetCounter("columnstore.opens");
  static obs::Counter* bytes_mapped =
      obs::MetricsRegistry::Global().GetCounter("columnstore.bytes_mapped");
  static obs::Counter* rows_mapped =
      obs::MetricsRegistry::Global().GetCounter("columnstore.rows_mapped");
  opens->Increment();
  bytes_mapped->Add(static_cast<int64_t>(size));
  rows_mapped->Add(static_cast<int64_t>(num_households_ * hours_));
  return Status::OK();
}

Status CompressedColumnFile::CheckBlock(const BlockEntry& entry,
                                        size_t expected_values,
                                        std::span<const uint8_t>* out) const {
  const auto* base = static_cast<const uint8_t*>(base_);
  const std::span<const uint8_t> bytes(base + entry.offset,
                                       entry.encoded_bytes);
  if (codec::Fnv1a(bytes, codec::Fnv1aSeed()) != entry.checksum) {
    return Status::Corruption("SMCOLV2 block checksum mismatch");
  }
  (void)expected_values;
  *out = bytes;
  return Status::OK();
}

Status CompressedColumnFile::DecodeDoubleBlocks(
    const std::vector<BlockEntry>& entries, size_t total_values,
    std::vector<double>* out, ScanStats* stats) const {
  out->clear();
  out->reserve(total_values);
  size_t remaining = total_values;
  for (const BlockEntry& entry : entries) {
    const size_t count = std::min(remaining, block_values_);
    std::span<const uint8_t> bytes;
    SM_RETURN_IF_ERROR(CheckBlock(entry, count, &bytes));
    SM_RETURN_IF_ERROR(codec::DecodeDoubles(bytes, count, out));
    remaining -= count;
    if (stats != nullptr) {
      ++stats->blocks_decoded;
      stats->bytes_decoded += static_cast<int64_t>(count * sizeof(double));
    }
  }
  return Status::OK();
}

Status CompressedColumnFile::DecodeIds(std::vector<int64_t>* ids) const {
  ids->clear();
  ids->reserve(num_households_);
  size_t remaining = num_households_;
  for (const BlockEntry& entry : id_blocks_) {
    const size_t count = std::min(remaining, block_values_);
    std::span<const uint8_t> bytes;
    SM_RETURN_IF_ERROR(CheckBlock(entry, count, &bytes));
    SM_RETURN_IF_ERROR(codec::DecodeInts(bytes, count, ids));
    remaining -= count;
  }
  return Status::OK();
}

Status CompressedColumnFile::DecodeTemperature(
    std::vector<double>* temperature) const {
  return DecodeDoubleBlocks(temperature_blocks_, hours_, temperature, nullptr);
}

Status CompressedColumnFile::DecodeAll(std::vector<int64_t>* ids,
                                       std::vector<double>* consumption,
                                       std::vector<double>* temperature,
                                       ScanStats* stats) const {
  if (stats != nullptr) {
    stats->blocks_total += static_cast<int64_t>(num_blocks());
    stats->bytes_on_disk += file_bytes();
  }
  SM_RETURN_IF_ERROR(DecodeIds(ids));
  SM_RETURN_IF_ERROR(DecodeDoubleBlocks(consumption_blocks_,
                                        num_households_ * hours_, consumption,
                                        stats));
  SM_RETURN_IF_ERROR(
      DecodeDoubleBlocks(temperature_blocks_, hours_, temperature, stats));
  if (stats != nullptr) {
    // Id blocks round out the decoded count; DecodeIds has no stats arm.
    stats->blocks_decoded += static_cast<int64_t>(id_blocks_.size());
    stats->bytes_decoded +=
        static_cast<int64_t>(num_households_ * sizeof(int64_t));
  }
  return Status::OK();
}

Status CompressedColumnFile::DecodeScoped(const ScanScope& scope,
                                          std::vector<int64_t>* ids,
                                          std::vector<double>* consumption,
                                          std::vector<double>* temperature,
                                          ScanStats* stats) const {
  const size_t r0 = scope.RowBegin(num_households_);
  const size_t r1 = scope.RowEnd(num_households_);
  const size_t h0 = scope.HourBegin(hours_);
  const size_t h1 = scope.HourEnd(hours_);
  const size_t rows = r1 - r0;
  const size_t window = h1 - h0;
  if (stats != nullptr) {
    stats->blocks_total += static_cast<int64_t>(num_blocks());
    stats->bytes_on_disk += file_bytes();
  }

  ids->clear();
  ids->reserve(rows);
  std::vector<int64_t> id_scratch;
  size_t remaining = num_households_;
  for (const BlockEntry& entry : id_blocks_) {
    const size_t count = std::min(remaining, block_values_);
    const size_t begin = num_households_ - remaining;
    remaining -= count;
    if (begin + count <= r0 || begin >= r1) {
      if (stats != nullptr) ++stats->blocks_pruned;
      continue;
    }
    std::span<const uint8_t> bytes;
    SM_RETURN_IF_ERROR(CheckBlock(entry, count, &bytes));
    id_scratch.clear();
    SM_RETURN_IF_ERROR(codec::DecodeInts(bytes, count, &id_scratch));
    const size_t from = std::max(begin, r0);
    const size_t to = std::min(begin + count, r1);
    ids->insert(ids->end(), id_scratch.begin() + (from - begin),
                id_scratch.begin() + (to - begin));
    if (stats != nullptr) {
      ++stats->blocks_decoded;
      stats->bytes_decoded += static_cast<int64_t>(count * sizeof(int64_t));
    }
  }

  temperature->clear();
  temperature->reserve(window);
  std::vector<double> scratch;
  remaining = hours_;
  for (const BlockEntry& entry : temperature_blocks_) {
    const size_t count = std::min(remaining, block_values_);
    const size_t begin = hours_ - remaining;
    remaining -= count;
    if (begin + count <= h0 || begin >= h1) {
      if (stats != nullptr) ++stats->blocks_pruned;
      continue;
    }
    std::span<const uint8_t> bytes;
    SM_RETURN_IF_ERROR(CheckBlock(entry, count, &bytes));
    scratch.clear();
    SM_RETURN_IF_ERROR(codec::DecodeDoubles(bytes, count, &scratch));
    const size_t from = std::max(begin, h0);
    const size_t to = std::min(begin + count, h1);
    temperature->insert(temperature->end(), scratch.begin() + (from - begin),
                        scratch.begin() + (to - begin));
    if (stats != nullptr) {
      ++stats->blocks_decoded;
      stats->bytes_decoded += static_cast<int64_t>(count * sizeof(double));
    }
  }

  consumption->assign(rows * window, 0.0);
  const size_t total_values = num_households_ * hours_;
  for (size_t i = 0; i < consumption_blocks_.size(); ++i) {
    const BlockEntry& entry = consumption_blocks_[i];
    const size_t v0 = i * block_values_;
    const size_t v1 = std::min(v0 + block_values_, total_values);
    // Row ranges from the index, refined per row against the hour
    // window: a block is decoded only when some scoped row's scoped
    // hours fall inside its value range.
    bool needed = false;
    if (entry.row_end > r0 && entry.row_begin < r1 && window > 0) {
      const size_t row_from = std::max<size_t>(entry.row_begin, r0);
      const size_t row_to = std::min<size_t>(entry.row_end, r1);
      for (size_t r = row_from; r < row_to && !needed; ++r) {
        const size_t seg0 = std::max(v0, r * hours_ + h0);
        const size_t seg1 = std::min(v1, r * hours_ + h1);
        needed = seg0 < seg1;
      }
    }
    if (!needed) {
      if (stats != nullptr) ++stats->blocks_pruned;
      continue;
    }
    std::span<const uint8_t> bytes;
    SM_RETURN_IF_ERROR(CheckBlock(entry, v1 - v0, &bytes));
    scratch.clear();
    SM_RETURN_IF_ERROR(codec::DecodeDoubles(bytes, v1 - v0, &scratch));
    const size_t row_from = std::max<size_t>(entry.row_begin, r0);
    const size_t row_to = std::min<size_t>(entry.row_end, r1);
    for (size_t r = row_from; r < row_to; ++r) {
      const size_t seg0 = std::max(v0, r * hours_ + h0);
      const size_t seg1 = std::min(v1, r * hours_ + h1);
      if (seg0 >= seg1) continue;
      const size_t dst = (r - r0) * window + (seg0 - (r * hours_ + h0));
      std::copy(scratch.begin() + (seg0 - v0), scratch.begin() + (seg1 - v0),
                consumption->begin() + dst);
    }
    if (stats != nullptr) {
      ++stats->blocks_decoded;
      stats->bytes_decoded +=
          static_cast<int64_t>((v1 - v0) * sizeof(double));
    }
  }
  return Status::OK();
}

CompressedColumnFile::BlockInfo CompressedColumnFile::consumption_block(
    size_t index) const {
  const BlockEntry& entry = consumption_blocks_[index];
  BlockInfo info;
  info.value_begin = index * block_values_;
  info.value_count =
      std::min(info.value_begin + block_values_, num_households_ * hours_) -
      info.value_begin;
  info.row_begin = entry.row_begin;
  info.row_end = entry.row_end;
  info.encoded_bytes = static_cast<int64_t>(entry.encoded_bytes);
  info.file_offset = static_cast<int64_t>(entry.offset);
  return info;
}

Status CompressedColumnFile::DecodeConsumptionBlock(
    size_t index, std::vector<double>* values) const {
  if (index >= consumption_blocks_.size()) {
    return Status::InvalidArgument("consumption block index out of range");
  }
  const BlockInfo info = consumption_block(index);
  std::span<const uint8_t> bytes;
  SM_RETURN_IF_ERROR(
      CheckBlock(consumption_blocks_[index], info.value_count, &bytes));
  return codec::DecodeDoubles(bytes, info.value_count, values);
}

Result<int> SniffColumnFileFormat(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  char magic[8] = {0};
  const size_t got = std::fread(magic, 1, sizeof(magic), f);
  std::fclose(f);
  if (got == sizeof(magic)) {
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) == 0) return 1;
    if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) return 2;
  }
  return Status::Corruption("unrecognized column file magic in " + path);
}

}  // namespace smartmeter::storage
