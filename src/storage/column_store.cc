#include "storage/column_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace smartmeter::storage {

namespace {

constexpr char kMagic[8] = {'S', 'M', 'C', 'O', 'L', 'V', '1', '\0'};
constexpr size_t kHeaderBytes = 8 + 8 + 8;

size_t FileBytes(size_t households, size_t hours) {
  return kHeaderBytes + households * sizeof(int64_t) +
         households * hours * sizeof(double) + hours * sizeof(double);
}

// FileBytes for untrusted (on-disk) header values: fails on arithmetic
// overflow so a corrupt header cannot wrap the size check below and make
// a tiny file look consistent with a huge shape.
bool CheckedFileBytes(uint64_t households, uint64_t hours, size_t* out) {
  uint64_t ids = 0;
  uint64_t rows = 0;
  uint64_t consumption = 0;
  uint64_t temperature = 0;
  uint64_t total = kHeaderBytes;
  if (__builtin_mul_overflow(households, sizeof(int64_t), &ids) ||
      __builtin_mul_overflow(households, hours, &rows) ||
      __builtin_mul_overflow(rows, sizeof(double), &consumption) ||
      __builtin_mul_overflow(hours, sizeof(double), &temperature) ||
      __builtin_add_overflow(total, ids, &total) ||
      __builtin_add_overflow(total, consumption, &total) ||
      __builtin_add_overflow(total, temperature, &total)) {
    return false;
  }
  *out = total;
  return true;
}

}  // namespace

ColumnStore::~ColumnStore() { Close(); }

ColumnStore::ColumnStore(ColumnStore&& other) noexcept {
  *this = std::move(other);
}

ColumnStore& ColumnStore::operator=(ColumnStore&& other) noexcept {
  if (this == &other) return *this;
  Close();
  mapped_base_ = other.mapped_base_;
  mapped_size_ = other.mapped_size_;
  owned_ = std::move(other.owned_);
  num_households_ = other.num_households_;
  hours_ = other.hours_;
  household_ids_ = other.household_ids_;
  consumption_ = other.consumption_;
  temperature_ = other.temperature_;
  other.mapped_base_ = nullptr;
  other.mapped_size_ = 0;
  other.num_households_ = 0;
  other.hours_ = 0;
  other.household_ids_ = nullptr;
  other.consumption_ = nullptr;
  other.temperature_ = nullptr;
  return *this;
}

void ColumnStore::Close() {
  if (mapped_base_ != nullptr) {
    ::munmap(mapped_base_, mapped_size_);
    mapped_base_ = nullptr;
    mapped_size_ = 0;
  }
  owned_.clear();
  owned_.shrink_to_fit();
  num_households_ = 0;
  hours_ = 0;
  household_ids_ = nullptr;
  consumption_ = nullptr;
  temperature_ = nullptr;
}

Status ColumnStore::WriteFile(const MeterDataset& dataset,
                              const std::string& path) {
  SM_RETURN_IF_ERROR(dataset.Validate());
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);

  auto write = [f](const void* data, size_t bytes) {
    return std::fwrite(data, 1, bytes, f) == bytes;
  };
  bool ok = write(kMagic, sizeof(kMagic));
  const uint64_t households = dataset.num_consumers();
  const uint64_t hours = dataset.hours();
  ok = ok && write(&households, sizeof(households));
  ok = ok && write(&hours, sizeof(hours));
  for (const ConsumerSeries& c : dataset.consumers()) {
    ok = ok && write(&c.household_id, sizeof(c.household_id));
  }
  for (const ConsumerSeries& c : dataset.consumers()) {
    ok = ok && write(c.consumption.data(),
                     c.consumption.size() * sizeof(double));
  }
  ok = ok && write(dataset.temperature().data(),
                   dataset.temperature().size() * sizeof(double));
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(path.c_str());  // Never leave a truncated columnar file.
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Status ColumnStore::PointIntoBuffer(const uint8_t* base, size_t size,
                                    const std::string& origin) {
  if (size < kHeaderBytes || std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad columnar magic in " + origin);
  }
  uint64_t households = 0;
  uint64_t hours = 0;
  std::memcpy(&households, base + 8, sizeof(households));
  std::memcpy(&hours, base + 16, sizeof(hours));
  size_t expected = 0;
  if (!CheckedFileBytes(households, hours, &expected) || size != expected) {
    return Status::Corruption(StringPrintf(
        "columnar file %s has %zu bytes, inconsistent with header shape "
        "%llu x %llu",
        origin.c_str(), size, static_cast<unsigned long long>(households),
        static_cast<unsigned long long>(hours)));
  }
  num_households_ = households;
  hours_ = hours;
  const uint8_t* cursor = base + kHeaderBytes;
  household_ids_ = reinterpret_cast<const int64_t*>(cursor);
  cursor += households * sizeof(int64_t);
  consumption_ = reinterpret_cast<const double*>(cursor);
  cursor += households * hours * sizeof(double);
  temperature_ = reinterpret_cast<const double*>(cursor);
  return Status::OK();
}

Status ColumnStore::OpenMapped(const std::string& path) {
  Close();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    return Status::Corruption(StringPrintf(
        "columnar file %s has %zu bytes, smaller than the %zu-byte header",
        path.c_str(), size, kHeaderBytes));
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (base == MAP_FAILED) {
    return Status::IOError("mmap failed for " + path);
  }
  const Status st_parse =
      PointIntoBuffer(static_cast<const uint8_t*>(base), size, path);
  if (!st_parse.ok()) {
    ::munmap(base, size);
    return st_parse;
  }
  mapped_base_ = base;
  mapped_size_ = size;
  static obs::Counter* opens =
      obs::MetricsRegistry::Global().GetCounter("columnstore.opens");
  static obs::Counter* bytes_mapped =
      obs::MetricsRegistry::Global().GetCounter("columnstore.bytes_mapped");
  static obs::Counter* rows_mapped =
      obs::MetricsRegistry::Global().GetCounter("columnstore.rows_mapped");
  opens->Increment();
  bytes_mapped->Add(static_cast<int64_t>(size));
  rows_mapped->Add(static_cast<int64_t>(num_households_ * hours_));
  return Status::OK();
}

Status ColumnStore::LoadFromDataset(const MeterDataset& dataset) {
  Close();
  SM_RETURN_IF_ERROR(dataset.Validate());
  const size_t households = dataset.num_consumers();
  const size_t hours = dataset.hours();
  owned_.resize(FileBytes(households, hours));
  uint8_t* cursor = owned_.data();
  std::memcpy(cursor, kMagic, sizeof(kMagic));
  const uint64_t h64 = households;
  const uint64_t hr64 = hours;
  std::memcpy(cursor + 8, &h64, sizeof(h64));
  std::memcpy(cursor + 16, &hr64, sizeof(hr64));
  cursor += kHeaderBytes;
  for (const ConsumerSeries& c : dataset.consumers()) {
    std::memcpy(cursor, &c.household_id, sizeof(c.household_id));
    cursor += sizeof(c.household_id);
  }
  for (const ConsumerSeries& c : dataset.consumers()) {
    std::memcpy(cursor, c.consumption.data(), hours * sizeof(double));
    cursor += hours * sizeof(double);
  }
  std::memcpy(cursor, dataset.temperature().data(), hours * sizeof(double));
  const Status pointed =
      PointIntoBuffer(owned_.data(), owned_.size(), "<memory>");
  if (!pointed.ok()) Close();  // Don't hold the buffer for a dead store.
  return pointed;
}

}  // namespace smartmeter::storage
