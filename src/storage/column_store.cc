#include "storage/column_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace smartmeter::storage {

namespace {

constexpr char kMagic[8] = {'S', 'M', 'C', 'O', 'L', 'V', '1', '\0'};
constexpr size_t kHeaderBytes = 8 + 8 + 8;

size_t FileBytes(size_t households, size_t hours) {
  return kHeaderBytes + households * sizeof(int64_t) +
         households * hours * sizeof(double) + hours * sizeof(double);
}

}  // namespace

ColumnStore::~ColumnStore() { Close(); }

ColumnStore::ColumnStore(ColumnStore&& other) noexcept {
  *this = std::move(other);
}

ColumnStore& ColumnStore::operator=(ColumnStore&& other) noexcept {
  if (this == &other) return *this;
  Close();
  mapped_base_ = other.mapped_base_;
  mapped_size_ = other.mapped_size_;
  owned_ = std::move(other.owned_);
  num_households_ = other.num_households_;
  hours_ = other.hours_;
  household_ids_ = other.household_ids_;
  consumption_ = other.consumption_;
  temperature_ = other.temperature_;
  other.mapped_base_ = nullptr;
  other.mapped_size_ = 0;
  other.num_households_ = 0;
  other.hours_ = 0;
  other.household_ids_ = nullptr;
  other.consumption_ = nullptr;
  other.temperature_ = nullptr;
  return *this;
}

void ColumnStore::Close() {
  if (mapped_base_ != nullptr) {
    ::munmap(mapped_base_, mapped_size_);
    mapped_base_ = nullptr;
    mapped_size_ = 0;
  }
  owned_.clear();
  owned_.shrink_to_fit();
  num_households_ = 0;
  hours_ = 0;
  household_ids_ = nullptr;
  consumption_ = nullptr;
  temperature_ = nullptr;
}

Status ColumnStore::WriteFile(const MeterDataset& dataset,
                              const std::string& path) {
  SM_RETURN_IF_ERROR(dataset.Validate());
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);

  auto write = [f](const void* data, size_t bytes) {
    return std::fwrite(data, 1, bytes, f) == bytes;
  };
  bool ok = write(kMagic, sizeof(kMagic));
  const uint64_t households = dataset.num_consumers();
  const uint64_t hours = dataset.hours();
  ok = ok && write(&households, sizeof(households));
  ok = ok && write(&hours, sizeof(hours));
  for (const ConsumerSeries& c : dataset.consumers()) {
    ok = ok && write(&c.household_id, sizeof(c.household_id));
  }
  for (const ConsumerSeries& c : dataset.consumers()) {
    ok = ok && write(c.consumption.data(),
                     c.consumption.size() * sizeof(double));
  }
  ok = ok && write(dataset.temperature().data(),
                   dataset.temperature().size() * sizeof(double));
  if (std::fclose(f) != 0) ok = false;
  if (!ok) return Status::IOError("short write to " + path);
  return Status::OK();
}

Status ColumnStore::PointIntoBuffer(const uint8_t* base, size_t size,
                                    const std::string& origin) {
  if (size < kHeaderBytes || std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad columnar magic in " + origin);
  }
  uint64_t households = 0;
  uint64_t hours = 0;
  std::memcpy(&households, base + 8, sizeof(households));
  std::memcpy(&hours, base + 16, sizeof(hours));
  const size_t expected = FileBytes(households, hours);
  if (size != expected) {
    return Status::Corruption(StringPrintf(
        "columnar file %s has %zu bytes, expected %zu", origin.c_str(), size,
        expected));
  }
  num_households_ = households;
  hours_ = hours;
  const uint8_t* cursor = base + kHeaderBytes;
  household_ids_ = reinterpret_cast<const int64_t*>(cursor);
  cursor += households * sizeof(int64_t);
  consumption_ = reinterpret_cast<const double*>(cursor);
  cursor += households * hours * sizeof(double);
  temperature_ = reinterpret_cast<const double*>(cursor);
  return Status::OK();
}

Status ColumnStore::OpenMapped(const std::string& path) {
  Close();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (base == MAP_FAILED) {
    return Status::IOError("mmap failed for " + path);
  }
  const Status st_parse =
      PointIntoBuffer(static_cast<const uint8_t*>(base), size, path);
  if (!st_parse.ok()) {
    ::munmap(base, size);
    return st_parse;
  }
  mapped_base_ = base;
  mapped_size_ = size;
  static obs::Counter* opens =
      obs::MetricsRegistry::Global().GetCounter("columnstore.opens");
  static obs::Counter* bytes_mapped =
      obs::MetricsRegistry::Global().GetCounter("columnstore.bytes_mapped");
  static obs::Counter* rows_mapped =
      obs::MetricsRegistry::Global().GetCounter("columnstore.rows_mapped");
  opens->Increment();
  bytes_mapped->Add(static_cast<int64_t>(size));
  rows_mapped->Add(static_cast<int64_t>(num_households_ * hours_));
  return Status::OK();
}

Status ColumnStore::LoadFromDataset(const MeterDataset& dataset) {
  Close();
  SM_RETURN_IF_ERROR(dataset.Validate());
  const size_t households = dataset.num_consumers();
  const size_t hours = dataset.hours();
  owned_.resize(FileBytes(households, hours));
  uint8_t* cursor = owned_.data();
  std::memcpy(cursor, kMagic, sizeof(kMagic));
  const uint64_t h64 = households;
  const uint64_t hr64 = hours;
  std::memcpy(cursor + 8, &h64, sizeof(h64));
  std::memcpy(cursor + 16, &hr64, sizeof(hr64));
  cursor += kHeaderBytes;
  for (const ConsumerSeries& c : dataset.consumers()) {
    std::memcpy(cursor, &c.household_id, sizeof(c.household_id));
    cursor += sizeof(c.household_id);
  }
  for (const ConsumerSeries& c : dataset.consumers()) {
    std::memcpy(cursor, c.consumption.data(), hours * sizeof(double));
    cursor += hours * sizeof(double);
  }
  std::memcpy(cursor, dataset.temperature().data(), hours * sizeof(double));
  return PointIntoBuffer(owned_.data(), owned_.size(), "<memory>");
}

}  // namespace smartmeter::storage
