#ifndef SMARTMETER_STORAGE_COLUMN_STORE_H_
#define SMARTMETER_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "timeseries/dataset.h"

namespace smartmeter::storage {

/// Main-memory column store modelled on "System C" (Section 5.1): time
/// series live in contiguous per-household column segments inside a single
/// binary file that is memory-mapped at load time, so "loading" is nearly
/// free and scans are pointer arithmetic over doubles.
///
/// Binary layout (little-endian, 8-byte aligned):
///   [0..8)    magic "SMCOLV1\0"
///   [8..16)   uint64 num_households
///   [16..24)  uint64 hours per household
///   then      int64 household ids        (num_households entries)
///   then      double consumption column  (num_households * hours, household-major)
///   then      double temperature column  (hours entries)
class ColumnStore {
 public:
  ColumnStore() = default;
  ~ColumnStore();

  ColumnStore(const ColumnStore&) = delete;
  ColumnStore& operator=(const ColumnStore&) = delete;
  ColumnStore(ColumnStore&&) noexcept;
  ColumnStore& operator=(ColumnStore&&) noexcept;

  /// Serializes `dataset` into the binary columnar file at `path`.
  static Status WriteFile(const MeterDataset& dataset,
                          const std::string& path);

  /// Memory-maps the file; data is accessed in place (zero copy). On any
  /// failure (open, stat, short file, mmap, corrupt header) the store is
  /// left closed with no fd or mapping leaked.
  Status OpenMapped(const std::string& path);

  /// Owned-memory fallback: materializes the same SMCOLV1 image into a
  /// heap buffer instead of a file mapping. Used when there is no file to
  /// map (warm in-process data, tests); every accessor behaves exactly as
  /// in the mapped case. On failure the buffer is released.
  Status LoadFromDataset(const MeterDataset& dataset);

  /// Releases the mapping / owned memory.
  void Close();

  bool is_open() const { return num_households_ > 0 || hours_ > 0; }
  bool is_mapped() const { return mapped_base_ != nullptr; }

  size_t num_households() const { return num_households_; }
  size_t hours() const { return hours_; }

  int64_t household_id(size_t i) const { return household_ids_[i]; }
  std::span<const int64_t> household_ids() const {
    return {household_ids_, num_households_};
  }

  /// Consumption column segment of household i (hours() doubles).
  std::span<const double> consumption(size_t i) const {
    return {consumption_ + i * hours_, hours_};
  }

  /// The full consumption column, household-major.
  std::span<const double> consumption_column() const {
    return {consumption_, num_households_ * hours_};
  }

  std::span<const double> temperature() const {
    return {temperature_, hours_};
  }

 private:
  Status PointIntoBuffer(const uint8_t* base, size_t size,
                         const std::string& origin);

  // At most one backing store is active:
  //  * mapped_base_/mapped_size_ — a read-only MAP_PRIVATE mapping owned
  //    by this object. Close() munmaps it, and every OpenMapped() error
  //    path unmaps/closes before returning.
  //  * owned_ — the owned-memory fallback (LoadFromDataset): the SMCOLV1
  //    image lives in this heap buffer. operator new's max_align_t
  //    guarantee plus the 8-byte-multiple section offsets keep the
  //    int64/double columns naturally aligned.
  // The column pointers below point into whichever one is live.
  void* mapped_base_ = nullptr;
  size_t mapped_size_ = 0;
  std::vector<uint8_t> owned_;

  size_t num_households_ = 0;
  size_t hours_ = 0;
  const int64_t* household_ids_ = nullptr;
  const double* consumption_ = nullptr;
  const double* temperature_ = nullptr;
};

}  // namespace smartmeter::storage

#endif  // SMARTMETER_STORAGE_COLUMN_STORE_H_
