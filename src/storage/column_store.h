#ifndef SMARTMETER_STORAGE_COLUMN_STORE_H_
#define SMARTMETER_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/scan_scope.h"
#include "timeseries/dataset.h"

namespace smartmeter::storage {

/// Main-memory column store modelled on "System C" (Section 5.1): time
/// series live in contiguous per-household column segments inside a single
/// binary file that is memory-mapped at load time, so "loading" is nearly
/// free and scans are pointer arithmetic over doubles.
///
/// Binary layout (little-endian, 8-byte aligned):
///   [0..8)    magic "SMCOLV1\0"
///   [8..16)   uint64 num_households
///   [16..24)  uint64 hours per household
///   then      int64 household ids        (num_households entries)
///   then      double consumption column  (num_households * hours, household-major)
///   then      double temperature column  (hours entries)
class ColumnStore {
 public:
  ColumnStore() = default;
  ~ColumnStore();

  ColumnStore(const ColumnStore&) = delete;
  ColumnStore& operator=(const ColumnStore&) = delete;
  ColumnStore(ColumnStore&&) noexcept;
  ColumnStore& operator=(ColumnStore&&) noexcept;

  /// Serializes `dataset` into the binary columnar file at `path`.
  static Status WriteFile(const MeterDataset& dataset,
                          const std::string& path);

  /// Memory-maps the file; data is accessed in place (zero copy). On any
  /// failure (open, stat, short file, mmap, corrupt header) the store is
  /// left closed with no fd or mapping leaked.
  Status OpenMapped(const std::string& path);

  /// Owned-memory fallback: materializes the same SMCOLV1 image into a
  /// heap buffer instead of a file mapping. Used when there is no file to
  /// map (warm in-process data, tests); every accessor behaves exactly as
  /// in the mapped case. On failure the buffer is released.
  Status LoadFromDataset(const MeterDataset& dataset);

  /// Releases the mapping / owned memory.
  void Close();

  bool is_open() const { return num_households_ > 0 || hours_ > 0; }
  bool is_mapped() const { return mapped_base_ != nullptr; }

  size_t num_households() const { return num_households_; }
  size_t hours() const { return hours_; }

  int64_t household_id(size_t i) const { return household_ids_[i]; }
  std::span<const int64_t> household_ids() const {
    return {household_ids_, num_households_};
  }

  /// Consumption column segment of household i (hours() doubles).
  std::span<const double> consumption(size_t i) const {
    return {consumption_ + i * hours_, hours_};
  }

  /// The full consumption column, household-major.
  std::span<const double> consumption_column() const {
    return {consumption_, num_households_ * hours_};
  }

  std::span<const double> temperature() const {
    return {temperature_, hours_};
  }

 private:
  Status PointIntoBuffer(const uint8_t* base, size_t size,
                         const std::string& origin);

  // At most one backing store is active:
  //  * mapped_base_/mapped_size_ — a read-only MAP_PRIVATE mapping owned
  //    by this object. Close() munmaps it, and every OpenMapped() error
  //    path unmaps/closes before returning.
  //  * owned_ — the owned-memory fallback (LoadFromDataset): the SMCOLV1
  //    image lives in this heap buffer. operator new's max_align_t
  //    guarantee plus the 8-byte-multiple section offsets keep the
  //    int64/double columns naturally aligned.
  // The column pointers below point into whichever one is live.
  void* mapped_base_ = nullptr;
  size_t mapped_size_ = 0;
  std::vector<uint8_t> owned_;

  size_t num_households_ = 0;
  size_t hours_ = 0;
  const int64_t* household_ids_ = nullptr;
  const double* consumption_ = nullptr;
  const double* temperature_ = nullptr;
};

// ---------------------------------------------------------------------------
// SMCOLV2: the compressed generation of the column file. Same logical
// content as SMCOLV1 (ids + household-major consumption + shared
// temperature), but every column is cut into fixed-size value blocks
// encoded with the block codec (delta + frame-of-reference +
// bit-packing, verified decimal fixed-point for doubles), and a footer
// carries a per-block (household range × hour range × min/max) index so
// scoped scans decode only the blocks a query touches. Exact byte
// layout: DESIGN.md, "SMCOLV2 layout & block index".
// ---------------------------------------------------------------------------

inline constexpr size_t kColumnBlockValues = 4096;

/// Streaming SMCOLV2 writer: households are appended one series at a
/// time, so a 1M-household tier never has to materialize its dataset in
/// memory. Usage: Open() → AppendHousehold()* → Finish(temperature).
class ColumnFileWriter {
 public:
  /// `block_values` is the encoded block size in values (header field;
  /// readers accept any value in [1, 2^20]).
  explicit ColumnFileWriter(std::string path,
                            size_t block_values = kColumnBlockValues);
  ~ColumnFileWriter();

  ColumnFileWriter(const ColumnFileWriter&) = delete;
  ColumnFileWriter& operator=(const ColumnFileWriter&) = delete;

  /// `hours` fixes the series length every appended household must match.
  Status Open(size_t hours);
  Status AppendHousehold(int64_t household_id,
                         std::span<const double> consumption);
  /// Writes the temperature column, the id dictionary, and the indexed
  /// footer, then closes the file. On any error the truncated file is
  /// removed.
  Status Finish(std::span<const double> temperature);

  /// One-shot convenience: serializes `dataset` as SMCOLV2.
  static Status WriteFile(const MeterDataset& dataset, const std::string& path,
                          size_t block_values = kColumnBlockValues);

 private:
  struct BlockEntry {
    uint64_t offset = 0;
    uint64_t encoded_bytes = 0;
    uint64_t row_begin = 0;
    uint64_t row_end = 0;
    uint64_t hour_begin = 0;
    uint64_t hour_end = 0;
    double min_value = 0.0;
    double max_value = 0.0;
    uint64_t checksum = 0;
  };

  Status FlushPending(bool final_flush);
  Status WriteBlock(std::span<const double> values, uint64_t value_begin,
                    bool temperature_column);
  Status WriteBytes(const void* data, size_t bytes);
  Status Fail(const std::string& message);

  std::string path_;
  size_t block_values_;
  size_t hours_ = 0;
  std::FILE* file_ = nullptr;
  uint64_t offset_ = 0;
  uint64_t values_written_ = 0;
  std::vector<int64_t> ids_;
  std::vector<double> pending_;
  std::vector<uint8_t> scratch_;
  std::vector<BlockEntry> consumption_blocks_;
  std::vector<BlockEntry> temperature_blocks_;
};

/// Memory-mapped SMCOLV2 reader. Open() validates the header and footer
/// checksums and the block index; decode calls verify each block's
/// checksum and bounds before touching its payload, so hostile files
/// yield a clean `Status` instead of a crash or overread.
class CompressedColumnFile {
 public:
  CompressedColumnFile() = default;
  ~CompressedColumnFile();

  CompressedColumnFile(const CompressedColumnFile&) = delete;
  CompressedColumnFile& operator=(const CompressedColumnFile&) = delete;
  CompressedColumnFile(CompressedColumnFile&&) noexcept;
  CompressedColumnFile& operator=(CompressedColumnFile&&) noexcept;

  Status Open(const std::string& path);
  void Close();
  bool is_open() const { return base_ != nullptr; }

  size_t num_households() const { return num_households_; }
  size_t hours() const { return hours_; }
  size_t block_values() const { return block_values_; }
  int64_t file_bytes() const { return static_cast<int64_t>(size_); }
  size_t num_consumption_blocks() const { return consumption_blocks_.size(); }
  /// Consumption + temperature + id blocks: the denominator of the
  /// pruning ratio a scoped scan reports.
  size_t num_blocks() const {
    return consumption_blocks_.size() + temperature_blocks_.size() +
           id_blocks_.size();
  }

  /// Decodes the whole table. Stats (optional) count every block as
  /// decoded.
  Status DecodeAll(std::vector<int64_t>* ids, std::vector<double>* consumption,
                   std::vector<double>* temperature, ScanStats* stats) const;

  /// Decodes only the blocks intersecting `scope`. Outputs are dense over
  /// the scoped rectangle: `consumption` holds hour_count values per
  /// scoped row, `ids` the scoped households, `temperature` the scoped
  /// hour window.
  Status DecodeScoped(const ScanScope& scope, std::vector<int64_t>* ids,
                      std::vector<double>* consumption,
                      std::vector<double>* temperature,
                      ScanStats* stats) const;

  /// Per-block access for the simulated-HDFS split path.
  struct BlockInfo {
    size_t value_begin = 0;
    size_t value_count = 0;
    size_t row_begin = 0;
    size_t row_end = 0;
    int64_t encoded_bytes = 0;
    int64_t file_offset = 0;
  };
  BlockInfo consumption_block(size_t index) const;
  /// Appends the block's `value_count` consumption values to `values`.
  Status DecodeConsumptionBlock(size_t index,
                                std::vector<double>* values) const;
  Status DecodeIds(std::vector<int64_t>* ids) const;
  Status DecodeTemperature(std::vector<double>* temperature) const;

 private:
  struct BlockEntry {
    uint64_t offset;
    uint64_t encoded_bytes;
    uint64_t row_begin;
    uint64_t row_end;
    uint64_t hour_begin;
    uint64_t hour_end;
    double min_value;
    double max_value;
    uint64_t checksum;
  };

  Status Parse(const std::string& origin);
  Status CheckBlock(const BlockEntry& entry, size_t expected_values,
                    std::span<const uint8_t>* out) const;
  Status DecodeDoubleBlocks(const std::vector<BlockEntry>& entries,
                            size_t total_values, std::vector<double>* out,
                            ScanStats* stats) const;

  void* base_ = nullptr;
  size_t size_ = 0;
  size_t num_households_ = 0;
  size_t hours_ = 0;
  size_t block_values_ = 0;
  std::vector<BlockEntry> consumption_blocks_;
  std::vector<BlockEntry> temperature_blocks_;
  std::vector<BlockEntry> id_blocks_;
};

/// Column-file format sniffing: 1 for SMCOLV1, 2 for SMCOLV2,
/// Corruption for anything else.
Result<int> SniffColumnFileFormat(const std::string& path);

}  // namespace smartmeter::storage

#endif  // SMARTMETER_STORAGE_COLUMN_STORE_H_
