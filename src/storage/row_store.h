#ifndef SMARTMETER_STORAGE_ROW_STORE_H_
#define SMARTMETER_STORAGE_ROW_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/btree.h"
#include "storage/csv.h"
#include "storage/heap_file.h"
#include "timeseries/dataset.h"

namespace smartmeter::storage {

/// Row-oriented table of one reading per row with a B+-tree index on the
/// household id -- the PostgreSQL Table 1 layout of Figure 9. Tuples live
/// in a disk-resident slotted-page HeapFile (with write-ahead logging at
/// load time); the index maps each household to its postings list of row
/// ids. Extracting one consumer's series is therefore an index lookup
/// followed by buffer-pool page reads and an ORDER BY hour sort, exactly
/// the access path MADLib pays for.
class RowStore {
 public:
  /// `heap_path` locates the backing file; empty picks a unique
  /// temporary path. The files are removed on destruction.
  explicit RowStore(std::string heap_path = "");
  ~RowStore();

  RowStore(const RowStore&) = delete;
  RowStore& operator=(const RowStore&) = delete;
  RowStore(RowStore&&) noexcept;
  RowStore& operator=(RowStore&&) noexcept;

  struct Row {
    int64_t household_id;
    int32_t hour;
    double consumption;
    double temperature;
  };

  /// Appends one row (load mode) and maintains the index.
  Status Append(const Row& row);

  /// Flushes the tail page and switches to read mode. Idempotent; called
  /// automatically by the bulk loaders, required after manual Append
  /// sequences before any read.
  Status FinishLoad();

  /// Switches a finished store back to load mode so new readings (e.g.
  /// the next day's feed) can be appended; call FinishLoad() again when
  /// done. Cheap: only the tail page is rewritten.
  Status ReopenForAppend();

  /// Bulk-loads from an in-memory dataset. Row order is interleaved by
  /// hour across households when `interleave` is true, modelling an
  /// un-clustered table as produced by a timestamp-ordered export.
  Status LoadFromDataset(const MeterDataset& dataset, bool interleave);

  /// Bulk-loads from a reading-per-line CSV file. Does NOT finish the
  /// load, so several files can be appended; call FinishLoad() after.
  Status LoadFromCsv(const std::string& path);

  size_t num_rows() const;
  size_t num_households() const { return postings_.size(); }

  /// Household ids in index (ascending) order.
  std::vector<int64_t> HouseholdIds() const;

  /// Row ids of one household via the index.
  Result<std::span<const uint64_t>> HouseholdRowIds(int64_t household_id)
      const;

  /// Materializes every household at once with a single sequential scan
  /// of the heap plus a per-group sort -- the plan a DBMS picks for a
  /// whole-table GROUP BY household_id.
  Result<MeterDataset> ScanAll() const;

  /// Materializes one household's consumption (and optionally
  /// temperature) ordered by hour -- the
  /// "SELECT ... WHERE id = ? ORDER BY hour" path.
  Result<std::vector<double>> HouseholdConsumption(int64_t household_id)
      const;
  Result<std::vector<double>> HouseholdTemperature(int64_t household_id)
      const;

  const BPlusTree& index() const { return index_; }
  const HeapFile* heap() const { return heap_.get(); }

 private:
  Result<const std::vector<uint64_t>*> Postings(int64_t household_id) const;
  Result<std::vector<std::pair<int32_t, double>>> GatherColumn(
      int64_t household_id, bool temperature) const;
  Status EnsureHeap();

  std::string heap_path_;
  std::unique_ptr<HeapFile> heap_;
  bool load_finished_ = false;
  // index_ maps household_id -> postings-list slot in postings_.
  BPlusTree index_;
  std::vector<std::vector<uint64_t>> postings_;
};

/// Column-of-arrays table: one row per household holding its full
/// consumption and temperature arrays -- the Table 2 layout of Figure 9
/// that sped MADLib up in Section 5.3.3. Like its PostgreSQL original,
/// the table is disk-resident: rows are serialized variable-length
/// records (the equivalent of TOASTed array datums) addressed through a
/// B+-tree of file offsets, and every access deserializes from disk.
class ArrayStore {
 public:
  struct HouseholdRow {
    int64_t household_id;
    std::vector<double> consumption;
    std::vector<double> temperature;
  };

  /// `path` locates the backing file; empty picks a unique temporary
  /// path. The file is removed on destruction.
  explicit ArrayStore(std::string path = "");
  ~ArrayStore();

  ArrayStore(const ArrayStore&) = delete;
  ArrayStore& operator=(const ArrayStore&) = delete;
  ArrayStore(ArrayStore&&) noexcept;
  ArrayStore& operator=(ArrayStore&&) noexcept;

  /// Serializes the dataset to disk, replacing previous contents.
  Status LoadFromDataset(const MeterDataset& dataset);

  size_t num_households() const { return offsets_.size(); }

  /// Reads and deserializes the i-th row from disk.
  Result<HouseholdRow> ReadRow(size_t i) const;

  /// Point lookup by household id through the offset index.
  Result<HouseholdRow> Find(int64_t household_id) const;

  /// One sequential pass deserializing the whole table.
  Result<MeterDataset> ReadAll() const;

 private:
  Result<HouseholdRow> ReadAt(int64_t offset) const;

  std::string path_;
  FILE* file_ = nullptr;
  std::vector<int64_t> offsets_;  // Row index -> file offset.
  BPlusTree index_;               // household_id -> row index.
};

}  // namespace smartmeter::storage

#endif  // SMARTMETER_STORAGE_ROW_STORE_H_
