#ifndef SMARTMETER_STORAGE_HEAP_FILE_H_
#define SMARTMETER_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace smartmeter::storage {

/// A disk-resident heap file of fixed-schema reading tuples with slotted
/// 8 KB pages, modelling how PostgreSQL stores the Figure 9 Table 1
/// relation. Loading appends tuples through a one-page write buffer and
/// also writes a write-ahead log record per tuple (PostgreSQL durability;
/// the paper notes that disabling WAL did not change much, and here too
/// it is a minor share of load cost -- the flag makes that measurable).
/// Reads go through a small LRU page cache, so a cold gather of one
/// household's rows behaves like buffer-pool access, not like an
/// in-memory array.
class HeapFile {
 public:
  static constexpr size_t kPageBytes = 8192;
  /// PostgreSQL-style per-tuple overhead (23-byte header + line pointer).
  static constexpr size_t kTupleHeaderBytes = 27;

  struct Tuple {
    int64_t household_id;
    int32_t hour;
    double consumption;
    double temperature;
  };

  /// `cache_pages` bounds the read-side buffer pool.
  explicit HeapFile(std::string path, bool write_ahead_log = true,
                    int cache_pages = 64);
  ~HeapFile();

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Starts a fresh load, truncating any existing file.
  Status Create();

  /// Appends one tuple; returns its row id (page * slots-per-page + slot).
  Result<uint64_t> Append(const Tuple& tuple);

  /// Flushes the tail page and switches the file to read mode.
  Status FinishLoad();

  /// Opens an existing heap file for reading.
  Status OpenForRead();

  /// Re-enters load mode on a finished file: the tail page is pulled
  /// back into the write buffer and subsequent Append()s continue from
  /// it. This is what makes the row store cheap to update with new days
  /// of readings (Section 3's future-work question), in contrast to the
  /// rewrite-everything column store.
  Status ReopenForAppend();

  /// Random access by row id through the page cache.
  Result<Tuple> Read(uint64_t row_id) const;

  /// Full scan in row-id order.
  Status Scan(const std::function<void(uint64_t, const Tuple&)>& visit)
      const;

  uint64_t num_rows() const { return num_rows_; }
  uint64_t num_pages() const { return num_pages_; }
  /// Tuples that fit in one page given headers and slot bookkeeping.
  static constexpr size_t TuplesPerPage() {
    return kPageBytes / (sizeof(Tuple) + kTupleHeaderBytes);
  }

  /// Cache statistics for diagnostics and tests.
  int64_t cache_hits() const { return cache_hits_; }
  int64_t cache_misses() const { return cache_misses_; }

 private:
  Status FlushTailPage();
  Result<const std::vector<Tuple>*> FetchPage(uint64_t page_id) const;

  std::string path_;
  bool write_ahead_log_;
  size_t cache_capacity_;

  FILE* write_file_ = nullptr;
  FILE* wal_file_ = nullptr;
  FILE* read_file_ = nullptr;

  std::vector<Tuple> tail_page_;
  uint64_t num_rows_ = 0;
  uint64_t num_pages_ = 0;

  // LRU page cache (mutable: reads are logically const).
  mutable std::list<uint64_t> lru_;
  mutable std::unordered_map<uint64_t,
                             std::pair<std::vector<Tuple>,
                                       std::list<uint64_t>::iterator>>
      cache_;
  mutable int64_t cache_hits_ = 0;
  mutable int64_t cache_misses_ = 0;
};

}  // namespace smartmeter::storage

#endif  // SMARTMETER_STORAGE_HEAP_FILE_H_
