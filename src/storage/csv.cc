#include "storage/csv.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace smartmeter::storage {

namespace fs = std::filesystem;

namespace {

/// RAII stdio file handle for writers.
class FileWriter {
 public:
  explicit FileWriter(const std::string& path)
      : file_(std::fopen(path.c_str(), "w")), path_(path) {}
  ~FileWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  bool ok() const { return file_ != nullptr; }
  FILE* get() { return file_; }
  Status OpenError() const {
    return Status::IOError("cannot open for writing: " + path_);
  }

 private:
  FILE* file_;
  std::string path_;
};

Status WriteConsumerReadings(FILE* f, const ConsumerSeries& consumer,
                             const std::vector<double>& temperature) {
  for (size_t h = 0; h < consumer.consumption.size(); ++h) {
    if (std::fprintf(f, "%lld,%zu,%.4f,%.2f\n",
                     static_cast<long long>(consumer.household_id), h,
                     consumer.consumption[h], temperature[h]) < 0) {
      return Status::IOError("short write");
    }
  }
  return Status::OK();
}

Result<MeterDataset> AssembleFromRows(
    std::map<int64_t, std::vector<std::pair<int32_t, double>>>&& consumption,
    std::map<int32_t, double>&& temperature) {
  if (consumption.empty()) {
    return Status::InvalidArgument("CSV contained no readings");
  }
  // Temperature vector indexed by hour; hours must be dense from 0.
  std::vector<double> temp;
  temp.reserve(temperature.size());
  int32_t expected = 0;
  for (const auto& [hour, value] : temperature) {
    if (hour != expected) {
      return Status::Corruption(
          StringPrintf("temperature hours not dense at %d", hour));
    }
    temp.push_back(value);
    ++expected;
  }
  MeterDataset dataset;
  dataset.SetTemperature(std::move(temp));
  for (auto& [id, rows] : consumption) {
    std::sort(rows.begin(), rows.end());
    ConsumerSeries series;
    series.household_id = id;
    series.consumption.reserve(rows.size());
    int32_t expect_hour = 0;
    for (const auto& [hour, value] : rows) {
      if (hour != expect_hour) {
        return Status::Corruption(StringPrintf(
            "household %lld: hour %d out of sequence (expected %d)",
            static_cast<long long>(id), hour, expect_hour));
      }
      series.consumption.push_back(value);
      ++expect_hour;
    }
    dataset.AddConsumer(std::move(series));
  }
  SM_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace

Result<ReadingRow> ParseReadingRow(std::string_view line) {
  const std::vector<std::string_view> fields = SplitString(line, ',');
  if (fields.size() != 4) {
    return Status::Corruption("expected 4 fields: '" + std::string(line) +
                              "'");
  }
  ReadingRow row;
  SM_ASSIGN_OR_RETURN(row.household_id, ParseInt64(fields[0]));
  SM_ASSIGN_OR_RETURN(int64_t hour, ParseInt64(fields[1]));
  row.hour = static_cast<int32_t>(hour);
  SM_ASSIGN_OR_RETURN(row.consumption, ParseDouble(fields[2]));
  SM_ASSIGN_OR_RETURN(row.temperature, ParseDouble(fields[3]));
  return row;
}

Status WriteReadingsCsv(const MeterDataset& dataset,
                        const std::string& path) {
  FileWriter out(path);
  if (!out.ok()) return out.OpenError();
  // Timestamp-major order: hour 0 of every household, then hour 1, ...
  // This is what a metering head-end actually exports, and it is what
  // makes the single big file painful for consumer-at-a-time platforms
  // (Figure 5) and leaves a bulk-loaded row table un-clustered by
  // household (Section 5.3).
  const std::vector<double>& temperature = dataset.temperature();
  for (size_t h = 0; h < dataset.hours(); ++h) {
    for (const ConsumerSeries& c : dataset.consumers()) {
      if (std::fprintf(out.get(), "%lld,%zu,%.4f,%.2f\n",
                       static_cast<long long>(c.household_id), h,
                       c.consumption[h], temperature[h]) < 0) {
        return Status::IOError("short write");
      }
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> WritePartitionedCsv(
    const MeterDataset& dataset, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create dir " + dir);
  std::vector<std::string> paths;
  paths.reserve(dataset.num_consumers());
  for (const ConsumerSeries& c : dataset.consumers()) {
    std::string path = dir + "/" +
                       std::to_string(c.household_id) + ".csv";
    FileWriter out(path);
    if (!out.ok()) return out.OpenError();
    SM_RETURN_IF_ERROR(
        WriteConsumerReadings(out.get(), c, dataset.temperature()));
    paths.push_back(std::move(path));
  }
  return paths;
}

Result<std::vector<std::string>> WriteWholeHouseholdFiles(
    const MeterDataset& dataset, const std::string& dir, int num_files) {
  if (num_files < 1) {
    return Status::InvalidArgument("num_files must be >= 1");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create dir " + dir);

  const int files =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(num_files),
                                        dataset.num_consumers()));
  // Write one file at a time (a Figure 18 sweep can ask for thousands of
  // files, far beyond the open-descriptor limit). Household i goes to
  // file i % files, so gather each file's households first.
  std::vector<std::string> paths;
  paths.reserve(static_cast<size_t>(files));
  for (int file_idx = 0; file_idx < files; ++file_idx) {
    std::string path = dir + "/part-" + std::to_string(file_idx) + ".csv";
    FileWriter out(path);
    if (!out.ok()) return out.OpenError();
    for (size_t i = static_cast<size_t>(file_idx);
         i < dataset.num_consumers(); i += static_cast<size_t>(files)) {
      SM_RETURN_IF_ERROR(WriteConsumerReadings(out.get(), dataset.consumer(i),
                                               dataset.temperature()));
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

Status WriteHouseholdLinesCsv(const MeterDataset& dataset,
                              const std::string& path) {
  {
    FileWriter out(path);
    if (!out.ok()) return out.OpenError();
    for (const ConsumerSeries& c : dataset.consumers()) {
      if (std::fprintf(out.get(), "%lld",
                       static_cast<long long>(c.household_id)) < 0) {
        return Status::IOError("short write");
      }
      for (double v : c.consumption) {
        if (std::fprintf(out.get(), ",%.4f", v) < 0) {
          return Status::IOError("short write");
        }
      }
      if (std::fputc('\n', out.get()) == EOF) {
        return Status::IOError("short write");
      }
    }
  }
  FileWriter temp_out(path + ".temperature");
  if (!temp_out.ok()) return temp_out.OpenError();
  for (double t : dataset.temperature()) {
    if (std::fprintf(temp_out.get(), "%.2f\n", t) < 0) {
      return Status::IOError("short write");
    }
  }
  return Status::OK();
}

ReadingCsvReader::ReadingCsvReader(std::string path)
    : path_(std::move(path)) {}

ReadingCsvReader::~ReadingCsvReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status ReadingCsvReader::Open() {
  file_ = std::fopen(path_.c_str(), "r");
  if (file_ == nullptr) {
    return Status::IOError("cannot open for reading: " + path_);
  }
  return Status::OK();
}

bool ReadingCsvReader::Next(ReadingRow* row) {
  static obs::Counter* rows_scanned =
      obs::MetricsRegistry::Global().GetCounter("csv.rows_scanned");
  if (file_ == nullptr || !status_.ok()) return false;
  char line[256];
  for (;;) {
    if (std::fgets(line, sizeof(line), file_) == nullptr) return false;
    std::string_view view = TrimWhitespace(line);
    if (view.empty()) continue;
    Result<ReadingRow> parsed = ParseReadingRow(view);
    if (!parsed.ok()) {
      status_ = parsed.status();
      return false;
    }
    *row = *parsed;
    rows_scanned->Increment();
    return true;
  }
}

Result<MeterDataset> ReadReadingsCsv(const std::string& path) {
  ReadingCsvReader reader(path);
  SM_RETURN_IF_ERROR(reader.Open());
  std::map<int64_t, std::vector<std::pair<int32_t, double>>> consumption;
  std::map<int32_t, double> temperature;
  ReadingRow row;
  while (reader.Next(&row)) {
    consumption[row.household_id].emplace_back(row.hour, row.consumption);
    temperature.emplace(row.hour, row.temperature);
  }
  SM_RETURN_IF_ERROR(reader.status());
  return AssembleFromRows(std::move(consumption), std::move(temperature));
}

Result<MeterDataset> ReadPartitionedCsv(const std::string& dir) {
  std::map<int64_t, std::vector<std::pair<int32_t, double>>> consumption;
  std::map<int32_t, double> temperature;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return Status::IOError("cannot list dir " + dir);
  std::vector<std::string> paths;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".csv") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    ReadingCsvReader reader(path);
    SM_RETURN_IF_ERROR(reader.Open());
    ReadingRow row;
    while (reader.Next(&row)) {
      consumption[row.household_id].emplace_back(row.hour, row.consumption);
      temperature.emplace(row.hour, row.temperature);
    }
    SM_RETURN_IF_ERROR(reader.status());
  }
  return AssembleFromRows(std::move(consumption), std::move(temperature));
}

Result<MeterDataset> ReadHouseholdLinesCsv(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  MeterDataset dataset;
  char chunk[1 << 16];
  std::string pending;
  auto process_line = [&dataset](std::string_view view) -> Status {
    view = TrimWhitespace(view);
    if (view.empty()) return Status::OK();
    const std::vector<std::string_view> fields = SplitString(view, ',');
    if (fields.size() < 2) {
      return Status::Corruption("household line with no readings");
    }
    ConsumerSeries series;
    SM_ASSIGN_OR_RETURN(series.household_id, ParseInt64(fields[0]));
    series.consumption.reserve(fields.size() - 1);
    for (size_t i = 1; i < fields.size(); ++i) {
      SM_ASSIGN_OR_RETURN(double v, ParseDouble(fields[i]));
      series.consumption.push_back(v);
    }
    dataset.AddConsumer(std::move(series));
    return Status::OK();
  };
  while (std::fgets(chunk, sizeof(chunk), f) != nullptr) {
    pending += chunk;
    if (!pending.empty() && pending.back() == '\n') {
      const Status st = process_line(pending);
      if (!st.ok()) {
        std::fclose(f);
        return st;
      }
      pending.clear();
    }
  }
  std::fclose(f);
  if (!pending.empty()) {
    SM_RETURN_IF_ERROR(process_line(pending));
  }

  // Temperature sidecar.
  FILE* tf = std::fopen((path + ".temperature").c_str(), "r");
  if (tf == nullptr) {
    return Status::IOError("missing temperature sidecar for " + path);
  }
  std::vector<double> temp;
  char tline[64];
  while (std::fgets(tline, sizeof(tline), tf) != nullptr) {
    std::string_view view = TrimWhitespace(tline);
    if (view.empty()) continue;
    Result<double> v = ParseDouble(view);
    if (!v.ok()) {
      std::fclose(tf);
      return v.status();
    }
    temp.push_back(*v);
  }
  std::fclose(tf);
  dataset.SetTemperature(std::move(temp));
  SM_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace smartmeter::storage
