#include "storage/csv.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "simd/simd.h"

namespace smartmeter::storage {

namespace fs = std::filesystem;

namespace {

/// Block size of the streaming reader: big enough that the SIMD newline
/// scan amortizes the stdio call, small enough to stay cache-friendly.
constexpr size_t kCsvReadBlock = size_t{64} * 1024;

/// RAII stdio file handle for writers.
class FileWriter {
 public:
  explicit FileWriter(const std::string& path)
      : file_(std::fopen(path.c_str(), "w")), path_(path) {}
  ~FileWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  bool ok() const { return file_ != nullptr; }
  FILE* get() { return file_; }
  Status OpenError() const {
    return Status::IOError("cannot open for writing: " + path_);
  }

 private:
  FILE* file_;
  std::string path_;
};

Status WriteConsumerReadings(FILE* f, const ConsumerSeries& consumer,
                             const std::vector<double>& temperature) {
  for (size_t h = 0; h < consumer.consumption.size(); ++h) {
    if (std::fprintf(f, "%lld,%zu,%.4f,%.2f\n",
                     static_cast<long long>(consumer.household_id), h,
                     consumer.consumption[h], temperature[h]) < 0) {
      return Status::IOError("short write");
    }
  }
  return Status::OK();
}

Result<MeterDataset> AssembleFromRows(
    std::map<int64_t, std::vector<std::pair<int32_t, double>>>&& consumption,
    std::map<int32_t, double>&& temperature) {
  if (consumption.empty()) {
    return Status::InvalidArgument("CSV contained no readings");
  }
  // Temperature vector indexed by hour; hours must be dense from 0.
  std::vector<double> temp;
  temp.reserve(temperature.size());
  int32_t expected = 0;
  for (const auto& [hour, value] : temperature) {
    if (hour != expected) {
      return Status::Corruption(
          StringPrintf("temperature hours not dense at %d", hour));
    }
    temp.push_back(value);
    ++expected;
  }
  MeterDataset dataset;
  dataset.SetTemperature(std::move(temp));
  for (auto& [id, rows] : consumption) {
    std::sort(rows.begin(), rows.end());
    ConsumerSeries series;
    series.household_id = id;
    series.consumption.reserve(rows.size());
    int32_t expect_hour = 0;
    for (const auto& [hour, value] : rows) {
      if (hour != expect_hour) {
        return Status::Corruption(StringPrintf(
            "household %lld: hour %d out of sequence (expected %d)",
            static_cast<long long>(id), hour, expect_hour));
      }
      series.consumption.push_back(value);
      ++expect_hour;
    }
    dataset.AddConsumer(std::move(series));
  }
  SM_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace

Result<ReadingRow> ParseReadingRow(std::string_view line) {
  // Single pass over the line: slice the four comma-separated fields in
  // place (no per-row split vector) and parse each with the from_chars
  // fast path. Errors carry the 1-based column of the offending field.
  std::string_view fields[4];
  size_t num_fields = 0;
  size_t start = 0;
  for (;;) {
    const size_t comma = simd::FindByte(line, start, ',');
    const size_t end = comma == std::string_view::npos ? line.size() : comma;
    if (num_fields == 4) {
      return Status::Corruption(StringPrintf(
          "expected 4 fields, extra field starts at column %zu", start + 1));
    }
    fields[num_fields++] = line.substr(start, end - start);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (num_fields != 4) {
    return Status::Corruption(
        StringPrintf("expected 4 fields, got %zu", num_fields));
  }
  const auto field_error = [&line, &fields](size_t f, const char* what) {
    return Status::Corruption(StringPrintf(
        "bad %s '%.*s' at column %zu", what,
        static_cast<int>(fields[f].size()), fields[f].data(),
        static_cast<size_t>(fields[f].data() - line.data()) + 1));
  };
  ReadingRow row;
  const auto id = ParseInt64(fields[0]);
  if (!id.ok()) return field_error(0, "household id");
  row.household_id = *id;
  const auto hour = ParseInt64(fields[1]);
  if (!hour.ok()) return field_error(1, "hour");
  row.hour = static_cast<int32_t>(*hour);
  const auto consumption = ParseDouble(fields[2]);
  if (!consumption.ok()) return field_error(2, "consumption");
  row.consumption = *consumption;
  const auto temperature = ParseDouble(fields[3]);
  if (!temperature.ok()) return field_error(3, "temperature");
  row.temperature = *temperature;
  return row;
}

Status WriteReadingsCsv(const MeterDataset& dataset,
                        const std::string& path) {
  FileWriter out(path);
  if (!out.ok()) return out.OpenError();
  // Timestamp-major order: hour 0 of every household, then hour 1, ...
  // This is what a metering head-end actually exports, and it is what
  // makes the single big file painful for consumer-at-a-time platforms
  // (Figure 5) and leaves a bulk-loaded row table un-clustered by
  // household (Section 5.3).
  const std::vector<double>& temperature = dataset.temperature();
  for (size_t h = 0; h < dataset.hours(); ++h) {
    for (const ConsumerSeries& c : dataset.consumers()) {
      if (std::fprintf(out.get(), "%lld,%zu,%.4f,%.2f\n",
                       static_cast<long long>(c.household_id), h,
                       c.consumption[h], temperature[h]) < 0) {
        return Status::IOError("short write");
      }
    }
  }
  return Status::OK();
}

Result<std::vector<std::string>> WritePartitionedCsv(
    const MeterDataset& dataset, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create dir " + dir);
  std::vector<std::string> paths;
  paths.reserve(dataset.num_consumers());
  for (const ConsumerSeries& c : dataset.consumers()) {
    std::string path = dir + "/" +
                       std::to_string(c.household_id) + ".csv";
    FileWriter out(path);
    if (!out.ok()) return out.OpenError();
    SM_RETURN_IF_ERROR(
        WriteConsumerReadings(out.get(), c, dataset.temperature()));
    paths.push_back(std::move(path));
  }
  return paths;
}

Result<std::vector<std::string>> WriteWholeHouseholdFiles(
    const MeterDataset& dataset, const std::string& dir, int num_files) {
  if (num_files < 1) {
    return Status::InvalidArgument("num_files must be >= 1");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create dir " + dir);

  const int files =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(num_files),
                                        dataset.num_consumers()));
  // Write one file at a time (a Figure 18 sweep can ask for thousands of
  // files, far beyond the open-descriptor limit). Household i goes to
  // file i % files, so gather each file's households first.
  std::vector<std::string> paths;
  paths.reserve(static_cast<size_t>(files));
  for (int file_idx = 0; file_idx < files; ++file_idx) {
    std::string path = dir + "/part-" + std::to_string(file_idx) + ".csv";
    FileWriter out(path);
    if (!out.ok()) return out.OpenError();
    for (size_t i = static_cast<size_t>(file_idx);
         i < dataset.num_consumers(); i += static_cast<size_t>(files)) {
      SM_RETURN_IF_ERROR(WriteConsumerReadings(out.get(), dataset.consumer(i),
                                               dataset.temperature()));
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

Status WriteHouseholdLinesCsv(const MeterDataset& dataset,
                              const std::string& path) {
  {
    FileWriter out(path);
    if (!out.ok()) return out.OpenError();
    for (const ConsumerSeries& c : dataset.consumers()) {
      if (std::fprintf(out.get(), "%lld",
                       static_cast<long long>(c.household_id)) < 0) {
        return Status::IOError("short write");
      }
      for (double v : c.consumption) {
        if (std::fprintf(out.get(), ",%.4f", v) < 0) {
          return Status::IOError("short write");
        }
      }
      if (std::fputc('\n', out.get()) == EOF) {
        return Status::IOError("short write");
      }
    }
  }
  FileWriter temp_out(path + ".temperature");
  if (!temp_out.ok()) return temp_out.OpenError();
  for (double t : dataset.temperature()) {
    if (std::fprintf(temp_out.get(), "%.2f\n", t) < 0) {
      return Status::IOError("short write");
    }
  }
  return Status::OK();
}

ReadingCsvReader::ReadingCsvReader(std::string path)
    : path_(std::move(path)) {}

ReadingCsvReader::~ReadingCsvReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status ReadingCsvReader::Open() {
  file_ = std::fopen(path_.c_str(), "r");
  if (file_ == nullptr) {
    return Status::IOError("cannot open for reading: " + path_);
  }
  buffer_.clear();
  buffer_pos_ = 0;
  eof_ = false;
  return Status::OK();
}

bool ReadingCsvReader::Next(ReadingRow* row) {
  static obs::Counter* rows_scanned =
      obs::MetricsRegistry::Global().GetCounter("csv.rows_scanned");
  if (file_ == nullptr || !status_.ok()) return false;
  for (;;) {
    // Slice the next line out of the block buffer; refill in 64 KiB
    // reads when no newline is buffered. Unlike the old fixed 256-byte
    // fgets, a line longer than one block just keeps accumulating.
    size_t newline = simd::FindByte(buffer_, buffer_pos_, '\n');
    while (newline == std::string_view::npos && !eof_) {
      buffer_.erase(0, buffer_pos_);
      buffer_pos_ = 0;
      const size_t scan_from = buffer_.size();
      buffer_.resize(scan_from + kCsvReadBlock);
      const size_t got =
          std::fread(buffer_.data() + scan_from, 1, kCsvReadBlock, file_);
      buffer_.resize(scan_from + got);
      if (got == 0) {
        eof_ = true;
        break;
      }
      // The pre-refill region held no newline past buffer_pos_, so the
      // rescan only covers the fresh bytes.
      newline = simd::FindByte(buffer_, scan_from, '\n');
    }
    std::string_view line;
    if (newline != std::string_view::npos) {
      line = std::string_view(buffer_).substr(buffer_pos_,
                                              newline - buffer_pos_);
      buffer_pos_ = newline + 1;
    } else {
      // EOF with an unterminated final line (or nothing left at all).
      if (buffer_pos_ >= buffer_.size()) return false;
      line = std::string_view(buffer_).substr(buffer_pos_);
      buffer_pos_ = buffer_.size();
    }
    ++line_number_;
    const std::string_view view = TrimWhitespace(line);
    if (view.empty()) continue;
    Result<ReadingRow> parsed = ParseReadingRow(view);
    if (!parsed.ok()) {
      status_ = Status(parsed.status().code(),
                       StringPrintf("%s:%zu: %s", path_.c_str(), line_number_,
                                    std::string(parsed.status().message())
                                        .c_str()));
      return false;
    }
    *row = *parsed;
    rows_scanned->Increment();
    return true;
  }
}

Result<MeterDataset> ReadReadingsCsv(const std::string& path) {
  return ReadReadingsCsvFiles({path});
}

Result<MeterDataset> ReadReadingsCsvFiles(
    const std::vector<std::string>& paths) {
  std::map<int64_t, std::vector<std::pair<int32_t, double>>> consumption;
  std::map<int32_t, double> temperature;
  for (const std::string& path : paths) {
    ReadingCsvReader reader(path);
    SM_RETURN_IF_ERROR(reader.Open());
    ReadingRow row;
    while (reader.Next(&row)) {
      consumption[row.household_id].emplace_back(row.hour, row.consumption);
      temperature.emplace(row.hour, row.temperature);
    }
    SM_RETURN_IF_ERROR(reader.status());
  }
  return AssembleFromRows(std::move(consumption), std::move(temperature));
}

Result<MeterDataset> AssembleReadingRows(std::span<const ReadingRow> rows) {
  std::map<int64_t, std::vector<std::pair<int32_t, double>>> consumption;
  std::map<int32_t, double> temperature;
  for (const ReadingRow& row : rows) {
    consumption[row.household_id].emplace_back(row.hour, row.consumption);
    temperature.emplace(row.hour, row.temperature);
  }
  return AssembleFromRows(std::move(consumption), std::move(temperature));
}

Result<MeterDataset> ReadPartitionedCsv(const std::string& dir) {
  std::map<int64_t, std::vector<std::pair<int32_t, double>>> consumption;
  std::map<int32_t, double> temperature;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return Status::IOError("cannot list dir " + dir);
  std::vector<std::string> paths;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".csv") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    ReadingCsvReader reader(path);
    SM_RETURN_IF_ERROR(reader.Open());
    ReadingRow row;
    while (reader.Next(&row)) {
      consumption[row.household_id].emplace_back(row.hour, row.consumption);
      temperature.emplace(row.hour, row.temperature);
    }
    SM_RETURN_IF_ERROR(reader.status());
  }
  return AssembleFromRows(std::move(consumption), std::move(temperature));
}

Result<MeterDataset> ReadHouseholdLinesCsv(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  MeterDataset dataset;
  char chunk[1 << 16];
  std::string pending;
  // Single pass per line: fields are sliced in place instead of
  // materializing a per-line split vector (a whole-year line holds 8760
  // values — splitting it allocated a ~9k-entry vector per household).
  auto process_line = [&dataset](std::string_view view) -> Status {
    view = TrimWhitespace(view);
    if (view.empty()) return Status::OK();
    const size_t id_end = simd::FindByte(view, 0, ',');
    if (id_end == std::string_view::npos) {
      return Status::Corruption("household line with no readings");
    }
    ConsumerSeries series;
    SM_ASSIGN_OR_RETURN(series.household_id,
                        ParseInt64(view.substr(0, id_end)));
    // Exact field count (= comma count) in one vector pass before the
    // reserve, so a whole-year line never reallocates mid-parse.
    series.consumption.reserve(simd::CountByte(view, ','));
    size_t pos = id_end + 1;
    for (;;) {
      const size_t comma = simd::FindByte(view, pos, ',');
      const std::string_view field =
          comma == std::string_view::npos ? view.substr(pos)
                                          : view.substr(pos, comma - pos);
      SM_ASSIGN_OR_RETURN(double v, ParseDouble(field));
      series.consumption.push_back(v);
      if (comma == std::string_view::npos) break;
      pos = comma + 1;
    }
    dataset.AddConsumer(std::move(series));
    return Status::OK();
  };
  while (std::fgets(chunk, sizeof(chunk), f) != nullptr) {
    pending += chunk;
    if (!pending.empty() && pending.back() == '\n') {
      const Status st = process_line(pending);
      if (!st.ok()) {
        std::fclose(f);
        return st;
      }
      pending.clear();
    }
  }
  std::fclose(f);
  if (!pending.empty()) {
    SM_RETURN_IF_ERROR(process_line(pending));
  }

  // Temperature sidecar.
  FILE* tf = std::fopen((path + ".temperature").c_str(), "r");
  if (tf == nullptr) {
    return Status::IOError("missing temperature sidecar for " + path);
  }
  std::vector<double> temp;
  char tline[64];
  while (std::fgets(tline, sizeof(tline), tf) != nullptr) {
    std::string_view view = TrimWhitespace(tline);
    if (view.empty()) continue;
    Result<double> v = ParseDouble(view);
    if (!v.ok()) {
      std::fclose(tf);
      return v.status();
    }
    temp.push_back(*v);
  }
  std::fclose(tf);
  dataset.SetTemperature(std::move(temp));
  SM_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace smartmeter::storage
