#ifndef SMARTMETER_STORAGE_BLOCK_CODEC_H_
#define SMARTMETER_STORAGE_BLOCK_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace smartmeter::storage {

/// Lightweight per-block codec behind SMCOLV2: delta + frame-of-reference
/// + bit-packing, with a verified decimal fixed-point step in front for
/// double columns. Meter feeds are decimal-quantized at the source (the
/// CSV writers print 4/2 fractional digits), so nearly every block packs
/// to ~20 bits per value; any block that cannot be reproduced bit-exactly
/// falls back to raw little-endian payloads. Encoders never fail; decode
/// validates every length/width against the input and returns a clean
/// `Status` on hostile bytes (no crash, no overread).
///
/// Encoded block layout (little-endian):
///   [0]      uint8 mode (kRawInts | kPackedInts | kRawDoubles |
///            kPackedDoubles)
///   [1]      uint8 scale_pow   (decimal power for kPackedDoubles, else 0)
///   [2]      uint8 bit_width   (packed delta width, 0..64; 0 for raw)
///   [3..8)   zero padding
///   [8..16)  uint64 value_count
///   packed:  int64 first_value, int64 min_delta, then
///            ceil((count-1) * bit_width / 64) uint64 words
///   raw:     count int64s (kRawInts) or count doubles (kRawDoubles)
namespace codec {

inline constexpr uint8_t kRawInts = 0;
inline constexpr uint8_t kPackedInts = 1;
inline constexpr uint8_t kRawDoubles = 2;
inline constexpr uint8_t kPackedDoubles = 3;

inline constexpr size_t kBlockHeaderBytes = 16;
inline constexpr int kMaxDecimalScale = 7;

/// FNV-1a over `bytes`, seeded so checksums of different sections chain.
uint64_t Fnv1a(std::span<const uint8_t> bytes, uint64_t seed);
uint64_t Fnv1aSeed();

/// Appends one encoded block to `out` (packed when smaller, raw
/// otherwise).
void EncodeInts(std::span<const int64_t> values, std::vector<uint8_t>* out);
void EncodeDoubles(std::span<const double> values, std::vector<uint8_t>* out);

/// Decodes exactly one block that must contain `expected` values and
/// span all of `bytes`. Output is appended to `*out`.
Status DecodeInts(std::span<const uint8_t> bytes, size_t expected,
                  std::vector<int64_t>* out);
Status DecodeDoubles(std::span<const uint8_t> bytes, size_t expected,
                     std::vector<double>* out);

}  // namespace codec
}  // namespace smartmeter::storage

#endif  // SMARTMETER_STORAGE_BLOCK_CODEC_H_
