#include "storage/block_codec.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/string_util.h"

namespace smartmeter::storage::codec {

namespace {

constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

constexpr double kPow10[kMaxDecimalScale + 1] = {1.0,  10.0, 100.0, 1e3,
                                                 1e4,  1e5,  1e6,   1e7};

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  uint8_t bytes[8];
  std::memcpy(bytes, &v, sizeof(v));
  out->insert(out->end(), bytes, bytes + sizeof(bytes));
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendHeader(std::vector<uint8_t>* out, uint8_t mode, uint8_t scale,
                  uint8_t width, uint64_t count) {
  const size_t base = out->size();
  out->resize(base + kBlockHeaderBytes, 0);
  (*out)[base] = mode;
  (*out)[base + 1] = scale;
  (*out)[base + 2] = width;
  std::memcpy(out->data() + base + 8, &count, sizeof(count));
}

/// Delta + frame-of-reference plan for one int block. `ok` is false when
/// some adjacent delta overflows int64 (raw fallback).
struct PackedPlan {
  int64_t first = 0;
  int64_t min_delta = 0;
  int bit_width = 0;
  bool ok = false;
};

PackedPlan PlanPack(std::span<const int64_t> values) {
  PackedPlan plan;
  if (values.empty()) return plan;
  plan.first = values[0];
  for (size_t i = 1; i < values.size(); ++i) {
    int64_t d = 0;
    if (__builtin_sub_overflow(values[i], values[i - 1], &d)) return plan;
    if (i == 1 || d < plan.min_delta) plan.min_delta = d;
  }
  uint64_t max_u = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    // Wrap-safe unsigned distance d - min_delta: d >= min_delta and both
    // fit int64, so the true difference fits uint64 exactly.
    const uint64_t u = static_cast<uint64_t>(values[i]) -
                       static_cast<uint64_t>(values[i - 1]) -
                       static_cast<uint64_t>(plan.min_delta);
    max_u = std::max(max_u, u);
  }
  plan.bit_width = max_u == 0 ? 0 : 64 - std::countl_zero(max_u);
  plan.ok = true;
  return plan;
}

size_t PackedPayloadBytes(size_t count, int width) {
  if (count == 0) return 0;
  const size_t words = count <= 1
                           ? 0
                           : ((count - 1) * static_cast<size_t>(width) + 63) / 64;
  return 16 + words * 8;
}

void EmitPacked(uint8_t mode, uint8_t scale, const PackedPlan& plan,
                std::span<const int64_t> values, std::vector<uint8_t>* out) {
  AppendHeader(out, mode, scale, static_cast<uint8_t>(plan.bit_width),
               values.size());
  AppendU64(out, static_cast<uint64_t>(plan.first));
  AppendU64(out, static_cast<uint64_t>(plan.min_delta));
  if (plan.bit_width == 0) return;
  uint64_t acc = 0;
  int bits = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    const uint64_t u = static_cast<uint64_t>(values[i]) -
                       static_cast<uint64_t>(values[i - 1]) -
                       static_cast<uint64_t>(plan.min_delta);
    acc |= u << bits;
    bits += plan.bit_width;
    if (bits >= 64) {
      AppendU64(out, acc);
      bits -= 64;
      acc = bits > 0 ? u >> (plan.bit_width - bits) : 0;
    }
  }
  if (bits > 0) AppendU64(out, acc);
}

struct BlockHeader {
  uint8_t mode = 0;
  uint8_t scale = 0;
  uint8_t width = 0;
  uint64_t count = 0;
};

Status ParseHeader(std::span<const uint8_t> bytes, size_t expected,
                   BlockHeader* header) {
  if (bytes.size() < kBlockHeaderBytes) {
    return Status::Corruption("encoded block shorter than its header");
  }
  header->mode = bytes[0];
  header->scale = bytes[1];
  header->width = bytes[2];
  header->count = ReadU64(bytes.data() + 8);
  if (header->count != expected) {
    return Status::Corruption(StringPrintf(
        "encoded block holds %llu values, index expects %zu",
        static_cast<unsigned long long>(header->count), expected));
  }
  if (header->width > 64) {
    return Status::Corruption("encoded block bit width exceeds 64");
  }
  if (header->scale > kMaxDecimalScale) {
    return Status::Corruption("encoded block decimal scale out of range");
  }
  return Status::OK();
}

/// Validates the payload length of a packed block and decodes its ints.
Status DecodePacked(std::span<const uint8_t> bytes, const BlockHeader& header,
                    std::vector<int64_t>* out) {
  const std::span<const uint8_t> payload = bytes.subspan(kBlockHeaderBytes);
  if (header.count == 0) {
    if (!payload.empty()) {
      return Status::Corruption("empty packed block carries payload bytes");
    }
    return Status::OK();
  }
  size_t total_bits = 0;
  if (__builtin_mul_overflow(static_cast<size_t>(header.count - 1),
                             static_cast<size_t>(header.width), &total_bits)) {
    return Status::Corruption("packed block bit count overflows");
  }
  const size_t words = (total_bits + 63) / 64;
  if (payload.size() != 16 + words * 8) {
    return Status::Corruption(StringPrintf(
        "packed block payload is %zu bytes, want %zu", payload.size(),
        16 + words * 8));
  }
  const int64_t first = static_cast<int64_t>(ReadU64(payload.data()));
  const uint64_t min_delta = ReadU64(payload.data() + 8);
  const uint8_t* words_base = payload.data() + 16;
  out->reserve(out->size() + header.count);
  out->push_back(first);
  uint64_t prev = static_cast<uint64_t>(first);
  const int width = header.width;
  const uint64_t mask =
      width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  for (uint64_t i = 1; i < header.count; ++i) {
    uint64_t u = 0;
    if (width > 0) {
      const size_t bit_pos = static_cast<size_t>(i - 1) * width;
      const size_t word = bit_pos / 64;
      const int off = static_cast<int>(bit_pos % 64);
      u = ReadU64(words_base + word * 8) >> off;
      if (off + width > 64) {
        u |= ReadU64(words_base + (word + 1) * 8) << (64 - off);
      }
      u &= mask;
    }
    prev += u + min_delta;  // Unsigned wrap mirrors the encoder exactly.
    out->push_back(static_cast<int64_t>(prev));
  }
  return Status::OK();
}

}  // namespace

uint64_t Fnv1a(std::span<const uint8_t> bytes, uint64_t seed) {
  uint64_t hash = seed;
  for (uint8_t byte : bytes) {
    hash ^= byte;
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t Fnv1aSeed() { return kFnvOffsetBasis; }

void EncodeInts(std::span<const int64_t> values, std::vector<uint8_t>* out) {
  const PackedPlan plan = PlanPack(values);
  if (plan.ok &&
      PackedPayloadBytes(values.size(), plan.bit_width) < values.size() * 8) {
    EmitPacked(kPackedInts, 0, plan, values, out);
    return;
  }
  AppendHeader(out, kRawInts, 0, 0, values.size());
  const auto* bytes = reinterpret_cast<const uint8_t*>(values.data());
  out->insert(out->end(), bytes, bytes + values.size() * sizeof(int64_t));
}

void EncodeDoubles(std::span<const double> values, std::vector<uint8_t>* out) {
  // Verified decimal fixed-point: find the smallest power of ten whose
  // rounded integers reproduce every input bit-exactly (bit comparison,
  // so -0.0 and NaN land in the raw fallback rather than silently
  // changing). CSV-quantized feeds pass at the writer's print precision.
  std::vector<int64_t> ints;
  for (int scale = 0; scale <= kMaxDecimalScale; ++scale) {
    ints.clear();
    ints.reserve(values.size());
    bool exact = true;
    for (double v : values) {
      if (!std::isfinite(v)) {
        exact = false;
        break;
      }
      const double scaled = v * kPow10[scale];
      if (!(std::fabs(scaled) < 4.6e18)) {  // llround stays in int64.
        exact = false;
        break;
      }
      const int64_t n = std::llround(scaled);
      if (std::bit_cast<uint64_t>(static_cast<double>(n) / kPow10[scale]) !=
          std::bit_cast<uint64_t>(v)) {
        exact = false;
        break;
      }
      ints.push_back(n);
    }
    if (!exact) continue;
    const PackedPlan plan = PlanPack(ints);
    if (plan.ok && PackedPayloadBytes(ints.size(), plan.bit_width) <
                       values.size() * sizeof(double)) {
      EmitPacked(kPackedDoubles, static_cast<uint8_t>(scale), plan, ints, out);
      return;
    }
    break;  // Packing at a coarser scale only gets wider; fall back raw.
  }
  AppendHeader(out, kRawDoubles, 0, 0, values.size());
  const auto* bytes = reinterpret_cast<const uint8_t*>(values.data());
  out->insert(out->end(), bytes, bytes + values.size() * sizeof(double));
}

Status DecodeInts(std::span<const uint8_t> bytes, size_t expected,
                  std::vector<int64_t>* out) {
  BlockHeader header;
  SM_RETURN_IF_ERROR(ParseHeader(bytes, expected, &header));
  if (header.mode == kRawInts) {
    if (bytes.size() != kBlockHeaderBytes + expected * sizeof(int64_t)) {
      return Status::Corruption("raw int block has wrong payload size");
    }
    const size_t base = out->size();
    out->resize(base + expected);
    std::memcpy(out->data() + base, bytes.data() + kBlockHeaderBytes,
                expected * sizeof(int64_t));
    return Status::OK();
  }
  if (header.mode == kPackedInts) {
    return DecodePacked(bytes, header, out);
  }
  return Status::Corruption("int block has a double-typed mode byte");
}

Status DecodeDoubles(std::span<const uint8_t> bytes, size_t expected,
                     std::vector<double>* out) {
  BlockHeader header;
  SM_RETURN_IF_ERROR(ParseHeader(bytes, expected, &header));
  if (header.mode == kRawDoubles) {
    if (bytes.size() != kBlockHeaderBytes + expected * sizeof(double)) {
      return Status::Corruption("raw double block has wrong payload size");
    }
    const size_t base = out->size();
    out->resize(base + expected);
    std::memcpy(out->data() + base, bytes.data() + kBlockHeaderBytes,
                expected * sizeof(double));
    return Status::OK();
  }
  if (header.mode == kPackedDoubles) {
    std::vector<int64_t> ints;
    SM_RETURN_IF_ERROR(DecodePacked(bytes, header, &ints));
    out->reserve(out->size() + ints.size());
    for (int64_t n : ints) {
      out->push_back(static_cast<double>(n) / kPow10[header.scale]);
    }
    return Status::OK();
  }
  return Status::Corruption("double block has an unknown mode byte");
}

}  // namespace smartmeter::storage::codec
