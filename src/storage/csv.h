#ifndef SMARTMETER_STORAGE_CSV_H_
#define SMARTMETER_STORAGE_CSV_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "timeseries/dataset.h"

namespace smartmeter::storage {

/// On-disk text layouts used across the paper's experiments.
///
/// Single-server experiments (Section 5.3) distinguish "un-partitioned"
/// (one big reading-per-line file) from "partitioned" (one file per
/// consumer). The cluster experiments (Section 5.4.2) use three formats:
///   1. one file, one reading per line           -> kReadingPerLine
///   2. one file, one household per line          -> kHouseholdPerLine
///   3. many files, households never split across -> kWholeHouseholdFiles
enum class CsvFormat {
  kReadingPerLine,
  kHouseholdPerLine,
  kWholeHouseholdFiles,
};

/// Schema of kReadingPerLine rows: household_id,hour,consumption,temperature
struct ReadingRow {
  int64_t household_id;
  int32_t hour;
  double consumption;
  double temperature;
};

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

/// Writes the whole dataset as one reading-per-line CSV file.
Status WriteReadingsCsv(const MeterDataset& dataset, const std::string& path);

/// Writes one file per consumer under `dir` (named <household_id>.csv),
/// reading-per-line. This is the "partitioned" layout of Figure 4/5.
/// Returns the file paths written.
Result<std::vector<std::string>> WritePartitionedCsv(
    const MeterDataset& dataset, const std::string& dir);

/// Writes `num_files` files under `dir`, each holding one or more whole
/// households, reading-per-line (cluster data format 3). Households are
/// assigned round-robin. Returns the paths.
Result<std::vector<std::string>> WriteWholeHouseholdFiles(
    const MeterDataset& dataset, const std::string& dir, int num_files);

/// Writes one household per line: "id,c0,c1,...,cN" (cluster data format
/// 2). The shared temperature series goes to "<path>.temperature" with one
/// value per line, since every task that needs temperature broadcasts it.
Status WriteHouseholdLinesCsv(const MeterDataset& dataset,
                              const std::string& path);

// ---------------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------------

/// Reads a reading-per-line CSV back into a dataset. Rows may arrive in any
/// order; they are grouped by household and sorted by hour. All households
/// must cover the same hour range.
Result<MeterDataset> ReadReadingsCsv(const std::string& path);

/// Reads every "*.csv" file under `dir` (one file per household layout).
Result<MeterDataset> ReadPartitionedCsv(const std::string& dir);

/// Reads several reading-per-line CSV files into one dataset (the
/// whole-household-files layout, or an explicit partition list).
Result<MeterDataset> ReadReadingsCsvFiles(
    const std::vector<std::string>& paths);

/// Groups reading-per-line rows — arriving in any order — by household
/// and assembles a dense dataset (hours must cover 0..N-1 everywhere).
Result<MeterDataset> AssembleReadingRows(std::span<const ReadingRow> rows);

/// Reads a household-per-line CSV plus its "<path>.temperature" sidecar.
Result<MeterDataset> ReadHouseholdLinesCsv(const std::string& path);

/// Streaming reader over one reading-per-line CSV file; used by the
/// engines that process data without materializing a full dataset.
class ReadingCsvReader {
 public:
  explicit ReadingCsvReader(std::string path);
  ~ReadingCsvReader();

  ReadingCsvReader(const ReadingCsvReader&) = delete;
  ReadingCsvReader& operator=(const ReadingCsvReader&) = delete;

  /// Opens the file; must be called before Next().
  Status Open();

  /// Reads the next row into `row`. Returns false at EOF. Malformed rows
  /// surface through status() as "<path>:<line>: <field error>".
  bool Next(ReadingRow* row);

  const Status& status() const { return status_; }

  /// 1-based number of the last line read (0 before the first Next()).
  size_t line_number() const { return line_number_; }

 private:
  std::string path_;
  FILE* file_ = nullptr;
  /// Block buffer: Next() slices lines out of 64 KiB reads instead of
  /// issuing one stdio call per row. buffer_[buffer_pos_..] is unread.
  std::string buffer_;
  size_t buffer_pos_ = 0;
  bool eof_ = false;
  size_t line_number_ = 0;
  Status status_;
};

/// Parses a single reading-per-line row in one pass (fields sliced in
/// place, from_chars numeric fast path). Errors name the failing field
/// and its 1-based column.
Result<ReadingRow> ParseReadingRow(std::string_view line);

}  // namespace smartmeter::storage

#endif  // SMARTMETER_STORAGE_CSV_H_
