#ifndef SMARTMETER_STORAGE_BTREE_H_
#define SMARTMETER_STORAGE_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"

namespace smartmeter::storage {

/// In-memory B+-tree mapping int64 keys to uint64 values, modelling the
/// index PostgreSQL builds on the household-id column (Figure 9, Table 1
/// layout). Duplicate keys are rejected; the row store maps each household
/// to a postings-list id instead.
///
/// Leaves are linked left-to-right so range scans and full scans are
/// sequential. Fanout is a template-free constant chosen to give realistic
/// depth at benchmark scale.
class BPlusTree {
 public:
  static constexpr int kMaxKeys = 64;  // Max keys per node before a split.

  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  /// Inserts key -> value. Fails with AlreadyExists on duplicates.
  Status Insert(int64_t key, uint64_t value);

  /// Point lookup.
  Result<uint64_t> Lookup(int64_t key) const;

  bool Contains(int64_t key) const;

  /// Invokes `visit(key, value)` for every entry with key in [lo, hi],
  /// in ascending key order.
  void Scan(int64_t lo, int64_t hi,
            const std::function<void(int64_t, uint64_t)>& visit) const;

  /// All keys in ascending order (mostly for tests and diagnostics).
  std::vector<int64_t> Keys() const;

  size_t size() const { return size_; }
  int height() const { return height_; }

  /// Validates structural invariants (sorted keys, balanced depth, node
  /// occupancy, leaf chain consistency). Used by property tests.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct SplitResult;

  SplitResult InsertRecursive(Node* node, int64_t key, uint64_t value,
                              Status* status);
  const Node* FindLeaf(int64_t key) const;
  Status CheckNode(const Node* node, int depth, int64_t lo, int64_t hi,
                   bool is_root) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  int height_ = 1;
};

}  // namespace smartmeter::storage

#endif  // SMARTMETER_STORAGE_BTREE_H_
