#ifndef SMARTMETER_TABLE_COLUMNAR_CACHE_H_
#define SMARTMETER_TABLE_COLUMNAR_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "table/data_source.h"
#include "table/table_reader.h"

namespace smartmeter::table {

/// Binary columnar cache: parse any text DataSource once, persist the
/// result as an mmap-able SMCOLV1 column file (the same format System
/// C's native store uses), and serve every later scan zero-copy from the
/// mapping. This gives all five engines one shared cold→warm story — the
/// Figure 6 distinction — instead of five private re-parsers.
///
/// Cache files live under `cache_dir` as "<key>.smcol" where the key is
/// an FNV-1a hash over the source's layout plus every file's path, byte
/// size, and mtime. Touching or rewriting any input file changes the key,
/// so a stale entry is simply never looked up again (dead entries are
/// left for the directory owner to sweep).
///
/// Observability: every OpenOrBuild() bumps "table.cache.hits" or
/// "table.cache.misses".
class ColumnarCache {
 public:
  explicit ColumnarCache(std::string cache_dir);

  /// The cache file a source maps to (stats every input file).
  Result<std::string> CacheFilePath(const DataSource& source) const;

  /// Hit: mmap the existing cache file — no parsing. Miss: parse the
  /// source through the text reader, write the column file (atomically,
  /// via a temp file + rename), then mmap it. Either way the returned
  /// reader is already open and serves contiguous zero-copy batches.
  Result<std::unique_ptr<TableReader>> OpenOrBuild(const DataSource& source);

  /// Key hash, exposed for tests: FNV-1a over layout + file identities.
  static uint64_t KeyFor(const DataSource& source, uint64_t seed);

  const std::string& cache_dir() const { return cache_dir_; }

 private:
  std::string cache_dir_;
};

}  // namespace smartmeter::table

#endif  // SMARTMETER_TABLE_COLUMNAR_CACHE_H_
