#ifndef SMARTMETER_TABLE_COLUMNAR_CACHE_H_
#define SMARTMETER_TABLE_COLUMNAR_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "table/data_source.h"
#include "table/table_reader.h"

namespace smartmeter::table {

/// Binary columnar cache: parse any text DataSource once, persist the
/// result as an mmap-able SMCOLV1 column file (the same format System
/// C's native store uses), and serve every later scan zero-copy from the
/// mapping. This gives all five engines one shared cold→warm story — the
/// Figure 6 distinction — instead of five private re-parsers.
///
/// Cache files live under `cache_dir` as "<key>.smcol" where the key is
/// an FNV-1a hash over the spool format, the source's layout, and every
/// file's path, byte size, and mtime. Touching or rewriting any input
/// file changes the key, so a stale entry is simply never looked up
/// again; dead entries are reclaimed by the byte-budget sweep below.
///
/// When `options.byte_budget` is positive the directory is bounded:
/// after each miss installs a new entry, least-recently-used cache files
/// (by mtime — hits re-touch their entry) are evicted until the
/// directory fits the budget again. The just-installed entry is never
/// evicted, even when it alone exceeds the budget.
///
/// Observability: every OpenOrBuild() bumps "table.cache.hits" or
/// "table.cache.misses"; each evicted file bumps "table.cache.evictions".
class ColumnarCache {
 public:
  /// Which column-file generation a miss spools.
  enum class Format {
    kV1,  // SMCOLV1: raw mmap-able columns.
    kV2,  // SMCOLV2: compressed blocks + household x hour index.
  };

  struct Options {
    /// Spool format for cache misses. Defaults to the environment
    /// override (SM_COLUMN_FORMAT=v1|v2) or SMCOLV2. Hits of either
    /// format are readable regardless — ColumnFileReader sniffs the
    /// magic — but the format is mixed into the cache key so the two
    /// generations never alias one entry.
    Format format = DefaultFormat();
    /// Maximum total bytes of cache files kept in `cache_dir`;
    /// 0 = unbounded.
    int64_t byte_budget = 0;

    /// Reads SM_COLUMN_FORMAT ("v1" or "v2"); anything else → kV2.
    static Format DefaultFormat();
  };

  explicit ColumnarCache(std::string cache_dir);
  ColumnarCache(std::string cache_dir, Options options);

  /// The cache file a source maps to (stats every input file).
  Result<std::string> CacheFilePath(const DataSource& source) const;

  /// Hit: mmap the existing cache file — no parsing. Miss: parse the
  /// source through the text reader, write the column file (atomically,
  /// via a temp file + rename), then mmap it. Either way the returned
  /// reader is already open and serves contiguous zero-copy batches.
  Result<std::unique_ptr<TableReader>> OpenOrBuild(const DataSource& source);

  /// Key hash, exposed for tests: FNV-1a over format + layout + file
  /// identities.
  uint64_t KeyFor(const DataSource& source, uint64_t seed) const;

  const std::string& cache_dir() const { return cache_dir_; }
  const Options& options() const { return options_; }

 private:
  /// Evicts least-recently-used ".smcol" files until the directory fits
  /// the byte budget; `keep` is never evicted.
  void EnforceBudget(const std::string& keep);

  std::string cache_dir_;
  Options options_;
};

}  // namespace smartmeter::table

#endif  // SMARTMETER_TABLE_COLUMNAR_CACHE_H_
