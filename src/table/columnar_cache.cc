#include "table/columnar_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string_view>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "storage/column_store.h"

namespace smartmeter::table {

namespace fs = std::filesystem;

namespace {

constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t hash, std::string_view bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t FnvMixU64(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= value & 0xff;
    hash *= kFnvPrime;
    value >>= 8;
  }
  return hash;
}

/// Mixes a bounded content sample — the first and last 4 KiB — into the
/// hash. Filesystem mtimes tick in whole seconds on some systems, so a
/// source rewritten within one tick keeps the same path+size+mtime
/// triple; the sample makes such rewrites produce a different key
/// (unless the edit is confined to the middle of a file that also kept
/// its exact size, which no text regeneration path does).
uint64_t FnvMixFileSample(uint64_t hash, const std::string& path) {
  constexpr size_t kSample = 4096;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return FnvMixU64(hash, 0);
  char head[kSample];
  const size_t head_read = std::fread(head, 1, kSample, f);
  hash = FnvMix(hash, std::string_view(head, head_read));
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long end = std::ftell(f);
    if (end > static_cast<long>(2 * kSample) &&
        std::fseek(f, end - static_cast<long>(kSample), SEEK_SET) == 0) {
      char tail[kSample];
      const size_t tail_read = std::fread(tail, 1, kSample, f);
      hash = FnvMix(hash, std::string_view(tail, tail_read));
    }
  }
  std::fclose(f);
  return hash;
}

}  // namespace

ColumnarCache::Format ColumnarCache::Options::DefaultFormat() {
  const char* env = std::getenv("SM_COLUMN_FORMAT");
  if (env != nullptr && std::string_view(env) == "v1") return Format::kV1;
  return Format::kV2;
}

ColumnarCache::ColumnarCache(std::string cache_dir)
    : cache_dir_(std::move(cache_dir)) {}

ColumnarCache::ColumnarCache(std::string cache_dir, Options options)
    : cache_dir_(std::move(cache_dir)), options_(options) {}

uint64_t ColumnarCache::KeyFor(const DataSource& source, uint64_t seed) const {
  uint64_t hash = seed == 0 ? kFnvOffsetBasis : seed;
  // The spool format is part of the identity: a v1 and a v2 build of the
  // same source must land in different entries, or a format switch would
  // serve stale bytes of the other generation.
  hash = FnvMix(hash, options_.format == Format::kV1 ? "smcolv1" : "smcolv2");
  hash = FnvMix(hash, DataSourceLayoutName(source.layout));
  for (const std::string& file : source.files) {
    hash = FnvMix(hash, file);
    hash = FnvMixU64(hash, 0);  // Separator between path and identity.
    std::error_code ec;
    const uint64_t size = static_cast<uint64_t>(fs::file_size(file, ec));
    hash = FnvMixU64(hash, ec ? 0 : size);
    const fs::file_time_type mtime = fs::last_write_time(file, ec);
    hash = FnvMixU64(
        hash, ec ? 0
                 : static_cast<uint64_t>(mtime.time_since_epoch().count()));
    hash = FnvMixFileSample(hash, file);
  }
  return hash;
}

Result<std::string> ColumnarCache::CacheFilePath(
    const DataSource& source) const {
  SM_RETURN_IF_ERROR(source.Validate());
  const uint64_t key = KeyFor(source, 0);
  return StringPrintf("%s/%016llx.smcol", cache_dir_.c_str(),
                      static_cast<unsigned long long>(key));
}

Result<std::unique_ptr<TableReader>> ColumnarCache::OpenOrBuild(
    const DataSource& source) {
  static obs::Counter* hits =
      obs::MetricsRegistry::Global().GetCounter("table.cache.hits");
  static obs::Counter* misses =
      obs::MetricsRegistry::Global().GetCounter("table.cache.misses");

  SM_ASSIGN_OR_RETURN(std::string cache_path, CacheFilePath(source));

  std::error_code ec;
  if (!fs::is_regular_file(cache_path, ec)) {
    misses->Increment();
    // Cold path: one parse of the text source, then persist. Write to a
    // temp file and rename so a concurrent reader never maps a torn
    // file and a failed build leaves no entry behind.
    fs::create_directories(cache_dir_, ec);
    if (ec) {
      return Status::IOError(StringPrintf("cannot create cache dir %s: %s",
                                          cache_dir_.c_str(),
                                          ec.message().c_str()));
    }
    SM_ASSIGN_OR_RETURN(MeterDataset dataset, ReadDatasetFromSource(source));
    const std::string tmp_path = cache_path + ".tmp";
    const Status written =
        options_.format == Format::kV1
            ? storage::ColumnStore::WriteFile(dataset, tmp_path)
            : storage::ColumnFileWriter::WriteFile(dataset, tmp_path);
    if (!written.ok()) {
      fs::remove(tmp_path, ec);
      return written;
    }
    fs::rename(tmp_path, cache_path, ec);
    if (ec) {
      fs::remove(tmp_path, ec);
      return Status::IOError(StringPrintf("cannot install cache file %s: %s",
                                          cache_path.c_str(),
                                          ec.message().c_str()));
    }
    EnforceBudget(cache_path);
  } else {
    hits->Increment();
    // Re-touch the entry so the LRU sweep sees it as recently used.
    fs::last_write_time(cache_path, fs::file_time_type::clock::now(), ec);
  }

  auto reader = std::make_unique<ColumnFileReader>(cache_path);
  SM_RETURN_IF_ERROR(reader->Open());

  static obs::Counter* bytes_on_disk =
      obs::MetricsRegistry::Global().GetCounter("table.cache.bytes_on_disk");
  static obs::Counter* bytes_decoded =
      obs::MetricsRegistry::Global().GetCounter("table.cache.bytes_decoded");
  const uint64_t file_bytes = static_cast<uint64_t>(fs::file_size(
      cache_path, ec));
  bytes_on_disk->Add(ec ? 0 : static_cast<int64_t>(file_bytes));
  bytes_decoded->Add(reader->format_version() == 2
                         ? static_cast<int64_t>(
                               reader->open_stats().bytes_decoded)
                         : (ec ? 0 : static_cast<int64_t>(file_bytes)));
  return std::unique_ptr<TableReader>(std::move(reader));
}

void ColumnarCache::EnforceBudget(const std::string& keep) {
  if (options_.byte_budget <= 0) return;
  static obs::Counter* evictions =
      obs::MetricsRegistry::Global().GetCounter("table.cache.evictions");

  struct Entry {
    std::string path;
    fs::file_time_type mtime;
    int64_t bytes = 0;
  };
  std::vector<Entry> entries;
  int64_t total = 0;
  std::error_code ec;
  for (const fs::directory_entry& item :
       fs::directory_iterator(cache_dir_, ec)) {
    if (!item.is_regular_file(ec)) continue;
    if (item.path().extension() != ".smcol") continue;
    Entry entry;
    entry.path = item.path().string();
    entry.mtime = item.last_write_time(ec);
    if (ec) entry.mtime = fs::file_time_type::min();
    entry.bytes = static_cast<int64_t>(item.file_size(ec));
    if (ec) entry.bytes = 0;
    total += entry.bytes;
    entries.push_back(std::move(entry));
  }
  if (total <= options_.byte_budget) return;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  for (const Entry& entry : entries) {
    if (total <= options_.byte_budget) break;
    if (entry.path == keep) continue;
    if (!fs::remove(entry.path, ec) || ec) continue;
    total -= entry.bytes;
    evictions->Increment();
  }
}

}  // namespace smartmeter::table
