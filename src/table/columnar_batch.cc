#include "table/columnar_batch.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"

namespace smartmeter::table {

ColumnarBatch& ColumnarBatch::operator=(ColumnarBatch&& other) noexcept {
  if (this == &other) return *this;
  owned_ids_ = std::move(other.owned_ids_);
  owned_series_ = std::move(other.owned_series_);
  ids_ = other.ids_;
  count_ = other.count_;
  hours_ = other.hours_;
  contiguous_ = other.contiguous_;
  series_ = other.series_;
  temperature_ = other.temperature_;
  other.ids_ = nullptr;
  other.count_ = 0;
  other.hours_ = 0;
  other.contiguous_ = nullptr;
  other.series_ = nullptr;
  other.temperature_ = {};
  return *this;
}

Result<ColumnarBatch> ColumnarBatch::FromContiguous(
    std::span<const int64_t> ids, SeriesSlice consumption,
    SeriesSlice temperature, size_t hours) {
  if (consumption.size() != ids.size() * hours) {
    return Status::InvalidArgument(StringPrintf(
        "columnar batch: consumption column has %zu values, expected "
        "%zu households x %zu hours",
        consumption.size(), ids.size(), hours));
  }
  if (!temperature.empty() && temperature.size() != hours) {
    return Status::InvalidArgument(StringPrintf(
        "columnar batch: temperature column has %zu values, expected %zu",
        temperature.size(), hours));
  }
  ColumnarBatch batch;
  batch.ids_ = ids.data();
  batch.count_ = ids.size();
  batch.hours_ = hours;
  batch.contiguous_ = consumption.data();
  batch.temperature_ = temperature;
  return batch;
}

Result<ColumnarBatch> ColumnarBatch::FromDataset(const MeterDataset& dataset) {
  SM_RETURN_IF_ERROR(dataset.Validate());
  ColumnarBatch batch;
  batch.owned_ids_.reserve(dataset.num_consumers());
  batch.owned_series_.reserve(dataset.num_consumers());
  for (const ConsumerSeries& c : dataset.consumers()) {
    batch.owned_ids_.push_back(c.household_id);
    batch.owned_series_.emplace_back(c.consumption);
  }
  batch.ids_ = batch.owned_ids_.data();
  batch.series_ = batch.owned_series_.data();
  batch.count_ = batch.owned_ids_.size();
  batch.hours_ = dataset.hours();
  batch.temperature_ = dataset.temperature();
  return batch;
}

Result<ColumnarBatch> ColumnarBatch::FromSlices(std::vector<int64_t> ids,
                                                std::vector<SeriesSlice> series,
                                                SeriesSlice temperature) {
  if (ids.size() != series.size()) {
    return Status::InvalidArgument(
        StringPrintf("columnar batch: %zu ids but %zu series", ids.size(),
                     series.size()));
  }
  const size_t hours = series.empty() ? 0 : series.front().size();
  for (const SeriesSlice& s : series) {
    if (s.size() != hours) {
      return Status::InvalidArgument(StringPrintf(
          "columnar batch: series length %zu != %zu", s.size(), hours));
    }
  }
  if (!temperature.empty() && temperature.size() != hours) {
    return Status::InvalidArgument(StringPrintf(
        "columnar batch: temperature column has %zu values, expected %zu",
        temperature.size(), hours));
  }
  ColumnarBatch batch;
  batch.owned_ids_ = std::move(ids);
  batch.owned_series_ = std::move(series);
  batch.ids_ = batch.owned_ids_.data();
  batch.series_ = batch.owned_series_.data();
  batch.count_ = batch.owned_ids_.size();
  batch.hours_ = hours;
  batch.temperature_ = temperature;
  return batch;
}

ColumnarBatch ColumnarBatch::View() const {
  ColumnarBatch view;
  if (series_ != nullptr) {
    // Copy the dense slice table so the view survives a move of the
    // original; the series data itself stays borrowed.
    view.owned_ids_.assign(ids_, ids_ + count_);
    view.owned_series_.assign(series_, series_ + count_);
    view.ids_ = view.owned_ids_.data();
    view.series_ = view.owned_series_.data();
  } else {
    view.ids_ = ids_;
    view.contiguous_ = contiguous_;
  }
  view.count_ = count_;
  view.hours_ = hours_;
  view.temperature_ = temperature_;
  return view;
}

Result<ColumnarBatch> ColumnarBatch::Slice(size_t begin, size_t count) const {
  const size_t from = std::min(begin, count_);
  const size_t n = std::min(count, count_ - from);
  if (contiguous_ != nullptr || count_ == 0) {
    return FromContiguous(
        std::span<const int64_t>(ids_ + from, n),
        SeriesSlice(contiguous_ + from * hours_, n * hours_), temperature_,
        hours_);
  }
  return FromSlices(std::vector<int64_t>(ids_ + from, ids_ + from + n),
                    std::vector<SeriesSlice>(series_ + from, series_ + from + n),
                    temperature_);
}

Status ColumnarBatch::Validate() const {
  if (count_ > 0 && ids_ == nullptr) {
    return Status::Internal("columnar batch: missing id column");
  }
  if (count_ > 0 && contiguous_ == nullptr && series_ == nullptr) {
    return Status::Internal("columnar batch: missing consumption storage");
  }
  if (series_ != nullptr) {
    for (size_t i = 0; i < count_; ++i) {
      if (series_[i].size() != hours_) {
        return Status::Internal(StringPrintf(
            "columnar batch: series %zu has %zu values, expected %zu", i,
            series_[i].size(), hours_));
      }
    }
  }
  if (!temperature_.empty() && temperature_.size() != hours_) {
    return Status::Internal(StringPrintf(
        "columnar batch: temperature column has %zu values, expected %zu",
        temperature_.size(), hours_));
  }
  return Status::OK();
}

}  // namespace smartmeter::table
