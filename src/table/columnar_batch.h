#ifndef SMARTMETER_TABLE_COLUMNAR_BATCH_H_
#define SMARTMETER_TABLE_COLUMNAR_BATCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "timeseries/dataset.h"

namespace smartmeter::table {

/// One household's readings as a contiguous column slice. Every kernel
/// inner loop runs over one of these, so data reaches the math as plain
/// `double*` ranges the compiler can vectorize — never through a
/// per-access callback.
using SeriesSlice = std::span<const double>;

/// Zero-copy columnar view over n household series plus the shared
/// temperature column: the one shape every storage backend (CSV parse,
/// row store, mmap'd column file, simulated HDFS blocks) is adapted to
/// before the kernels run.
///
/// A batch BORROWS all its memory. The producer — a TableReader, a
/// ColumnStore mapping, a MeterDataset — must outlive it. Two physical
/// layouts are supported behind the same accessors:
///
///  * contiguous: one household-major `count*hours` consumption column
///    (the mmap'd columnar file / cache path). `consumption(i)` is pure
///    pointer arithmetic and `consumption_column()` exposes the whole
///    column for full-scan loops.
///  * sliced: one span per household pointing at scattered vectors (the
///    in-memory dataset path). Access is one indexed load from a dense
///    slice table — still no indirect call in the hot path.
///
/// Move-only: the slice/id tables live in owned vectors whose heap
/// buffers are stable across moves.
class ColumnarBatch {
 public:
  ColumnarBatch() = default;

  ColumnarBatch(ColumnarBatch&& other) noexcept { *this = std::move(other); }
  ColumnarBatch& operator=(ColumnarBatch&& other) noexcept;
  ColumnarBatch(const ColumnarBatch&) = delete;
  ColumnarBatch& operator=(const ColumnarBatch&) = delete;

  /// Views contiguous columnar storage: `ids` has one entry per
  /// household, `consumption` holds `ids.size() * hours` doubles in
  /// household-major order. `temperature` is the shared column (may be
  /// empty for tables that carry none, e.g. similarity series tables).
  static Result<ColumnarBatch> FromContiguous(std::span<const int64_t> ids,
                                              SeriesSlice consumption,
                                              SeriesSlice temperature,
                                              size_t hours);

  /// Views an in-memory dataset (builds the dense id/slice tables once;
  /// O(n) setup, zero-copy data).
  static Result<ColumnarBatch> FromDataset(const MeterDataset& dataset);

  /// Views scattered per-household slices of equal length. Used by the
  /// cluster engines' assembled series tables.
  static Result<ColumnarBatch> FromSlices(std::vector<int64_t> ids,
                                          std::vector<SeriesSlice> series,
                                          SeriesSlice temperature);

  /// A second view over the same borrowed memory — the batch analogue of
  /// copying a span. The batch is move-only, so plan scan closures that
  /// hand a resident batch to the executor re-view it instead. The
  /// original producer must outlive both views.
  ColumnarBatch View() const;

  /// A view restricted to households [begin, begin + count). `begin` is
  /// clamped to count() and the slice to what remains, mirroring
  /// `RowScope` semantics. Like View(), the result borrows the original
  /// producer's memory (the sliced layout copies only its table rows).
  Result<ColumnarBatch> Slice(size_t begin, size_t count) const;

  size_t count() const { return count_; }
  size_t hours() const { return hours_; }
  bool empty() const { return count_ == 0; }

  /// True when the consumption column is one contiguous allocation.
  bool contiguous() const { return contiguous_ != nullptr; }

  int64_t household_id(size_t i) const { return ids_[i]; }
  std::span<const int64_t> household_ids() const { return {ids_, count_}; }

  /// Household i's consumption series (hours() doubles).
  SeriesSlice consumption(size_t i) const {
    return contiguous_ != nullptr
               ? SeriesSlice(contiguous_ + i * hours_, hours_)
               : series_[i];
  }

  /// The full household-major consumption column; empty when the batch
  /// is not contiguous.
  SeriesSlice consumption_column() const {
    return contiguous_ != nullptr
               ? SeriesSlice(contiguous_, count_ * hours_)
               : SeriesSlice();
  }

  /// Shared temperature column (hours() doubles, or empty when the
  /// source carries none).
  SeriesSlice temperature() const { return temperature_; }

  /// Shape invariants: dense ids/slices, per-series length == hours(),
  /// temperature empty or hours()-long.
  Status Validate() const;

 private:
  const int64_t* ids_ = nullptr;
  size_t count_ = 0;
  size_t hours_ = 0;
  // Exactly one of these describes consumption storage.
  const double* contiguous_ = nullptr;
  const SeriesSlice* series_ = nullptr;
  SeriesSlice temperature_;
  // Backing tables for the sliced / assembled layouts; raw pointers
  // above point into these so moves stay cheap and accessors branchless.
  std::vector<int64_t> owned_ids_;
  std::vector<SeriesSlice> owned_series_;
};

}  // namespace smartmeter::table

#endif  // SMARTMETER_TABLE_COLUMNAR_BATCH_H_
