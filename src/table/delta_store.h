#ifndef SMARTMETER_TABLE_DELTA_STORE_H_
#define SMARTMETER_TABLE_DELTA_STORE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/scan_scope.h"
#include "table/columnar_batch.h"
#include "table/table_reader.h"
#include "timeseries/dataset.h"

namespace smartmeter::table {

/// An immutable, shareable view of the delta store at one publication
/// point: the fast (mutable) layer of the lambda architecture frozen
/// for query time. Readings appended after the snapshot was taken are
/// invisible to it; the backing buffers are kept alive by shared
/// ownership, so a snapshot stays valid after the store grows or is
/// destroyed.
///
/// Layout: one row per household (base rows first, in base order, then
/// delta-only households in first-append order). Each row is `stride`
/// doubles of which the first `hours` are published; hours
/// [0, base_hours) hold the immutable base copy and [base_hours, hours)
/// the delta region. Published slots no writer ever filled read 0.0
/// (the "meter offline" gap rule).
struct DeltaSnapshot {
  std::shared_ptr<const std::vector<double>> consumption;
  std::shared_ptr<const std::vector<double>> temperature;
  std::vector<int64_t> ids;
  size_t rows = 0;
  size_t base_hours = 0;  // first delta hour
  size_t hours = 0;       // published extent (queryable hours)
  size_t stride = 0;      // allocation stride per row (>= hours)
  uint64_t version = 0;   // store append count when taken

  /// Household `row`'s published series: base + delta as one span.
  std::span<const double> Series(size_t row) const {
    return {consumption->data() + row * stride, hours};
  }
  std::span<const double> Temperatures() const {
    return {temperature->data(), hours};
  }
};

/// The mutable fast layer: append-only per-household delta columns over
/// an immutable base table. The base is copied in once (AttachBase);
/// live readings then land in O(1) at their absolute hour slot, and
/// Snapshot() publishes a grown hour extent without copying the data —
/// queries borrow the same buffers the writer appends into, kept
/// disjoint by the published/unpublished boundary.
///
/// Write rules (each violation is a distinct, clean status):
///  * hours below the published extent are rejected (kOutOfRange,
///    "late") — the base and every published delta slot are immutable,
///    so closed query results are never perturbed;
///  * a slot can be written once (kAlreadyExists on duplicates);
///  * unknown households open a new delta-only row.
///
/// Publication trails the newest reading by `publish_lag_hours`: with a
/// lag of L, hour h becomes queryable once some reading reaches hour
/// h + L. The lag is the store-level mirror of the stream processor's
/// bounded-lateness allowance — out-of-order readings inside the
/// allowance land in still-unpublished slots.
///
/// Thread-safe: Append() and Snapshot() may race freely; snapshot
/// readers touch only published slots and never take the lock.
class DeltaStore {
 public:
  struct Options {
    /// Hours the published extent trails the newest appended hour.
    size_t publish_lag_hours = 0;
    /// Initial delta-region capacity (hours beyond the base) allocated
    /// at AttachBase / first append. Growth past it copies the buffer.
    size_t hour_capacity_headroom = 256;
  };

  DeltaStore() : DeltaStore(Options()) {}
  explicit DeltaStore(Options options);

  DeltaStore(const DeltaStore&) = delete;
  DeltaStore& operator=(const DeltaStore&) = delete;

  /// Copies the immutable base table into the mutable layer (one-time
  /// cost, same order as a columnar decode-all). Must precede every
  /// Append; the batch's memory is not retained. Pass a batch from any
  /// TableReader — SMCOLV1/V2, CSV, or an in-memory dataset.
  Status AttachBase(const ColumnarBatch& base);

  /// Lands one live reading. The first writer of an hour also fixes the
  /// shared temperature column for that hour (later writers must agree
  /// with the city feed; their temperature is ignored).
  Status Append(int64_t household_id, int64_t hour, double consumption,
                double temperature);

  /// Advances the published extent to (max appended hour + 1 − lag) and
  /// returns an immutable view. When `freshness_seconds` is non-null,
  /// the append-to-queryable lag of every reading first published by
  /// this call is appended to it; the same lags feed the
  /// `ingest.freshness_seconds` histogram.
  std::shared_ptr<const DeltaSnapshot> Snapshot(
      std::vector<double>* freshness_seconds = nullptr);

  size_t rows() const;
  size_t base_hours() const;
  size_t published_hours() const;
  /// Newest appended hour, −1 when the store is empty.
  int64_t max_hour() const;
  /// Total accepted appends (the snapshot version counter).
  uint64_t version() const;

 private:
  size_t PublishableHoursLocked() const;
  void EnsureCapacityLocked(size_t rows, size_t hours);

  struct PendingFreshness {
    std::chrono::steady_clock::time_point appended_at;
    int64_t hour;
  };

  Options options_;

  mutable std::mutex mu_;
  std::vector<int64_t> ids_;
  std::unordered_map<int64_t, size_t> row_index_;
  // Row-major rows × capacity_hours_; copied (never resized in place)
  // while snapshots share it, so published views stay stable.
  std::shared_ptr<std::vector<double>> consumption_;
  std::shared_ptr<std::vector<double>> temperature_;
  std::vector<uint8_t> written_;       // per slot, rows × capacity
  std::vector<uint8_t> temp_written_;  // per hour
  size_t capacity_hours_ = 0;
  size_t base_hours_ = 0;
  size_t published_hours_ = 0;
  int64_t max_hour_ = -1;
  uint64_t version_ = 0;
  bool base_attached_ = false;
  std::vector<PendingFreshness> pending_freshness_;
};

/// TableReader over a DeltaStore: Open() (or Refresh()) captures a
/// fresh snapshot, after which batches expose base + delta merged as
/// ordinary columnar spans. Unlike the file readers it supports hour
/// windows natively — a scoped batch is a zero-copy sub-rectangle of
/// the snapshot, so scans touching only delta hours never reread base
/// bytes (ScanStats stays zero: nothing is decoded). Scoped batches
/// keep their snapshot alive through `ScopedBatch::owner`; plain
/// NewBatch() views are valid until the next Refresh().
class DeltaTableReader : public TableReader {
 public:
  /// Borrows `store`, which must outlive the reader.
  explicit DeltaTableReader(DeltaStore* store);

  Status Open() override;
  /// Re-snapshots the store; newer published readings become visible.
  Status Refresh() { return Open(); }

  Result<ColumnarBatch> NewBatch() const override;
  Result<ScopedBatch> NewScopedBatch(
      const storage::ScanScope& scope) const override;
  std::string_view format_name() const override { return "delta"; }

  /// The snapshot batches currently view (null before Open()).
  std::shared_ptr<const DeltaSnapshot> snapshot() const { return snapshot_; }

 private:
  DeltaStore* store_;
  std::shared_ptr<const DeltaSnapshot> snapshot_;
};

/// Materializes a snapshot into an owning dataset — the "rebuild the
/// monolithic file" half of the lambda merge, used to pin batch-layer
/// parity and to reseal deltas into SMCOLV1/V2 files.
Result<MeterDataset> SnapshotToDataset(const DeltaSnapshot& snapshot);

}  // namespace smartmeter::table

#endif  // SMARTMETER_TABLE_DELTA_STORE_H_
