#ifndef SMARTMETER_TABLE_TABLE_READER_H_
#define SMARTMETER_TABLE_TABLE_READER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/block_store.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/column_store.h"
#include "storage/row_store.h"
#include "storage/scan_scope.h"
#include "table/columnar_batch.h"
#include "table/data_source.h"
#include "timeseries/dataset.h"

namespace smartmeter::table {

/// A batch restricted to a ScanScope, plus whatever keeps its memory
/// alive and what the restriction cost. `owner` is null when the batch
/// borrows the reader's own storage (the common slice-of-resident case)
/// and holds freshly decoded buffers when the reader pruned blocks into
/// a private decode (the SMCOLV2 path).
struct ScopedBatch {
  ColumnarBatch batch;
  std::shared_ptr<const void> owner;
  storage::ScanStats stats;
};

/// One interface every storage backend implements so the engines and the
/// kernels see a single shape of data: Open() does the format-specific
/// work (parse, scan, or mmap) once, then NewBatch() hands out zero-copy
/// ColumnarBatch views into the reader's storage for as long as the
/// reader lives.
///
/// Readers are not thread-safe during Open(); batches taken after Open()
/// are immutable views and may be scanned from many threads.
class TableReader {
 public:
  virtual ~TableReader() = default;

  TableReader(const TableReader&) = delete;
  TableReader& operator=(const TableReader&) = delete;

  /// Loads / maps the underlying storage. Must be called (and succeed)
  /// before NewBatch(). Calling Open() twice re-reads the source.
  virtual Status Open() = 0;

  /// A zero-copy view over everything Open() loaded. Valid until the
  /// reader is destroyed or re-opened.
  virtual Result<ColumnarBatch> NewBatch() const = 0;

  /// A batch restricted to `scope`. The base implementation slices the
  /// full batch by rows (hour windows are rejected — only an indexed
  /// format can restrict them); block-indexed readers override it to
  /// decode only the matching blocks and report prune counts.
  virtual Result<ScopedBatch> NewScopedBatch(
      const storage::ScanScope& scope) const;

  /// Short stable label for reports ("csv", "column-file", ...).
  virtual std::string_view format_name() const = 0;

 protected:
  TableReader() = default;
};

/// Text path: parses any DataSource layout into an in-memory dataset.
/// This is the cold path every cache miss pays once.
class CsvTableReader : public TableReader {
 public:
  explicit CsvTableReader(DataSource source);

  Status Open() override;
  Result<ColumnarBatch> NewBatch() const override;
  std::string_view format_name() const override { return "csv"; }

  const MeterDataset& dataset() const { return dataset_; }

 private:
  DataSource source_;
  MeterDataset dataset_;
  bool open_ = false;
};

/// Binary column-file path (System C's native store and the columnar
/// cache's file format). Open() sniffs the generation: SMCOLV1 is pure
/// mmap + pointer arithmetic; SMCOLV2 mmaps the compressed file and
/// decodes its blocks into resident buffers once, after which batches
/// are the same zero-copy spans. Scoped batches over SMCOLV2 decode only
/// the blocks the scope touches (block-index pruning) and surface the
/// prune counts through `table.scan.blocks_{pruned,decoded}`.
class ColumnFileReader : public TableReader {
 public:
  explicit ColumnFileReader(std::string path);

  Status Open() override;
  Result<ColumnarBatch> NewBatch() const override;
  Result<ScopedBatch> NewScopedBatch(
      const storage::ScanScope& scope) const override;
  std::string_view format_name() const override { return "column-file"; }

  /// 1 (SMCOLV1) or 2 (SMCOLV2) once open.
  int format_version() const { return format_version_; }
  /// What Open() decoded: zero for SMCOLV1 (nothing to decode), the
  /// whole-file block/byte counts for SMCOLV2.
  const storage::ScanStats& open_stats() const { return open_stats_; }

  const storage::ColumnStore& store() const { return store_; }
  /// The compressed SMCOLV2 mapping, or null when the open file is
  /// SMCOLV1 (whose reads go through store()).
  const storage::CompressedColumnFile* compressed() const {
    return format_version_ == 2 ? &compressed_ : nullptr;
  }

 private:
  std::string path_;
  int format_version_ = 0;
  storage::ColumnStore store_;
  storage::CompressedColumnFile compressed_;
  storage::ScanStats open_stats_;
  // Resident decode of an SMCOLV2 file (owned by the reader; batches
  // borrow it just like the SMCOLV1 mapping).
  std::vector<int64_t> decoded_ids_;
  std::vector<double> decoded_consumption_;
  std::vector<double> decoded_temperature_;
};

/// Heap-file + B+-tree path (MADLib's row table): Open() runs the
/// whole-table GROUP BY scan through the buffer pool.
class RowStoreReader : public TableReader {
 public:
  /// Borrows `store`, which must be load-finished and outlive the reader.
  explicit RowStoreReader(const storage::RowStore* store);

  Status Open() override;
  Result<ColumnarBatch> NewBatch() const override;
  std::string_view format_name() const override { return "row-store"; }

 private:
  const storage::RowStore* store_;
  MeterDataset dataset_;
  bool open_ = false;
};

/// Serialized array-row path (MADLib's array table): Open() deserializes
/// every household row sequentially.
class ArrayStoreReader : public TableReader {
 public:
  /// Borrows `store`, which must be loaded and outlive the reader.
  explicit ArrayStoreReader(const storage::ArrayStore* store);

  Status Open() override;
  Result<ColumnarBatch> NewBatch() const override;
  std::string_view format_name() const override { return "array-store"; }

 private:
  const storage::ArrayStore* store_;
  MeterDataset dataset_;
  bool open_ = false;
};

/// Simulated-HDFS path: Open() reads every input split with
/// TextInputFormat semantics and assembles the rows, exactly what a
/// full MapReduce scan of the block store observes.
class BlockStoreReader : public TableReader {
 public:
  /// Borrows `store`, which must outlive the reader. `splittable`
  /// selects block-aligned splits vs. whole-file splits (format 3).
  BlockStoreReader(const cluster::BlockStore* store, bool splittable);

  Status Open() override;
  Result<ColumnarBatch> NewBatch() const override;
  std::string_view format_name() const override { return "block-store"; }

 private:
  const cluster::BlockStore* store_;
  bool splittable_;
  MeterDataset dataset_;
  bool open_ = false;
};

/// Borrowed in-memory dataset (warm engine state, tests).
class DatasetReader : public TableReader {
 public:
  /// Borrows `dataset`, which must outlive the reader.
  explicit DatasetReader(const MeterDataset* dataset);

  Status Open() override;
  Result<ColumnarBatch> NewBatch() const override;
  std::string_view format_name() const override { return "dataset"; }

 private:
  const MeterDataset* dataset_;
};

/// Parses `source` into a dataset using the layout-appropriate CSV
/// reader. Shared by CsvTableReader and the columnar cache's miss path.
Result<MeterDataset> ReadDatasetFromSource(const DataSource& source);

/// The generic reader for a text source (a CsvTableReader). Engines with
/// a native store construct their specific reader directly instead.
Result<std::unique_ptr<TableReader>> MakeReader(const DataSource& source);

}  // namespace smartmeter::table

#endif  // SMARTMETER_TABLE_TABLE_READER_H_
