#ifndef SMARTMETER_TABLE_TABLE_READER_H_
#define SMARTMETER_TABLE_TABLE_READER_H_

#include <memory>
#include <string>
#include <string_view>

#include "cluster/block_store.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/column_store.h"
#include "storage/row_store.h"
#include "table/columnar_batch.h"
#include "table/data_source.h"
#include "timeseries/dataset.h"

namespace smartmeter::table {

/// One interface every storage backend implements so the engines and the
/// kernels see a single shape of data: Open() does the format-specific
/// work (parse, scan, or mmap) once, then NewBatch() hands out zero-copy
/// ColumnarBatch views into the reader's storage for as long as the
/// reader lives.
///
/// Readers are not thread-safe during Open(); batches taken after Open()
/// are immutable views and may be scanned from many threads.
class TableReader {
 public:
  virtual ~TableReader() = default;

  TableReader(const TableReader&) = delete;
  TableReader& operator=(const TableReader&) = delete;

  /// Loads / maps the underlying storage. Must be called (and succeed)
  /// before NewBatch(). Calling Open() twice re-reads the source.
  virtual Status Open() = 0;

  /// A zero-copy view over everything Open() loaded. Valid until the
  /// reader is destroyed or re-opened.
  virtual Result<ColumnarBatch> NewBatch() const = 0;

  /// Short stable label for reports ("csv", "column-file", ...).
  virtual std::string_view format_name() const = 0;

 protected:
  TableReader() = default;
};

/// Text path: parses any DataSource layout into an in-memory dataset.
/// This is the cold path every cache miss pays once.
class CsvTableReader : public TableReader {
 public:
  explicit CsvTableReader(DataSource source);

  Status Open() override;
  Result<ColumnarBatch> NewBatch() const override;
  std::string_view format_name() const override { return "csv"; }

  const MeterDataset& dataset() const { return dataset_; }

 private:
  DataSource source_;
  MeterDataset dataset_;
  bool open_ = false;
};

/// mmap path over the SMCOLV1 binary columnar format (System C's native
/// store and the columnar cache's file format). Open() is an mmap — no
/// parsing — and batches are pure pointer arithmetic into the mapping.
class ColumnFileReader : public TableReader {
 public:
  explicit ColumnFileReader(std::string path);

  Status Open() override;
  Result<ColumnarBatch> NewBatch() const override;
  std::string_view format_name() const override { return "column-file"; }

  const storage::ColumnStore& store() const { return store_; }

 private:
  std::string path_;
  storage::ColumnStore store_;
};

/// Heap-file + B+-tree path (MADLib's row table): Open() runs the
/// whole-table GROUP BY scan through the buffer pool.
class RowStoreReader : public TableReader {
 public:
  /// Borrows `store`, which must be load-finished and outlive the reader.
  explicit RowStoreReader(const storage::RowStore* store);

  Status Open() override;
  Result<ColumnarBatch> NewBatch() const override;
  std::string_view format_name() const override { return "row-store"; }

 private:
  const storage::RowStore* store_;
  MeterDataset dataset_;
  bool open_ = false;
};

/// Serialized array-row path (MADLib's array table): Open() deserializes
/// every household row sequentially.
class ArrayStoreReader : public TableReader {
 public:
  /// Borrows `store`, which must be loaded and outlive the reader.
  explicit ArrayStoreReader(const storage::ArrayStore* store);

  Status Open() override;
  Result<ColumnarBatch> NewBatch() const override;
  std::string_view format_name() const override { return "array-store"; }

 private:
  const storage::ArrayStore* store_;
  MeterDataset dataset_;
  bool open_ = false;
};

/// Simulated-HDFS path: Open() reads every input split with
/// TextInputFormat semantics and assembles the rows, exactly what a
/// full MapReduce scan of the block store observes.
class BlockStoreReader : public TableReader {
 public:
  /// Borrows `store`, which must outlive the reader. `splittable`
  /// selects block-aligned splits vs. whole-file splits (format 3).
  BlockStoreReader(const cluster::BlockStore* store, bool splittable);

  Status Open() override;
  Result<ColumnarBatch> NewBatch() const override;
  std::string_view format_name() const override { return "block-store"; }

 private:
  const cluster::BlockStore* store_;
  bool splittable_;
  MeterDataset dataset_;
  bool open_ = false;
};

/// Borrowed in-memory dataset (warm engine state, tests).
class DatasetReader : public TableReader {
 public:
  /// Borrows `dataset`, which must outlive the reader.
  explicit DatasetReader(const MeterDataset* dataset);

  Status Open() override;
  Result<ColumnarBatch> NewBatch() const override;
  std::string_view format_name() const override { return "dataset"; }

 private:
  const MeterDataset* dataset_;
};

/// Parses `source` into a dataset using the layout-appropriate CSV
/// reader. Shared by CsvTableReader and the columnar cache's miss path.
Result<MeterDataset> ReadDatasetFromSource(const DataSource& source);

/// The generic reader for a text source (a CsvTableReader). Engines with
/// a native store construct their specific reader directly instead.
Result<std::unique_ptr<TableReader>> MakeReader(const DataSource& source);

}  // namespace smartmeter::table

#endif  // SMARTMETER_TABLE_TABLE_READER_H_
