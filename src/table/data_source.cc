#include "table/data_source.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/string_util.h"

namespace smartmeter::table {
namespace fs = std::filesystem;

namespace {

Status RequireRegularFile(const std::string& path) {
  std::error_code ec;
  if (!fs::is_regular_file(path, ec)) {
    return Status::IOError(StringPrintf(
        "data source file missing or not a regular file: %s", path.c_str()));
  }
  return Status::OK();
}

}  // namespace

Status DataSource::Validate() const {
  const std::string layout_name(DataSourceLayoutName(layout));
  if (files.empty()) {
    return Status::InvalidArgument(
        StringPrintf("empty %s data source", layout_name.c_str()));
  }
  switch (layout) {
    case Layout::kSingleCsv:
    case Layout::kHouseholdLines:
    case Layout::kColumnFile:
      if (files.size() != 1) {
        return Status::InvalidArgument(StringPrintf(
            "%s source expects exactly one file, got %zu",
            layout_name.c_str(), files.size()));
      }
      break;
    case Layout::kPartitionedDir: {
      // System C derives the partition directory from the first file, so
      // every partition must live under the same parent.
      const fs::path parent = fs::path(files.front()).parent_path();
      for (const std::string& file : files) {
        if (fs::path(file).parent_path() != parent) {
          return Status::InvalidArgument(StringPrintf(
              "partitioned source files span multiple directories: %s vs %s",
              files.front().c_str(), file.c_str()));
        }
      }
      break;
    }
    case Layout::kWholeFileDir:
      break;
  }
  for (const std::string& file : files) {
    SM_RETURN_IF_ERROR(RequireRegularFile(file));
  }
  if (layout == Layout::kHouseholdLines) {
    const std::string sidecar = files.front() + ".temperature";
    std::error_code ec;
    if (!fs::is_regular_file(sidecar, ec)) {
      return Status::IOError(StringPrintf(
          "household-lines source is missing its temperature sidecar: %s",
          sidecar.c_str()));
    }
  }
  return Status::OK();
}

Result<DataSource> DataSource::SingleCsv(std::string path) {
  DataSource source;
  source.layout = Layout::kSingleCsv;
  source.files.push_back(std::move(path));
  SM_RETURN_IF_ERROR(source.Validate());
  return source;
}

Result<DataSource> DataSource::PartitionedDir(std::vector<std::string> files) {
  DataSource source;
  source.layout = Layout::kPartitionedDir;
  source.files = std::move(files);
  SM_RETURN_IF_ERROR(source.Validate());
  return source;
}

Result<DataSource> DataSource::PartitionedDir(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::IOError(StringPrintf("not a directory: %s", dir.c_str()));
  }
  std::vector<std::string> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) files.push_back(entry.path().string());
  }
  if (ec) {
    return Status::IOError(StringPrintf("cannot list directory %s: %s",
                                        dir.c_str(), ec.message().c_str()));
  }
  std::sort(files.begin(), files.end());
  return PartitionedDir(std::move(files));
}

Result<DataSource> DataSource::HouseholdLines(std::string path) {
  DataSource source;
  source.layout = Layout::kHouseholdLines;
  source.files.push_back(std::move(path));
  SM_RETURN_IF_ERROR(source.Validate());
  return source;
}

Result<DataSource> DataSource::WholeFileDir(std::vector<std::string> files) {
  DataSource source;
  source.layout = Layout::kWholeFileDir;
  source.files = std::move(files);
  SM_RETURN_IF_ERROR(source.Validate());
  return source;
}

Result<DataSource> DataSource::ColumnFile(std::string path) {
  DataSource source;
  source.layout = Layout::kColumnFile;
  source.files.push_back(std::move(path));
  SM_RETURN_IF_ERROR(source.Validate());
  return source;
}

std::string_view DataSourceLayoutName(DataSource::Layout layout) {
  switch (layout) {
    case DataSource::Layout::kSingleCsv:
      return "single-csv";
    case DataSource::Layout::kPartitionedDir:
      return "partitioned-dir";
    case DataSource::Layout::kHouseholdLines:
      return "household-lines";
    case DataSource::Layout::kWholeFileDir:
      return "whole-file-dir";
    case DataSource::Layout::kColumnFile:
      return "column-file";
  }
  return "unknown";
}

}  // namespace smartmeter::table
