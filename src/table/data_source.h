#ifndef SMARTMETER_TABLE_DATA_SOURCE_H_
#define SMARTMETER_TABLE_DATA_SOURCE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace smartmeter::table {

/// Where a table's input data lives on disk.
///
/// Prefer the validated named constructors (SingleCsv, PartitionedDir,
/// HouseholdLines, WholeFileDir): they check each layout's invariants —
/// file existence, file-count rules, the temperature sidecar, a common
/// parent directory — once at construction, so neither the engines nor
/// the serving layer discover a malformed source halfway into Attach.
struct DataSource {
  enum class Layout {
    kSingleCsv,        // One reading-per-line CSV file.
    kPartitionedDir,   // One CSV file per household (single-server "part.").
    kHouseholdLines,   // One household per line + temperature sidecar.
    kWholeFileDir,     // Many reading-per-line files, households not split.
    kColumnFile,       // One binary SMCOLV1/SMCOLV2 column file.
  };
  Layout layout = Layout::kSingleCsv;
  /// The file (kSingleCsv / kHouseholdLines) or every file of the
  /// directory layouts.
  std::vector<std::string> files;

  /// One reading-per-line CSV. Fails unless `path` is a regular file.
  static Result<DataSource> SingleCsv(std::string path);

  /// One CSV per household, all in the same directory (System C derives
  /// the partition directory from the first file). Fails on an empty
  /// list, a missing file, or files spread across directories.
  static Result<DataSource> PartitionedDir(std::vector<std::string> files);

  /// Directory form: uses every regular file inside `dir`, sorted.
  static Result<DataSource> PartitionedDir(const std::string& dir);

  /// One household per line. Fails unless both `path` and its
  /// "<path>.temperature" sidecar exist (the cluster engines broadcast
  /// the sidecar; checking here beats failing mid-job).
  static Result<DataSource> HouseholdLines(std::string path);

  /// Many reading-per-line files, households not aligned to files.
  static Result<DataSource> WholeFileDir(std::vector<std::string> files);

  /// One binary column file, SMCOLV1 or SMCOLV2 (readers sniff the
  /// magic). Fails unless `path` is a regular file.
  static Result<DataSource> ColumnFile(std::string path);

  /// Re-checks this source's invariants; the named constructors call it,
  /// and engines call it again in Attach so hand-aggregated sources get
  /// the same screening.
  Status Validate() const;
};

std::string_view DataSourceLayoutName(DataSource::Layout layout);

}  // namespace smartmeter::table

#endif  // SMARTMETER_TABLE_DATA_SOURCE_H_
