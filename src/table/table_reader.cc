#include "table/table_reader.h"

#include <utility>
#include <vector>

#include "common/string_util.h"
#include "storage/csv.h"

namespace smartmeter::table {

Result<MeterDataset> ReadDatasetFromSource(const DataSource& source) {
  SM_RETURN_IF_ERROR(source.Validate());
  switch (source.layout) {
    case DataSource::Layout::kSingleCsv:
      return storage::ReadReadingsCsv(source.files.front());
    case DataSource::Layout::kPartitionedDir:
    case DataSource::Layout::kWholeFileDir:
      return storage::ReadReadingsCsvFiles(source.files);
    case DataSource::Layout::kHouseholdLines:
      return storage::ReadHouseholdLinesCsv(source.files.front());
  }
  return Status::InvalidArgument("unknown data source layout");
}

// ---------------------------------------------------------------------------
// CsvTableReader
// ---------------------------------------------------------------------------

CsvTableReader::CsvTableReader(DataSource source)
    : source_(std::move(source)) {}

Status CsvTableReader::Open() {
  open_ = false;
  SM_ASSIGN_OR_RETURN(dataset_, ReadDatasetFromSource(source_));
  open_ = true;
  return Status::OK();
}

Result<ColumnarBatch> CsvTableReader::NewBatch() const {
  if (!open_) return Status::Internal("csv reader not open");
  return ColumnarBatch::FromDataset(dataset_);
}

// ---------------------------------------------------------------------------
// ColumnFileReader
// ---------------------------------------------------------------------------

ColumnFileReader::ColumnFileReader(std::string path)
    : path_(std::move(path)) {}

Status ColumnFileReader::Open() { return store_.OpenMapped(path_); }

Result<ColumnarBatch> ColumnFileReader::NewBatch() const {
  if (!store_.is_open()) {
    return Status::Internal("column file not open");
  }
  return ColumnarBatch::FromContiguous(store_.household_ids(),
                                       store_.consumption_column(),
                                       store_.temperature(), store_.hours());
}

// ---------------------------------------------------------------------------
// RowStoreReader
// ---------------------------------------------------------------------------

RowStoreReader::RowStoreReader(const storage::RowStore* store)
    : store_(store) {}

Status RowStoreReader::Open() {
  open_ = false;
  SM_ASSIGN_OR_RETURN(dataset_, store_->ScanAll());
  open_ = true;
  return Status::OK();
}

Result<ColumnarBatch> RowStoreReader::NewBatch() const {
  if (!open_) return Status::Internal("row store reader not open");
  return ColumnarBatch::FromDataset(dataset_);
}

// ---------------------------------------------------------------------------
// ArrayStoreReader
// ---------------------------------------------------------------------------

ArrayStoreReader::ArrayStoreReader(const storage::ArrayStore* store)
    : store_(store) {}

Status ArrayStoreReader::Open() {
  open_ = false;
  SM_ASSIGN_OR_RETURN(dataset_, store_->ReadAll());
  open_ = true;
  return Status::OK();
}

Result<ColumnarBatch> ArrayStoreReader::NewBatch() const {
  if (!open_) return Status::Internal("array store reader not open");
  return ColumnarBatch::FromDataset(dataset_);
}

// ---------------------------------------------------------------------------
// BlockStoreReader
// ---------------------------------------------------------------------------

BlockStoreReader::BlockStoreReader(const cluster::BlockStore* store,
                                   bool splittable)
    : store_(store), splittable_(splittable) {}

Status BlockStoreReader::Open() {
  open_ = false;
  const std::vector<cluster::InputSplit> splits =
      splittable_ ? store_->SplittableSplits() : store_->WholeFileSplits();
  std::vector<storage::ReadingRow> rows;
  for (const cluster::InputSplit& split : splits) {
    SM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        cluster::ReadSplitLines(split));
    rows.reserve(rows.size() + lines.size());
    for (const std::string& line : lines) {
      SM_ASSIGN_OR_RETURN(storage::ReadingRow row,
                          storage::ParseReadingRow(line));
      rows.push_back(row);
    }
  }
  SM_ASSIGN_OR_RETURN(dataset_, storage::AssembleReadingRows(rows));
  open_ = true;
  return Status::OK();
}

Result<ColumnarBatch> BlockStoreReader::NewBatch() const {
  if (!open_) return Status::Internal("block store reader not open");
  return ColumnarBatch::FromDataset(dataset_);
}

// ---------------------------------------------------------------------------
// DatasetReader
// ---------------------------------------------------------------------------

DatasetReader::DatasetReader(const MeterDataset* dataset)
    : dataset_(dataset) {}

Status DatasetReader::Open() { return dataset_->Validate(); }

Result<ColumnarBatch> DatasetReader::NewBatch() const {
  return ColumnarBatch::FromDataset(*dataset_);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TableReader>> MakeReader(const DataSource& source) {
  SM_RETURN_IF_ERROR(source.Validate());
  return std::unique_ptr<TableReader>(new CsvTableReader(source));
}

}  // namespace smartmeter::table
