#include "table/table_reader.h"

#include <utility>
#include <vector>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "storage/csv.h"

namespace smartmeter::table {

Result<MeterDataset> ReadDatasetFromSource(const DataSource& source) {
  SM_RETURN_IF_ERROR(source.Validate());
  switch (source.layout) {
    case DataSource::Layout::kSingleCsv:
      return storage::ReadReadingsCsv(source.files.front());
    case DataSource::Layout::kPartitionedDir:
    case DataSource::Layout::kWholeFileDir:
      return storage::ReadReadingsCsvFiles(source.files);
    case DataSource::Layout::kHouseholdLines:
      return storage::ReadHouseholdLinesCsv(source.files.front());
    case DataSource::Layout::kColumnFile: {
      ColumnFileReader reader(source.files.front());
      SM_RETURN_IF_ERROR(reader.Open());
      SM_ASSIGN_OR_RETURN(ColumnarBatch batch, reader.NewBatch());
      MeterDataset dataset;
      dataset.SetTemperature(std::vector<double>(batch.temperature().begin(),
                                                 batch.temperature().end()));
      for (size_t i = 0; i < batch.count(); ++i) {
        const SeriesSlice series = batch.consumption(i);
        dataset.AddConsumer({batch.household_id(i),
                             std::vector<double>(series.begin(),
                                                 series.end())});
      }
      return dataset;
    }
  }
  return Status::InvalidArgument("unknown data source layout");
}

Result<ScopedBatch> TableReader::NewScopedBatch(
    const storage::ScanScope& scope) const {
  if (!scope.whole_hours()) {
    return Status::NotSupported(
        "hour-window scans need a block-indexed column file");
  }
  SM_ASSIGN_OR_RETURN(ColumnarBatch batch, NewBatch());
  ScopedBatch scoped;
  const size_t begin = scope.RowBegin(batch.count());
  const size_t end = scope.RowEnd(batch.count());
  SM_ASSIGN_OR_RETURN(scoped.batch, batch.Slice(begin, end - begin));
  return scoped;
}

// ---------------------------------------------------------------------------
// CsvTableReader
// ---------------------------------------------------------------------------

CsvTableReader::CsvTableReader(DataSource source)
    : source_(std::move(source)) {}

Status CsvTableReader::Open() {
  open_ = false;
  SM_ASSIGN_OR_RETURN(dataset_, ReadDatasetFromSource(source_));
  open_ = true;
  return Status::OK();
}

Result<ColumnarBatch> CsvTableReader::NewBatch() const {
  if (!open_) return Status::Internal("csv reader not open");
  return ColumnarBatch::FromDataset(dataset_);
}

// ---------------------------------------------------------------------------
// ColumnFileReader
// ---------------------------------------------------------------------------

namespace {

// Heap-owned decode of the blocks a scope touched; a ScopedBatch's
// `owner` keeps one alive for as long as its span views are used.
struct DecodedTable {
  std::vector<int64_t> ids;
  std::vector<double> consumption;
  std::vector<double> temperature;
};

void BumpScanCounters(const storage::ScanStats& stats) {
  static obs::Counter* decoded =
      obs::MetricsRegistry::Global().GetCounter("table.scan.blocks_decoded");
  static obs::Counter* pruned =
      obs::MetricsRegistry::Global().GetCounter("table.scan.blocks_pruned");
  decoded->Add(static_cast<int64_t>(stats.blocks_decoded));
  pruned->Add(static_cast<int64_t>(stats.blocks_pruned));
}

}  // namespace

ColumnFileReader::ColumnFileReader(std::string path)
    : path_(std::move(path)) {}

Status ColumnFileReader::Open() {
  format_version_ = 0;
  open_stats_ = {};
  decoded_ids_.clear();
  decoded_consumption_.clear();
  decoded_temperature_.clear();
  SM_ASSIGN_OR_RETURN(const int version,
                      storage::SniffColumnFileFormat(path_));
  if (version == 1) {
    SM_RETURN_IF_ERROR(store_.OpenMapped(path_));
  } else {
    SM_RETURN_IF_ERROR(compressed_.Open(path_));
    SM_RETURN_IF_ERROR(compressed_.DecodeAll(&decoded_ids_,
                                             &decoded_consumption_,
                                             &decoded_temperature_,
                                             &open_stats_));
  }
  format_version_ = version;
  return Status::OK();
}

Result<ColumnarBatch> ColumnFileReader::NewBatch() const {
  if (format_version_ == 1) {
    return ColumnarBatch::FromContiguous(store_.household_ids(),
                                         store_.consumption_column(),
                                         store_.temperature(), store_.hours());
  }
  if (format_version_ == 2) {
    return ColumnarBatch::FromContiguous(
        decoded_ids_, decoded_consumption_, decoded_temperature_,
        compressed_.hours());
  }
  return Status::Internal("column file not open");
}

Result<ScopedBatch> ColumnFileReader::NewScopedBatch(
    const storage::ScanScope& scope) const {
  if (format_version_ != 2) {
    // SMCOLV1 has no block index; slice the mapped column by rows.
    return TableReader::NewScopedBatch(scope);
  }
  if (scope.whole()) {
    // The whole-file decode already happened at Open(); report its cost
    // (every block decoded, nothing pruned) without decoding again.
    ScopedBatch scoped;
    SM_ASSIGN_OR_RETURN(scoped.batch, NewBatch());
    scoped.stats = open_stats_;
    BumpScanCounters(scoped.stats);
    return scoped;
  }
  auto decoded = std::make_shared<DecodedTable>();
  storage::ScanStats stats;
  SM_RETURN_IF_ERROR(compressed_.DecodeScoped(scope, &decoded->ids,
                                              &decoded->consumption,
                                              &decoded->temperature, &stats));
  const size_t hours = compressed_.hours();
  const size_t window =
      scope.HourEnd(hours) - scope.HourBegin(hours);
  ScopedBatch scoped;
  SM_ASSIGN_OR_RETURN(
      scoped.batch,
      ColumnarBatch::FromContiguous(decoded->ids, decoded->consumption,
                                    decoded->temperature, window));
  scoped.owner = std::move(decoded);
  scoped.stats = stats;
  BumpScanCounters(scoped.stats);
  return scoped;
}

// ---------------------------------------------------------------------------
// RowStoreReader
// ---------------------------------------------------------------------------

RowStoreReader::RowStoreReader(const storage::RowStore* store)
    : store_(store) {}

Status RowStoreReader::Open() {
  open_ = false;
  SM_ASSIGN_OR_RETURN(dataset_, store_->ScanAll());
  open_ = true;
  return Status::OK();
}

Result<ColumnarBatch> RowStoreReader::NewBatch() const {
  if (!open_) return Status::Internal("row store reader not open");
  return ColumnarBatch::FromDataset(dataset_);
}

// ---------------------------------------------------------------------------
// ArrayStoreReader
// ---------------------------------------------------------------------------

ArrayStoreReader::ArrayStoreReader(const storage::ArrayStore* store)
    : store_(store) {}

Status ArrayStoreReader::Open() {
  open_ = false;
  SM_ASSIGN_OR_RETURN(dataset_, store_->ReadAll());
  open_ = true;
  return Status::OK();
}

Result<ColumnarBatch> ArrayStoreReader::NewBatch() const {
  if (!open_) return Status::Internal("array store reader not open");
  return ColumnarBatch::FromDataset(dataset_);
}

// ---------------------------------------------------------------------------
// BlockStoreReader
// ---------------------------------------------------------------------------

BlockStoreReader::BlockStoreReader(const cluster::BlockStore* store,
                                   bool splittable)
    : store_(store), splittable_(splittable) {}

Status BlockStoreReader::Open() {
  open_ = false;
  const std::vector<cluster::InputSplit> splits =
      splittable_ ? store_->SplittableSplits() : store_->WholeFileSplits();
  std::vector<storage::ReadingRow> rows;
  for (const cluster::InputSplit& split : splits) {
    SM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        cluster::ReadSplitLines(split));
    rows.reserve(rows.size() + lines.size());
    for (const std::string& line : lines) {
      SM_ASSIGN_OR_RETURN(storage::ReadingRow row,
                          storage::ParseReadingRow(line));
      rows.push_back(row);
    }
  }
  SM_ASSIGN_OR_RETURN(dataset_, storage::AssembleReadingRows(rows));
  open_ = true;
  return Status::OK();
}

Result<ColumnarBatch> BlockStoreReader::NewBatch() const {
  if (!open_) return Status::Internal("block store reader not open");
  return ColumnarBatch::FromDataset(dataset_);
}

// ---------------------------------------------------------------------------
// DatasetReader
// ---------------------------------------------------------------------------

DatasetReader::DatasetReader(const MeterDataset* dataset)
    : dataset_(dataset) {}

Status DatasetReader::Open() { return dataset_->Validate(); }

Result<ColumnarBatch> DatasetReader::NewBatch() const {
  return ColumnarBatch::FromDataset(*dataset_);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TableReader>> MakeReader(const DataSource& source) {
  SM_RETURN_IF_ERROR(source.Validate());
  if (source.layout == DataSource::Layout::kColumnFile) {
    return std::unique_ptr<TableReader>(
        new ColumnFileReader(source.files.front()));
  }
  return std::unique_ptr<TableReader>(new CsvTableReader(source));
}

}  // namespace smartmeter::table
