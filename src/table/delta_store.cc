#include "table/delta_store.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace smartmeter::table {

namespace {

obs::Counter* AppendCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("table.delta.appends");
  return counter;
}

obs::Counter* SnapshotCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("table.delta.snapshots");
  return counter;
}

obs::LatencyHistogram* FreshnessHistogram() {
  static obs::LatencyHistogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("ingest.freshness_seconds");
  return histogram;
}

}  // namespace

DeltaStore::DeltaStore(Options options) : options_(options) {
  consumption_ = std::make_shared<std::vector<double>>();
  temperature_ = std::make_shared<std::vector<double>>();
}

Status DeltaStore::AttachBase(const ColumnarBatch& base) {
  SM_RETURN_IF_ERROR(base.Validate());
  std::lock_guard<std::mutex> lock(mu_);
  if (base_attached_ || version_ != 0 || !ids_.empty()) {
    return Status::InvalidArgument(
        "delta store: base must attach before any rows exist");
  }
  base_attached_ = true;
  base_hours_ = base.hours();
  published_hours_ = base_hours_;
  max_hour_ = static_cast<int64_t>(base_hours_) - 1;
  capacity_hours_ = base_hours_ + options_.hour_capacity_headroom;

  const size_t rows = base.count();
  ids_.reserve(rows);
  row_index_.reserve(rows);
  auto consumption =
      std::make_shared<std::vector<double>>(rows * capacity_hours_, 0.0);
  auto temperature =
      std::make_shared<std::vector<double>>(capacity_hours_, 0.0);
  written_.assign(rows * capacity_hours_, 0);
  temp_written_.assign(capacity_hours_, 0);
  for (size_t r = 0; r < rows; ++r) {
    const int64_t id = base.household_id(r);
    if (!row_index_.emplace(id, r).second) {
      ids_.clear();
      row_index_.clear();
      base_attached_ = false;
      return Status::InvalidArgument(StringPrintf(
          "delta store: duplicate household %lld in base", (long long)id));
    }
    ids_.push_back(id);
    const SeriesSlice series = base.consumption(r);
    std::copy(
        series.begin(), series.end(),
        consumption->begin() + static_cast<ptrdiff_t>(r * capacity_hours_));
  }
  const SeriesSlice temp = base.temperature();
  std::copy(temp.begin(), temp.end(), temperature->begin());
  std::fill(written_.begin(), written_.end(), 0);
  for (size_t r = 0; r < rows; ++r) {
    std::fill_n(written_.begin() + static_cast<ptrdiff_t>(r * capacity_hours_),
                base_hours_, uint8_t{1});
  }
  std::fill_n(temp_written_.begin(), base_hours_, uint8_t{1});
  consumption_ = std::move(consumption);
  temperature_ = std::move(temperature);
  return Status::OK();
}

size_t DeltaStore::PublishableHoursLocked() const {
  const int64_t newest = max_hour_ + 1;
  const int64_t lagged =
      newest - static_cast<int64_t>(options_.publish_lag_hours);
  const int64_t floor = static_cast<int64_t>(base_hours_);
  const int64_t extent =
      std::max({lagged, floor, static_cast<int64_t>(published_hours_)});
  return static_cast<size_t>(extent);
}

void DeltaStore::EnsureCapacityLocked(size_t rows, size_t hours) {
  const size_t old_rows = ids_.size();
  size_t new_capacity = capacity_hours_;
  if (hours > new_capacity) {
    new_capacity = std::max(hours, std::max<size_t>(new_capacity * 2, 64));
  }
  const bool regrid = new_capacity != capacity_hours_;
  const bool add_rows = rows > old_rows;
  if (!regrid && !add_rows) return;

  // Readers may share the current buffers; replace, never resize in
  // place, so published snapshots keep viewing stable memory. When
  // nothing shares them (use_count == 1 under the lock) the swap is
  // just this store trading one allocation for another.
  auto consumption =
      std::make_shared<std::vector<double>>(rows * new_capacity, 0.0);
  auto temperature = std::make_shared<std::vector<double>>(new_capacity, 0.0);
  std::vector<uint8_t> written(rows * new_capacity, 0);
  for (size_t r = 0; r < old_rows; ++r) {
    std::copy_n(
        consumption_->begin() + static_cast<ptrdiff_t>(r * capacity_hours_),
        capacity_hours_,
        consumption->begin() + static_cast<ptrdiff_t>(r * new_capacity));
    std::copy_n(written_.begin() + static_cast<ptrdiff_t>(r * capacity_hours_),
                capacity_hours_,
                written.begin() + static_cast<ptrdiff_t>(r * new_capacity));
  }
  std::copy(temperature_->begin(), temperature_->end(), temperature->begin());
  temp_written_.resize(new_capacity, 0);
  consumption_ = std::move(consumption);
  temperature_ = std::move(temperature);
  written_ = std::move(written);
  capacity_hours_ = new_capacity;
}

Status DeltaStore::Append(int64_t household_id, int64_t hour,
                          double consumption, double temperature) {
  if (hour < 0) {
    return Status::InvalidArgument(
        StringPrintf("delta store: negative hour %lld", (long long)hour));
  }
  std::lock_guard<std::mutex> lock(mu_);
  const size_t h = static_cast<size_t>(hour);
  if (h < published_hours_) {
    return Status::OutOfRange(StringPrintf(
        "delta store: late reading at hour %lld below published extent %zu",
        (long long)hour, published_hours_));
  }

  size_t row;
  const auto it = row_index_.find(household_id);
  if (it != row_index_.end()) {
    row = it->second;
    EnsureCapacityLocked(ids_.size(), h + 1);
  } else {
    row = ids_.size();
    EnsureCapacityLocked(ids_.size() + 1, h + 1);
    ids_.push_back(household_id);
    row_index_.emplace(household_id, row);
  }

  uint8_t& written = written_[row * capacity_hours_ + h];
  if (written != 0) {
    return Status::AlreadyExists(StringPrintf(
        "delta store: duplicate reading for household %lld hour %lld",
        (long long)household_id, (long long)hour));
  }
  written = 1;
  (*consumption_)[row * capacity_hours_ + h] = consumption;
  if (temp_written_[h] == 0) {
    temp_written_[h] = 1;
    (*temperature_)[h] = temperature;
  }
  max_hour_ = std::max(max_hour_, hour);
  ++version_;
  pending_freshness_.push_back(
      PendingFreshness{std::chrono::steady_clock::now(), hour});
  AppendCounter()->Increment();
  return Status::OK();
}

std::shared_ptr<const DeltaSnapshot> DeltaStore::Snapshot(
    std::vector<double>* freshness_seconds) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  published_hours_ = PublishableHoursLocked();

  // Readings whose hour just became queryable settle their freshness
  // lag; later hours stay pending for a future publication.
  size_t kept = 0;
  for (const PendingFreshness& pending : pending_freshness_) {
    if (pending.hour < static_cast<int64_t>(published_hours_)) {
      const double lag =
          std::chrono::duration<double>(now - pending.appended_at).count();
      FreshnessHistogram()->Record(lag);
      if (freshness_seconds != nullptr) freshness_seconds->push_back(lag);
    } else {
      pending_freshness_[kept++] = pending;
    }
  }
  pending_freshness_.resize(kept);

  auto snapshot = std::make_shared<DeltaSnapshot>();
  snapshot->consumption = consumption_;
  snapshot->temperature = temperature_;
  snapshot->ids = ids_;
  snapshot->rows = ids_.size();
  snapshot->base_hours = base_hours_;
  snapshot->hours = published_hours_;
  snapshot->stride = capacity_hours_;
  snapshot->version = version_;
  SnapshotCounter()->Increment();
  return snapshot;
}

size_t DeltaStore::rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ids_.size();
}

size_t DeltaStore::base_hours() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_hours_;
}

size_t DeltaStore::published_hours() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_hours_;
}

int64_t DeltaStore::max_hour() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_hour_;
}

uint64_t DeltaStore::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

DeltaTableReader::DeltaTableReader(DeltaStore* store) : store_(store) {}

Status DeltaTableReader::Open() {
  snapshot_ = store_->Snapshot();
  return Status::OK();
}

Result<ColumnarBatch> DeltaTableReader::NewBatch() const {
  if (snapshot_ == nullptr) {
    return Status::Internal("delta reader not open");
  }
  std::vector<int64_t> ids = snapshot_->ids;
  std::vector<SeriesSlice> series;
  series.reserve(snapshot_->rows);
  for (size_t r = 0; r < snapshot_->rows; ++r) {
    series.push_back(snapshot_->Series(r));
  }
  return ColumnarBatch::FromSlices(std::move(ids), std::move(series),
                                   snapshot_->Temperatures());
}

Result<ScopedBatch> DeltaTableReader::NewScopedBatch(
    const storage::ScanScope& scope) const {
  if (snapshot_ == nullptr) {
    return Status::Internal("delta reader not open");
  }
  const size_t row_begin = scope.RowBegin(snapshot_->rows);
  const size_t row_end = scope.RowEnd(snapshot_->rows);
  const size_t hour_begin = scope.HourBegin(snapshot_->hours);
  const size_t hour_end = scope.HourEnd(snapshot_->hours);
  const size_t hours = hour_end - hour_begin;

  std::vector<int64_t> ids(
      snapshot_->ids.begin() + static_cast<ptrdiff_t>(row_begin),
      snapshot_->ids.begin() + static_cast<ptrdiff_t>(row_end));
  std::vector<SeriesSlice> series;
  series.reserve(row_end - row_begin);
  for (size_t r = row_begin; r < row_end; ++r) {
    series.push_back(snapshot_->Series(r).subspan(hour_begin, hours));
  }
  SeriesSlice temperature =
      snapshot_->Temperatures().subspan(hour_begin, hours);

  SM_ASSIGN_OR_RETURN(
      ColumnarBatch batch,
      ColumnarBatch::FromSlices(std::move(ids), std::move(series),
                                temperature));
  ScopedBatch scoped;
  scoped.batch = std::move(batch);
  // Everything is a resident zero-copy view: no blocks exist to prune
  // and no bytes are decoded, so the stats stay zero by construction.
  scoped.owner = snapshot_;
  return scoped;
}

Result<MeterDataset> SnapshotToDataset(const DeltaSnapshot& snapshot) {
  MeterDataset dataset;
  for (size_t r = 0; r < snapshot.rows; ++r) {
    ConsumerSeries series;
    series.household_id = snapshot.ids[r];
    const std::span<const double> values = snapshot.Series(r);
    series.consumption.assign(values.begin(), values.end());
    dataset.AddConsumer(std::move(series));
  }
  const std::span<const double> temperature = snapshot.Temperatures();
  dataset.SetTemperature(
      std::vector<double>(temperature.begin(), temperature.end()));
  SM_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace smartmeter::table
