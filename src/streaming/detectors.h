#ifndef SMARTMETER_STREAMING_DETECTORS_H_
#define SMARTMETER_STREAMING_DETECTORS_H_

#include <memory>
#include <utility>
#include <optional>
#include <vector>

#include "core/task_types.h"
#include "streaming/stream_types.h"

namespace smartmeter::streaming {

/// Per-household online anomaly detector. Implementations keep O(1)
/// state per household and must be deterministic.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Consumes one reading; returns an alert if it is anomalous.
  virtual std::optional<Alert> Observe(const StreamReading& reading) = 0;

  /// Fresh state for another household of the same configuration.
  virtual std::unique_ptr<Detector> Clone() const = 0;
};

/// Flags readings outside mean +/- threshold * stddev of an
/// exponentially weighted moving estimate. The estimate is NOT updated
/// with flagged readings (otherwise one spike inflates the envelope).
class EwmaDetector : public Detector {
 public:
  struct Options {
    /// Smoothing factor per reading in (0, 1]; smaller = longer memory.
    double alpha = 0.05;
    /// Alert threshold in standard deviations.
    double threshold_sigma = 4.0;
    /// Readings consumed before alerts may fire.
    int warmup_readings = 48;
    /// Floor on the stddev estimate so near-constant series do not
    /// alert on noise.
    double min_sigma = 0.05;
  };

  EwmaDetector() : EwmaDetector(Options()) {}
  explicit EwmaDetector(const Options& options);

  std::optional<Alert> Observe(const StreamReading& reading) override;
  std::unique_ptr<Detector> Clone() const override;

  double mean() const { return mean_; }
  double sigma() const;

 private:
  Options options_;
  int seen_ = 0;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

/// Flags jumps: |x_t - x_{t-1}| > factor * recent absolute level.
class SpikeDetector : public Detector {
 public:
  struct Options {
    /// Jump size relative to the running level that triggers an alert.
    double jump_factor = 4.0;
    /// Minimum absolute jump in kWh (suppresses tiny-base noise).
    double min_jump = 0.5;
    int warmup_readings = 24;
    double level_alpha = 0.1;
  };

  SpikeDetector() : SpikeDetector(Options()) {}
  explicit SpikeDetector(const Options& options);

  std::optional<Alert> Observe(const StreamReading& reading) override;
  std::unique_ptr<Detector> Clone() const override;

 private:
  Options options_;
  int seen_ = 0;
  double level_ = 0.0;
  double previous_ = 0.0;
};

/// Flags meters that report the exact same value for many consecutive
/// hours -- the classic stuck-register failure.
class FlatlineDetector : public Detector {
 public:
  struct Options {
    int max_constant_hours = 24;
    /// Two readings closer than this count as "the same".
    double tolerance = 1e-9;
  };

  FlatlineDetector() : FlatlineDetector(Options()) {}
  explicit FlatlineDetector(const Options& options);

  std::optional<Alert> Observe(const StreamReading& reading) override;
  std::unique_ptr<Detector> Clone() const override;

 private:
  Options options_;
  bool has_previous_ = false;
  double previous_ = 0.0;
  int run_length_ = 0;
  bool alerted_this_run_ = false;
};

/// Model-based detector: expects consumption near the household's batch
/// daily profile plus its temperature response (the bridge between the
/// paper's batch benchmark and its real-time future work). The expected
/// value at hour h is profile[h % 24] + beta[h % 24] * temperature.
class ProfileDetector : public Detector {
 public:
  struct Options {
    /// Allowed deviation as a fraction of the expected value...
    double relative_tolerance = 1.0;
    /// ...but never tighter than this absolute band in kWh.
    double min_band = 0.5;
  };

  explicit ProfileDetector(core::DailyProfileResult profile)
      : ProfileDetector(std::move(profile), Options()) {}
  ProfileDetector(core::DailyProfileResult profile,
                  const Options& options);

  std::optional<Alert> Observe(const StreamReading& reading) override;
  std::unique_ptr<Detector> Clone() const override;

  double ExpectedAt(int hour_of_day, double temperature) const;

 private:
  core::DailyProfileResult profile_;
  Options options_;
};

}  // namespace smartmeter::streaming

#endif  // SMARTMETER_STREAMING_DETECTORS_H_
