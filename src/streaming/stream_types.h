#ifndef SMARTMETER_STREAMING_STREAM_TYPES_H_
#define SMARTMETER_STREAMING_STREAM_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace smartmeter::streaming {

/// One live meter reading as a stream element. `hour` is the global hour
/// index (same clock as the batch data sets); readings of different
/// households may interleave arbitrarily, but each household's stream is
/// in hour order.
struct StreamReading {
  int64_t household_id = 0;
  int64_t hour = 0;
  double consumption = 0.0;
  /// Outdoor temperature at that hour (city-wide feed).
  double temperature = 0.0;
};

enum class AlertKind {
  kSpike,       // Sudden jump relative to the recent level.
  kDeviation,   // Far from the learned statistical envelope.
  kOffProfile,  // Far from the expected value of the daily profile model.
  kFlatline,    // Suspiciously constant output (stuck or dead meter).
};

std::string_view AlertKindName(AlertKind kind);

/// An anomaly raised by a detector (Section 6 of the paper names
/// "alerts due to unusual consumption readings" as the real-time
/// application of interest).
struct Alert {
  int64_t household_id = 0;
  int64_t hour = 0;
  AlertKind kind = AlertKind::kDeviation;
  double observed = 0.0;
  /// What the detector expected at that hour.
  double expected = 0.0;
  /// Unitless severity; larger is more anomalous (e.g. sigmas).
  double score = 0.0;

  std::string ToString() const;
};

}  // namespace smartmeter::streaming

#endif  // SMARTMETER_STREAMING_STREAM_TYPES_H_
