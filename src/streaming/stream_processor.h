#ifndef SMARTMETER_STREAMING_STREAM_PROCESSOR_H_
#define SMARTMETER_STREAMING_STREAM_PROCESSOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "streaming/detectors.h"
#include "streaming/stream_types.h"
#include "table/delta_store.h"

namespace smartmeter::streaming {

/// Statistics over a tumbling window, emitted per household when the
/// window closes (e.g. hourly readings -> daily summaries).
struct WindowSummary {
  int64_t household_id = 0;
  int64_t window_start_hour = 0;
  int window_hours = 0;
  double total_kwh = 0.0;
  double peak_kwh = 0.0;
  /// Offset of the peak reading within the window. Ties break toward
  /// the EARLIEST hour: the first hour that reached the peak load is
  /// the actionable one for demand response, and the choice must not
  /// depend on arrival order when late readings are allowed.
  int peak_hour = 0;
};

/// Routes an interleaved stream of readings to per-household detector
/// state and tumbling windows -- the data-stream-processing design the
/// paper's Section 6 sketches. Single-threaded by design: one processor
/// is one partition of a keyed stream; scale out by hash-partitioning
/// households across processors.
///
/// Out-of-order handling is bounded-lateness per household: each
/// household carries a watermark `max_hour - late_allowance_hours`, and
/// a reading is accepted iff its hour is above the watermark and not a
/// duplicate of an hour already seen. Late readings are rejected with
/// OutOfRange (counted under `streaming.readings.late`), duplicates
/// with AlreadyExists; both leave all state untouched so the caller can
/// retry or drop cleanly. Windows therefore stay open for `allowance`
/// hours past their end before closing, which keeps summaries
/// arrival-order independent within the allowance.
class StreamProcessor {
 public:
  struct Options {
    /// Tumbling window length in hours; 0 disables window summaries.
    int window_hours = 24;
    /// Bounded lateness: a reading up to this many hours behind its
    /// household's newest hour is still accepted (0 = strict in-order).
    /// Capped at 63 -- duplicate detection keeps a 64-bit bitmask of
    /// the hours at and below each household's max_hour.
    int late_allowance_hours = 0;
    /// Optional delta-column sink: every accepted reading is appended
    /// to this store before any state mutates, making it queryable
    /// through DeltaTableReader / the serving layer. Borrowed, not
    /// owned; a store-side rejection (its global publish lag trails the
    /// per-household watermark) rejects the reading here too.
    table::DeltaStore* delta = nullptr;
  };

  using AlertSink = std::function<void(const Alert&)>;
  using WindowSink = std::function<void(const WindowSummary&)>;

  StreamProcessor() : StreamProcessor(Options()) {}
  explicit StreamProcessor(Options options);

  /// Detector prototypes; each new household gets a Clone() of every
  /// registered prototype. Must be called before the first reading.
  void AddDetectorPrototype(std::unique_ptr<Detector> prototype);

  /// Registers a household-specific detector (e.g. a ProfileDetector
  /// built from that household's batch model).
  void AddHouseholdDetector(int64_t household_id,
                            std::unique_ptr<Detector> detector);

  void SetAlertSink(AlertSink sink) { alert_sink_ = std::move(sink); }
  void SetWindowSink(WindowSink sink) { window_sink_ = std::move(sink); }

  /// Feeds one reading. Readings of one household may arrive up to
  /// `late_allowance_hours` out of hour order; anything older than the
  /// watermark is rejected with OutOfRange, repeats of an already-seen
  /// hour with AlreadyExists.
  Status Process(const StreamReading& reading);

  /// Flushes every household's open windows to the window sink, in
  /// ascending (household id, window start) order -- deterministic
  /// regardless of hash-map iteration order.
  void FlushWindows();

  int64_t readings_processed() const { return readings_processed_; }
  /// Readings rejected below the watermark (also counted under the
  /// `streaming.readings.late` metric).
  int64_t readings_late() const { return readings_late_; }
  int64_t alerts_raised() const { return alerts_raised_; }
  size_t households_seen() const { return households_.size(); }

 private:
  /// One open tumbling window's running aggregate.
  struct Window {
    double total = 0.0;
    double peak = 0.0;
    int peak_hour = 0;
    int count = 0;
  };

  struct HouseholdState {
    std::vector<std::unique_ptr<Detector>> detectors;
    /// Newest hour accepted; the watermark is max_hour - allowance.
    int64_t max_hour = -1;
    /// Bit k set = hour (max_hour - k) was accepted. Shifts left as
    /// max_hour advances; hours older than 63 fall off, which is safe
    /// because the allowance (<= 63) rejects them as late anyway.
    uint64_t recent_mask = 0;
    /// Open windows keyed by window start hour; bounded lateness means
    /// up to allowance/window_hours + 1 may be open at once.
    std::map<int64_t, Window> windows;
  };

  HouseholdState& StateFor(int64_t household_id);
  void EmitWindow(int64_t household_id, int64_t window_start,
                  const Window& window);
  /// Closes every window whose end has passed the household watermark.
  void CloseExpiredWindows(int64_t household_id, HouseholdState* state);

  Options options_;
  std::vector<std::unique_ptr<Detector>> prototypes_;
  std::unordered_map<int64_t, HouseholdState> households_;
  AlertSink alert_sink_;
  WindowSink window_sink_;
  int64_t readings_processed_ = 0;
  int64_t readings_late_ = 0;
  int64_t alerts_raised_ = 0;
};

}  // namespace smartmeter::streaming

#endif  // SMARTMETER_STREAMING_STREAM_PROCESSOR_H_
