#ifndef SMARTMETER_STREAMING_STREAM_PROCESSOR_H_
#define SMARTMETER_STREAMING_STREAM_PROCESSOR_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "streaming/detectors.h"
#include "streaming/stream_types.h"

namespace smartmeter::streaming {

/// Statistics over a tumbling window, emitted per household when the
/// window closes (e.g. hourly readings -> daily summaries).
struct WindowSummary {
  int64_t household_id = 0;
  int64_t window_start_hour = 0;
  int window_hours = 0;
  double total_kwh = 0.0;
  double peak_kwh = 0.0;
  int peak_hour = 0;
};

/// Routes an interleaved stream of readings to per-household detector
/// state and tumbling windows -- the data-stream-processing design the
/// paper's Section 6 sketches. Single-threaded by design: one processor
/// is one partition of a keyed stream; scale out by hash-partitioning
/// households across processors.
class StreamProcessor {
 public:
  struct Options {
    /// Tumbling window length in hours; 0 disables window summaries.
    int window_hours = 24;
  };

  using AlertSink = std::function<void(const Alert&)>;
  using WindowSink = std::function<void(const WindowSummary&)>;

  StreamProcessor() : StreamProcessor(Options()) {}
  explicit StreamProcessor(Options options);

  /// Detector prototypes; each new household gets a Clone() of every
  /// registered prototype. Must be called before the first reading.
  void AddDetectorPrototype(std::unique_ptr<Detector> prototype);

  /// Registers a household-specific detector (e.g. a ProfileDetector
  /// built from that household's batch model).
  void AddHouseholdDetector(int64_t household_id,
                            std::unique_ptr<Detector> detector);

  void SetAlertSink(AlertSink sink) { alert_sink_ = std::move(sink); }
  void SetWindowSink(WindowSink sink) { window_sink_ = std::move(sink); }

  /// Feeds one reading. Readings of one household must arrive in hour
  /// order; a regression in hour order is rejected.
  Status Process(const StreamReading& reading);

  /// Flushes every household's open window to the window sink.
  void FlushWindows();

  int64_t readings_processed() const { return readings_processed_; }
  int64_t alerts_raised() const { return alerts_raised_; }
  size_t households_seen() const { return households_.size(); }

 private:
  struct HouseholdState {
    std::vector<std::unique_ptr<Detector>> detectors;
    int64_t last_hour = -1;
    // Open tumbling window.
    int64_t window_start = -1;
    double window_total = 0.0;
    double window_peak = 0.0;
    int window_peak_hour = 0;
    int window_count = 0;
  };

  HouseholdState& StateFor(int64_t household_id);
  void CloseWindow(int64_t household_id, HouseholdState* state);

  Options options_;
  std::vector<std::unique_ptr<Detector>> prototypes_;
  std::unordered_map<int64_t, HouseholdState> households_;
  AlertSink alert_sink_;
  WindowSink window_sink_;
  int64_t readings_processed_ = 0;
  int64_t alerts_raised_ = 0;
};

}  // namespace smartmeter::streaming

#endif  // SMARTMETER_STREAMING_STREAM_PROCESSOR_H_
