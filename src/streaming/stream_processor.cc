#include "streaming/stream_processor.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace smartmeter::streaming {

namespace {

obs::Counter* IngestedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("streaming.readings.ingested");
  return counter;
}

obs::Counter* LateCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("streaming.readings.late");
  return counter;
}

constexpr int kMaxAllowance = 63;

}  // namespace

StreamProcessor::StreamProcessor(Options options)
    : options_(std::move(options)) {
  options_.late_allowance_hours =
      std::clamp(options_.late_allowance_hours, 0, kMaxAllowance);
}

void StreamProcessor::AddDetectorPrototype(
    std::unique_ptr<Detector> prototype) {
  prototypes_.push_back(std::move(prototype));
}

void StreamProcessor::AddHouseholdDetector(
    int64_t household_id, std::unique_ptr<Detector> detector) {
  StateFor(household_id).detectors.push_back(std::move(detector));
}

StreamProcessor::HouseholdState& StreamProcessor::StateFor(
    int64_t household_id) {
  auto it = households_.find(household_id);
  if (it != households_.end()) return it->second;
  HouseholdState state;
  state.detectors.reserve(prototypes_.size());
  for (const auto& prototype : prototypes_) {
    state.detectors.push_back(prototype->Clone());
  }
  return households_.emplace(household_id, std::move(state))
      .first->second;
}

Status StreamProcessor::Process(const StreamReading& reading) {
  if (reading.hour < 0) {
    return Status::InvalidArgument(StringPrintf(
        "household %lld: negative hour %lld",
        static_cast<long long>(reading.household_id),
        static_cast<long long>(reading.hour)));
  }
  HouseholdState& state = StateFor(reading.household_id);
  const int allowance = options_.late_allowance_hours;
  if (state.max_hour >= 0 && reading.hour <= state.max_hour) {
    const int64_t behind = state.max_hour - reading.hour;
    if (behind > allowance) {
      ++readings_late_;
      LateCounter()->Increment();
      return Status::OutOfRange(StringPrintf(
          "household %lld: reading for hour %lld below watermark %lld",
          static_cast<long long>(reading.household_id),
          static_cast<long long>(reading.hour),
          static_cast<long long>(state.max_hour - allowance)));
    }
    if ((state.recent_mask >> behind) & 1ULL) {
      return Status::AlreadyExists(StringPrintf(
          "household %lld: duplicate reading for hour %lld",
          static_cast<long long>(reading.household_id),
          static_cast<long long>(reading.hour)));
    }
  }

  // The delta sink appends before any processor state mutates, so a
  // store-side rejection (e.g. its global publish lag already passed
  // this hour) leaves watermark, bitmask, and windows untouched.
  if (options_.delta != nullptr) {
    SM_RETURN_IF_ERROR(options_.delta->Append(
        reading.household_id, reading.hour, reading.consumption,
        reading.temperature));
  }

  if (reading.hour > state.max_hour) {
    const int64_t advance = reading.hour - state.max_hour;
    state.recent_mask =
        (state.max_hour < 0 || advance > kMaxAllowance)
            ? 0
            : state.recent_mask << advance;
    state.recent_mask |= 1ULL;
    state.max_hour = reading.hour;
  } else {
    state.recent_mask |= 1ULL << (state.max_hour - reading.hour);
  }
  ++readings_processed_;
  IngestedCounter()->Increment();

  for (auto& detector : state.detectors) {
    std::optional<Alert> alert = detector->Observe(reading);
    if (alert.has_value()) {
      ++alerts_raised_;
      if (alert_sink_) alert_sink_(*alert);
    }
  }

  if (options_.window_hours > 0) {
    const int64_t window_start =
        reading.hour - (reading.hour % options_.window_hours);
    Window& window = state.windows[window_start];
    window.total += reading.consumption;
    const int offset = static_cast<int>(reading.hour - window_start);
    // Earliest hour wins peak ties (see WindowSummary::peak_hour).
    if (window.count == 0 || reading.consumption > window.peak ||
        (reading.consumption == window.peak && offset < window.peak_hour)) {
      window.peak = reading.consumption;
      window.peak_hour = offset;
    }
    ++window.count;
    CloseExpiredWindows(reading.household_id, &state);
  }
  return Status::OK();
}

void StreamProcessor::EmitWindow(int64_t household_id, int64_t window_start,
                                 const Window& window) {
  if (window.count == 0 || !window_sink_) return;
  WindowSummary summary;
  summary.household_id = household_id;
  summary.window_start_hour = window_start;
  summary.window_hours = options_.window_hours;
  summary.total_kwh = window.total;
  summary.peak_kwh = window.peak;
  summary.peak_hour = window.peak_hour;
  window_sink_(summary);
}

void StreamProcessor::CloseExpiredWindows(int64_t household_id,
                                          HouseholdState* state) {
  // A window may still receive readings until the watermark passes its
  // end, i.e. until max_hour reaches end + allowance.
  while (!state->windows.empty()) {
    const auto it = state->windows.begin();
    const int64_t window_end = it->first + options_.window_hours;
    if (state->max_hour < window_end + options_.late_allowance_hours) break;
    EmitWindow(household_id, it->first, it->second);
    state->windows.erase(it);
  }
}

void StreamProcessor::FlushWindows() {
  std::vector<int64_t> ids;
  ids.reserve(households_.size());
  for (const auto& [household_id, state] : households_) {
    ids.push_back(household_id);
  }
  std::sort(ids.begin(), ids.end());
  for (const int64_t household_id : ids) {
    HouseholdState& state = households_.at(household_id);
    for (const auto& [window_start, window] : state.windows) {
      EmitWindow(household_id, window_start, window);
    }
    state.windows.clear();
  }
}

}  // namespace smartmeter::streaming
