#include "streaming/stream_processor.h"

#include "common/string_util.h"

namespace smartmeter::streaming {

StreamProcessor::StreamProcessor(Options options)
    : options_(std::move(options)) {}

void StreamProcessor::AddDetectorPrototype(
    std::unique_ptr<Detector> prototype) {
  prototypes_.push_back(std::move(prototype));
}

void StreamProcessor::AddHouseholdDetector(
    int64_t household_id, std::unique_ptr<Detector> detector) {
  StateFor(household_id).detectors.push_back(std::move(detector));
}

StreamProcessor::HouseholdState& StreamProcessor::StateFor(
    int64_t household_id) {
  auto it = households_.find(household_id);
  if (it != households_.end()) return it->second;
  HouseholdState state;
  state.detectors.reserve(prototypes_.size());
  for (const auto& prototype : prototypes_) {
    state.detectors.push_back(prototype->Clone());
  }
  return households_.emplace(household_id, std::move(state))
      .first->second;
}

Status StreamProcessor::Process(const StreamReading& reading) {
  HouseholdState& state = StateFor(reading.household_id);
  if (reading.hour <= state.last_hour) {
    return Status::InvalidArgument(StringPrintf(
        "household %lld: reading for hour %lld after hour %lld",
        static_cast<long long>(reading.household_id),
        static_cast<long long>(reading.hour),
        static_cast<long long>(state.last_hour)));
  }
  state.last_hour = reading.hour;
  ++readings_processed_;

  for (auto& detector : state.detectors) {
    std::optional<Alert> alert = detector->Observe(reading);
    if (alert.has_value()) {
      ++alerts_raised_;
      if (alert_sink_) alert_sink_(*alert);
    }
  }

  if (options_.window_hours > 0) {
    const int64_t window_start =
        reading.hour - (reading.hour % options_.window_hours);
    if (state.window_start >= 0 && window_start != state.window_start) {
      CloseWindow(reading.household_id, &state);
    }
    if (state.window_start < 0 || window_start != state.window_start) {
      state.window_start = window_start;
      state.window_total = 0.0;
      state.window_peak = 0.0;
      state.window_peak_hour = 0;
      state.window_count = 0;
    }
    state.window_total += reading.consumption;
    if (reading.consumption > state.window_peak ||
        state.window_count == 0) {
      state.window_peak = reading.consumption;
      state.window_peak_hour = static_cast<int>(
          reading.hour - state.window_start);
    }
    ++state.window_count;
  }
  return Status::OK();
}

void StreamProcessor::CloseWindow(int64_t household_id,
                                  HouseholdState* state) {
  if (state->window_start < 0 || state->window_count == 0) return;
  if (window_sink_) {
    WindowSummary summary;
    summary.household_id = household_id;
    summary.window_start_hour = state->window_start;
    summary.window_hours = options_.window_hours;
    summary.total_kwh = state->window_total;
    summary.peak_kwh = state->window_peak;
    summary.peak_hour = state->window_peak_hour;
    window_sink_(summary);
  }
  state->window_start = -1;
  state->window_count = 0;
}

void StreamProcessor::FlushWindows() {
  for (auto& [household_id, state] : households_) {
    CloseWindow(household_id, &state);
  }
}

}  // namespace smartmeter::streaming
