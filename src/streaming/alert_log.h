#ifndef SMARTMETER_STREAMING_ALERT_LOG_H_
#define SMARTMETER_STREAMING_ALERT_LOG_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "streaming/stream_types.h"

namespace smartmeter::streaming {

/// Filter for reading back recorded alerts.
struct AlertQuery {
  /// -1 = all households.
  int64_t household_id = -1;
  /// Only alerts with hour >= since_hour (0 = from the beginning).
  int64_t since_hour = 0;
  /// Keep only the newest `limit` matches (0 = unlimited).
  size_t limit = 0;
};

/// Thread-safe bounded ring of the most recent alerts. The ingest side
/// (a StreamProcessor alert sink) records; the query side (the serving
/// layer's QueryAlerts) reads a filtered copy. Once full, the oldest
/// alert is dropped per new one -- alerting is a freshness product, and
/// the batch store is the system of record for history.
class AlertLog {
 public:
  /// `capacity` is the maximum retained alerts (minimum 1).
  explicit AlertLog(size_t capacity = 4096);

  AlertLog(const AlertLog&) = delete;
  AlertLog& operator=(const AlertLog&) = delete;

  void Record(const Alert& alert);

  /// Matching alerts in recording order (oldest first). When `limit`
  /// trims, the oldest matches are dropped, never the newest.
  std::vector<Alert> Query(const AlertQuery& query) const;

  /// Alerts currently retained.
  size_t size() const;
  /// Alerts ever recorded, including ones the ring has since dropped.
  int64_t total_recorded() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Alert> ring_;
  int64_t total_ = 0;
};

}  // namespace smartmeter::streaming

#endif  // SMARTMETER_STREAMING_ALERT_LOG_H_
