#include "streaming/alert_log.h"

#include <algorithm>

namespace smartmeter::streaming {

AlertLog::AlertLog(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

void AlertLog::Record(const Alert& alert) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(alert);
  if (ring_.size() > capacity_) ring_.pop_front();
  ++total_;
}

std::vector<Alert> AlertLog::Query(const AlertQuery& query) const {
  std::vector<Alert> matches;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Alert& alert : ring_) {
      if (query.household_id >= 0 && alert.household_id != query.household_id) {
        continue;
      }
      if (alert.hour < query.since_hour) continue;
      matches.push_back(alert);
    }
  }
  if (query.limit > 0 && matches.size() > query.limit) {
    matches.erase(matches.begin(),
                  matches.end() - static_cast<ptrdiff_t>(query.limit));
  }
  return matches;
}

size_t AlertLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

int64_t AlertLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace smartmeter::streaming
