#include "streaming/detectors.h"

#include <algorithm>
#include <cmath>

#include "timeseries/calendar.h"

namespace smartmeter::streaming {

// ---------------------------------------------------------------------------
// EwmaDetector
// ---------------------------------------------------------------------------

EwmaDetector::EwmaDetector(const Options& options) : options_(options) {}

double EwmaDetector::sigma() const {
  return std::max(options_.min_sigma, std::sqrt(variance_));
}

std::optional<Alert> EwmaDetector::Observe(const StreamReading& reading) {
  const double x = reading.consumption;
  if (seen_ < options_.warmup_readings) {
    // Warm-up: prime the estimates, never alert.
    if (seen_ == 0) {
      mean_ = x;
      variance_ = 0.0;
    } else {
      const double delta = x - mean_;
      mean_ += options_.alpha * delta;
      variance_ = (1.0 - options_.alpha) *
                  (variance_ + options_.alpha * delta * delta);
    }
    ++seen_;
    return std::nullopt;
  }
  const double deviation = x - mean_;
  const double score = std::abs(deviation) / sigma();
  if (score > options_.threshold_sigma) {
    Alert alert;
    alert.household_id = reading.household_id;
    alert.hour = reading.hour;
    alert.kind = AlertKind::kDeviation;
    alert.observed = x;
    alert.expected = mean_;
    alert.score = score;
    // Anomalous readings do not update the envelope.
    return alert;
  }
  const double delta = x - mean_;
  mean_ += options_.alpha * delta;
  variance_ = (1.0 - options_.alpha) *
              (variance_ + options_.alpha * delta * delta);
  ++seen_;
  return std::nullopt;
}

std::unique_ptr<Detector> EwmaDetector::Clone() const {
  return std::make_unique<EwmaDetector>(options_);
}

// ---------------------------------------------------------------------------
// SpikeDetector
// ---------------------------------------------------------------------------

SpikeDetector::SpikeDetector(const Options& options) : options_(options) {}

std::optional<Alert> SpikeDetector::Observe(const StreamReading& reading) {
  const double x = reading.consumption;
  std::optional<Alert> alert;
  if (seen_ >= options_.warmup_readings) {
    const double jump = std::abs(x - previous_);
    const double trigger =
        std::max(options_.min_jump, options_.jump_factor * level_);
    if (jump > trigger) {
      Alert a;
      a.household_id = reading.household_id;
      a.hour = reading.hour;
      a.kind = AlertKind::kSpike;
      a.observed = x;
      a.expected = previous_;
      a.score = level_ > 0 ? jump / level_ : jump;
      alert = a;
    }
  }
  level_ = seen_ == 0 ? std::abs(x)
                      : (1.0 - options_.level_alpha) * level_ +
                            options_.level_alpha * std::abs(x);
  previous_ = x;
  ++seen_;
  return alert;
}

std::unique_ptr<Detector> SpikeDetector::Clone() const {
  return std::make_unique<SpikeDetector>(options_);
}

// ---------------------------------------------------------------------------
// FlatlineDetector
// ---------------------------------------------------------------------------

FlatlineDetector::FlatlineDetector(const Options& options)
    : options_(options) {}

std::optional<Alert> FlatlineDetector::Observe(
    const StreamReading& reading) {
  const double x = reading.consumption;
  if (has_previous_ && std::abs(x - previous_) <= options_.tolerance) {
    ++run_length_;
  } else {
    run_length_ = 0;
    alerted_this_run_ = false;
  }
  has_previous_ = true;
  previous_ = x;
  if (run_length_ >= options_.max_constant_hours && !alerted_this_run_) {
    alerted_this_run_ = true;  // One alert per stuck episode.
    Alert alert;
    alert.household_id = reading.household_id;
    alert.hour = reading.hour;
    alert.kind = AlertKind::kFlatline;
    alert.observed = x;
    alert.expected = x;
    alert.score = static_cast<double>(run_length_);
    return alert;
  }
  return std::nullopt;
}

std::unique_ptr<Detector> FlatlineDetector::Clone() const {
  return std::make_unique<FlatlineDetector>(options_);
}

// ---------------------------------------------------------------------------
// ProfileDetector
// ---------------------------------------------------------------------------

ProfileDetector::ProfileDetector(core::DailyProfileResult profile,
                                 const Options& options)
    : profile_(std::move(profile)), options_(options) {}

double ProfileDetector::ExpectedAt(int hour_of_day,
                                   double temperature) const {
  const size_t h = static_cast<size_t>(hour_of_day % kHoursPerDay);
  double expected = profile_.profile[h];
  if (h < profile_.temperature_beta.size()) {
    expected += profile_.temperature_beta[h] * temperature;
  }
  return std::max(0.0, expected);
}

std::optional<Alert> ProfileDetector::Observe(
    const StreamReading& reading) {
  const int hour_of_day =
      static_cast<int>(reading.hour % kHoursPerDay);
  const double expected =
      ExpectedAt(hour_of_day, reading.temperature);
  const double band = std::max(options_.min_band,
                               options_.relative_tolerance * expected);
  const double deviation = std::abs(reading.consumption - expected);
  if (deviation <= band) return std::nullopt;
  Alert alert;
  alert.household_id = reading.household_id;
  alert.hour = reading.hour;
  alert.kind = AlertKind::kOffProfile;
  alert.observed = reading.consumption;
  alert.expected = expected;
  alert.score = deviation / band;
  return alert;
}

std::unique_ptr<Detector> ProfileDetector::Clone() const {
  return std::make_unique<ProfileDetector>(profile_, options_);
}

}  // namespace smartmeter::streaming
