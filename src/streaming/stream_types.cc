#include "streaming/stream_types.h"

#include "common/string_util.h"

namespace smartmeter::streaming {

std::string_view AlertKindName(AlertKind kind) {
  switch (kind) {
    case AlertKind::kSpike:
      return "spike";
    case AlertKind::kDeviation:
      return "deviation";
    case AlertKind::kOffProfile:
      return "off-profile";
    case AlertKind::kFlatline:
      return "flatline";
  }
  return "unknown";
}

std::string Alert::ToString() const {
  return StringPrintf(
      "[%s] household %lld hour %lld: observed %.3f kWh, expected %.3f "
      "(score %.2f)",
      std::string(AlertKindName(kind)).c_str(),
      static_cast<long long>(household_id), static_cast<long long>(hour),
      observed, expected, score);
}

}  // namespace smartmeter::streaming
