// Reproduces Figures 16 and 17: Spark vs Hive on the second cluster data
// format (one household per line -> map-only plans, no shuffle).
//   Figure 16: execution time vs data size.
//   Figure 17: speedup vs worker nodes at the largest size.
//
// Expected shapes (paper): per-household tasks run faster than with
// format 1 (no reduce step / shuffle); Spark and Hive are very close
// (same HDFS scan dominates); speedup with nodes is steeper than format
// 1 thanks to map-only jobs; similarity improves only slightly (the
// pairwise computation dominates, and top-k still needs a reduce).
#include <cstdio>

#include "bench_common.h"
#include "engines/hive_engine.h"
#include "engines/spark_engine.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

constexpr int64_t kBlockBytes = 32 << 10;

Result<double> RunOnce(bool spark, const table::DataSource& source,
                       const cluster::ClusterConfig& cluster,
                       const engines::TaskOptions& request) {
  if (spark) {
    engines::SparkEngine::Options options;
    options.cluster = cluster;
    options.block_bytes = kBlockBytes;
    engines::SparkEngine engine(options);
    SM_RETURN_IF_ERROR(engine.Attach(source).status());
    SM_ASSIGN_OR_RETURN(engines::TaskRunMetrics metrics,
                        engine.RunTask(request, nullptr));
    return metrics.seconds;
  }
  engines::HiveEngine::Options options;
  options.cluster = cluster;
  options.block_bytes = kBlockBytes;
  engines::HiveEngine engine(options);
  SM_RETURN_IF_ERROR(engine.Attach(source).status());
  SM_ASSIGN_OR_RETURN(engines::TaskRunMetrics metrics,
                      engine.RunTask(request, nullptr));
  return metrics.seconds;
}

int Run(BenchContext& ctx) {
  PrintHeader(
      "Figures 16-17: Spark vs Hive, data format 2 (one household per "
      "line, map-only)",
      StringPrintf("scale %.0f; simulated 16-node cluster",
                   ctx.scale_divisor()));

  cluster::ClusterConfig cluster;
  const std::vector<double> sizes_gb = {256, 512, 768, 1024};

  for (core::TaskType task : core::kAllTasks) {
    std::printf("\n-- Figure 16 (%s) --\n",
                std::string(core::TaskName(task)).c_str());
    PrintRow({"paper GB", "households", "spark (s)", "hive (s)"});
    PrintDivider(4);
    for (double gb : sizes_gb) {
      const int households = ctx.HouseholdsForPaperGb(gb);
      auto source = ctx.HouseholdLines(households);
      if (!source.ok()) return 1;
      engines::TaskOptions request = engines::TaskOptions::Default(task);
      auto spark = RunOnce(true, *source, cluster, request);
      auto hive = RunOnce(false, *source, cluster, request);
      if (!spark.ok() || !hive.ok()) {
        std::fprintf(stderr, "run failed\n");
        return 1;
      }
      PrintRow({Cell(gb), CellInt(households), Cell(*spark), Cell(*hive)});
    }
  }

  const int sim_households =
      static_cast<int>(ctx.flags().GetInt("sim-households", 400));
  const int households = ctx.HouseholdsForPaperGb(sizes_gb.back());
  auto source = ctx.HouseholdLines(households);
  auto sim_source = ctx.HouseholdLines(sim_households);
  if (!source.ok() || !sim_source.ok()) return 1;
  const std::vector<int> node_counts = {4, 8, 12, 16};
  for (core::TaskType task : core::kAllTasks) {
    std::printf("\n-- Figure 17 (%s), speedup relative to 4 nodes --\n",
                std::string(core::TaskName(task)).c_str());
    std::vector<std::string> header = {"engine"};
    for (int n : node_counts) header.push_back(StringPrintf("%d nodes", n));
    PrintRow(header);
    PrintDivider(header.size());
    for (bool spark : {true, false}) {
      std::vector<std::string> cells = {spark ? "spark" : "hive"};
      double base = 0.0;
      for (int nodes : node_counts) {
        cluster::ClusterConfig config;
        config.num_nodes = nodes;
        engines::TaskOptions request = engines::TaskOptions::Default(task);
        const bool is_sim = task == core::TaskType::kSimilarity;
        auto seconds =
            RunOnce(spark, is_sim ? *sim_source : *source, config, request);
        if (!seconds.ok()) return 1;
        if (nodes == node_counts.front()) base = *seconds;
        cells.push_back(Cell(*seconds > 0 ? base / *seconds : 0.0));
      }
      PrintRow(cells);
    }
  }
  std::printf(
      "\nShapes to check: per-household tasks faster than format 1 and "
      "spark ~ hive;\nspeedups steeper than format 1 (map-only jobs).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/12000.0);
  return Run(ctx);
}
