// Reproduces Figures 13, 14 and 15: Spark vs Hive on the first cluster
// data format (one reading per line, shuffle-heavy UDAF plans).
//   Figure 13: execution time vs data size (paper: up to 1 TB).
//   Figure 14: speedup vs worker nodes (4 -> 16) at the largest size.
//   Figure 15: modeled memory per node vs data size.
//
// Expected shapes (paper): Spark clearly faster for similarity
// (broadcast join vs self-join), slightly faster for PAR and histogram,
// and slower than Hive for 3-line at scale; Hive scales slightly better
// with nodes; Spark uses more memory, growing with data size; 3-line is
// the most memory-intensive per-household task (needs temperature too).
#include <cstdio>

#include "bench_common.h"
#include "engines/hive_engine.h"
#include "engines/spark_engine.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

struct RunOutcome {
  double seconds = 0.0;
  double memory_mb = 0.0;
};

// Small blocks keep the number of map tasks well above the slot count
// at bench scale, so node-count sweeps have parallelism to exploit.
constexpr int64_t kBlockBytes = 32 << 10;

Result<RunOutcome> RunOnce(bool spark, const table::DataSource& source,
                           const cluster::ClusterConfig& cluster,
                           const engines::TaskOptions& request) {
  RunOutcome outcome;
  if (spark) {
    engines::SparkEngine::Options options;
    options.cluster = cluster;
    options.block_bytes = kBlockBytes;
    engines::SparkEngine engine(options);
    SM_RETURN_IF_ERROR(engine.Attach(source).status());
    SM_ASSIGN_OR_RETURN(engines::TaskRunMetrics metrics,
                        engine.RunTask(request, nullptr));
    outcome.seconds = metrics.seconds;
    outcome.memory_mb =
        static_cast<double>(metrics.modeled_memory_bytes) / (1024 * 1024);
  } else {
    engines::HiveEngine::Options options;
    options.cluster = cluster;
    options.block_bytes = kBlockBytes;
    engines::HiveEngine engine(options);
    SM_RETURN_IF_ERROR(engine.Attach(source).status());
    SM_ASSIGN_OR_RETURN(engines::TaskRunMetrics metrics,
                        engine.RunTask(request, nullptr));
    outcome.seconds = metrics.seconds;
    outcome.memory_mb =
        static_cast<double>(metrics.modeled_memory_bytes) / (1024 * 1024);
  }
  return outcome;
}

int Run(BenchContext& ctx) {
  PrintHeader(
      "Figures 13-15: Spark vs Hive, data format 1 (one reading per line)",
      StringPrintf("scale %.0f; simulated 16-node cluster; paper sweeps "
                   "up to 1 TB",
                   ctx.scale_divisor()));

  cluster::ClusterConfig cluster;
  const std::vector<double> sizes_gb = {256, 512, 768, 1024};

  // ---- Figures 13 + 15: execution time and memory vs size --------------
  for (core::TaskType task : core::kAllTasks) {
    std::printf("\n-- Figure 13/15 (%s) --\n",
                std::string(core::TaskName(task)).c_str());
    PrintRow({"paper GB", "households", "spark (s)", "hive (s)",
              "spark mem (MB/node)", "hive mem (MB/node)"});
    PrintDivider(6);
    for (double gb : sizes_gb) {
      const int households = ctx.HouseholdsForPaperGb(gb);
      auto source = ctx.SingleCsv(households);
      if (!source.ok()) return 1;
      engines::TaskOptions request = engines::TaskOptions::Default(task);
      auto spark = RunOnce(true, *source, cluster, request);
      auto hive = RunOnce(false, *source, cluster, request);
      if (!spark.ok() || !hive.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     (!spark.ok() ? spark.status() : hive.status())
                         .ToString()
                         .c_str());
        return 1;
      }
      PrintRow({Cell(gb), CellInt(households), Cell(spark->seconds),
                Cell(hive->seconds), Cell(spark->memory_mb),
                Cell(hive->memory_mb)});
    }
  }

  // ---- Figure 14: speedup vs worker nodes at the largest size ----------
  // Similarity follows the paper and uses a larger household set (their
  // Figure 14(d) is at 64k households) so pairwise compute, not fixed
  // overhead, is what the extra nodes parallelize.
  const int sim_households =
      static_cast<int>(ctx.flags().GetInt("sim-households", 400));
  const int households = ctx.HouseholdsForPaperGb(sizes_gb.back());
  auto source = ctx.SingleCsv(households);
  auto sim_source = ctx.SingleCsv(sim_households);
  if (!source.ok() || !sim_source.ok()) return 1;
  const std::vector<int> node_counts = {4, 8, 12, 16};
  for (core::TaskType task : core::kAllTasks) {
    std::printf("\n-- Figure 14 (%s), speedup relative to 4 nodes --\n",
                std::string(core::TaskName(task)).c_str());
    std::vector<std::string> header = {"engine"};
    for (int n : node_counts) header.push_back(StringPrintf("%d nodes", n));
    PrintRow(header);
    PrintDivider(header.size());
    for (bool spark : {true, false}) {
      std::vector<std::string> cells = {spark ? "spark" : "hive"};
      double base = 0.0;
      for (int nodes : node_counts) {
        cluster::ClusterConfig config;
        config.num_nodes = nodes;
        engines::TaskOptions request = engines::TaskOptions::Default(task);
        const bool is_sim = task == core::TaskType::kSimilarity;
        auto outcome =
            RunOnce(spark, is_sim ? *sim_source : *source, config, request);
        if (!outcome.ok()) return 1;
        if (nodes == node_counts.front()) base = outcome->seconds;
        cells.push_back(
            Cell(outcome->seconds > 0 ? base / outcome->seconds : 0.0));
      }
      PrintRow(cells);
    }
  }
  std::printf(
      "\nShapes to check: spark much faster on similarity; hive speedup "
      "slightly steeper with nodes;\nspark memory above hive and growing "
      "with size; 3line the most memory-hungry per-household task.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/12000.0);
  return Run(ctx);
}
