// Ablation (ours, following the paper's reference [27] on symbolic
// smart-meter representations): SAX-accelerated approximate similarity
// search versus the exact quadratic scan. The filter ranks pairs by the
// SAX MINDIST lower bound (a few dozen operations per pair instead of a
// dot product over 8,760 points), then refines only the best candidates
// exactly. Reports speedup and top-k recall per configuration.
#include <cstdio>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/similarity_task.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

double Recall(const std::vector<core::SimilarityResult>& truth,
              const std::vector<core::SimilarityResult>& got) {
  int hits = 0, total = 0;
  for (size_t q = 0; q < truth.size(); ++q) {
    for (const auto& t : truth[q].matches) {
      ++total;
      for (const auto& g : got[q].matches) {
        if (g.household_id == t.household_id) {
          ++hits;
          break;
        }
      }
    }
  }
  return total > 0 ? static_cast<double>(hits) / total : 0.0;
}

int Run(BenchContext& ctx) {
  const int households =
      static_cast<int>(ctx.flags().GetInt("households", 300));
  PrintHeader(
      "Ablation: SAX-approximate vs exact similarity search",
      StringPrintf("%d households, full-year series, k = 10",
                   households));

  auto dataset = ctx.GetDataset(households);
  if (!dataset.ok()) return 1;
  std::vector<core::SeriesView> views;
  for (const auto& c : (*dataset)->consumers()) {
    views.push_back({c.household_id, c.consumption});
  }

  Stopwatch exact_clock;
  auto exact = core::ComputeSimilarityTopK(views);
  if (!exact.ok()) return 1;
  const double exact_seconds = exact_clock.ElapsedSeconds();

  PrintRow({"configuration", "time (s)", "speedup", "recall@10"});
  PrintDivider(4);
  PrintRow({"exact (all pairs)", Cell(exact_seconds), "1.000", "1.000"});

  struct Config {
    int segments;
    int alphabet;
    int factor;
  };
  for (const Config& config : {Config{16, 8, 4}, Config{32, 8, 4},
                               Config{32, 8, 8}, Config{64, 16, 8}}) {
    core::ApproxSimilarityOptions options;
    options.sax_segments = config.segments;
    options.sax_alphabet = config.alphabet;
    options.candidate_factor = config.factor;
    Stopwatch clock;
    auto approx = core::ComputeSimilarityTopKApprox(views, options);
    if (!approx.ok()) return 1;
    const double seconds = clock.ElapsedSeconds();
    PrintRow({StringPrintf("sax w=%d a=%d cand=%dk", config.segments,
                           config.alphabet, config.factor),
              Cell(seconds),
              Cell(seconds > 0 ? exact_seconds / seconds : 0.0),
              Cell(Recall(*exact, *approx))});
  }
  std::printf(
      "\nExpected: multi-x speedups at recall above ~0.8; recall rises "
      "with word length and candidate budget\nwhile the speedup falls -- "
      "the classic filter-and-refine trade-off.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/80.0);
  return Run(ctx);
}
